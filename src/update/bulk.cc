#include "update/bulk.h"

namespace cpdb::update {

std::vector<tree::Path> MatchPaths(const tree::Tree& universe,
                                   const tree::PathGlob& glob) {
  std::vector<tree::Path> out;
  universe.Visit([&](const tree::Path& p, const tree::Tree&) {
    if (!p.IsRoot() && glob.Matches(p)) out.push_back(p);
  });
  return out;
}

Result<Script> ExpandBulkCopy(const tree::Tree& universe,
                              const BulkCopySpec& spec) {
  if (spec.src.StarCount() != spec.dst.StarCount()) {
    return Status::InvalidArgument(
        "bulk copy wildcard arity mismatch: " + spec.ToString());
  }
  for (const std::string& seg : spec.dst.segments()) {
    if (seg == "**") {
      return Status::InvalidArgument(
          "bulk copy destination cannot contain '**'");
    }
  }
  Script script;
  for (const tree::Path& src_path : MatchPaths(universe, spec.src)) {
    auto bindings = spec.src.Capture(src_path);
    if (!bindings.has_value()) continue;  // cannot happen; defensive
    CPDB_ASSIGN_OR_RETURN(tree::Path dst_path,
                          spec.dst.Substitute(*bindings));
    script.push_back(Update::Copy(src_path, dst_path));
  }
  return script;
}

}  // namespace cpdb::update
