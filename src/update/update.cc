#include "update/update.h"

#include <sstream>

namespace cpdb::update {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kInsert:
      return "insert";
    case OpKind::kDelete:
      return "delete";
    case OpKind::kCopy:
      return "copy";
  }
  return "?";
}

Update Update::Insert(tree::Path p, std::string a,
                      std::optional<tree::Value> v) {
  Update u;
  u.kind = OpKind::kInsert;
  u.target = std::move(p);
  u.label = std::move(a);
  u.value = std::move(v);
  return u;
}

Update Update::Delete(tree::Path p, std::string a) {
  Update u;
  u.kind = OpKind::kDelete;
  u.target = std::move(p);
  u.label = std::move(a);
  return u;
}

Update Update::Copy(tree::Path q, tree::Path p) {
  Update u;
  u.kind = OpKind::kCopy;
  u.source = std::move(q);
  u.target = std::move(p);
  return u;
}

tree::Path Update::AffectedPath() const {
  if (kind == OpKind::kCopy) return target;
  return target.Child(label);
}

std::string Update::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case OpKind::kInsert: {
      os << "insert {" << label << " : ";
      if (value.has_value()) {
        if (value->is_string()) {
          os << '"' << value->AsString() << '"';
        } else {
          os << value->ToString();
        }
      } else {
        os << "{}";
      }
      os << "} into " << target;
      break;
    }
    case OpKind::kDelete:
      os << "delete " << label << " from " << target;
      break;
    case OpKind::kCopy:
      os << "copy " << source << " into " << target;
      break;
  }
  return os.str();
}

bool Update::operator==(const Update& other) const {
  return kind == other.kind && target == other.target &&
         label == other.label && value == other.value &&
         source == other.source;
}

std::ostream& operator<<(std::ostream& os, const Update& u) {
  return os << u.ToString();
}

std::string ScriptToString(const Script& script) {
  std::ostringstream os;
  for (size_t i = 0; i < script.size(); ++i) {
    os << "(" << (i + 1) << ") " << script[i].ToString() << ";\n";
  }
  return os.str();
}

}  // namespace cpdb::update
