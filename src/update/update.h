#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "tree/path.h"
#include "tree/value.h"

namespace cpdb::update {

/// The three atomic update operations of the paper's update language
/// (Section 2):
///
///   u ::= ins {a : v} into p | del a from p | copy q into p
enum class OpKind {
  kInsert,
  kDelete,
  kCopy,
};

const char* OpKindName(OpKind k);

/// One atomic update.
///
/// All paths are *absolute* within a universe tree whose top-level edges
/// are the databases involved, e.g. {S1: ..., S2: ..., T: ...}. This makes
/// the cross-database copy of the paper ("copy S1/a1/y into T/c1/y") a
/// plain tree operation, exactly as written in Figure 3.
///
/// For an insert, the payload v is "either the empty tree or a data value"
/// (Section 2); `value == std::nullopt` encodes the empty tree {}.
struct Update {
  OpKind kind = OpKind::kInsert;

  /// ins/del: the node under which the edge lives (the p in
  /// "ins {a:v} into p" / "del a from p"). copy: the destination path.
  tree::Path target;

  /// ins/del: the edge label a.
  std::string label;

  /// ins only: leaf payload; std::nullopt means the empty tree {}.
  std::optional<tree::Value> value;

  /// copy only: the source path q.
  tree::Path source;

  static Update Insert(tree::Path p, std::string a,
                       std::optional<tree::Value> v = std::nullopt);
  static Update Delete(tree::Path p, std::string a);
  static Update Copy(tree::Path q, tree::Path p);

  /// The path of the node this update creates, removes, or overwrites:
  /// target/label for ins/del, target for copy.
  tree::Path AffectedPath() const;

  /// Rendering in the paper's concrete syntax, e.g.
  /// `insert {c2 : {}} into T`, `delete c5 from T`,
  /// `copy S1/a1/y into T/c1/y`.
  std::string ToString() const;

  bool operator==(const Update& other) const;
};

std::ostream& operator<<(std::ostream& os, const Update& u);

/// A sequence U = u1; ...; un of atomic updates.
using Script = std::vector<Update>;

/// Renders a script one operation per line, numbered like the paper's
/// Figure 3: `(1) delete c5 from T;`.
std::string ScriptToString(const Script& script);

}  // namespace cpdb::update
