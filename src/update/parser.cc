#include "update/parser.h"

#include <cctype>

#include "util/str.h"

namespace cpdb::update {

namespace {

/// Cursor over one update line.
class LineParser {
 public:
  explicit LineParser(std::string_view s) : s_(s) {}

  Result<Update> Parse() {
    std::string verb = Word();
    if (verb == "insert" || verb == "ins") return ParseInsert();
    if (verb == "delete" || verb == "del") return ParseDelete();
    if (verb == "copy") return ParseCopy();
    return Status::InvalidArgument("unknown update verb '" + verb + "'");
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Next run of non-space, non-structural characters.
  std::string Word() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '{' ||
          c == '}' || c == ':') {
        break;
      }
      ++pos_;
    }
    return std::string(s_.substr(start, pos_ - start));
  }

  Status Expect(const std::string& keyword) {
    std::string w = Word();
    if (w != keyword) {
      return Status::InvalidArgument("expected '" + keyword + "', got '" + w +
                                     "'");
    }
    return Status::OK();
  }

  Result<tree::Path> ParsePath() {
    std::string w = Word();
    return tree::Path::Parse(w);
  }

  Result<Update> ParseInsert() {
    if (!Consume('{')) {
      return Status::InvalidArgument("expected '{' after insert");
    }
    std::string label = Word();
    if (label.empty()) {
      return Status::InvalidArgument("expected edge label in insert");
    }
    if (!Consume(':')) {
      return Status::InvalidArgument("expected ':' in insert payload");
    }
    std::optional<tree::Value> value;
    SkipSpace();
    if (Consume('{')) {
      if (!Consume('}')) {
        return Status::InvalidArgument(
            "insert payload must be a value or the empty tree {}");
      }
      value = std::nullopt;
    } else if (pos_ < s_.size() && s_[pos_] == '"') {
      ++pos_;
      std::string str;
      while (pos_ < s_.size() && s_[pos_] != '"') str.push_back(s_[pos_++]);
      if (pos_ == s_.size()) {
        return Status::InvalidArgument("unterminated string payload");
      }
      ++pos_;
      value = tree::Value(str);
    } else {
      std::string w = Word();
      if (w.empty()) {
        return Status::InvalidArgument("expected insert payload");
      }
      value = tree::Value::FromString(w);
    }
    if (!Consume('}')) {
      return Status::InvalidArgument("expected '}' closing insert payload");
    }
    CPDB_RETURN_IF_ERROR(Expect("into"));
    CPDB_ASSIGN_OR_RETURN(tree::Path p, ParsePath());
    return Update::Insert(std::move(p), std::move(label), std::move(value));
  }

  Result<Update> ParseDelete() {
    std::string label = Word();
    if (label.empty()) {
      return Status::InvalidArgument("expected edge label in delete");
    }
    CPDB_RETURN_IF_ERROR(Expect("from"));
    CPDB_ASSIGN_OR_RETURN(tree::Path p, ParsePath());
    return Update::Delete(std::move(p), std::move(label));
  }

  Result<Update> ParseCopy() {
    CPDB_ASSIGN_OR_RETURN(tree::Path q, ParsePath());
    CPDB_RETURN_IF_ERROR(Expect("into"));
    CPDB_ASSIGN_OR_RETURN(tree::Path p, ParsePath());
    return Update::Copy(std::move(q), std::move(p));
  }

  std::string_view s_;
  size_t pos_ = 0;
};

/// Strips "(12)" numbering prefixes and trailing ';'.
std::string_view StripDecoration(std::string_view line) {
  line = StripWhitespace(line);
  if (!line.empty() && line.front() == '(') {
    size_t close = line.find(')');
    if (close != std::string_view::npos) {
      bool all_digits = close > 1;
      for (size_t i = 1; i < close; ++i) {
        if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) line = StripWhitespace(line.substr(close + 1));
    }
  }
  while (!line.empty() && line.back() == ';') {
    line = StripWhitespace(line.substr(0, line.size() - 1));
  }
  return line;
}

}  // namespace

Result<Update> ParseUpdate(const std::string& line) {
  std::string_view stripped = StripDecoration(line);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty update line");
  }
  return LineParser(stripped).Parse();
}

Result<Script> ParseScript(const std::string& text) {
  Script script;
  // Split on newlines first, then on ';' within each line.
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;
    for (const std::string& piece : Split(std::string(line), ';')) {
      std::string_view sv = StripWhitespace(piece);
      if (sv.empty() || sv.front() == '#') continue;
      CPDB_ASSIGN_OR_RETURN(Update u, ParseUpdate(std::string(sv)));
      script.push_back(std::move(u));
    }
  }
  return script;
}

}  // namespace cpdb::update
