#pragma once

#include <string>

#include "update/update.h"
#include "util/result.h"

namespace cpdb::update {

/// Parses one atomic update in the paper's concrete syntax:
///
///   insert {c2 : {}} into T
///   insert {y : 12} into T/c4
///   delete c5 from T
///   copy S1/a1/y into T/c1/y
///
/// `ins` and `del` are accepted as synonyms of `insert`/`delete`; string
/// payloads may be double-quoted.
Result<Update> ParseUpdate(const std::string& line);

/// Parses a whole script: one operation per line or ';'-separated, with
/// optional "(n)" numbering prefixes exactly as printed in the paper's
/// Figure 3, plus '#' line comments and blank lines.
Result<Script> ParseScript(const std::string& text);

}  // namespace cpdb::update
