#pragma once

#include "tree/glob.h"
#include "tree/tree.h"
#include "update/update.h"
#include "util/result.h"

namespace cpdb::update {

/// A declarative bulk copy (paper Section 6, future work): copy every
/// source location matching `src` to the target location obtained by
/// substituting the captured "*" bindings into `dst`.
///
/// Example: {src: "S1/*/organelle", dst: "T/*/organelle"} copies the
/// organelle field of every S1 entry onto the same-named entry of T.
struct BulkCopySpec {
  tree::PathGlob src;
  tree::PathGlob dst;

  std::string ToString() const {
    return "copy " + src.ToString() + " into " + dst.ToString();
  }
};

/// Compiles a bulk copy into the equivalent sequence of atomic copies
/// against the current universe, in deterministic (path) order.
///
/// Requirements: `src` and `dst` must have the same "*" arity and no
/// "**" in `dst`. The expansion is proportional to the matched data —
/// exactly the provenance blow-up that motivates approximate glob records
/// (one ApproxRecord describes the whole statement).
Result<Script> ExpandBulkCopy(const tree::Tree& universe,
                              const BulkCopySpec& spec);

/// All paths in `universe` matching the glob, preorder.
std::vector<tree::Path> MatchPaths(const tree::Tree& universe,
                                   const tree::PathGlob& glob);

}  // namespace cpdb::update
