#include "update/semantics.h"

#include <utility>

namespace cpdb::update {

namespace {

/// Collects the preorder node paths of `t`, each prefixed with `at`.
void CollectPaths(const tree::Tree& t, const tree::Path& at,
                  std::vector<tree::Path>* out) {
  t.Visit([&](const tree::Path& rel, const tree::Tree&) {
    out->push_back(at.Concat(rel));
  });
}

Status ApplyInsert(tree::Tree* universe, const Update& u,
                   ApplyEffect* effect) {
  tree::Tree* node = universe->Find(u.target);
  if (node == nullptr) {
    return Status::NotFound("insert target '" + u.target.ToString() +
                            "' does not exist");
  }
  tree::Tree payload;
  if (u.value.has_value()) payload = tree::Tree(*u.value);
  CPDB_RETURN_IF_ERROR(node->AddChild(u.label, std::move(payload)));
  if (effect != nullptr) {
    effect->inserted.push_back(u.target.Child(u.label));
  }
  return Status::OK();
}

Status ApplyDelete(tree::Tree* universe, const Update& u,
                   ApplyEffect* effect) {
  tree::Tree* node = universe->Find(u.target);
  if (node == nullptr) {
    return Status::NotFound("delete target '" + u.target.ToString() +
                            "' does not exist");
  }
  const tree::Tree* doomed = std::as_const(*node).GetChild(u.label);
  if (doomed == nullptr) {
    return Status::NotFound("edge '" + u.label + "' does not exist under '" +
                            u.target.ToString() + "'");
  }
  if (effect != nullptr) {
    CollectPaths(*doomed, u.target.Child(u.label), &effect->deleted);
  }
  return node->RemoveChild(u.label);
}

Status ApplyCopy(tree::Tree* universe, const Update& u, ApplyEffect* effect) {
  // Const lookup: a copy READS its source; privatizing the source path
  // here would defeat structural sharing (and, under parallel apply, write
  // outside the transaction's claimed subtree).
  const tree::Tree* src = std::as_const(*universe).Find(u.source);
  if (src == nullptr) {
    return Status::NotFound("copy source '" + u.source.ToString() +
                            "' does not exist");
  }
  if (u.target.IsRoot()) {
    return Status::InvalidArgument("cannot copy into the universe root");
  }
  // Note: Find() the parent *before* cloning, so failure leaves no work.
  tree::Tree* parent = universe->Find(u.target.Parent());
  if (parent == nullptr) {
    return Status::NotFound("copy destination parent '" +
                            u.target.Parent().ToString() +
                            "' does not exist");
  }
  if (parent->HasValue()) {
    return Status::InvalidArgument("copy destination parent '" +
                                   u.target.Parent().ToString() +
                                   "' is a leaf");
  }
  // Self-affecting copies (e.g. copy T/a into T/a/b) must clone first;
  // we always clone, matching the deep-copy semantics of t[p := t.q].
  tree::Tree clone = src->Clone();
  const tree::Tree* previous = std::as_const(*parent).GetChild(u.target.Leaf());
  bool overwrote = previous != nullptr;
  if (effect != nullptr) {
    effect->overwrote = overwrote;
    if (previous != nullptr) {
      CollectPaths(*previous, u.target, &effect->overwritten);
    }
    clone.Visit([&](const tree::Path& rel, const tree::Tree&) {
      effect->copied.emplace_back(u.target.Concat(rel),
                                  u.source.Concat(rel));
    });
  }
  parent->PutChild(u.target.Leaf(), std::move(clone));
  return Status::OK();
}

}  // namespace

Status Apply(tree::Tree* universe, const Update& u, ApplyEffect* effect) {
  switch (u.kind) {
    case OpKind::kInsert:
      return ApplyInsert(universe, u, effect);
    case OpKind::kDelete:
      return ApplyDelete(universe, u, effect);
    case OpKind::kCopy:
      return ApplyCopy(universe, u, effect);
  }
  return Status::Internal("unknown update kind");
}

Status ApplySequence(tree::Tree* universe, const Script& script,
                     size_t* failed_at) {
  for (size_t i = 0; i < script.size(); ++i) {
    Status st = Apply(universe, script[i]);
    if (!st.ok()) {
      if (failed_at != nullptr) *failed_at = i;
      return st;
    }
  }
  if (failed_at != nullptr) *failed_at = script.size();
  return Status::OK();
}

Status ApplyAtomically(tree::Tree* universe, const Script& script) {
  UndoLog undo;
  for (const Update& u : script) {
    Status st = undo.ApplyTracked(universe, u);
    if (!st.ok()) {
      Status revert = undo.RevertAll(universe);
      if (!revert.ok()) return revert;
      return st;
    }
  }
  return Status::OK();
}

Status UndoLog::ApplyTracked(tree::Tree* universe, const Update& u,
                             ApplyEffect* effect) {
  Entry e;
  e.kind = u.kind;
  e.target = u.target;
  e.label = u.label;

  // Capture pre-state needed by the inverse before mutating.
  if (u.kind == OpKind::kDelete) {
    const tree::Tree* node = std::as_const(*universe).Find(u.target);
    const tree::Tree* doomed =
        node == nullptr ? nullptr : node->GetChild(u.label);
    if (doomed != nullptr) e.saved = doomed->Clone();
  } else if (u.kind == OpKind::kCopy) {
    const tree::Tree* old = std::as_const(*universe).Find(u.target);
    if (old != nullptr) {
      e.had_previous = true;
      e.saved = old->Clone();
    }
    e.label = u.target.IsRoot() ? std::string() : u.target.Leaf();
  }

  CPDB_RETURN_IF_ERROR(Apply(universe, u, effect));
  entries_.push_back(std::move(e));
  return Status::OK();
}

Status UndoLog::RevertAll(tree::Tree* universe) {
  while (!entries_.empty()) {
    Entry e = std::move(entries_.back());
    entries_.pop_back();
    switch (e.kind) {
      case OpKind::kInsert: {
        CPDB_RETURN_IF_ERROR(universe->DeleteAt(e.target, e.label));
        break;
      }
      case OpKind::kDelete: {
        if (!e.saved.has_value()) {
          return Status::Internal("undo log entry missing saved subtree");
        }
        CPDB_RETURN_IF_ERROR(
            universe->InsertAt(e.target, e.label, std::move(*e.saved)));
        break;
      }
      case OpKind::kCopy: {
        if (e.had_previous) {
          CPDB_RETURN_IF_ERROR(
              universe->ReplaceAt(e.target, std::move(*e.saved)));
        } else {
          CPDB_RETURN_IF_ERROR(
              universe->DeleteAt(e.target.Parent(), e.label));
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace cpdb::update
