#pragma once

#include <optional>
#include <vector>

#include "tree/tree.h"
#include "update/update.h"
#include "util/status.h"

namespace cpdb::update {

/// Information about what one applied update touched, needed by
/// provenance tracking and by the undo log.
struct ApplyEffect {
  /// Nodes the operation inserted (ins: exactly the new edge path).
  std::vector<tree::Path> inserted;
  /// Nodes the operation removed, in preorder (del: the whole subtree).
  std::vector<tree::Path> deleted;
  /// For copies: (target node path, source node path) per copied node,
  /// preorder; first entry is the (root target, root source) pair.
  std::vector<std::pair<tree::Path, tree::Path>> copied;
  /// For copies: whether the destination edge existed before (overwrite).
  bool overwrote = false;
  /// For copies that overwrote: the node paths of the *previous* subtree
  /// at the destination, preorder. Transactional provenance uses this to
  /// prune provenance links of overwritten data and to maintain its
  /// created-this-transaction bookkeeping.
  std::vector<tree::Path> overwritten;
};

/// Applies one atomic update to the universe tree, implementing the
/// paper's semantics:
///
///   [[ins {a:v} into p]](t) = t[p := (t.p ] {a:v})]   -- fails on missing
///       p or a duplicate top-level edge a
///   [[del a from p]](t)     = t[p := (t.p - a)]       -- fails if a absent
///   [[copy q into p]](t)    = t[p := t.q]             -- fails on missing
///       q or missing parent(p); creates the edge at p if absent, replaces
///       it otherwise (as in Figure 3's operation (7))
///
/// On failure the tree is unchanged. If `effect` is non-null it receives
/// the touched-node report used for provenance accounting.
Status Apply(tree::Tree* universe, const Update& u,
             ApplyEffect* effect = nullptr);

/// Applies u1; ...; un in order, stopping at the first failure
/// ([[U;U']] = [[U']] o [[U]]). Returns the index of the failed op via
/// `failed_at` (set to script.size() on success).
Status ApplySequence(tree::Tree* universe, const Script& script,
                     size_t* failed_at = nullptr);

/// Applies the whole script or nothing: on failure the universe is
/// restored to its pre-call state via the undo log.
Status ApplyAtomically(tree::Tree* universe, const Script& script);

/// Log of inverse actions sufficient to revert applied updates in reverse
/// order. Used to abort editor transactions without snapshotting the
/// whole database.
class UndoLog {
 public:
  /// Applies `u` to the universe and, on success, records its inverse.
  Status ApplyTracked(tree::Tree* universe, const Update& u,
                      ApplyEffect* effect = nullptr);

  /// Reverts every recorded action, most recent first; leaves the log
  /// empty. Returns Internal if the tree no longer matches the log (only
  /// possible if the tree was mutated outside this log).
  Status RevertAll(tree::Tree* universe);

  /// Forgets recorded actions (after a successful commit).
  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    OpKind kind;
    tree::Path target;           // as in the Update
    std::string label;           // ins/del
    std::optional<tree::Tree> saved;  // del: removed subtree;
                                      // copy: overwritten subtree (if any)
    bool had_previous = false;   // copy: destination edge existed before
  };
  std::vector<Entry> entries_;
};

}  // namespace cpdb::update
