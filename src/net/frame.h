#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace cpdb::net {

// Wire framing for the network service: every message travels as
//
//   varint(payload length) | crc32(payload, 4 bytes LE) | payload
//
// — the same framing discipline as the write-ahead log (storage/wal.cc),
// built on the shared varint/CRC helpers in util/crc32.h. A frame that
// does not parse (truncated varint, oversized length, CRC mismatch) is a
// protocol violation: the peer must answer with a typed error where it
// still can and close the connection; it must never crash or apply a
// partial message (tests/net_test.cc).
//
// LINT NET-FRAMING: this file (and its .cc) is the ONLY place in src/net
// and tools/ allowed to move raw bytes over a socket (send/recv/
// ::read/::write). Everything else speaks in whole frames through the
// helpers below, so no unframed payload can ever reach the wire.

/// Hard ceiling on one frame's payload. Large enough for any realistic
/// request/response (a whole pipelined script fits in well under 1 MiB),
/// small enough that a hostile or corrupt length prefix cannot make the
/// server allocate unbounded memory.
inline constexpr size_t kMaxFramePayload = 8u << 20;  // 8 MiB

/// Appends the frame encoding of `payload` to `*out`.
void EncodeFrame(const std::string& payload, std::string* out);

/// Incremental frame decoder: feed raw bytes in, take whole payloads out.
///
/// Usage: Append() whatever arrived from the socket, then call Next()
/// until it returns something other than kFrame. The reader buffers a
/// partial frame across Append() calls (kNeedMore), so torn reads are
/// invisible to the caller; kBadCrc/kTooLarge/kMalformed are terminal for
/// the connection.
class FrameReader {
 public:
  enum class Event {
    kFrame,      ///< *payload holds one complete frame's payload
    kNeedMore,   ///< no complete frame buffered; feed more bytes
    kBadCrc,     ///< framed payload failed its checksum
    kTooLarge,   ///< length prefix exceeds kMaxFramePayload
    kMalformed,  ///< length prefix is not a valid varint
  };

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame. After a terminal event the reader
  /// is poisoned and keeps returning that event.
  Event Next(std::string* payload);

  /// Bytes buffered but not yet consumed (partial frame).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool poisoned_ = false;
  Event poison_event_ = Event::kNeedMore;
};

// ----- Socket transfer (the only raw send/recv in the tree) -----------------

/// Writes one whole frame around `payload` to `fd`, looping over partial
/// writes. Returns Unavailable on EPIPE/ECONNRESET, Internal otherwise.
Status WriteFrame(int fd, const std::string& payload);

/// Blocking read of one whole frame's payload from `fd` via `reader`.
/// Returns Unavailable on clean EOF mid-stream, InvalidArgument on a
/// framing violation (CRC, length, varint), Internal on socket errors.
Status ReadFrame(int fd, FrameReader* reader, std::string* payload);

/// Non-blocking-friendly single read(2) into `reader`: reads whatever is
/// available (up to one internal buffer) and reports it via `*n_read`.
/// `*eof` is set when the peer closed. Returns Internal on socket errors
/// (EAGAIN/EWOULDBLOCK/EINTR are reported as ok with *n_read == 0).
Status ReadAvailable(int fd, FrameReader* reader, size_t* n_read, bool* eof);

/// Writes as much of `buf` starting at `*off` as the socket accepts
/// without blocking; advances `*off`. EAGAIN is ok (no progress); a hard
/// error (peer reset) returns non-ok.
Status WriteAvailable(int fd, const std::string& buf, size_t* off);

/// Sends `bytes` verbatim — NO framing. Fault-injection only: the
/// robustness tests use this to put torn, oversized, and bit-flipped
/// garbage on the wire; being here keeps even deliberate violations
/// inside this file's NET-FRAMING jurisdiction.
Status WriteRaw(int fd, const std::string& bytes);

}  // namespace cpdb::net
