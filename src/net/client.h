#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "util/result.h"

namespace cpdb::net {

/// Client connection to a cpdb_serve endpoint.
///
/// The transport is deliberately simple — one blocking TCP socket — but
/// requests and responses are decoupled so callers can *pipeline*: issue
/// up to `queue depth` Send() calls before draining responses with
/// Recv(), which is the PRISM-style client-side batching knob the load
/// driver sweeps. Responses arrive strictly in request order (the server
/// executes one connection's requests in pipeline order), so the caller
/// matches them by counting. Not thread-safe; one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Issues one request without waiting for its response. Increments the
  /// in-flight count; match responses by calling Recv() once per Send().
  Status Send(const Request& req);

  /// Blocks for the next in-order response.
  Result<Response> Recv();

  /// Send + Recv for the callers that do not pipeline.
  Result<Response> Call(const Request& req);

  size_t inflight() const { return inflight_; }

  // ----- One-shot conveniences (no pipelining) -----------------------------

  /// OK iff the server answered the ping.
  Status Ping();
  Status Apply(const update::Update& u);
  Status Commit();
  Status Abort();
  Result<std::vector<int64_t>> GetMod(const tree::Path& p);
  Result<std::string> TraceBack(const tree::Path& p);
  /// Deterministic rendering of the subtree at `p` in the server-side
  /// session's snapshot ("<absent>" if no such node).
  Result<std::string> Get(const tree::Path& p);
  Result<std::string> Stats();
  /// Full metrics registry in Prometheus text exposition format.
  Result<std::string> Metrics();
  /// Recent slow-commit spans (JSON; see obs::TraceBuffer::SlowLogJson).
  Result<std::string> SlowLog();
  Status Checkpoint();
  Status Drain();

 private:
  /// Maps a non-kOk response onto a Status (RETRY/DRAINING ->
  /// Unavailable, ERROR -> Internal), so the sync helpers stay terse.
  static Status ToStatus(const Response& resp);

  int fd_ = -1;
  FrameReader reader_;
  size_t inflight_ = 0;
};

}  // namespace cpdb::net
