#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "util/result.h"

namespace cpdb::net {

/// Client-side retry policy for typed RETRY answers (admission-control
/// sheds) and broken transports: capped exponential backoff with
/// deterministic jitter. The defaults give 2, 4, 8, ... ms doubling up to
/// the cap — long enough for a saturated commit queue to drain a cohort,
/// short enough that a load driver's tail latency stays bounded.
struct RetryPolicy {
  size_t max_attempts = 8;      ///< total tries, first included
  uint64_t base_backoff_ms = 2;
  uint64_t max_backoff_ms = 250;
  /// Seed for the jitter hash; give each connection its own so a fleet
  /// of shed clients does not retry in lockstep.
  uint64_t jitter_seed = 1;
};

/// Backoff before retry number `attempt` (1-based: the wait after the
/// first failure is attempt=1): base * 2^(attempt-1), capped, then
/// jittered deterministically by +/-25% from (seed, salt, attempt).
/// Exposed for the tests and for callers running their own retry loops.
uint64_t RetryBackoffMs(const RetryPolicy& policy, size_t attempt,
                        uint64_t salt);

/// Client connection to a cpdb_serve endpoint.
///
/// The transport is deliberately simple — one blocking TCP socket — but
/// requests and responses are decoupled so callers can *pipeline*: issue
/// up to `queue depth` Send() calls before draining responses with
/// Recv(), which is the PRISM-style client-side batching knob the load
/// driver sweeps. Responses arrive strictly in request order (the server
/// executes one connection's requests in pipeline order), so the caller
/// matches them by counting. Not thread-safe; one Client per thread.
///
/// Tracing: set_trace_sampling(N) arms deterministic 1-in-N sampling —
/// every Nth traceable request (the query verbs and COMMIT) is stamped
/// with a fresh TraceContext before encoding, and the server assembles a
/// span tree under that trace id, retrievable via Traces(). N=0 (the
/// default) stamps nothing and adds zero bytes to the wire.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Re-dials the endpoint of the last successful Connect(). Used by
  /// CallRetrying when the transport broke mid-conversation.
  Status Reconnect();

  /// Issues one request without waiting for its response. Increments the
  /// in-flight count; match responses by calling Recv() once per Send().
  /// When sampling is armed and `req` is a traceable verb without a
  /// trace context of its own, this stamps one (see set_trace_sampling).
  Status Send(const Request& req);

  /// Blocks for the next in-order response.
  Result<Response> Recv();

  /// Send + Recv for the callers that do not pipeline.
  Result<Response> Call(const Request& req);

  /// Call() that retries typed RETRY answers with capped exponential
  /// backoff and re-dials broken transports. Returns the final response
  /// (which may still be RETRY when attempts ran out) or the transport
  /// error that persisted across a reconnect. DRAINING is returned
  /// immediately — the endpoint is going away; backing off at it is
  /// wasted time. `retries` (optional) accumulates the number of
  /// re-sends performed, for the load report.
  Result<Response> CallRetrying(const Request& req, const RetryPolicy& policy,
                                size_t* retries = nullptr);

  /// Arms 1-in-N deterministic trace sampling (0 disarms). The choice of
  /// which requests to sample is a simple modular counter — deterministic
  /// for tests and reproducible runs — and the minted trace ids are a
  /// hash of (seed, counter), never zero.
  void set_trace_sampling(uint64_t every_n, uint64_t seed = 1) {
    trace_every_n_ = every_n;
    trace_seed_ = seed;
  }

  /// Trace id stamped on the most recent sampled request (0 when none
  /// yet) — the handle a test or operator uses to find the trace in the
  /// TRACES dump.
  uint64_t last_trace_id() const { return last_trace_id_; }

  size_t inflight() const { return inflight_; }

  // ----- One-shot conveniences (no pipelining) -----------------------------

  /// OK iff the server answered the ping.
  Status Ping();
  Status Apply(const update::Update& u);
  Status Commit();
  Status Abort();
  Result<std::vector<int64_t>> GetMod(const tree::Path& p);
  Result<std::string> TraceBack(const tree::Path& p);
  /// Deterministic rendering of the subtree at `p` in the server-side
  /// session's snapshot ("<absent>" if no such node).
  Result<std::string> Get(const tree::Path& p);
  Result<std::string> Stats();
  /// Full metrics registry in Prometheus text exposition format.
  Result<std::string> Metrics();
  /// Recent slow-commit spans (JSON; see obs::TraceBuffer::SlowLogJson).
  Result<std::string> SlowLog();
  /// Assembled trace trees (JSON; see obs::SpanStore::TracesJson).
  Result<std::string> Traces();
  /// Runs `verb` (one of kGetMod / kTraceBack / kGet) at `p` server-side
  /// and returns its span tree + cost counters as JSON instead of the
  /// query result.
  Result<std::string> Explain(ReqType verb, const tree::Path& p);
  Status Checkpoint();
  Status Drain();

 private:
  /// Maps a non-kOk response onto a Status (RETRY/DRAINING ->
  /// Unavailable, ERROR -> Internal), so the sync helpers stay terse.
  static Status ToStatus(const Response& resp);

  /// True for the verbs sampling applies to: the reads the span tree
  /// explains and the COMMIT whose queue stages link into it.
  static bool Traceable(ReqType t);

  int fd_ = -1;
  FrameReader reader_;
  size_t inflight_ = 0;

  // Endpoint of the last successful Connect(), for Reconnect().
  std::string host_;
  int port_ = 0;

  uint64_t trace_every_n_ = 0;
  uint64_t trace_seed_ = 1;
  uint64_t trace_seq_ = 0;
  uint64_t last_trace_id_ = 0;
};

}  // namespace cpdb::net
