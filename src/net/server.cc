#include "net/server.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "query/trace.h"
#include "storage/durable.h"

namespace cpdb::net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

// GET renders trees canonically: children carrying an explicit null are
// omitted. A snapshot rebuilt from the relational store materializes
// NULL columns as null leaves, while a session that staged the same row
// in-memory never creates them; rendering both forms identically is
// what lets a digest taken before a drain compare bit-equal to one
// taken after the reopen.
std::string RenderCanonical(const tree::Tree* t) {
  if (t->HasValue()) return t->ToString();
  std::string out = "{";
  bool first = true;
  for (const auto& [label, child] : t->children()) {
    if (child->HasValue() && child->value().is_null()) continue;
    if (!first) out += ", ";
    first = false;
    out += label + ": " + RenderCanonical(child.get());
  }
  out += "}";
  return out;
}

}  // namespace

/// One TCP connection's state. Field ownership is split by thread:
/// `reader`/`out`/`out_off`/`eof` belong to the event loop alone; the
/// queues and flags below the marker are shared and guarded by the
/// server's mu_ (handed between the loop and the one worker that set
/// `busy`); `session` is stored under mu_ and moved out by the busy
/// worker for the duration of its run.
struct Server::Conn {
  int fd = -1;

  // Event-loop-thread only.
  FrameReader reader;
  std::string out;
  size_t out_off = 0;
  bool eof = false;

  // Guarded by Server::mu_.
  struct Pending {
    std::string payload;      ///< request payload (when !is_error)
    std::string error_frame;  ///< pre-encoded response (when is_error)
    bool is_error = false;
  };
  std::deque<Pending> pending;
  std::deque<std::string> done;  ///< encoded response frames, in order
  bool busy = false;
  bool closing = false;
  std::unique_ptr<service::Session> session;

  // Touched only by the worker currently holding `busy` (requests of one
  // connection never run concurrently), like the leased session itself.
  bool in_txn = false;    ///< an APPLY has been accepted since last C/A
  bool shed_txn = false;  ///< this transaction was shed; RETRY until C/A
};

Server::Server(service::Engine* engine, service::SessionPool* pool,
               ServerOptions options)
    : engine_(engine), pool_(pool), options_(std::move(options)) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) Stop();
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 256) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  CPDB_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  CPDB_RETURN_IF_ERROR(SetNonBlocking(wake_rd_));
  CPDB_RETURN_IF_ERROR(SetNonBlocking(wake_wr_));

  RegisterMetrics();
  started_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { EventLoop(); });
  size_t n = options_.workers == 0 ? 1 : options_.workers;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  if (wake_wr_ >= 0) {
    // Async-signal-safe: one write, EAGAIN (pipe full) is fine — the
    // loop polls with a timeout and rereads draining_ anyway.
    char b = 'D';
    [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
  }
}

void Server::Wait() {
  if (loop_.joinable()) loop_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Server::Stop() {
  BeginDrain();
  Wait();
}

Server::Stats Server::stats() const {
  MutexLock l(mu_);
  return stats_;
}

void Server::RegisterMetrics() {
  obs::Registry& reg = engine_->metrics();
  auto cb = [&reg](const char* name, const char* help, bool monotonic,
                   std::function<double()> fn, const char* json_key) {
    reg.SetCallback(name, help, monotonic, std::move(fn), "", json_key);
  };
  cb("cpdb_server_draining", "1 while a graceful drain is in progress",
     false, [this] { return draining() ? 1.0 : 0.0; }, "draining");
  cb("cpdb_connections_accepted_total", "Connections accepted", true,
     [this] { return static_cast<double>(stats().accepted); }, "accepted");
  cb("cpdb_connections_closed_total", "Connections closed", true,
     [this] { return static_cast<double>(stats().closed); }, "closed");
  cb("cpdb_requests_total", "Requests executed (all verbs)", true,
     [this] { return static_cast<double>(stats().requests); }, "requests");
  cb("cpdb_retries_total", "Transactions shed with RETRY", true,
     [this] { return static_cast<double>(stats().retries); }, "retries");
  cb("cpdb_bad_frames_total", "Framing violations (CRC/length/varint)",
     true, [this] { return static_cast<double>(stats().bad_frames); },
     "bad_frames");
  cb("cpdb_bad_requests_total", "Well-framed but undecodable requests",
     true, [this] { return static_cast<double>(stats().bad_requests); },
     "bad_requests");
  cb("cpdb_inflight_bytes", "Parsed-but-unanswered request bytes held",
     false,
     [this] {
       MutexLock l(mu_);
       return static_cast<double>(inflight_bytes_);
     },
     "inflight_bytes");
  cb("cpdb_sessions_built_total", "Sessions built from scratch", true,
     [this] { return static_cast<double>(pool_->built()); },
     "sessions_built");
  cb("cpdb_sessions_reused_total", "Pooled sessions handed back out", true,
     [this] { return static_cast<double>(pool_->reused()); },
     "sessions_reused");
  cb("cpdb_sessions_refreshed_total", "Stale pooled sessions re-pinned O(1)",
     true, [this] { return static_cast<double>(pool_->refreshed()); },
     "sessions_refreshed");

  // Per-verb request latency: one labelled series, decode-to-flush
  // timing recorded in WorkerLoop. Data verbs also land in the flat
  // JSON (the admin verbs would be scrape-measuring-the-scraper noise
  // there, but are still separable in Prometheus).
  for (uint8_t t = static_cast<uint8_t>(ReqType::kPing);
       t <= static_cast<uint8_t>(ReqType::kExplain); ++t) {
    ReqType type = static_cast<ReqType>(t);
    std::string verb = ReqTypeName(type);
    std::string json_key;
    switch (type) {
      case ReqType::kApply:
      case ReqType::kCommit:
      case ReqType::kAbort:
      case ReqType::kGetMod:
      case ReqType::kTraceBack:
      case ReqType::kGet: {
        json_key = "req_";
        for (char ch : verb) {
          json_key.push_back(
              static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
        }
        json_key += "_us";
        break;
      }
      default:
        break;  // admin verbs: Prometheus only
    }
    verb_us_[t] = reg.GetHistogram("cpdb_request_us",
                                   "Request execute latency by verb (us)",
                                   "verb=\"" + verb + "\"", json_key);
  }
}

void Server::WakeLoop() {
  char b = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
}

bool Server::WantRead(const Conn& conn) const {
  if (conn.closing) return false;
  if (conn.pending.size() >= options_.max_conn_pending) return false;
  if (inflight_bytes_ >= options_.max_inflight_bytes) return false;
  if (conn.out.size() - conn.out_off >= options_.max_conn_outbuf) {
    return false;
  }
  return true;
}

void Server::ParseFrames(Conn* conn) {
  for (;;) {
    std::string payload;
    FrameReader::Event ev = conn->reader.Next(&payload);
    if (ev == FrameReader::Event::kNeedMore) return;
    if (ev == FrameReader::Event::kFrame) {
      inflight_bytes_ += payload.size();
      Conn::Pending item;
      item.payload = std::move(payload);
      conn->pending.push_back(std::move(item));
    } else {
      // Framing violation: typed error, then close. The error rides the
      // pending queue as a pre-encoded response so it is answered after
      // the requests that preceded it, in pipeline order.
      ++stats_.bad_frames;
      const char* what = ev == FrameReader::Event::kBadCrc ? "frame CRC mismatch"
                         : ev == FrameReader::Event::kTooLarge
                             ? "frame exceeds size limit"
                             : "malformed frame length";
      std::string resp_payload;
      EncodeResponse(Response::Error(std::string("protocol: ") + what),
                     &resp_payload);
      Conn::Pending item;
      item.is_error = true;
      EncodeFrame(resp_payload, &item.error_frame);
      conn->pending.push_back(std::move(item));
      conn->closing = true;
    }
    if (!conn->busy && !conn->pending.empty()) {
      conn->busy = true;
      work_.push_back(conn);
      work_cv_.NotifyOne();
    }
    if (conn->closing) return;  // reader is poisoned; stop parsing
  }
}

void Server::EventLoop() {
  std::vector<pollfd> pfds;
  std::vector<int> pfd_conn;  // parallel: fd of the conn at that index
  bool listen_closed = false;
  for (;;) {
    bool drain_now = draining_.load(std::memory_order_acquire);
    if (drain_now && !listen_closed) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      listen_closed = true;
    }

    // Move finished responses into the loop-owned output buffers.
    {
      MutexLock l(mu_);
      for (auto& [fd, c] : conns_) {
        (void)fd;
        while (!c->done.empty()) {
          c->out += c->done.front();
          c->done.pop_front();
        }
      }
    }

    // Flush what we can and reap closable connections.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* c = it->second.get();
      if (c->out_off < c->out.size() && !c->eof) {
        Status st = WriteAvailable(c->fd, c->out, &c->out_off);
        if (!st.ok()) {
          c->eof = true;  // peer gone; stop trying to flush
        }
        if (c->out_off == c->out.size()) {
          c->out.clear();
          c->out_off = 0;
        }
      }
      bool close_now = false;
      {
        MutexLock l(mu_);
        bool idle = !c->busy && c->pending.empty() && c->done.empty();
        bool flushed = c->out_off >= c->out.size();
        if (idle && (flushed || c->eof) &&
            (c->closing || c->eof || drain_now)) {
          close_now = true;
          ++stats_.closed;
        }
      }
      if (close_now) {
        std::unique_ptr<service::Session> session;
        {
          MutexLock l(mu_);
          session = std::move(c->session);
        }
        if (session != nullptr) pool_->Release(std::move(session));
        ::close(c->fd);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }

    if (drain_now && conns_.empty()) break;

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    pfd_conn.push_back(-1);
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(-2);
    }
    {
      MutexLock l(mu_);
      for (auto& [fd, c] : conns_) {
        short events = 0;
        if (!c->eof && !drain_now && WantRead(*c)) events |= POLLIN;
        if (c->out_off < c->out.size() && !c->eof) events |= POLLOUT;
        pfds.push_back({fd, events, 0});
        pfd_conn.push_back(fd);
      }
    }

    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
    if (rc < 0 && errno != EINTR) {
      std::fprintf(stderr, "cpdb_serve: poll: %s\n", std::strerror(errno));
      break;
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      short re = pfds[i].revents;
      if (re == 0) continue;
      if (pfd_conn[i] == -1) {
        char buf[256];
        while (::read(wake_rd_, buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (pfd_conn[i] == -2) {
        for (;;) {
          int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          if (!SetNonBlocking(cfd).ok()) {
            ::close(cfd);
            continue;
          }
          int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          auto conn = std::make_unique<Conn>();
          conn->fd = cfd;
          conns_[cfd] = std::move(conn);
          MutexLock l(mu_);
          ++stats_.accepted;
        }
        continue;
      }
      auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end()) continue;
      Conn* c = it->second.get();
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        c->eof = true;
        MutexLock l(mu_);
        c->closing = true;
        continue;
      }
      if (re & POLLIN) {
        size_t n = 0;
        bool eof = false;
        Status st = ReadAvailable(c->fd, &c->reader, &n, &eof);
        if (!st.ok() || eof) {
          c->eof = c->eof || eof || !st.ok();
          MutexLock l(mu_);
          c->closing = true;
        }
        if (n > 0) {
          MutexLock l(mu_);
          ParseFrames(c);
        }
      }
      // POLLOUT is handled by the flush pass at the top of the loop.
    }
  }

  // Drained: no connections, no queued work. Stop the workers, then
  // checkpoint so recovery after this clean shutdown replays no log.
  {
    MutexLock l(mu_);
    stop_workers_ = true;
  }
  work_cv_.NotifyAll();
  Status cp = engine_->Checkpoint();
  if (!cp.ok()) {
    std::fprintf(stderr, "cpdb_serve: checkpoint on drain: %s\n",
                 cp.ToString().c_str());
  }
}

void Server::WorkerLoop() {
  for (;;) {
    Conn* c = nullptr;
    {
      MutexLock l(mu_);
      while (work_.empty() && !stop_workers_) work_cv_.Wait(mu_);
      if (work_.empty()) return;  // stop_workers_ set and queue dry
      c = work_.front();
      work_.pop_front();
    }
    std::unique_ptr<service::Session> session;
    {
      MutexLock l(mu_);
      session = std::move(c->session);
    }
    for (;;) {
      Conn::Pending item;
      {
        MutexLock l(mu_);
        if (c->pending.empty()) {
          c->session = std::move(session);
          c->busy = false;
          break;
        }
        item = std::move(c->pending.front());
        c->pending.pop_front();
      }
      std::string frame;
      bool close_after = false;
      if (item.is_error) {
        frame = std::move(item.error_frame);
      } else {
        Response resp;
        auto decoded = DecodeRequest(item.payload);
        if (!decoded.ok()) {
          resp = Response::Error(decoded.status().ToString());
          close_after = true;
          MutexLock l(mu_);
          ++stats_.bad_requests;
        } else {
          // Decoder guarantees the type is in range, so the verb index
          // is safe. Measured span: execute only (decode/encode/frame
          // are per-connection constants; queueing shows up in the
          // commit-stage histograms instead).
          const double start_us = obs::NowMicros();
          resp = ExecuteTraced(c, *decoded, &session);
          obs::Histogram* h = verb_us_[static_cast<size_t>(decoded->type)];
          if (h != nullptr) h->Record(obs::NowMicros() - start_us);
          MutexLock l(mu_);
          ++stats_.requests;
          if (resp.code == RespCode::kRetry) ++stats_.retries;
        }
        std::string payload;
        EncodeResponse(resp, &payload);
        EncodeFrame(payload, &frame);
      }
      {
        MutexLock l(mu_);
        if (!item.is_error) inflight_bytes_ -= item.payload.size();
        c->done.push_back(std::move(frame));
        if (close_after) c->closing = true;
      }
      WakeLoop();
    }
  }
}

Response Server::ExecuteTraced(Conn* conn, const Request& req,
                               std::unique_ptr<service::Session>* session) {
  // Collect when the client asked (sampled trace context), when the verb
  // itself is a collection request (EXPLAIN), or when the slow-query
  // watch is armed and this is a verb it covers. Everything else takes
  // the zero-overhead path: Execute with a null tracer.
  const bool slow_watched =
      (req.type == ReqType::kGetMod || req.type == ReqType::kTraceBack ||
       req.type == ReqType::kGet) &&
      engine_->spans().SlowThresholdUs() > 0;
  const bool explain = req.type == ReqType::kExplain;
  if (!req.trace.sampled && !explain && !slow_watched) {
    return Execute(conn, req, session, nullptr);
  }

  obs::TraceContext ctx = req.trace;
  if (!ctx.valid()) {
    // Server-initiated collection (slow-query watch, un-traced EXPLAIN):
    // mint an id so the tree is still assembled and retrievable.
    ctx.trace_id = engine_->MintTraceId();
    ctx.parent_span_id = 0;
  }
  obs::SpanCollector tracer(ctx);
  const uint64_t root = tracer.Open(
      std::string("server.") + ReqTypeName(req.type), ctx.parent_span_id,
      explain ? ReqTypeName(req.explain_verb) : "");
  Response resp = Execute(conn, req, session, &tracer);
  tracer.Close(root);
  std::vector<obs::Span> spans = tracer.Take();
  if (explain && resp.code == RespCode::kOk) {
    // EXPLAIN's answer IS the span tree; the query's own result is
    // discarded (run the plain verb for it).
    resp.body = obs::SpanStore::TreeJson(spans);
  }
  engine_->spans().Record(std::move(spans), ctx.sampled || explain);
  return resp;
}

Response Server::Execute(Conn* conn, const Request& req,
                         std::unique_ptr<service::Session>* session,
                         obs::SpanCollector* tracer) {
  switch (req.type) {
    case ReqType::kPing:
      return Response::Ok("pong");
    case ReqType::kStats:
      return Response::Ok(StatsJson());
    case ReqType::kMetrics:
      return Response::Ok(engine_->metrics().RenderPrometheus());
    case ReqType::kSlowLog:
      return Response::Ok(engine_->trace().SlowLogJson());
    case ReqType::kTraces:
      return Response::Ok(engine_->spans().TracesJson());
    case ReqType::kCheckpoint: {
      Status st = engine_->Checkpoint();
      return st.ok() ? Response::Ok() : Response::Error(st.ToString());
    }
    case ReqType::kDrain:
      BeginDrain();
      return Response::Ok("draining");
    default:
      break;
  }

  // Admission control, transaction-atomic, BEFORE session acquisition:
  // the decision is made at a transaction's FIRST APPLY — while the
  // commit queue is deeper than the bound, the whole incoming
  // transaction is shed with typed RETRYs (every later APPLY and its
  // COMMIT included), so a pipelined client can never land a partially
  // admitted transaction. Deciding before Acquire matters: building a
  // session snapshots the target under a shared latch grant, which
  // would park this worker behind the very exclusive-latch saturation
  // the RETRY exists to dodge.
  if (req.type == ReqType::kApply) {
    if (conn->shed_txn) return Response::Retry("transaction shed");
    if (!conn->in_txn &&
        engine_->CommitQueueDepth() > options_.max_queue_depth) {
      conn->shed_txn = true;
      return Response::Retry("commit queue depth over limit");
    }
  } else if (req.type == ReqType::kCommit && conn->shed_txn) {
    conn->shed_txn = false;
    conn->in_txn = false;
    // Nothing of THIS transaction was staged (it was shed from its first
    // APPLY); the abort is defensive for any pre-shed leftovers.
    if (*session != nullptr) (void)(*session)->Abort();
    return Response::Retry("transaction shed");
  }

  // Everything below runs against the connection's session.
  if (*session == nullptr) {
    const uint64_t acquire_span =
        tracer != nullptr
            ? tracer->Open("session.acquire", tracer->root_span_id())
            : 0;
    auto acquired = pool_->Acquire();
    if (tracer != nullptr) tracer->Close(acquire_span);
    if (!acquired.ok()) {
      return Response::Error("session: " + acquired.status().ToString());
    }
    *session = std::move(*acquired);
  }
  service::Session* s = session->get();

  switch (req.type) {
    case ReqType::kApply: {
      Status st = s->Apply(req.update);
      if (st.ok()) conn->in_txn = true;
      return st.ok() ? Response::Ok() : Response::Error(st.ToString());
    }
    case ReqType::kCommit: {
      conn->in_txn = false;
      uint64_t commit_span = 0;
      if (tracer != nullptr) {
        // The session appends the queue/apply/seal/wake stage spans under
        // this one (Session::CommitTraced), so a committed transaction's
        // trace shows its whole path through the group-commit queue.
        commit_span = tracer->Open("commit.execute", tracer->root_span_id());
        s->set_trace(tracer, commit_span);
      }
      Status st = s->Commit();
      if (tracer != nullptr) {
        s->set_trace(nullptr, 0);
        tracer->Close(commit_span);
      }
      return st.ok() ? Response::Ok() : Response::Error(st.ToString());
    }
    case ReqType::kAbort: {
      conn->shed_txn = false;
      conn->in_txn = false;
      Status st = s->Abort();
      return st.ok() ? Response::Ok() : Response::Error(st.ToString());
    }
    case ReqType::kGetMod:
    case ReqType::kTraceBack:
    case ReqType::kGet:
      return ExecuteQuery(req.type, req.path, s, tracer);
    case ReqType::kExplain:
      return ExecuteQuery(req.explain_verb, req.path, s, tracer);
    default:
      return Response::Error("unhandled request type");
  }
}

Response Server::ExecuteQuery(ReqType verb, const tree::Path& path,
                              service::Session* s,
                              obs::SpanCollector* tracer) {
  const uint64_t parent =
      tracer != nullptr ? tracer->root_span_id() : 0;
  const uint64_t latch_span =
      tracer != nullptr ? tracer->Open("session.latch_wait", parent) : 0;
  auto guard = s->ReadLock();
  if (tracer != nullptr) tracer->Close(latch_span);

  uint64_t query_span = 0;
  relstore::CostSnapshot before;
  if (tracer != nullptr) {
    query_span = tracer->Open("query.execute", parent, path.ToString());
    before = s->cost().Snap();
    s->query()->set_tracer(tracer, query_span);
  }
  Response resp;
  switch (verb) {
    case ReqType::kGetMod: {
      auto mods = s->query()->GetMod(path);
      if (!mods.ok()) {
        resp = Response::Error(mods.status().ToString());
        break;
      }
      std::vector<int64_t> tids = std::move(*mods);
      std::sort(tids.begin(), tids.end());
      tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
      std::string body;
      EncodeTids(tids, &body);
      resp = Response::Ok(std::move(body));
      break;
    }
    case ReqType::kTraceBack: {
      auto traced = s->query()->TraceBack(path);
      if (!traced.ok()) {
        resp = Response::Error(traced.status().ToString());
        break;
      }
      std::string body;
      for (const auto& step : traced->steps) {
        body += "tid=" + std::to_string(step.tid);
        body += " op=";
        body.push_back(provenance::ProvOpChar(step.op));
        body += " loc=" + step.loc.ToString();
        if (step.op == provenance::ProvOp::kCopy) {
          body += " src=" + step.src.ToString();
        }
        body += "\n";
      }
      if (traced->origin_tid.has_value()) {
        body += "origin_tid=" + std::to_string(*traced->origin_tid) + "\n";
      }
      if (traced->external_src.has_value()) {
        body += "external_src=" + traced->external_src->ToString() +
                " external_tid=" + std::to_string(traced->external_tid) +
                "\n";
      }
      resp = Response::Ok(std::move(body));
      break;
    }
    case ReqType::kGet: {
      const tree::Tree* node = s->editor()->universe().Find(path);
      resp = node == nullptr ? Response::Ok("<absent>")
                             : Response::Ok(RenderCanonical(node));
      break;
    }
    default:
      resp = Response::Error("unhandled query verb");
      break;
  }
  if (tracer != nullptr) {
    s->query()->set_tracer(nullptr, 0);
    // The session CostModel is the modelled interaction cost (README
    // "Cost model"): the delta over this query is exactly what it
    // charged — rows fetched, backend calls (one per round trip), and
    // simulated micros.
    relstore::CostSnapshot after = s->cost().Snap();
    tracer->CloseWithCost(query_span,
                          static_cast<uint64_t>(after.rows - before.rows),
                          static_cast<uint64_t>(after.calls - before.calls),
                          after.micros - before.micros);
  }
  return resp;
}

std::string Server::StatsJson() { return engine_->metrics().RenderJson(); }

}  // namespace cpdb::net
