#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/result.h"

namespace cpdb::net {

/// Minimal plain-HTTP/1.1 sidecar serving `GET /metrics` so standard
/// Prometheus scrapers work against `cpdb_serve --metrics-port` without
/// speaking the cpdb frame protocol. This is a read-only OBSERVATION
/// port, deliberately separate from the data port: it exposes nothing
/// but the registry render, accepts one short request per connection,
/// and answers 404/405 to everything else.
///
/// By design it speaks raw read(2)/write(2), not the frame codec — the
/// NET-FRAMING lint rule confines the socket-verb framing API to
/// frame.cc, and this endpoint's whole purpose is to NOT use that
/// framing (see tools/lint/cpdb_lint.py).
///
/// One thread, blocking accept, serial connections: a scraper hits it
/// every few seconds; parallelism would be complexity without a client.
class MetricsHttpServer {
 public:
  /// Borrows `registry`; it must outlive the server.
  MetricsHttpServer(obs::Registry* registry, std::string host, int port)
      : registry_(registry), host_(std::move(host)), port_(port) {}
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and spawns the serving thread. Port 0 binds ephemeral
  /// (port() reports the real one).
  Status Start();

  /// Closes the listener and joins the thread. Idempotent.
  void Stop();

  int port() const { return port_; }

 private:
  void Loop();

  /// One request-response exchange on an accepted connection.
  void Serve(int fd);

  obs::Registry* const registry_;
  const std::string host_;
  int port_;
  int listen_fd_ = -1;
  /// Written by Stop(), read by the blocking-accept loop: closing the
  /// listener makes accept fail, and this flag marks it deliberate.
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace cpdb::net
