#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "service/engine.h"
#include "service/session.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace cpdb::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (port() reports the real one).
  int port = 0;
  /// Request-executing worker threads. Commits block in the group-commit
  /// queue, so this is also the maximum number of transactions combining
  /// into one cohort from the network side.
  size_t workers = 4;
  /// Admission control: APPLY/COMMIT requests are answered with a typed
  /// RETRY (not executed, not queued) while more than this many
  /// committers are already waiting in the engine's commit queue.
  size_t max_queue_depth = 64;
  /// Admission control: total bytes of parsed-but-unanswered requests the
  /// server holds across all connections. At the cap the event loop stops
  /// reading (TCP backpressure) instead of buffering without bound.
  size_t max_inflight_bytes = 8u << 20;
  /// Per-connection pipelining bound: parsed-but-unanswered requests on
  /// one connection before the loop stops reading from it.
  size_t max_conn_pending = 128;
  /// Per-connection response backlog before the loop stops reading from
  /// that connection (a client that sends but never reads cannot pin
  /// server memory).
  size_t max_conn_outbuf = 4u << 20;
};

/// The TCP front end over service::Engine (README "Network service").
///
/// One poll(2) event loop thread owns every socket: it accepts
/// connections, assembles frames (net/frame.h), and flushes responses; it
/// never executes a request, so a slow commit can never stall accepts or
/// other connections' IO. A small worker pool executes requests; each
/// connection's requests run in pipeline order on at most one worker at a
/// time, against a service::Session leased from the SessionPool for the
/// connection's lifetime (so APPLY...COMMIT sequences have the Editor's
/// usual transaction semantics, and concurrent connections' commits
/// combine into group-commit cohorts exactly like in-process sessions).
///
/// Overload behaves, it does not stall (ISSUE 7): a deep commit queue
/// gets typed RETRY answers, global in-flight bytes and per-connection
/// pipelining are bounded by reading no further (TCP backpressure), and a
/// framing violation (torn/oversized/bit-flipped frame) yields one typed
/// ERROR response followed by connection close — never a crash and never
/// a partially applied message.
///
/// Graceful drain (SIGTERM -> BeginDrain): stop accepting, stop reading,
/// finish every parsed request and flush its response, close connections,
/// checkpoint the store under the exclusive latch, and return from
/// Wait(). The owner then closes the Database, releasing the flock; a
/// restarted server recovers to exactly the drained state.
class Server {
 public:
  /// Borrows `engine` and `pool`; both must outlive the server.
  Server(service::Engine* engine, service::SessionPool* pool,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event loop and workers.
  Status Start();

  /// The bound TCP port (valid after Start()).
  int port() const { return port_; }

  /// Begins a graceful drain. Async-signal-safe (one write to the wakeup
  /// pipe), so a SIGTERM handler may call it directly. Idempotent.
  void BeginDrain();

  /// Blocks until the server has fully drained and all threads exited.
  void Wait();

  /// BeginDrain() + Wait().
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  struct Stats {
    uint64_t accepted = 0;      ///< connections accepted
    uint64_t closed = 0;        ///< connections closed
    uint64_t requests = 0;      ///< requests executed (all types)
    uint64_t retries = 0;       ///< APPLY/COMMIT shed with RETRY
    uint64_t bad_frames = 0;    ///< framing violations (CRC/length/varint)
    uint64_t bad_requests = 0;  ///< well-framed but undecodable requests
  };
  Stats stats() const CPDB_EXCLUDES(mu_);

 private:
  struct Conn;

  void EventLoop();
  void WorkerLoop();

  /// The tracing choke point every request goes through (the OBS-TRACE
  /// lint rule pins WorkerLoop to it): decides whether this request is
  /// collected — the client sampled it, it is an EXPLAIN, or the
  /// slow-query watch is armed for a read verb — and if so wraps
  /// Execute() in a root span ("server.<VERB>") under the request's
  /// TraceContext (minting a server-side trace id when the client sent
  /// none), then records the assembled span tree into the engine's
  /// SpanStore. EXPLAIN answers with the tree inline. Runs on a worker
  /// thread, no server mutex held.
  Response ExecuteTraced(Conn* conn, const Request& req,
                         std::unique_ptr<service::Session>* session);

  /// Executes one request against the connection's session; returns the
  /// response. `tracer` (nullable) collects per-stage child spans. Runs
  /// on a worker thread, no server mutex held.
  Response Execute(Conn* conn, const Request& req,
                   std::unique_ptr<service::Session>* session,
                   obs::SpanCollector* tracer);

  /// Shared body of the three read verbs and EXPLAIN: runs `verb` (one of
  /// kGetMod / kTraceBack / kGet) at `path` against `s`, tracing the
  /// latch wait and the query execution (rows / round trips / modelled
  /// micros snapshotted from the session's CostModel) when `tracer` is
  /// set.
  Response ExecuteQuery(ReqType verb, const tree::Path& path,
                        service::Session* s, obs::SpanCollector* tracer);

  /// Parses newly read bytes of `conn` into pending requests; handles
  /// framing violations. Called from the event loop with mu_ held.
  void ParseFrames(Conn* conn) CPDB_REQUIRES(mu_);

  /// True while the loop should keep POLLIN interest on `conn`.
  bool WantRead(const Conn& conn) const CPDB_REQUIRES(mu_);

  /// Wakes the event loop (one byte down the self-pipe).
  void WakeLoop();

  /// Registers the server's scrape-time callbacks (connection/request
  /// totals, pool counters, in-flight bytes) and the per-verb latency
  /// histograms into the ENGINE's registry — one registry per engine is
  /// the whole point, so `STATS`, `METRICS`, and `/metrics` all read the
  /// same objects. Runs in Start(), before any worker exists; callbacks
  /// re-registered by a later Server replace this one's.
  void RegisterMetrics();

  /// Renders the flat stats object from the engine registry. The field
  /// names are the OPERATOR_GUIDE contract; they live in the registry's
  /// json_key column now, so STATS cannot drift from METRICS.
  std::string StatsJson();

  service::Engine* engine_;
  service::SessionPool* pool_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  std::thread loop_;
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  /// Per-verb request latency sinks, indexed by raw ReqType. Filled in
  /// RegisterMetrics() before the workers start; read-only after.
  std::array<obs::Histogram*, static_cast<size_t>(ReqType::kExplain) + 1>
      verb_us_{};

  mutable Mutex mu_;
  CondVar work_cv_;
  /// Connections with pending requests and no worker yet.
  std::deque<Conn*> work_ CPDB_GUARDED_BY(mu_);
  bool stop_workers_ CPDB_GUARDED_BY(mu_) = false;
  size_t inflight_bytes_ CPDB_GUARDED_BY(mu_) = 0;
  Stats stats_ CPDB_GUARDED_BY(mu_);

  /// fd -> connection; owned and touched only by the event loop thread
  /// (workers reach connections exclusively through work_).
  std::map<int, std::unique_ptr<Conn>> conns_;
};

}  // namespace cpdb::net
