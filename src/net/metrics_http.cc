#include "net/metrics_http.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cpdb::net {

namespace {

/// Writes all of `data`, retrying short writes. Best-effort: a scraper
/// that hangs up mid-response is its own problem.
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void Respond(int fd, const char* status_line, const std::string& content_type,
             const std::string& body) {
  std::string resp = "HTTP/1.1 ";
  resp += status_line;
  resp += "\r\nContent-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: ";
  resp += std::to_string(body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  resp += body;
  WriteAll(fd, resp);
}

}  // namespace

Status MetricsHttpServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad metrics host " + host_);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::Internal(std::string("bind metrics port: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() unblocks a pending accept(2) even on Linux, where close()
  // alone would leave the thread parked until the next connection.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) return;
      // Transient accept failure (e.g. EMFILE): back off rather than spin.
      ::poll(nullptr, 0, 50);
      continue;
    }
    Serve(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::Serve(int fd) {
  // A scraper that connects and then stalls must not wedge the loop. The
  // send timeout bounds the response write; the read side is bounded by
  // an overall poll(2) deadline below — a kernel receive timeout alone
  // resets on every dribbled byte, so a slow-loris peer could hold the
  // (serial) accept loop far past any per-read budget.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  // Read until the end of the request head under one total deadline; the
  // request line is all we route on, so cap the read and ignore any body.
  constexpr double kTotalDeadlineUs = 2e6;
  constexpr size_t kMaxHead = 16 * 1024;
  constexpr size_t kMaxRequestLine = 4 * 1024;
  const double deadline_us = obs::NowMicros() + kTotalDeadlineUs;
  std::string head;
  char buf[2048];
  while (head.size() < kMaxHead &&
         head.find("\r\n\r\n") == std::string::npos) {
    const double left_us = deadline_us - obs::NowMicros();
    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1,
                    left_us > 0 ? static_cast<int>(left_us / 1000) + 1 : 0);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      // Deadline expired mid-request. Answer only if the request line
      // arrived; a silent half-open connection gets a silent close.
      if (head.find("\r\n") == std::string::npos) {
        if (!head.empty()) {
          Respond(fd, "408 Request Timeout", "text/plain",
                  "request head timed out\n");
        }
        return;
      }
      break;  // head already has the request line; route on it
    }
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (head.find("\r\n") == std::string::npos) return;
      break;
    }
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n") == std::string::npos &&
        head.size() > kMaxRequestLine) {
      Respond(fd, "431 Request Header Fields Too Large", "text/plain",
              "request line too long\n");
      return;
    }
  }

  const size_t eol = head.find("\r\n");
  if (eol == std::string::npos && head.size() >= kMaxHead) {
    Respond(fd, "431 Request Header Fields Too Large", "text/plain",
            "request line too long\n");
    return;
  }
  const std::string line = eol == std::string::npos ? head : head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    Respond(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    Respond(fd, "405 Method Not Allowed", "text/plain",
            "only GET is supported\n");
    return;
  }
  if (target != "/metrics") {
    Respond(fd, "404 Not Found", "text/plain", "try /metrics\n");
    return;
  }
  Respond(fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
          registry_->RenderPrometheus());
}

}  // namespace cpdb::net
