#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tree/path.h"
#include "update/update.h"
#include "util/result.h"

namespace cpdb::net {

// The request/response vocabulary of the network service — what rides
// inside each frame (net/frame.h). All field coding uses the shared
// varint/length-prefixed helpers (util/crc32.h), so the wire format obeys
// the same discipline as the WAL and checkpoint files.
//
// Protocol grammar (README "Network service"):
//
//   frame    ::= varint(len) crc32 payload
//   request  ::= type:varint body
//   body     ::= APPLY update | GETMOD path | TRACEBACK path | GET path
//              | COMMIT | ABORT | PING | STATS | CHECKPOINT | DRAIN
//              | METRICS | SLOWLOG
//   update   ::= kind:varint lp(target) lp(label) value lp(source)
//   value    ::= 0 | 1 | 2 zigzag | 3 f64le | 4 lp(bytes)
//   response ::= code:varint lp(body)
//
// Transactions are per connection and implicit: the first APPLY after a
// COMMIT/ABORT begins the next transaction (exactly the Editor's model).

enum class ReqType : uint8_t {
  kPing = 1,
  kApply = 2,       ///< stage (T/HT) or group-commit (N/H) one update
  kCommit = 3,      ///< commit the staged transaction through the engine
  kAbort = 4,       ///< discard the staged transaction
  kGetMod = 5,      ///< Mod(p): tids that modified the subtree under p
  kTraceBack = 6,   ///< full backwards provenance walk from p
  kGet = 7,         ///< current subtree at p in this session's snapshot
  kStats = 8,       ///< admin: server/engine counters as JSON text
  kCheckpoint = 9,  ///< admin: checkpoint the store under the latch
  kDrain = 10,      ///< admin: begin graceful drain (like SIGTERM)
  kMetrics = 11,    ///< admin: full registry, Prometheus text exposition
  kSlowLog = 12,    ///< admin: recent slow-commit spans as JSON
};

const char* ReqTypeName(ReqType t);

/// Response status. kRetry and kDraining are *typed overload answers*:
/// the request was not executed and the client should back off and retry
/// (kRetry) or move to another endpoint (kDraining) — the server sheds
/// load instead of stalling the event loop.
enum class RespCode : uint8_t {
  kOk = 0,
  kError = 1,     ///< request executed or parsed with an error; body = status text
  kRetry = 2,     ///< shed by admission control; retry after backoff
  kDraining = 3,  ///< server is draining; no new work accepted
};

const char* RespCodeName(RespCode c);

struct Request {
  ReqType type = ReqType::kPing;
  update::Update update;  ///< kApply
  tree::Path path;        ///< kGetMod / kTraceBack / kGet

  static Request Ping() { return Request{ReqType::kPing, {}, {}}; }
  static Request Apply(update::Update u) {
    return Request{ReqType::kApply, std::move(u), {}};
  }
  static Request Commit() { return Request{ReqType::kCommit, {}, {}}; }
  static Request Abort() { return Request{ReqType::kAbort, {}, {}}; }
  static Request GetMod(tree::Path p) {
    return Request{ReqType::kGetMod, {}, std::move(p)};
  }
  static Request TraceBack(tree::Path p) {
    return Request{ReqType::kTraceBack, {}, std::move(p)};
  }
  static Request Get(tree::Path p) {
    return Request{ReqType::kGet, {}, std::move(p)};
  }
  static Request Stats() { return Request{ReqType::kStats, {}, {}}; }
  static Request Checkpoint() { return Request{ReqType::kCheckpoint, {}, {}}; }
  static Request Drain() { return Request{ReqType::kDrain, {}, {}}; }
  static Request Metrics() { return Request{ReqType::kMetrics, {}, {}}; }
  static Request SlowLog() { return Request{ReqType::kSlowLog, {}, {}}; }
};

struct Response {
  RespCode code = RespCode::kOk;
  /// kOk: result payload (type-specific; see EncodeTids/DecodeTids for
  /// kGetMod, text for kStats/kTraceBack/kGet). Otherwise: the error text.
  std::string body;

  static Response Ok(std::string body = "") {
    return Response{RespCode::kOk, std::move(body)};
  }
  static Response Error(std::string msg) {
    return Response{RespCode::kError, std::move(msg)};
  }
  static Response Retry(std::string msg) {
    return Response{RespCode::kRetry, std::move(msg)};
  }
  static Response Draining(std::string msg) {
    return Response{RespCode::kDraining, std::move(msg)};
  }
};

// Frame payload codecs. Decoders are strict: trailing bytes, truncated
// fields, or out-of-range tags fail (the robustness tests bit-flip these).
void EncodeRequest(const Request& req, std::string* out);
Result<Request> DecodeRequest(const std::string& in);
void EncodeResponse(const Response& resp, std::string* out);
Result<Response> DecodeResponse(const std::string& in);

/// GetMod result coding: varint count, then each tid as a varint delta
/// from the previous (tids are reported sorted ascending).
void EncodeTids(const std::vector<int64_t>& tids, std::string* out);
Result<std::vector<int64_t>> DecodeTids(const std::string& in);

}  // namespace cpdb::net
