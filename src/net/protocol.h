#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "tree/path.h"
#include "update/update.h"
#include "util/result.h"

namespace cpdb::net {

// The request/response vocabulary of the network service — what rides
// inside each frame (net/frame.h). All field coding uses the shared
// varint/length-prefixed helpers (util/crc32.h), so the wire format obeys
// the same discipline as the WAL and checkpoint files.
//
// Protocol grammar (README "Network service"):
//
//   frame    ::= varint(len) crc32 payload
//   request  ::= tag:varint [trace] body
//   tag      ::= type | 0x80 when a trace context follows
//   trace    ::= varint(trace_id) varint(parent_span_id) sampled:byte
//   body     ::= APPLY update | GETMOD path | TRACEBACK path | GET path
//              | EXPLAIN verb:varint lp(path)
//              | COMMIT | ABORT | PING | STATS | CHECKPOINT | DRAIN
//              | METRICS | SLOWLOG | TRACES
//   update   ::= kind:varint lp(target) lp(label) value lp(source)
//   value    ::= 0 | 1 | 2 zigzag | 3 f64le | 4 lp(bytes)
//   response ::= code:varint lp(body)
//
// The trace context is optional on EVERY verb (the 0x80 tag bit): a
// sampling client stamps it on the requests it wants traced, the server
// opens a span tree under that trace id (obs::SpanCollector), and the
// TRACES/EXPLAIN verbs read the assembled trees back. trace_id must be
// nonzero (zero means "absent" everywhere else in the tracing layer).
//
// Transactions are per connection and implicit: the first APPLY after a
// COMMIT/ABORT begins the next transaction (exactly the Editor's model).

enum class ReqType : uint8_t {
  kPing = 1,
  kApply = 2,       ///< stage (T/HT) or group-commit (N/H) one update
  kCommit = 3,      ///< commit the staged transaction through the engine
  kAbort = 4,       ///< discard the staged transaction
  kGetMod = 5,      ///< Mod(p): tids that modified the subtree under p
  kTraceBack = 6,   ///< full backwards provenance walk from p
  kGet = 7,         ///< current subtree at p in this session's snapshot
  kStats = 8,       ///< admin: server/engine counters as JSON text
  kCheckpoint = 9,  ///< admin: checkpoint the store under the latch
  kDrain = 10,      ///< admin: begin graceful drain (like SIGTERM)
  kMetrics = 11,    ///< admin: full registry, Prometheus text exposition
  kSlowLog = 12,    ///< admin: recent slow-commit spans as JSON
  kTraces = 13,     ///< admin: assembled trace trees as JSON
  kExplain = 14,    ///< run a GETMOD/TRACEBACK/GET, return its span tree
};

const char* ReqTypeName(ReqType t);

/// Response status. kRetry and kDraining are *typed overload answers*:
/// the request was not executed and the client should back off and retry
/// (kRetry) or move to another endpoint (kDraining) — the server sheds
/// load instead of stalling the event loop.
enum class RespCode : uint8_t {
  kOk = 0,
  kError = 1,     ///< request executed or parsed with an error; body = status text
  kRetry = 2,     ///< shed by admission control; retry after backoff
  kDraining = 3,  ///< server is draining; no new work accepted
};

const char* RespCodeName(RespCode c);

struct Request {
  ReqType type = ReqType::kPing;
  update::Update update;  ///< kApply
  tree::Path path;        ///< kGetMod / kTraceBack / kGet / kExplain
  /// Optional (trace.valid() == carried on the wire): the tracing
  /// identity the server's span tree is recorded under.
  obs::TraceContext trace;
  /// kExplain only: which query verb to run and explain (one of
  /// kGetMod / kTraceBack / kGet).
  ReqType explain_verb = ReqType::kGetMod;

  static Request Of(ReqType t) {
    Request req;
    req.type = t;
    return req;
  }
  static Request Ping() { return Of(ReqType::kPing); }
  static Request Apply(update::Update u) {
    Request req = Of(ReqType::kApply);
    req.update = std::move(u);
    return req;
  }
  static Request Commit() { return Of(ReqType::kCommit); }
  static Request Abort() { return Of(ReqType::kAbort); }
  static Request GetMod(tree::Path p) {
    Request req = Of(ReqType::kGetMod);
    req.path = std::move(p);
    return req;
  }
  static Request TraceBack(tree::Path p) {
    Request req = Of(ReqType::kTraceBack);
    req.path = std::move(p);
    return req;
  }
  static Request Get(tree::Path p) {
    Request req = Of(ReqType::kGet);
    req.path = std::move(p);
    return req;
  }
  static Request Stats() { return Of(ReqType::kStats); }
  static Request Checkpoint() { return Of(ReqType::kCheckpoint); }
  static Request Drain() { return Of(ReqType::kDrain); }
  static Request Metrics() { return Of(ReqType::kMetrics); }
  static Request SlowLog() { return Of(ReqType::kSlowLog); }
  static Request Traces() { return Of(ReqType::kTraces); }
  static Request Explain(ReqType verb, tree::Path p) {
    Request req = Of(ReqType::kExplain);
    req.explain_verb = verb;
    req.path = std::move(p);
    return req;
  }
};

struct Response {
  RespCode code = RespCode::kOk;
  /// kOk: result payload (type-specific; see EncodeTids/DecodeTids for
  /// kGetMod, text for kStats/kTraceBack/kGet). Otherwise: the error text.
  std::string body;

  static Response Ok(std::string body = "") {
    return Response{RespCode::kOk, std::move(body)};
  }
  static Response Error(std::string msg) {
    return Response{RespCode::kError, std::move(msg)};
  }
  static Response Retry(std::string msg) {
    return Response{RespCode::kRetry, std::move(msg)};
  }
  static Response Draining(std::string msg) {
    return Response{RespCode::kDraining, std::move(msg)};
  }
};

// Frame payload codecs. Decoders are strict: trailing bytes, truncated
// fields, or out-of-range tags fail (the robustness tests bit-flip these).
void EncodeRequest(const Request& req, std::string* out);
Result<Request> DecodeRequest(const std::string& in);
void EncodeResponse(const Response& resp, std::string* out);
Result<Response> DecodeResponse(const std::string& in);

/// GetMod result coding: varint count, then each tid as a varint delta
/// from the previous (tids are reported sorted ascending).
void EncodeTids(const std::vector<int64_t>& tids, std::string* out);
Result<std::vector<int64_t>> DecodeTids(const std::string& in);

}  // namespace cpdb::net
