#include "net/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cpdb::net {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, deterministic — trace ids and
/// backoff jitter both want "different every time, same every run".
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void SleepMs(uint64_t ms) {
  if (ms == 0) return;
  ::poll(nullptr, 0, static_cast<int>(ms));
}

}  // namespace

uint64_t RetryBackoffMs(const RetryPolicy& policy, size_t attempt,
                        uint64_t salt) {
  if (attempt == 0) attempt = 1;
  // Capped exponential: base * 2^(attempt-1), saturating well before the
  // shift could overflow.
  uint64_t ms = policy.base_backoff_ms;
  for (size_t i = 1; i < attempt && ms < policy.max_backoff_ms; ++i) ms *= 2;
  if (ms > policy.max_backoff_ms) ms = policy.max_backoff_ms;
  // +/-25% deterministic jitter so shed clients don't retry in lockstep.
  uint64_t h = Mix64(policy.jitter_seed ^ Mix64(salt ^ attempt));
  uint64_t quarter = ms / 4;
  if (quarter > 0) ms = ms - quarter + h % (2 * quarter + 1);
  return ms;
}

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  reader_ = FrameReader();
  inflight_ = 0;
  host_ = host;
  port_ = port;
  return Status::OK();
}

Status Client::Reconnect() {
  if (host_.empty()) return Status::FailedPrecondition("never connected");
  return Connect(host_, port_);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inflight_ = 0;
  // A torn partial frame (or a poisoned reader) from the old transport
  // must not bleed into the next connection's stream.
  reader_ = FrameReader{};
}

bool Client::Traceable(ReqType t) {
  switch (t) {
    case ReqType::kGetMod:
    case ReqType::kTraceBack:
    case ReqType::kGet:
    case ReqType::kCommit:
      return true;
    default:
      return false;
  }
}

Status Client::Send(const Request& req) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string payload;
  bool encoded = false;
  if (trace_every_n_ > 0 && Traceable(req.type) && !req.trace.valid()) {
    if (++trace_seq_ % trace_every_n_ == 0) {
      Request stamped = req;
      // Clear the high bit — that space is the server's (MintTraceId) —
      // and keep the id nonzero (zero means "no trace" on the wire).
      uint64_t id = Mix64(trace_seed_ ^ Mix64(trace_seq_)) &
                    ~(uint64_t{1} << 63);
      if (id == 0) id = 1;
      stamped.trace.trace_id = id;
      stamped.trace.parent_span_id = 0;
      stamped.trace.sampled = true;
      last_trace_id_ = id;
      EncodeRequest(stamped, &payload);
      encoded = true;
    }
  }
  if (!encoded) EncodeRequest(req, &payload);
  Status st = WriteFrame(fd_, payload);
  if (st.ok()) ++inflight_;
  return st;
}

Result<Response> Client::Recv() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (inflight_ == 0) {
    return Status::FailedPrecondition("no request in flight");
  }
  std::string payload;
  CPDB_RETURN_IF_ERROR(ReadFrame(fd_, &reader_, &payload));
  --inflight_;
  return DecodeResponse(payload);
}

Result<Response> Client::Call(const Request& req) {
  CPDB_RETURN_IF_ERROR(Send(req));
  return Recv();
}

Result<Response> Client::CallRetrying(const Request& req,
                                      const RetryPolicy& policy,
                                      size_t* retries) {
  const uint64_t salt = static_cast<uint64_t>(req.type);
  for (size_t attempt = 1;; ++attempt) {
    Result<Response> got = connected()
                               ? Call(req)
                               : Result<Response>(Status::Unavailable(
                                     "not connected"));
    if (got.ok()) {
      if (got->code != RespCode::kRetry) return got;  // OK/ERROR/DRAINING
      if (attempt >= policy.max_attempts) return got;
    } else {
      // Transport broke. Re-dial; if even that fails, the endpoint is
      // gone — report the original error.
      if (attempt >= policy.max_attempts) return got;
      if (!Reconnect().ok()) return got;
    }
    if (retries != nullptr) ++*retries;
    SleepMs(RetryBackoffMs(policy, attempt, salt));
  }
}

Status Client::ToStatus(const Response& resp) {
  switch (resp.code) {
    case RespCode::kOk:
      return Status::OK();
    case RespCode::kRetry:
      return Status::Unavailable("RETRY: " + resp.body);
    case RespCode::kDraining:
      return Status::Unavailable("DRAINING: " + resp.body);
    case RespCode::kError:
      return Status::Internal(resp.body);
  }
  return Status::Internal("bad response code");
}

Status Client::Ping() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Ping()));
  return ToStatus(resp);
}

Status Client::Apply(const update::Update& u) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Apply(u)));
  return ToStatus(resp);
}

Status Client::Commit() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Commit()));
  return ToStatus(resp);
}

Status Client::Abort() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Abort()));
  return ToStatus(resp);
}

Result<std::vector<int64_t>> Client::GetMod(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::GetMod(p)));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return DecodeTids(resp.body);
}

Result<std::string> Client::TraceBack(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::TraceBack(p)));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Get(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Get(p)));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Stats() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Stats()));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Metrics() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Metrics()));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::SlowLog() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::SlowLog()));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Traces() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Traces()));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Explain(ReqType verb, const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Explain(verb, p)));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Status Client::Checkpoint() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Checkpoint()));
  return ToStatus(resp);
}

Status Client::Drain() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Drain()));
  return ToStatus(resp);
}

}  // namespace cpdb::net
