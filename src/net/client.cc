#include "net/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cpdb::net {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  reader_ = FrameReader();
  inflight_ = 0;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inflight_ = 0;
}

Status Client::Send(const Request& req) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string payload;
  EncodeRequest(req, &payload);
  Status st = WriteFrame(fd_, payload);
  if (st.ok()) ++inflight_;
  return st;
}

Result<Response> Client::Recv() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (inflight_ == 0) {
    return Status::FailedPrecondition("no request in flight");
  }
  std::string payload;
  CPDB_RETURN_IF_ERROR(ReadFrame(fd_, &reader_, &payload));
  --inflight_;
  return DecodeResponse(payload);
}

Result<Response> Client::Call(const Request& req) {
  CPDB_RETURN_IF_ERROR(Send(req));
  return Recv();
}

Status Client::ToStatus(const Response& resp) {
  switch (resp.code) {
    case RespCode::kOk:
      return Status::OK();
    case RespCode::kRetry:
      return Status::Unavailable("RETRY: " + resp.body);
    case RespCode::kDraining:
      return Status::Unavailable("DRAINING: " + resp.body);
    case RespCode::kError:
      return Status::Internal(resp.body);
  }
  return Status::Internal("bad response code");
}

Status Client::Ping() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Ping()));
  return ToStatus(resp);
}

Status Client::Apply(const update::Update& u) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Apply(u)));
  return ToStatus(resp);
}

Status Client::Commit() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Commit()));
  return ToStatus(resp);
}

Status Client::Abort() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Abort()));
  return ToStatus(resp);
}

Result<std::vector<int64_t>> Client::GetMod(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::GetMod(p)));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return DecodeTids(resp.body);
}

Result<std::string> Client::TraceBack(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::TraceBack(p)));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Get(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Get(p)));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Stats() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Stats()));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::Metrics() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Metrics()));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Result<std::string> Client::SlowLog() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::SlowLog()));
  CPDB_RETURN_IF_ERROR(ToStatus(resp));
  return std::move(resp.body);
}

Status Client::Checkpoint() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Checkpoint()));
  return ToStatus(resp);
}

Status Client::Drain() {
  CPDB_ASSIGN_OR_RETURN(Response resp, Call(Request::Drain()));
  return ToStatus(resp);
}

}  // namespace cpdb::net
