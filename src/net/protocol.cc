#include "net/protocol.h"

#include <cstring>

#include "util/crc32.h"

namespace cpdb::net {

namespace {

// Value coding tags (see the grammar in protocol.h).
constexpr uint8_t kValAbsent = 0;  ///< no payload: insert of the empty tree
constexpr uint8_t kValNull = 1;
constexpr uint8_t kValInt = 2;
constexpr uint8_t kValDouble = 3;
constexpr uint8_t kValString = 4;

/// Request-tag flag bit: a TraceContext follows the tag (protocol.h
/// grammar). Request types stay in the low 7 bits.
constexpr uint64_t kTraceFlag = 0x80;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void EncodeValue(const std::optional<tree::Value>& v, std::string* out) {
  if (!v.has_value()) {
    out->push_back(static_cast<char>(kValAbsent));
    return;
  }
  if (v->is_null()) {
    out->push_back(static_cast<char>(kValNull));
  } else if (v->is_int()) {
    out->push_back(static_cast<char>(kValInt));
    PutVarint64(out, ZigZag(v->AsInt()));
  } else if (v->is_double()) {
    out->push_back(static_cast<char>(kValDouble));
    uint64_t bits;
    double d = v->AsDouble();
    std::memcpy(&bits, &d, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
    }
  } else {
    out->push_back(static_cast<char>(kValString));
    PutLengthPrefixed(out, v->AsString());
  }
}

bool DecodeValue(const std::string& in, size_t* pos,
                 std::optional<tree::Value>* out) {
  if (*pos >= in.size()) return false;
  uint8_t tag = static_cast<uint8_t>(in[*pos]);
  ++*pos;
  switch (tag) {
    case kValAbsent:
      out->reset();
      return true;
    case kValNull:
      *out = tree::Value();
      return true;
    case kValInt: {
      uint64_t z;
      if (!GetVarint64(in, pos, &z)) return false;
      *out = tree::Value(UnZigZag(z));
      return true;
    }
    case kValDouble: {
      if (*pos + 8 > in.size()) return false;
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
                << (8 * i);
      }
      *pos += 8;
      double d;
      std::memcpy(&d, &bits, sizeof d);
      *out = tree::Value(d);
      return true;
    }
    case kValString: {
      std::string s;
      if (!GetLengthPrefixed(in, pos, &s)) return false;
      *out = tree::Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

bool DecodePath(const std::string& in, size_t* pos, tree::Path* out) {
  std::string text;
  if (!GetLengthPrefixed(in, pos, &text)) return false;
  if (text.empty()) {
    *out = tree::Path();
    return true;
  }
  auto parsed = tree::Path::Parse(text);
  if (!parsed.ok()) return false;
  *out = std::move(parsed).value();
  return true;
}

}  // namespace

const char* ReqTypeName(ReqType t) {
  switch (t) {
    case ReqType::kPing:
      return "PING";
    case ReqType::kApply:
      return "APPLY";
    case ReqType::kCommit:
      return "COMMIT";
    case ReqType::kAbort:
      return "ABORT";
    case ReqType::kGetMod:
      return "GETMOD";
    case ReqType::kTraceBack:
      return "TRACEBACK";
    case ReqType::kGet:
      return "GET";
    case ReqType::kStats:
      return "STATS";
    case ReqType::kCheckpoint:
      return "CHECKPOINT";
    case ReqType::kDrain:
      return "DRAIN";
    case ReqType::kMetrics:
      return "METRICS";
    case ReqType::kSlowLog:
      return "SLOWLOG";
    case ReqType::kTraces:
      return "TRACES";
    case ReqType::kExplain:
      return "EXPLAIN";
  }
  return "?";
}

const char* RespCodeName(RespCode c) {
  switch (c) {
    case RespCode::kOk:
      return "OK";
    case RespCode::kError:
      return "ERROR";
    case RespCode::kRetry:
      return "RETRY";
    case RespCode::kDraining:
      return "DRAINING";
  }
  return "?";
}

void EncodeRequest(const Request& req, std::string* out) {
  uint64_t tag = static_cast<uint64_t>(req.type);
  if (req.trace.valid()) tag |= kTraceFlag;
  PutVarint64(out, tag);
  if (req.trace.valid()) {
    PutVarint64(out, req.trace.trace_id);
    PutVarint64(out, req.trace.parent_span_id);
    out->push_back(req.trace.sampled ? '\x01' : '\x00');
  }
  switch (req.type) {
    case ReqType::kApply:
      PutVarint64(out, static_cast<uint64_t>(req.update.kind));
      PutLengthPrefixed(out, req.update.target.ToString());
      PutLengthPrefixed(out, req.update.label);
      EncodeValue(req.update.value, out);
      PutLengthPrefixed(out, req.update.source.ToString());
      break;
    case ReqType::kGetMod:
    case ReqType::kTraceBack:
    case ReqType::kGet:
      PutLengthPrefixed(out, req.path.ToString());
      break;
    case ReqType::kExplain:
      PutVarint64(out, static_cast<uint64_t>(req.explain_verb));
      PutLengthPrefixed(out, req.path.ToString());
      break;
    default:
      break;  // no body
  }
}

Result<Request> DecodeRequest(const std::string& in) {
  size_t pos = 0;
  uint64_t tag;
  if (!GetVarint64(in, &pos, &tag)) {
    return Status::InvalidArgument("request: truncated type");
  }
  const bool has_trace = (tag & kTraceFlag) != 0;
  const uint64_t type = tag & ~kTraceFlag;
  if (type < static_cast<uint64_t>(ReqType::kPing) ||
      type > static_cast<uint64_t>(ReqType::kExplain)) {
    return Status::InvalidArgument("request: unknown type " +
                                   std::to_string(type));
  }
  Request req;
  req.type = static_cast<ReqType>(type);
  if (has_trace) {
    if (!GetVarint64(in, &pos, &req.trace.trace_id) ||
        !GetVarint64(in, &pos, &req.trace.parent_span_id)) {
      return Status::InvalidArgument("request: truncated trace context");
    }
    if (req.trace.trace_id == 0) {
      return Status::InvalidArgument("request: zero trace id");
    }
    if (pos >= in.size() ||
        static_cast<uint8_t>(in[pos]) > 1) {
      return Status::InvalidArgument("request: bad trace sampled flag");
    }
    req.trace.sampled = in[pos] == '\x01';
    ++pos;
  }
  switch (req.type) {
    case ReqType::kApply: {
      uint64_t kind;
      if (!GetVarint64(in, &pos, &kind) ||
          kind > static_cast<uint64_t>(update::OpKind::kCopy)) {
        return Status::InvalidArgument("APPLY: bad op kind");
      }
      req.update.kind = static_cast<update::OpKind>(kind);
      if (!DecodePath(in, &pos, &req.update.target)) {
        return Status::InvalidArgument("APPLY: bad target path");
      }
      if (!GetLengthPrefixed(in, &pos, &req.update.label)) {
        return Status::InvalidArgument("APPLY: bad label");
      }
      if (!DecodeValue(in, &pos, &req.update.value)) {
        return Status::InvalidArgument("APPLY: bad value");
      }
      if (!DecodePath(in, &pos, &req.update.source)) {
        return Status::InvalidArgument("APPLY: bad source path");
      }
      break;
    }
    case ReqType::kGetMod:
    case ReqType::kTraceBack:
    case ReqType::kGet:
      if (!DecodePath(in, &pos, &req.path)) {
        return Status::InvalidArgument(std::string(ReqTypeName(req.type)) +
                                       ": bad path");
      }
      break;
    case ReqType::kExplain: {
      uint64_t verb;
      if (!GetVarint64(in, &pos, &verb) ||
          (verb != static_cast<uint64_t>(ReqType::kGetMod) &&
           verb != static_cast<uint64_t>(ReqType::kTraceBack) &&
           verb != static_cast<uint64_t>(ReqType::kGet))) {
        return Status::InvalidArgument("EXPLAIN: bad verb");
      }
      req.explain_verb = static_cast<ReqType>(verb);
      if (!DecodePath(in, &pos, &req.path)) {
        return Status::InvalidArgument("EXPLAIN: bad path");
      }
      break;
    }
    default:
      break;
  }
  if (pos != in.size()) {
    return Status::InvalidArgument("request: trailing bytes");
  }
  return req;
}

void EncodeResponse(const Response& resp, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(resp.code));
  PutLengthPrefixed(out, resp.body);
}

Result<Response> DecodeResponse(const std::string& in) {
  size_t pos = 0;
  uint64_t code;
  if (!GetVarint64(in, &pos, &code)) {
    return Status::InvalidArgument("response: truncated code");
  }
  if (code > static_cast<uint64_t>(RespCode::kDraining)) {
    return Status::InvalidArgument("response: unknown code " +
                                   std::to_string(code));
  }
  Response resp;
  resp.code = static_cast<RespCode>(code);
  if (!GetLengthPrefixed(in, &pos, &resp.body)) {
    return Status::InvalidArgument("response: truncated body");
  }
  if (pos != in.size()) {
    return Status::InvalidArgument("response: trailing bytes");
  }
  return resp;
}

void EncodeTids(const std::vector<int64_t>& tids, std::string* out) {
  PutVarint64(out, tids.size());
  int64_t prev = 0;
  for (int64_t tid : tids) {
    PutVarint64(out, ZigZag(tid - prev));
    prev = tid;
  }
}

Result<std::vector<int64_t>> DecodeTids(const std::string& in) {
  size_t pos = 0;
  uint64_t n;
  if (!GetVarint64(in, &pos, &n)) {
    return Status::InvalidArgument("tids: truncated count");
  }
  std::vector<int64_t> tids;
  tids.reserve(n);
  int64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t z;
    if (!GetVarint64(in, &pos, &z)) {
      return Status::InvalidArgument("tids: truncated entry");
    }
    prev += UnZigZag(z);
    tids.push_back(prev);
  }
  if (pos != in.size()) return Status::InvalidArgument("tids: trailing bytes");
  return tids;
}

}  // namespace cpdb::net
