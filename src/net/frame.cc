#include "net/frame.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/crc32.h"

namespace cpdb::net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const std::string& in, size_t pos) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[pos])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[pos + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[pos + 2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[pos + 3])) << 24;
}

}  // namespace

void EncodeFrame(const std::string& payload, std::string* out) {
  out->reserve(out->size() + payload.size() + kMaxVarint64Bytes + 4);
  PutVarint64(out, payload.size());
  PutU32(out, Crc32(payload));
  out->append(payload);
}

FrameReader::Event FrameReader::Next(std::string* payload) {
  if (poisoned_) return poison_event_;
  // Compact lazily so pathological pipelining cannot grow buf_ forever.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10) && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  size_t p = pos_;
  uint64_t len;
  if (!GetVarint64(buf_, &p, &len)) {
    // A varint never spans more than kMaxVarint64Bytes: if that many
    // bytes are buffered and it still does not parse, the prefix is
    // garbage, not a short read.
    if (buf_.size() - pos_ >= kMaxVarint64Bytes) {
      poisoned_ = true;
      poison_event_ = Event::kMalformed;
      return poison_event_;
    }
    return Event::kNeedMore;
  }
  if (len > kMaxFramePayload) {
    poisoned_ = true;
    poison_event_ = Event::kTooLarge;
    return poison_event_;
  }
  if (buf_.size() - p < 4 + len) return Event::kNeedMore;
  uint32_t crc = GetU32(buf_, p);
  p += 4;
  payload->assign(buf_, p, len);
  if (Crc32(*payload) != crc) {
    poisoned_ = true;
    poison_event_ = Event::kBadCrc;
    return poison_event_;
  }
  pos_ = p + len;
  return Event::kFrame;
}

Status WriteFrame(int fd, const std::string& payload) {
  std::string frame;
  EncodeFrame(payload, &frame);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection");
      }
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFrame(int fd, FrameReader* reader, std::string* payload) {
  for (;;) {
    switch (reader->Next(payload)) {
      case FrameReader::Event::kFrame:
        return Status::OK();
      case FrameReader::Event::kBadCrc:
        return Status::InvalidArgument("frame payload failed CRC check");
      case FrameReader::Event::kTooLarge:
        return Status::InvalidArgument("frame length exceeds the limit");
      case FrameReader::Event::kMalformed:
        return Status::InvalidArgument("frame length prefix is malformed");
      case FrameReader::Event::kNeedMore:
        break;
    }
    char buf[16384];
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return Status::Unavailable("connection closed mid-frame");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection reset mid-frame");
      }
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    reader->Append(buf, static_cast<size_t>(n));
  }
}

Status ReadAvailable(int fd, FrameReader* reader, size_t* n_read, bool* eof) {
  *n_read = 0;
  *eof = false;
  char buf[16384];
  ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  if (n == 0) {
    *eof = true;
    return Status::OK();
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status::OK();
    }
    if (errno == ECONNRESET) {
      *eof = true;
      return Status::OK();
    }
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  reader->Append(buf, static_cast<size_t>(n));
  *n_read = static_cast<size_t>(n);
  return Status::OK();
}

Status WriteRaw(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection");
      }
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteAvailable(int fd, const std::string& buf, size_t* off) {
  while (*off < buf.size()) {
    ssize_t n = ::send(fd, buf.data() + *off, buf.size() - *off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection");
      }
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    *off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace cpdb::net
