#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cpdb {

/// Minimal command-line flag parser for the benchmark and example binaries.
///
/// Accepts `--name=value` and `--name value` forms; everything else is
/// ignored. Values are looked up with typed accessors that fall back to a
/// default when the flag is absent or malformed.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True if `--name` was present (with or without a value).
  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cpdb
