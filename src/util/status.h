#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace cpdb {

/// Error categories used across the CPDB public API.
///
/// The library follows the RocksDB / Arrow convention of returning Status
/// (or Result<T>) from any operation that can fail, instead of throwing
/// exceptions across the public API boundary.
enum class StatusCode {
  kOk = 0,
  /// A path mentioned by an update does not exist in the tree
  /// (paper Section 2: "failing if path p is not present in t").
  kNotFound,
  /// An insert would create a duplicate edge label
  /// (paper Section 2: "t ] t' fails if there are any shared edge names").
  kAlreadyExists,
  /// Input could not be parsed or violates a structural precondition.
  kInvalidArgument,
  /// An operation was attempted in a state that does not permit it
  /// (e.g. committing a transaction that was never begun).
  kFailedPrecondition,
  /// Internal invariant violation; always a bug in the library.
  kInternal,
  /// Feature is recognised but not supported by this build/configuration.
  kNotSupported,
  /// A peer or resource is transiently gone (connection closed/reset,
  /// server draining); retrying against a live endpoint may succeed.
  kUnavailable,
};

/// Human-readable name for a StatusCode (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation: a code plus an optional message.
///
/// `Status::OK()` is cheap (no allocation). Statuses are small value types
/// and may be freely copied. Functions returning Status are marked
/// [[nodiscard]] by convention at the call site via this type's attribute.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] bool IsNotFound() const {
    return code_ == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  [[nodiscard]] bool IsInternal() const {
    return code_ == StatusCode::kInternal;
  }
  [[nodiscard]] bool IsUnavailable() const {
    return code_ == StatusCode::kUnavailable;
  }

  /// "OK" or "<Code>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

#define CPDB_CONCAT_INNER_(a, b) a##b
#define CPDB_CONCAT_(a, b) CPDB_CONCAT_INNER_(a, b)

/// Propagates a non-OK status to the caller.
#define CPDB_RETURN_IF_ERROR(expr) \
  CPDB_RETURN_IF_ERROR_IMPL_(CPDB_CONCAT_(_cpdb_status_, __LINE__), expr)

#define CPDB_RETURN_IF_ERROR_IMPL_(tmp, expr) \
  do {                                        \
    ::cpdb::Status tmp = (expr);              \
    if (!tmp.ok()) return tmp;                \
  } while (0)

}  // namespace cpdb
