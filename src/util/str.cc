#include "util/str.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace cpdb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  return Join(parts, std::string_view(&sep, 1));
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

namespace {

// Matches a single segment pattern (may contain '*') against a segment.
bool SegmentMatch(const std::string& pat, const std::string& seg) {
  // Classic iterative glob over one segment.
  size_t p = 0, s = 0, star = std::string::npos, match = 0;
  while (s < seg.size()) {
    if (p < pat.size() && (pat[p] == seg[s])) {
      ++p;
      ++s;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      match = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++match;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

bool GlobMatchRec(const std::vector<std::string>& pattern, size_t pi,
                  const std::vector<std::string>& subject, size_t si) {
  if (pi == pattern.size()) return si == subject.size();
  if (pattern[pi] == "**") {
    // "**" matches zero or more whole segments.
    for (size_t skip = si; skip <= subject.size(); ++skip) {
      if (GlobMatchRec(pattern, pi + 1, subject, skip)) return true;
    }
    return false;
  }
  if (si == subject.size()) return false;
  if (!SegmentMatch(pattern[pi], subject[si])) return false;
  return GlobMatchRec(pattern, pi + 1, subject, si + 1);
}

}  // namespace

bool GlobMatchSegments(const std::vector<std::string>& pattern,
                       const std::vector<std::string>& subject) {
  return GlobMatchRec(pattern, 0, subject, 0);
}

}  // namespace cpdb
