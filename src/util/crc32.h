#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cpdb {

/// CRC-32 (the IEEE 802.3 polynomial, reflected form 0xEDB88320 — the
/// checksum of zip/zlib/ethernet) over `n` bytes. Chain incremental
/// computations by passing the previous result as `seed`; a one-shot call
/// uses the default seed.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);
uint32_t Crc32(const std::string& s);

// ----- Varint / length-prefixed coding ---------------------------------------
//
// LEB128-style base-128 varints, little-endian groups of 7 bits with the
// high bit as a continuation flag — the framing used by the write-ahead
// log and the checkpoint files (storage/), shared here so record formats
// stay byte-identical across both and reusable elsewhere.

/// Maximum encoded size of one 64-bit varint.
inline constexpr size_t kMaxVarint64Bytes = 10;

/// Appends the varint encoding of `v` to `*out`.
void PutVarint64(std::string* out, uint64_t v);

/// Decodes one varint from `in` starting at `*pos`; advances `*pos` past
/// it. Returns false (leaving `*pos` untouched) on truncated or overlong
/// (> 10 byte) input.
bool GetVarint64(const std::string& in, size_t* pos, uint64_t* out);

/// Appends varint(size) followed by the bytes of `s`.
void PutLengthPrefixed(std::string* out, const std::string& s);

/// Decodes one length-prefixed string; advances `*pos` past it. Returns
/// false (leaving `*pos` untouched) if the length or payload is truncated.
bool GetLengthPrefixed(const std::string& in, size_t* pos, std::string* out);

}  // namespace cpdb
