#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cpdb {

/// Splits `s` on `sep`, keeping empty segments.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, char sep);
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Parses a signed decimal integer; returns false on any malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a floating point number; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Glob match where '*' matches any run of characters except `sep`, and
/// "**" (a full segment) matches any number of segments. Used by the
/// approximate-provenance extension (paper Section 6).
bool GlobMatchSegments(const std::vector<std::string>& pattern,
                       const std::vector<std::string>& subject);

}  // namespace cpdb
