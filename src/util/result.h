#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace cpdb {

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<Path> r = Path::Parse("T/c1/y");
///   if (!r.ok()) return r.status();
///   const Path& p = r.value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit by design, like StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status. Aborts (in debug) if the status is OK,
  /// since an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }

  [[nodiscard]] const Status& status() const { return status_; }

  /// Precondition: ok().
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` if this holds an error.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

/// Propagates an error Result; otherwise assigns the unwrapped value.
#define CPDB_ASSIGN_OR_RETURN(lhs, expr)            \
  CPDB_ASSIGN_OR_RETURN_IMPL_(                      \
      CPDB_CONCAT_(_cpdb_result_, __LINE__), lhs, expr)

// CPDB_CONCAT_ comes from util/status.h (included above).

#define CPDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace cpdb
