#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace cpdb {

/// Annotated wrapper over std::mutex — the only mutex type allowed in
/// src/service/ and src/storage/ (enforced by tools/lint/cpdb_lint.py).
///
/// std::mutex itself carries no thread-safety attributes in libstdc++, so
/// a raw `std::mutex` member silences Clang's -Wthread-safety instead of
/// feeding it: GUARDED_BY(raw_mu) fields would warn on every access
/// because std::lock_guard's acquisition is invisible to the analysis.
/// This wrapper is a CAPABILITY and its Lock/Unlock are ACQUIRE/RELEASE,
/// so "field X is only touched with mu_ held" becomes machine-checked.
class CPDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CPDB_ACQUIRE() { mu_.lock(); }
  void Unlock() CPDB_RELEASE() { mu_.unlock(); }
  bool TryLock() CPDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII exclusive hold on a Mutex (the std::lock_guard of this layer,
/// visible to the analysis). Deliberately neither copyable nor movable:
/// a moved-from scoped capability is exactly the state the analysis
/// cannot track.
class CPDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CPDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CPDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  MutexLock(MutexLock&&) = delete;
  MutexLock& operator=(MutexLock&&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex.
///
/// Wait() takes the Mutex explicitly and is annotated REQUIRES(mu), so
/// forgetting the lock around a wait is a compile error under the
/// analysis, and the classic predicate loop stays visible to it:
///
///   mu_.Lock();                 // or MutexLock l(mu_);
///   while (!predicate) cv_.Wait(mu_);
///
/// (Use an explicit `while` loop, not a predicate lambda: the analysis
/// checks lambda bodies without the caller's lock set, so a lambda
/// reading GUARDED_BY fields would falsely warn.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires `mu` before
  /// returning. Spurious wakeups happen; always wait in a loop.
  void Wait(Mutex& mu) CPDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> l(mu.mu_, std::adopt_lock);
    cv_.wait(l);
    l.release();  // the caller keeps holding mu, as annotated
  }

  /// Timed Wait: returns false if `timeout_ms` elapsed without a notify
  /// (the predicate loop still applies — recheck it either way). For
  /// periodic threads that must also wake promptly on shutdown
  /// (obs::Reporter's sample loop).
  bool WaitFor(Mutex& mu, int64_t timeout_ms) CPDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> l(mu.mu_, std::adopt_lock);
    auto st = cv_.wait_for(l, std::chrono::milliseconds(timeout_ms));
    l.release();  // the caller keeps holding mu, as annotated
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cpdb
