#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpdb {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomised workloads in CPDB use this generator so that experiments
/// and property tests are exactly reproducible from a seed. Not suitable for
/// cryptographic use.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Random lowercase identifier of the given length, e.g. "qzkfam".
  std::string NextIdent(size_t length);

  /// Picks a uniformly random element index of a non-empty container size.
  size_t NextIndex(size_t size) { return static_cast<size_t>(NextBelow(size)); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace cpdb
