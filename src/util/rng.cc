#include "util/rng.h"

#include <cassert>

namespace cpdb {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the 64-bit seed into xoshiro's 256-bit state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::string Rng::NextIdent(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

}  // namespace cpdb
