#include "util/crc32.h"

namespace cpdb {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Table table;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(const std::string& in, size_t* pos, uint64_t* out) {
  uint64_t result = 0;
  size_t p = *pos;
  for (int shift = 0; shift < 64 && p < in.size(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>(in[p++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *out = result;
      return true;
    }
  }
  return false;  // truncated, or a continuation bit past the 10th byte
}

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

bool GetLengthPrefixed(const std::string& in, size_t* pos, std::string* out) {
  size_t p = *pos;
  uint64_t len;
  if (!GetVarint64(in, &p, &len)) return false;
  if (len > in.size() - p) return false;
  out->assign(in, p, len);
  *pos = p + len;
  return true;
}

}  // namespace cpdb
