#pragma once

// Portable Clang Thread Safety Analysis macros — the compile-time layer of
// the concurrency contracts documented in README "Static analysis".
//
// Under Clang with -Wthread-safety these expand to the thread-safety
// attributes, so lock discipline ("queue_ is only touched with mu_ held",
// "RunCohort requires the queue mutex", "a ReadGuard is a scoped shared
// grant on the latch") is checked on every build and a violation is a
// compile error in the `analyze` preset (-Werror=thread-safety). Under
// GCC — which has no equivalent analysis — they expand to nothing and cost
// nothing, so the annotations still compile (and still document the code)
// in every preset.
//
// The vocabulary is the standard one (identical to Abseil's
// thread_annotations.h and LLVM's own wrappers), prefixed CPDB_ to keep
// the global namespace clean:
//
//   CPDB_CAPABILITY("mutex")   on a class: instances are lockable things
//   CPDB_SCOPED_CAPABILITY     on a class: RAII object holding a capability
//   CPDB_GUARDED_BY(mu)        on a field: only touch it holding mu
//   CPDB_PT_GUARDED_BY(mu)     on a pointer field: the pointee needs mu
//   CPDB_REQUIRES(mu)          on a function: caller must hold mu
//   CPDB_REQUIRES_SHARED(mu)   on a function: caller must hold mu (shared)
//   CPDB_ACQUIRE(mu)           on a function: acquires mu exclusively
//   CPDB_ACQUIRE_SHARED(mu)    on a function: acquires mu shared
//   CPDB_RELEASE(mu)           on a function: releases mu (either mode)
//   CPDB_RELEASE_SHARED(mu)    on a function: releases a shared hold
//   CPDB_TRY_ACQUIRE(ok, mu)   on a function: acquires mu iff it returns ok
//   CPDB_EXCLUDES(mu)          on a function: caller must NOT hold mu
//   CPDB_ASSERT_CAPABILITY(mu) on a function: asserts mu is held at runtime
//   CPDB_RETURN_CAPABILITY(mu) on a function: returns a reference to mu
//   CPDB_NO_THREAD_SAFETY_ANALYSIS  opt one function out (last resort;
//                                   forbidden in src/service|src/storage by
//                                   tools/lint/cpdb_lint.py)

#if defined(__clang__) && (!defined(SWIG))
#define CPDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CPDB_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

#define CPDB_CAPABILITY(x) CPDB_THREAD_ANNOTATION_(capability(x))

#define CPDB_SCOPED_CAPABILITY CPDB_THREAD_ANNOTATION_(scoped_lockable)

#define CPDB_GUARDED_BY(x) CPDB_THREAD_ANNOTATION_(guarded_by(x))

#define CPDB_PT_GUARDED_BY(x) CPDB_THREAD_ANNOTATION_(pt_guarded_by(x))

#define CPDB_ACQUIRED_BEFORE(...) \
  CPDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define CPDB_ACQUIRED_AFTER(...) \
  CPDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define CPDB_REQUIRES(...) \
  CPDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define CPDB_REQUIRES_SHARED(...) \
  CPDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define CPDB_ACQUIRE(...) \
  CPDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define CPDB_ACQUIRE_SHARED(...) \
  CPDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define CPDB_RELEASE(...) \
  CPDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define CPDB_RELEASE_SHARED(...) \
  CPDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define CPDB_RELEASE_GENERIC(...) \
  CPDB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define CPDB_TRY_ACQUIRE(...) \
  CPDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define CPDB_EXCLUDES(...) CPDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define CPDB_ASSERT_CAPABILITY(x) \
  CPDB_THREAD_ANNOTATION_(assert_capability(x))

#define CPDB_RETURN_CAPABILITY(x) CPDB_THREAD_ANNOTATION_(lock_returned(x))

#define CPDB_NO_THREAD_SAFETY_ANALYSIS \
  CPDB_THREAD_ANNOTATION_(no_thread_safety_analysis)
