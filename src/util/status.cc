#include "util/status.h"

namespace cpdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cpdb
