#pragma once

#include <chrono>
#include <cstdint>

namespace cpdb {

/// Simulated latency clock used by the evaluation harness.
///
/// The paper's timing results (Figures 9, 10, 12) are dominated by
/// client/server round trips: CPDB was a Java application talking to MySQL
/// over JDBC/TCP and to Timber over SOAP, so every provenance-store
/// interaction and every target-database update paid a network round trip
/// (hundreds of milliseconds for Timber). Our in-process substrates execute
/// in nanoseconds, so to reproduce the *shape* of the timing figures we
/// charge simulated time for each modelled round trip and each row
/// transferred, accumulated on this clock. Real (CPU) time is tracked
/// separately by the benchmarks.
class SimClock {
 public:
  /// Advances simulated time by `micros` microseconds.
  void Advance(double micros) { micros_ += micros; }

  /// Total simulated time in microseconds since construction/reset.
  double ElapsedMicros() const { return micros_; }

  /// Total simulated time in milliseconds.
  double ElapsedMillis() const { return micros_ / 1000.0; }

  void Reset() { micros_ = 0; }

 private:
  double micros_ = 0;
};

/// Wall-clock stopwatch for real measured time.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cpdb
