#include "provenance/txn_store.h"

namespace cpdb::provenance {

void TxnStore::PruneUnder(const tree::Path& root) {
  // Paths ordered lexicographically by label sequence keep a subtree
  // contiguous: erase the range [root, first non-descendant).
  auto it = provlist_.lower_bound(root);
  while (it != provlist_.end() && root.IsPrefixOf(it->first)) {
    it = provlist_.erase(it);
  }
}

bool TxnStore::InsertInferable(const tree::Path& p) const {
  // Walk ancestors from the parent upward; the first provlist entry found
  // is the closest-ancestor record that inference would use.
  tree::Path a = p;
  while (!a.IsRoot()) {
    a = a.Parent();
    auto it = provlist_.find(a);
    if (it != provlist_.end()) {
      return it->second.op == ProvOp::kInsert;
    }
  }
  return false;
}

Status TxnStore::TrackInsert(const update::ApplyEffect& effect) {
  if (effect.inserted.empty()) {
    return Status::InvalidArgument("insert effect with no inserted node");
  }
  ChargeLocal();
  const tree::Path& p = effect.inserted.front();
  // Net-effect bookkeeping: re-inserting a path deleted earlier in this
  // transaction replaces its D entry (content replaced, recorded as I).
  provlist_.erase(p);
  if (removed_.count(p) > 0) {
    removed_.erase(p);
  } else {
    created_.insert(p);
  }
  if (options_.hierarchical && InsertInferable(p)) {
    return Status::OK();  // child of a node inserted this txn: inferable
  }
  provlist_.emplace(p, ProvRecord::Insert(0, p));
  return Status::OK();
}

Status TxnStore::TrackDelete(const update::ApplyEffect& effect) {
  if (effect.deleted.empty()) {
    return Status::InvalidArgument("delete effect with no deleted nodes");
  }
  ChargeLocal();
  const tree::Path& root = effect.deleted.front();
  bool root_existed_at_start = !CreatedThisTxn(root);
  // Remove links of the data being deleted (temporary data vanishes).
  PruneUnder(root);
  for (const tree::Path& d : effect.deleted) {
    bool existed_at_start = !CreatedThisTxn(d);
    created_.erase(d);
    if (!existed_at_start) continue;
    removed_.insert(d);
    if (options_.hierarchical) continue;  // root record covers descendants
    provlist_.emplace(d, ProvRecord::Delete(0, d));
  }
  if (options_.hierarchical && root_existed_at_start) {
    provlist_.emplace(root, ProvRecord::Delete(0, root));
  }
  return Status::OK();
}

Status TxnStore::TrackCopy(const update::ApplyEffect& effect) {
  if (effect.copied.empty()) {
    return Status::InvalidArgument("copy effect with no copied nodes");
  }
  ChargeLocal();
  const tree::Path& root = effect.copied.front().first;
  // The copy wholesale-replaces the subtree at the destination: links of
  // overwritten data are removed (paper Section 3.2.2), and no D records
  // are produced for overwrites (consistent with naive semantics).
  PruneUnder(root);
  std::set<tree::Path> overwritten(effect.overwritten.begin(),
                                   effect.overwritten.end());
  std::set<tree::Path> copied_targets;
  for (const auto& [loc, src] : effect.copied) {
    (void)src;
    copied_targets.insert(loc);
  }
  // Overwritten nodes that are not re-established by the copy are gone;
  // the copy record at the root fully describes the new subtree, so they
  // need no records of their own.
  for (const tree::Path& o : effect.overwritten) {
    if (copied_targets.count(o) > 0) continue;
    created_.erase(o);
    removed_.erase(o);
  }
  for (const auto& [loc, src] : effect.copied) {
    bool existed_at_start =
        removed_.count(loc) > 0 ||
        (overwritten.count(loc) > 0 && created_.count(loc) == 0);
    removed_.erase(loc);
    if (!existed_at_start) created_.insert(loc);
    if (options_.hierarchical && loc != root) continue;
    provlist_.emplace(loc, ProvRecord::Copy(0, loc, src));
  }
  return Status::OK();
}

Status TxnStore::Commit() {
  int64_t tid = BumpTid();
  if (provlist_.empty()) {
    created_.clear();
    removed_.clear();
    return Status::OK();
  }
  std::vector<ProvRecord> records;
  records.reserve(provlist_.size());
  for (auto& [loc, rec] : provlist_) {
    (void)loc;
    rec.tid = tid;
    records.push_back(rec);
  }
  if (options_.hierarchical && options_.dedupe_on_commit) {
    // Remove copy records inferable from the closest ancestor record in
    // the same commit: ancestor C at a with src s covers a descendant C
    // at p iff the descendant's src equals p rebased from a onto s.
    std::vector<ProvRecord> kept;
    for (const ProvRecord& r : records) {
      bool redundant = false;
      if (r.op == ProvOp::kCopy) {
        tree::Path a = r.loc;
        while (!a.IsRoot()) {
          a = a.Parent();
          auto it = provlist_.find(a);
          if (it == provlist_.end()) continue;
          redundant = it->second.op == ProvOp::kCopy &&
                      r.src == r.loc.Rebase(a, it->second.src);
          break;
        }
      }
      if (!redundant) kept.push_back(r);
    }
    records = std::move(kept);
  }
  CPDB_RETURN_IF_ERROR(backend_->WriteRecords(records));
  provlist_.clear();
  created_.clear();
  removed_.clear();
  return Status::OK();
}

void TxnStore::AbortPending() {
  provlist_.clear();
  created_.clear();
  removed_.clear();
}

}  // namespace cpdb::provenance
