#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "tree/path.h"

namespace cpdb::provenance {

/// The Op field of the provenance table: I (insert), C (copy), D (delete).
enum class ProvOp : char {
  kInsert = 'I',
  kCopy = 'C',
  kDelete = 'D',
};

char ProvOpChar(ProvOp op);
std::optional<ProvOp> ProvOpFromChar(char c);

/// One row of the paper's provenance table Prov(Tid, Op, Loc, Src)
/// (Section 2.1). {Tid, Loc} is a key: per transaction each location was
/// inserted, deleted, or copied from somewhere at most once. Src is only
/// meaningful for copies; for I and D it is the paper's bottom, rendered
/// as an empty path here and as "⊥" in ToString().
struct ProvRecord {
  int64_t tid = 0;
  ProvOp op = ProvOp::kInsert;
  tree::Path loc;
  tree::Path src;

  static ProvRecord Insert(int64_t tid, tree::Path loc) {
    return {tid, ProvOp::kInsert, std::move(loc), tree::Path()};
  }
  static ProvRecord Delete(int64_t tid, tree::Path loc) {
    return {tid, ProvOp::kDelete, std::move(loc), tree::Path()};
  }
  static ProvRecord Copy(int64_t tid, tree::Path loc, tree::Path src) {
    return {tid, ProvOp::kCopy, std::move(loc), std::move(src)};
  }

  /// "121 C T/c2 S1/a2" / "121 D T/c5 ⊥" — matching Figure 5's layout.
  std::string ToString() const;

  bool operator==(const ProvRecord& o) const {
    return tid == o.tid && op == o.op && loc == o.loc && src == o.src;
  }
  /// Ordered by (tid, loc) — the table key.
  bool operator<(const ProvRecord& o) const {
    if (tid != o.tid) return tid < o.tid;
    return loc < o.loc;
  }
};

std::ostream& operator<<(std::ostream& os, const ProvRecord& r);

/// Renders records as the paper's Figure 5 tables (sorted by Tid, Loc).
std::string RecordsToTable(std::vector<ProvRecord> records);

/// Per-transaction bookkeeping stored alongside the provenance table
/// ("additional information about each transaction, such as commit time
/// and user identity, can be stored in a separate table with key Tid").
struct TxnMeta {
  int64_t tid = 0;
  std::string user;
  int64_t commit_seq = 0;  ///< logical commit timestamp
  std::string note;
};

}  // namespace cpdb::provenance
