#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <memory>

#include "provenance/prov_record.h"
#include "relstore/database.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace cpdb::provenance {

class ProvBackend;

/// Streaming read cursor over the provenance table — the client side of a
/// server-held scan, fed straight from the B+-tree leaf chain with no
/// materialized result set.
///
/// Round-trip accounting: each Next(batch, max) fetch is ONE modelled
/// client/server round trip, charged with the rows it actually moves
/// (plus, in unindexed mode, the server-side full-table scan on the first
/// fetch — the paper's "worst-case behavior" setup). Draining a scan
/// whose result fits in one batch therefore costs exactly one round trip,
/// like the one-shot queries this API replaced; a large result streamed
/// in k batches costs k. The single-record Next(ProvRecord*) refills an
/// internal buffer in kDefaultBatch chunks and adds no extra trips.
///
/// Ordering: every cursor yields records in its index-key order —
/// ScanAll/ScanForTid by (Tid, Loc), the Loc-side scans by (Loc, Tid) —
/// where Loc compares as its slash-joined string rendering (the form the
/// index stores). The concrete guarantee is documented on each
/// ProvBackend factory.
///
/// Consistency: the cursor borrows a position inside the store's indexes;
/// any provenance write invalidates it. Readers drain cursors before the
/// next tracked operation (the editor is the only writer, and queries run
/// between transactions), matching BTree::Cursor's single-writer
/// contract.
class ProvCursor {
 public:
  static constexpr size_t kDefaultBatch = 256;
  /// Drain-everything fetch size used by the one-shot shims.
  static constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();

  /// An exhausted cursor; live ones come from ProvBackend.
  ProvCursor() = default;

  /// Fetches up to `max` records into `*batch` (cleared first; the
  /// caller owns the buffer and its capacity is reused across calls).
  /// Returns the number fetched; 0 means end-of-scan or error (check
  /// status()). Each call that reaches the server is one round trip.
  size_t Next(std::vector<ProvRecord>* batch, size_t max = kDefaultBatch);

  /// Single-record convenience over an internal kDefaultBatch buffer.
  bool Next(ProvRecord* rec);

  bool done() const { return exhausted_ && buf_pos_ >= buf_.size(); }

  /// First decode/storage error hit by the scan (the cursor stops there).
  const Status& status() const { return status_; }

  /// Round trips this cursor has issued so far.
  size_t RoundTrips() const { return round_trips_; }

 private:
  friend class ProvBackend;
  ProvCursor(relstore::CostModel* sink, const relstore::Table* prov,
             bool use_indexes)
      : sink_(sink), prov_(prov), use_indexes_(use_indexes),
        exhausted_(false) {}

  /// Appends one contiguous index range to the scan; segments are drained
  /// in the order added (a multi-range statement is still one statement).
  void AddSegment(relstore::ScanSpec spec);

  relstore::CostModel* sink_ = nullptr;
  const relstore::Table* prov_ = nullptr;
  bool use_indexes_ = true;
  bool first_fetch_ = true;
  bool exhausted_ = true;
  Status status_;
  size_t round_trips_ = 0;
  std::vector<relstore::Table::Cursor> segments_;
  size_t seg_ = 0;
  // Buffer behind the single-record Next().
  std::vector<ProvRecord> buf_;
  size_t buf_pos_ = 0;
};

/// Persistence layer for provenance stores: a Prov(Tid, Op, Loc, Src)
/// table plus a TxnMeta table inside a relstore Database — the stand-in
/// for the MySQL provenance store of the paper's CPDB.
///
/// Reads are cursor- and batch-oriented: the Scan* factories stream
/// ordered ranges off the B+-tree leaf chain, and LookupMany resolves a
/// whole batch of (tid, loc) points in one round trip. The vector-
/// returning Get* methods are retained as one-shot shims (each drains a
/// cursor in a single fetch, so its cost is exactly one round trip, as
/// before). When `use_indexes` is false, the first fetch of every
/// statement is charged as a full table scan, reproducing the paper's
/// query-time experiment setup ("No indexing was performed on the
/// provenance relation, so these query times represent worst-case
/// behavior", Section 4.1); results are identical either way.
///
/// Thread safety (the shared-table contract of the service layer): a
/// ProvBackend handle itself holds no locks — its fields are borrowed
/// pointers fixed at construction (or at View() assignment) plus the
/// `use_indexes` flag, and the *tables* behind them are the shared state.
/// Synchronization is owned by service::SharedLatch one layer up:
///
///  * WriteRecords / WriteTxnMeta mutate the shared tables and must run
///    inside the engine's exclusive grant (commit closures do — they
///    execute on the CommitQueue leader or its apply pool, which hold the
///    latch). Within that grant the backend adds its own serialization: a
///    write mutex shared by the owning handle and every View(), so the
///    disjoint-subtree parallel apply can run commit closures of SEVERAL
///    transactions concurrently — their target writes are disjoint by
///    construction, and their provenance writes interleave safely here
///    (whole batches serialize; {Tid, Loc} keys never collide across
///    transactions, so order between batches is immaterial);
///  * every Scan*/Get*/Lookup* factory and the cursors it returns must
///    run inside a shared grant, drained before the grant is released;
///  * cost charges land on `cost_sink()`, which the service layer points
///    at a session-private CostModel precisely so concurrent readers
///    never race on one model (CostModel is deliberately lock-free and
///    NOT thread-safe; see relstore::CostAggregate).
///
/// These rules cross an ownership boundary the thread-safety analysis
/// cannot see through (the latch lives in the engine, not here), so they
/// are enforced one level down — the latch, queue, and pool internals are
/// GUARDED_BY-annotated — and by tools/lint/cpdb_lint.py, which rejects
/// direct Prov/TxnMeta table writes outside WriteRecords/WriteTxnMeta.
class ProvBackend {
 public:
  /// Creates the Prov and TxnMeta tables inside `db`. The Prov table has
  /// a unique btree index on {Tid, Loc} (the paper's key) and a btree on
  /// {Loc, Tid} for descendant scans — the "natural candidates for
  /// indexing" the paper names, with Tid appended to make every scan's
  /// ordering deterministic.
  explicit ProvBackend(relstore::Database* db, bool use_indexes = true);

  /// A second handle onto `shared`'s tables whose modelled charges land
  /// on `sink` instead of the database's own CostModel. This is how the
  /// service layer gives each concurrent session race-free accounting:
  /// CostModel is not thread-safe, so sessions reading the shared store
  /// in parallel must each charge a private model (aggregated later via
  /// relstore::CostAggregate). The view borrows `shared`'s tables — it
  /// performs the same reads and writes against the same store.
  static ProvBackend View(ProvBackend* shared, relstore::CostModel* sink);

  /// A detached handle (no tables, no sink) — only a valid assignment
  /// target for View(). Every other use is a programming error.
  ProvBackend() = default;

  /// Where this handle's modelled charges land: the owning database's
  /// CostModel by default, a session-private model for service views.
  relstore::CostModel* cost_sink() { return sink_; }

  // ----- Writes (one round trip each) -------------------------------------

  /// Appends records in one client call — a single batched statement
  /// (Table::ApplyBatch) whose rows ride one modelled write round trip,
  /// charged on the write-side counters. Fails atomically if any
  /// {Tid, Loc} repeats: nothing is written. Group commit (ProvStore::
  /// TrackBatch, TxnStore::Commit) funnels a whole transaction's or
  /// script's records through one call here.
  Status WriteRecords(const std::vector<ProvRecord>& records);

  /// Records transaction metadata.
  Status WriteTxnMeta(const TxnMeta& meta);

  // ----- Streaming reads (one round trip per batch fetched) ---------------

  /// Everything, ordered by (Tid, Loc) — the table-key order the full
  /// table prints in (Figure 5).
  ProvCursor ScanAll();

  /// One transaction's records, ordered by Loc.
  ProvCursor ScanForTid(int64_t tid);

  /// All records at exactly `loc`, ordered by Tid.
  ProvCursor ScanAtLoc(const tree::Path& loc);

  /// Records whose Loc equals `loc` or lies strictly below it, ordered by
  /// (Loc, Tid) — the subtree range scan behind getMod.
  ProvCursor ScanUnder(const tree::Path& loc);

  /// The canonical ancestor fetch: records at `loc` (when `include_self`)
  /// and at every proper ancestor that can carry provenance (depth >= 2;
  /// update targets sit strictly inside a database, so the universe root
  /// and database roots never appear as a record's Loc). One multi-range
  /// statement ordered by (Loc, Tid) — i.e. shallowest ancestor first —
  /// so the whole ancestor chain costs one round trip per batch, not one
  /// per level.
  ProvCursor ScanAtLocOrAncestors(const tree::Path& loc, bool include_self);

  // ----- Batched point lookups (one round trip) ---------------------------

  /// All records with the given tid at any of `locs` — the SQL
  /// "(Tid, Loc) IN (...)" statement. One round trip; results grouped in
  /// the order of `locs`.
  Result<std::vector<ProvRecord>> LookupMany(
      int64_t tid, const std::vector<tree::Path>& locs);

  // ----- One-shot shims (exactly one round trip each) ---------------------

  /// The record with exactly this (tid, loc), if any.
  Result<std::vector<ProvRecord>> GetExact(int64_t tid,
                                           const tree::Path& loc);

  /// All records at this loc across transactions, ordered by Tid.
  Result<std::vector<ProvRecord>> GetAtLoc(const tree::Path& loc);

  /// All records whose Loc equals `loc` or lies strictly below it,
  /// ordered by (Loc, Tid).
  Result<std::vector<ProvRecord>> GetUnder(const tree::Path& loc);

  /// All records whose Loc is `loc` or any of its ancestors, ordered by
  /// (Loc, Tid) — one client call (see ScanAtLocOrAncestors).
  Result<std::vector<ProvRecord>> GetAtLocOrAncestors(const tree::Path& loc);

  /// All records of one transaction, ordered by Loc.
  Result<std::vector<ProvRecord>> GetForTid(int64_t tid);

  /// Everything, ordered by (tid, loc). (Used by tests and expansion.)
  Result<std::vector<ProvRecord>> GetAll();

  // ----- Stats (no cost charged; out-of-band instrumentation) -------------

  size_t RowCount() const;
  size_t PhysicalBytes() const;

  /// Largest committed Tid in the store, or 0 when it is empty — what a
  /// session reopening a recovered durable store passes (plus one) as
  /// EditorOptions::first_tid so transaction numbering continues across
  /// restarts. Out-of-band like the stats above: no cost charged.
  int64_t MaxTid() const;

  relstore::Database* db() { return db_; }
  bool use_indexes() const { return use_indexes_; }
  void set_use_indexes(bool v) { use_indexes_ = v; }

  /// Bounds every read through THIS handle to records with Tid <= `tid`
  /// (-1 = unbounded, the default). The service layer stamps each
  /// session's view with its pinned snapshot watermark, so a reader at an
  /// old version queries provenance as of that version — the relational
  /// half of the MVCC-lite snapshot (the tree half is the pinned CoW
  /// root). Pushed into the relstore scan as ScanSpec::visible_col, not
  /// filtered client-side; out-of-band stats (RowCount, MaxTid) stay
  /// unbounded.
  void set_read_watermark(int64_t tid) { read_watermark_ = tid; }
  int64_t read_watermark() const { return read_watermark_; }

  static const char* kProvTable;
  static const char* kMetaTable;

 private:
  friend class ProvCursor;

  ProvCursor MakeCursor() { return ProvCursor(sink_, prov_, use_indexes_); }

  /// Applies this handle's read watermark to a scan about to be issued
  /// (Tid is column 0 of the Prov table; visibility is evaluated on the
  /// fetched row, so the bound works under either index order).
  relstore::ScanSpec Bounded(relstore::ScanSpec spec) const {
    if (read_watermark_ >= 0) {
      spec.visible_col = 0;
      spec.visible_max = read_watermark_;
    }
    return spec;
  }
  static Result<std::vector<ProvRecord>> Drain(ProvCursor cursor);
  static Result<ProvRecord> FromRow(const relstore::Row& row);
  static relstore::Row ToRow(const ProvRecord& rec);
  static size_t ApproxBytes(const ProvRecord& rec);

  relstore::Database* db_ = nullptr;
  relstore::Table* prov_ = nullptr;
  relstore::Table* meta_ = nullptr;
  bool use_indexes_ = true;
  relstore::CostModel* sink_ = nullptr;  ///< defaults to &db_->cost()
  int64_t read_watermark_ = -1;  ///< per-handle snapshot bound; -1 = all
  /// Serializes table mutations across this handle and all its Views —
  /// the parallel-apply write gate (see the thread-safety contract above).
  /// shared_ptr so View-copies share the owner's mutex; null only on a
  /// detached handle.
  std::shared_ptr<Mutex> write_mu_;
};

}  // namespace cpdb::provenance
