#pragma once

#include <string>
#include <vector>

#include "provenance/prov_record.h"
#include "relstore/database.h"
#include "util/result.h"

namespace cpdb::provenance {

/// Persistence layer for provenance stores: a Prov(Tid, Op, Loc, Src)
/// table plus a TxnMeta table inside a relstore Database — the stand-in
/// for the MySQL provenance store of the paper's CPDB.
///
/// Every public method models exactly one client round trip and charges
/// the database's CostModel accordingly. When `use_indexes` is false,
/// queries are charged as full table scans, reproducing the paper's
/// query-time experiment setup ("No indexing was performed on the
/// provenance relation, so these query times represent worst-case
/// behavior", Section 4.1); results are identical either way.
class ProvBackend {
 public:
  /// Creates the Prov and TxnMeta tables inside `db`. The Prov table has
  /// a unique btree index on {Tid, Loc} (the paper's key), a btree on Loc
  /// for descendant scans, and a hash index on Tid.
  explicit ProvBackend(relstore::Database* db, bool use_indexes = true);

  // ----- Writes (one round trip each) -------------------------------------

  /// Appends records in one client call. Fails if any {Tid, Loc} repeats.
  Status WriteRecords(const std::vector<ProvRecord>& records);

  /// Records transaction metadata.
  Status WriteTxnMeta(const TxnMeta& meta);

  // ----- Queries (one round trip each) ------------------------------------

  /// The record with exactly this (tid, loc), if any.
  Result<std::vector<ProvRecord>> GetExact(int64_t tid,
                                           const tree::Path& loc);

  /// All records at this loc across transactions.
  Result<std::vector<ProvRecord>> GetAtLoc(const tree::Path& loc);

  /// All records whose Loc equals `loc` or lies strictly below it.
  Result<std::vector<ProvRecord>> GetUnder(const tree::Path& loc);

  /// All records whose Loc is `loc` or any of its ancestors (one client
  /// call — the SQL "Loc IN (p, parent(p), ...)" statement the trace walk
  /// issues per hop for hierarchical stores).
  Result<std::vector<ProvRecord>> GetAtLocOrAncestors(const tree::Path& loc);

  /// All records of one transaction.
  Result<std::vector<ProvRecord>> GetForTid(int64_t tid);

  /// Everything, ordered by (tid, loc). (Used by tests and expansion.)
  Result<std::vector<ProvRecord>> GetAll();

  // ----- Stats (no cost charged; out-of-band instrumentation) -------------

  size_t RowCount() const;
  size_t PhysicalBytes() const;

  relstore::Database* db() { return db_; }
  bool use_indexes() const { return use_indexes_; }
  void set_use_indexes(bool v) { use_indexes_ = v; }

  static const char* kProvTable;
  static const char* kMetaTable;

 private:
  void ChargeQuery(size_t rows_returned);
  static Result<ProvRecord> FromRow(const relstore::Row& row);
  static relstore::Row ToRow(const ProvRecord& rec);

  relstore::Database* db_;
  relstore::Table* prov_;
  relstore::Table* meta_;
  bool use_indexes_;
};

}  // namespace cpdb::provenance
