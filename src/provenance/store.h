#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "provenance/backend.h"
#include "provenance/prov_record.h"
#include "update/semantics.h"
#include "util/status.h"

namespace cpdb::provenance {

/// The four provenance storage strategies evaluated by the paper
/// (Sections 2.1.1-2.1.4 / 3.2.1-3.2.4).
enum class Strategy {
  kNaive,                      ///< N: one record per touched node, per-op txns
  kTransactional,              ///< T: net effect of user-delimited txns
  kHierarchical,               ///< H: only non-inferable records, per-op txns
  kHierarchicalTransactional,  ///< HT: both
};

const char* StrategyName(Strategy s);       // "naive", ...
const char* StrategyShortName(Strategy s);  // "N", "H", "T", "HT"

/// External transaction-number source. A store with an allocator set
/// draws every committed tid from it instead of its own sequential
/// counter — the service layer's engine-wide monotonic allocation, which
/// keeps concurrent sessions over one shared backend from minting the
/// same tid (each session's private counter would otherwise start from
/// the same MaxTid). Called only inside Track*/Commit, i.e. on the thread
/// applying the transaction.
using TidAllocator = std::function<int64_t()>;

/// One tracked operation of a staged batch: the update's kind plus the
/// effect it had on the universe. The editor collects these while
/// applying a script or bulk copy and hands the whole sequence to
/// ProvStore::TrackBatch.
struct TrackedOp {
  update::OpKind kind;
  update::ApplyEffect effect;
};

/// Abstract provenance store: tracking calls invoked by the
/// provenance-aware editor, transaction control, and the read interface
/// used by provenance queries.
///
/// Tracking contract: the editor applies an update to the target database,
/// obtains its ApplyEffect, and calls exactly one Track* method — or, for
/// a whole script/bulk copy, one TrackBatch covering every operation. For
/// the per-operation strategies (N, H) each operation is its own
/// transaction; Commit() is a no-op for them. For the transactional
/// strategies (T, HT) records accumulate in an in-memory provlist until
/// Commit().
///
/// Group commit: TrackBatch preserves per-operation semantics exactly —
/// N/H still consume one tid per operation and produce the same records —
/// but moves the flush boundary so the whole batch reaches the backend in
/// ONE WriteRecords round trip instead of one per op (the paper's
/// "reduced number of round-trips" win, applied to the per-op
/// strategies' bulk paths). T/HT's provlist commit already rides one
/// flush per transaction; their TrackBatch just feeds the provlist.
///
/// Transaction numbering: sequential tids double as version numbers of the
/// target database, so Trace's "t-1" step (Section 2.2) is tid arithmetic.
class ProvStore {
 public:
  explicit ProvStore(ProvBackend* backend, int64_t first_tid = 1)
      : backend_(backend), next_tid_(first_tid), last_tid_(first_tid - 1) {}
  virtual ~ProvStore() = default;

  virtual Strategy strategy() const = 0;

  // ----- Tracking (editor-facing) -----------------------------------------

  /// Called after a successful insert; `effect.inserted` has the new path.
  virtual Status TrackInsert(const update::ApplyEffect& effect) = 0;

  /// Called after a successful delete; `effect.deleted` lists the removed
  /// subtree's nodes in preorder (root first).
  virtual Status TrackDelete(const update::ApplyEffect& effect) = 0;

  /// Called after a successful copy-paste; `effect.copied` lists
  /// (target, source) pairs in preorder (root first) and
  /// `effect.overwritten` the displaced nodes.
  virtual Status TrackCopy(const update::ApplyEffect& effect) = 0;

  /// Tracks a whole staged batch (script / bulk copy) with group commit.
  /// Per-op semantics (record contents, per-op tids for N/H, the
  /// {Tid, Loc} key) are identical to calling Track* once per op; only
  /// the flush boundary moves — N/H override this to issue ONE
  /// WriteRecords for the batch (plus H's per-insert existence probes,
  /// which stay individual round trips by design). The default loops
  /// Track*, which is exactly right for T/HT: records land in the
  /// provlist and flush once at Commit(). If `tids` is non-null it
  /// receives the tid each op committed under (0 for T/HT, whose tid is
  /// assigned at Commit). A failure writes nothing to the backend.
  virtual Status TrackBatch(const std::vector<TrackedOp>& ops,
                            std::vector<int64_t>* tids = nullptr);

  /// Ends the current transaction. For N/H this is implicit per op and
  /// calling it explicitly is a harmless no-op.
  virtual Status Commit() = 0;

  /// True if uncommitted provlist entries exist (T/HT only).
  virtual bool HasPending() const { return false; }

  /// Discards uncommitted provlist entries (editor abort).
  virtual void AbortPending() {}

  // ----- Read interface (query-facing) -------------------------------------
  //
  // Reads go through the backend's cursor/batch API: stream ranges with
  // backend()->ScanUnder / ScanAtLoc / ScanAtLocOrAncestors / ScanAll,
  // and resolve point batches with backend()->LookupMany. The store layer
  // only keeps Lookup(), which layers hierarchical inference on top.
  //
  // Migration note: the vector-returning RecordsUnder / RecordsAtAncestors
  // / RecordsForTid / AllRecords methods were removed with the cursor
  // redesign; their one-shot equivalents live on ProvBackend (GetUnder,
  // GetAtLocOrAncestors, GetForTid, GetAll), each costing exactly one
  // round trip.

  /// Effective provenance of `loc` in transaction `tid`, applying the
  /// hierarchical inference rules where the strategy requires it
  /// (closest-ancestor rule, Section 2.1.3). std::nullopt = unchanged.
  /// One backend round trip: a point lookup for the flat strategies, a
  /// batched (tid, ancestor-chain) LookupMany for the hierarchical ones.
  virtual Result<std::optional<ProvRecord>> Lookup(int64_t tid,
                                                   const tree::Path& loc);

  /// Whether Lookup must apply hierarchical inference.
  virtual bool IsHierarchical() const { return false; }

  // ----- Stats / transaction counters --------------------------------------

  /// Tid of the last committed transaction (tnow for queries).
  int64_t LastCommittedTid() const { return last_tid_; }

  /// Tid that the next (or current open) transaction will commit as.
  int64_t CurrentTid() const { return next_tid_; }

  /// First tid ever used by this store.
  int64_t FirstTid() const { return first_tid_committed_; }

  size_t RecordCount() const { return backend_->RowCount(); }
  size_t PhysicalBytes() const { return backend_->PhysicalBytes(); }
  ProvBackend* backend() { return backend_; }

  /// Routes tid allocation through `alloc` (service sessions). With an
  /// allocator set, CurrentTid() is only a lower bound — the engine hands
  /// out the real number when the transaction applies.
  void set_tid_allocator(TidAllocator alloc) {
    tid_allocator_ = std::move(alloc);
  }

 protected:
  /// Allocates/advances the transaction counter.
  int64_t BumpTid() {
    int64_t tid = tid_allocator_ ? tid_allocator_() : next_tid_;
    next_tid_ = tid + 1;
    last_tid_ = tid;
    if (first_tid_committed_ == 0) first_tid_committed_ = tid;
    return tid;
  }

  ProvBackend* backend_;
  int64_t next_tid_;
  int64_t last_tid_;
  int64_t first_tid_committed_ = 0;
  TidAllocator tid_allocator_;
};

/// Factory covering all four strategies.
std::unique_ptr<ProvStore> MakeStore(Strategy strategy, ProvBackend* backend,
                                     int64_t first_tid = 1);

}  // namespace cpdb::provenance
