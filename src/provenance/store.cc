#include "provenance/store.h"

#include "provenance/hier_store.h"
#include "provenance/naive_store.h"
#include "provenance/txn_store.h"

namespace cpdb::provenance {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kTransactional:
      return "transactional";
    case Strategy::kHierarchical:
      return "hierarchical";
    case Strategy::kHierarchicalTransactional:
      return "hierarchical-transactional";
  }
  return "?";
}

const char* StrategyShortName(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "N";
    case Strategy::kTransactional:
      return "T";
    case Strategy::kHierarchical:
      return "H";
    case Strategy::kHierarchicalTransactional:
      return "HT";
  }
  return "?";
}

Status ProvStore::TrackBatch(const std::vector<TrackedOp>& ops,
                             std::vector<int64_t>* tids) {
  // Default: dispatch per op. For T/HT this IS group commit — every
  // record lands in the in-memory provlist and the backend sees one
  // WriteRecords at Commit(); the tid is assigned there, so report 0.
  for (const TrackedOp& op : ops) {
    switch (op.kind) {
      case update::OpKind::kInsert:
        CPDB_RETURN_IF_ERROR(TrackInsert(op.effect));
        break;
      case update::OpKind::kDelete:
        CPDB_RETURN_IF_ERROR(TrackDelete(op.effect));
        break;
      case update::OpKind::kCopy:
        CPDB_RETURN_IF_ERROR(TrackCopy(op.effect));
        break;
    }
    if (tids != nullptr) tids->push_back(0);
  }
  return Status::OK();
}

Result<std::optional<ProvRecord>> ProvStore::Lookup(int64_t tid,
                                                    const tree::Path& loc) {
  if (!IsHierarchical()) {
    CPDB_ASSIGN_OR_RETURN(auto exact, backend_->GetExact(tid, loc));
    if (exact.empty()) return std::optional<ProvRecord>();
    return std::optional<ProvRecord>(exact.front());
  }

  // Closest-ancestor inference (Section 2.1.3): the deepest explicit
  // record on the ancestor chain in this transaction governs `loc`; nodes
  // between it and `loc` have none, so the Infer side-condition holds by
  // construction. The whole chain is resolved in ONE batched lookup —
  // "(Tid, Loc) IN (loc, parent(loc), ...)" — where the pre-cursor walk
  // paid one round trip per level.
  // The chain stops at depth 2: update targets sit strictly inside a
  // database, so a database root or the universe root can never be a
  // record's Loc (same cutoff as ScanAtLocOrAncestors).
  std::vector<tree::Path> chain;
  chain.push_back(loc);
  for (tree::Path a = loc; a.Depth() > 2;) {
    a = a.Parent();
    chain.push_back(a);
  }
  CPDB_ASSIGN_OR_RETURN(auto recs, backend_->LookupMany(tid, chain));
  const ProvRecord* best = nullptr;
  for (const ProvRecord& r : recs) {
    if (best == nullptr || best->loc.Depth() < r.loc.Depth()) best = &r;
  }
  if (best == nullptr) return std::optional<ProvRecord>();
  if (best->loc == loc) return std::optional<ProvRecord>(*best);
  switch (best->op) {
    case ProvOp::kCopy:
      // If p came from q, then p/x came from q/x.
      return std::optional<ProvRecord>(
          ProvRecord::Copy(tid, loc, loc.Rebase(best->loc, best->src)));
    case ProvOp::kInsert:
      // Children of inserted nodes are assumed inserted.
      return std::optional<ProvRecord>(ProvRecord::Insert(tid, loc));
    case ProvOp::kDelete:
      // Children of deleted nodes (in the input version) are deleted.
      return std::optional<ProvRecord>(ProvRecord::Delete(tid, loc));
  }
  return Status::Internal("unknown provenance op");
}

std::unique_ptr<ProvStore> MakeStore(Strategy strategy, ProvBackend* backend,
                                     int64_t first_tid) {
  switch (strategy) {
    case Strategy::kNaive:
      return std::make_unique<NaiveStore>(backend, first_tid);
    case Strategy::kHierarchical:
      return std::make_unique<HierStore>(backend, first_tid);
    case Strategy::kTransactional: {
      TxnStoreOptions opts;
      opts.hierarchical = false;
      return std::make_unique<TxnStore>(backend, opts, first_tid);
    }
    case Strategy::kHierarchicalTransactional: {
      TxnStoreOptions opts;
      opts.hierarchical = true;
      opts.local_op_us = 10.0;
      return std::make_unique<TxnStore>(backend, opts, first_tid);
    }
  }
  return nullptr;
}

}  // namespace cpdb::provenance
