#include "provenance/store.h"

#include "provenance/hier_store.h"
#include "provenance/naive_store.h"
#include "provenance/txn_store.h"

namespace cpdb::provenance {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kTransactional:
      return "transactional";
    case Strategy::kHierarchical:
      return "hierarchical";
    case Strategy::kHierarchicalTransactional:
      return "hierarchical-transactional";
  }
  return "?";
}

const char* StrategyShortName(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "N";
    case Strategy::kTransactional:
      return "T";
    case Strategy::kHierarchical:
      return "H";
    case Strategy::kHierarchicalTransactional:
      return "HT";
  }
  return "?";
}

Result<std::optional<ProvRecord>> ProvStore::Lookup(int64_t tid,
                                                    const tree::Path& loc) {
  CPDB_ASSIGN_OR_RETURN(auto exact, backend_->GetExact(tid, loc));
  if (!exact.empty()) return std::optional<ProvRecord>(exact.front());
  if (!IsHierarchical()) return std::optional<ProvRecord>();

  // Closest-ancestor inference (Section 2.1.3): walk up until the first
  // explicit record in this transaction; nodes in between have none, so
  // the Infer side-condition holds by construction. Each probe is a
  // provenance-store round trip, as in the paper's on-the-fly expansion.
  tree::Path a = loc;
  while (!a.IsRoot()) {
    a = a.Parent();
    CPDB_ASSIGN_OR_RETURN(auto recs, backend_->GetExact(tid, a));
    if (recs.empty()) continue;
    const ProvRecord& r = recs.front();
    switch (r.op) {
      case ProvOp::kCopy:
        // If p came from q, then p/x came from q/x.
        return std::optional<ProvRecord>(
            ProvRecord::Copy(tid, loc, loc.Rebase(a, r.src)));
      case ProvOp::kInsert:
        // Children of inserted nodes are assumed inserted.
        return std::optional<ProvRecord>(ProvRecord::Insert(tid, loc));
      case ProvOp::kDelete:
        // Children of deleted nodes (in the input version) are deleted.
        return std::optional<ProvRecord>(ProvRecord::Delete(tid, loc));
    }
  }
  return std::optional<ProvRecord>();
}

Result<std::vector<ProvRecord>> ProvStore::RecordsAtAncestors(
    const tree::Path& loc) {
  std::vector<ProvRecord> out;
  // Ancestors down to depth 2: updates target locations strictly inside a
  // database, so neither the universe root nor a database root (depth 1)
  // can ever be a record's Loc — probing them would be wasted round trips.
  tree::Path a = loc;
  while (a.Depth() > 2) {
    a = a.Parent();
    CPDB_ASSIGN_OR_RETURN(auto recs, backend_->GetAtLoc(a));
    out.insert(out.end(), recs.begin(), recs.end());
  }
  return out;
}

std::unique_ptr<ProvStore> MakeStore(Strategy strategy, ProvBackend* backend,
                                     int64_t first_tid) {
  switch (strategy) {
    case Strategy::kNaive:
      return std::make_unique<NaiveStore>(backend, first_tid);
    case Strategy::kHierarchical:
      return std::make_unique<HierStore>(backend, first_tid);
    case Strategy::kTransactional: {
      TxnStoreOptions opts;
      opts.hierarchical = false;
      return std::make_unique<TxnStore>(backend, opts, first_tid);
    }
    case Strategy::kHierarchicalTransactional: {
      TxnStoreOptions opts;
      opts.hierarchical = true;
      opts.local_op_us = 10.0;
      return std::make_unique<TxnStore>(backend, opts, first_tid);
    }
  }
  return nullptr;
}

}  // namespace cpdb::provenance
