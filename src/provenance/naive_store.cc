#include "provenance/naive_store.h"

namespace cpdb::provenance {

Status NaiveStore::TrackInsert(const update::ApplyEffect& effect) {
  int64_t tid = BumpTid();
  std::vector<ProvRecord> records;
  records.reserve(effect.inserted.size());
  for (const tree::Path& p : effect.inserted) {
    records.push_back(ProvRecord::Insert(tid, p));
  }
  return backend_->WriteRecords(records);
}

Status NaiveStore::TrackDelete(const update::ApplyEffect& effect) {
  int64_t tid = BumpTid();
  std::vector<ProvRecord> records;
  records.reserve(effect.deleted.size());
  for (const tree::Path& p : effect.deleted) {
    records.push_back(ProvRecord::Delete(tid, p));
  }
  return backend_->WriteRecords(records);
}

Status NaiveStore::TrackCopy(const update::ApplyEffect& effect) {
  int64_t tid = BumpTid();
  std::vector<ProvRecord> records;
  records.reserve(effect.copied.size());
  for (const auto& [loc, src] : effect.copied) {
    records.push_back(ProvRecord::Copy(tid, loc, src));
  }
  return backend_->WriteRecords(records);
}

}  // namespace cpdb::provenance
