#include "provenance/naive_store.h"

namespace cpdb::provenance {

Status NaiveStore::AppendRecords(int64_t tid, update::OpKind kind,
                                 const update::ApplyEffect& effect,
                                 std::vector<ProvRecord>* out) {
  switch (kind) {
    case update::OpKind::kInsert:
      for (const tree::Path& p : effect.inserted) {
        out->push_back(ProvRecord::Insert(tid, p));
      }
      return Status::OK();
    case update::OpKind::kDelete:
      for (const tree::Path& p : effect.deleted) {
        out->push_back(ProvRecord::Delete(tid, p));
      }
      return Status::OK();
    case update::OpKind::kCopy:
      for (const auto& [loc, src] : effect.copied) {
        out->push_back(ProvRecord::Copy(tid, loc, src));
      }
      return Status::OK();
  }
  return Status::Internal("unknown update kind");
}

Status NaiveStore::TrackInsert(const update::ApplyEffect& effect) {
  std::vector<ProvRecord> records;
  records.reserve(effect.inserted.size());
  CPDB_RETURN_IF_ERROR(
      AppendRecords(BumpTid(), update::OpKind::kInsert, effect, &records));
  return backend_->WriteRecords(records);
}

Status NaiveStore::TrackDelete(const update::ApplyEffect& effect) {
  std::vector<ProvRecord> records;
  records.reserve(effect.deleted.size());
  CPDB_RETURN_IF_ERROR(
      AppendRecords(BumpTid(), update::OpKind::kDelete, effect, &records));
  return backend_->WriteRecords(records);
}

Status NaiveStore::TrackCopy(const update::ApplyEffect& effect) {
  std::vector<ProvRecord> records;
  records.reserve(effect.copied.size());
  CPDB_RETURN_IF_ERROR(
      AppendRecords(BumpTid(), update::OpKind::kCopy, effect, &records));
  return backend_->WriteRecords(records);
}

Status NaiveStore::TrackBatch(const std::vector<TrackedOp>& ops,
                              std::vector<int64_t>* tids) {
  if (ops.empty()) return Status::OK();
  std::vector<ProvRecord> records;
  for (const TrackedOp& op : ops) {
    int64_t tid = BumpTid();  // each op is still its own transaction
    CPDB_RETURN_IF_ERROR(AppendRecords(tid, op.kind, op.effect, &records));
    if (tids != nullptr) tids->push_back(tid);
  }
  return backend_->WriteRecords(records);
}

}  // namespace cpdb::provenance
