#pragma once

#include <map>
#include <set>

#include "provenance/store.h"

namespace cpdb::provenance {

/// Options for the transactional strategies.
struct TxnStoreOptions {
  /// False = transactional (T): the provlist holds one record per touched
  /// node. True = hierarchical-transactional (HT): the provlist holds
  /// only non-inferable (root) records.
  bool hierarchical = false;

  /// HT only: remove redundant links (a copy record inferable from an
  /// ancestor copy in the same transaction) before committing. The paper
  /// implements but disables this by default: "such redundancy is
  /// unusual, so this extra processing appears not to be worthwhile in
  /// most cases" (Section 3.2.4). Exposed for the ablation benchmark.
  bool dedupe_on_commit = false;

  /// Simulated local (client-side) cost per tracked operation in
  /// microseconds, modelling provlist upkeep. Transactional ops are
  /// "essentially instantaneous"; HT ops pay a little more for the
  /// inferability checks (Section 4.2). Defaults follow those shapes.
  double local_op_us = 2.0;
};

/// Transactional provenance (Sections 2.1.2/2.1.4, 3.2.2/3.2.4).
///
/// Updates accumulate net-effect provenance links in an in-memory active
/// list (the paper's `provlist`); only links describing data present in
/// the transaction's output — plus deletions of data present in its
/// input — survive to Commit(), which writes them all in one round trip.
/// Temporary data created and destroyed within the transaction leaves no
/// trace, and {Tid, Loc} remains a key of the committed table.
///
/// TrackBatch rides the base-class default: batched tracking feeds the
/// provlist exactly like per-op tracking (no backend traffic either way),
/// and the single WriteRecords at Commit() is the group-commit flush the
/// per-op strategies emulate per batch.
///
/// With options.hierarchical, the provlist holds hierarchical records
/// (subtree roots only) and Lookup() applies closest-ancestor inference.
class TxnStore : public ProvStore {
 public:
  TxnStore(ProvBackend* backend, TxnStoreOptions options,
           int64_t first_tid = 1)
      : ProvStore(backend, first_tid), options_(options) {}

  Strategy strategy() const override {
    return options_.hierarchical ? Strategy::kHierarchicalTransactional
                                 : Strategy::kTransactional;
  }

  Status TrackInsert(const update::ApplyEffect& effect) override;
  Status TrackDelete(const update::ApplyEffect& effect) override;
  Status TrackCopy(const update::ApplyEffect& effect) override;

  /// Writes the provlist in a single round trip and starts a new
  /// transaction. A transaction with no net changes still consumes a tid
  /// (the version sequence advances) but costs no round trip.
  Status Commit() override;

  bool HasPending() const override { return !provlist_.empty(); }
  void AbortPending() override;

  bool IsHierarchical() const override { return options_.hierarchical; }

  /// Current provlist size (exposed for tests of pruning semantics).
  size_t PendingCount() const { return provlist_.size(); }

 private:
  /// Removes provlist entries at or under `root`.
  void PruneUnder(const tree::Path& root);

  /// True if `p` did not exist at the start of the open transaction.
  /// (Nodes in `removed_` existed at start and are currently deleted;
  /// nodes in `created_` were created by this transaction.)
  bool CreatedThisTxn(const tree::Path& p) const {
    return created_.count(p) > 0;
  }

  /// HT: true if an insert record at `p` is inferable from the closest
  /// provlist ancestor (which must itself be an insert).
  bool InsertInferable(const tree::Path& p) const;

  void ChargeLocal() {
    backend_->cost_sink()->ChargeLocal(options_.local_op_us);
  }

  TxnStoreOptions options_;
  /// Active list, keyed by Loc ({Tid, Loc} key invariant by construction).
  std::map<tree::Path, ProvRecord> provlist_;
  /// Paths created since the transaction began (and still existing).
  std::set<tree::Path> created_;
  /// Paths that existed at transaction start and are currently deleted.
  std::set<tree::Path> removed_;
};

}  // namespace cpdb::provenance
