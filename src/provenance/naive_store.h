#pragma once

#include "provenance/store.h"

namespace cpdb::provenance {

/// Naive provenance (Section 2.1.1 / 3.2.1): one provenance record for
/// every node inserted, deleted, or copied, and each update operation is
/// its own transaction. Retains the maximum possible information — the
/// exact update script can be recovered from the store — at the highest
/// storage cost (proportional to the data touched).
class NaiveStore : public ProvStore {
 public:
  using ProvStore::ProvStore;

  Strategy strategy() const override { return Strategy::kNaive; }

  Status TrackInsert(const update::ApplyEffect& effect) override;
  Status TrackDelete(const update::ApplyEffect& effect) override;
  Status TrackCopy(const update::ApplyEffect& effect) override;

  /// Group commit: same per-op records and per-op tids as the Track*
  /// calls, but the whole batch reaches the backend in one WriteRecords
  /// round trip. A failed batch writes nothing.
  Status TrackBatch(const std::vector<TrackedOp>& ops,
                    std::vector<int64_t>* tids = nullptr) override;

  /// Per-operation transactions: nothing is pending, so Commit is a no-op.
  Status Commit() override { return Status::OK(); }

 private:
  /// Appends one op's records (one per touched node) under `tid`.
  static Status AppendRecords(int64_t tid, update::OpKind kind,
                              const update::ApplyEffect& effect,
                              std::vector<ProvRecord>* out);
};

}  // namespace cpdb::provenance
