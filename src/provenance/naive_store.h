#pragma once

#include "provenance/store.h"

namespace cpdb::provenance {

/// Naive provenance (Section 2.1.1 / 3.2.1): one provenance record for
/// every node inserted, deleted, or copied, and each update operation is
/// its own transaction. Retains the maximum possible information — the
/// exact update script can be recovered from the store — at the highest
/// storage cost (proportional to the data touched).
class NaiveStore : public ProvStore {
 public:
  using ProvStore::ProvStore;

  Strategy strategy() const override { return Strategy::kNaive; }

  Status TrackInsert(const update::ApplyEffect& effect) override;
  Status TrackDelete(const update::ApplyEffect& effect) override;
  Status TrackCopy(const update::ApplyEffect& effect) override;

  /// Per-operation transactions: nothing is pending, so Commit is a no-op.
  Status Commit() override { return Status::OK(); }
};

}  // namespace cpdb::provenance
