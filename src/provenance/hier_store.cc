#include "provenance/hier_store.h"

namespace cpdb::provenance {

Status HierStore::TrackInsert(const update::ApplyEffect& effect) {
  if (effect.inserted.empty()) {
    return Status::InvalidArgument("insert effect with no inserted node");
  }
  const tree::Path& p = effect.inserted.front();
  int64_t tid = BumpTid();
  // Probe whether an ancestor record in this transaction would make the
  // new record inferable. With per-operation transactions the probe never
  // hits, but it is a real provenance-store round trip — the cause of the
  // hierarchical method's higher insert cost in Figure 10. Deliberately
  // kept as a single point lookup (not folded into a batch) so that cost
  // survives the cursor/batch read redesign.
  if (!p.IsRoot()) {
    CPDB_ASSIGN_OR_RETURN(auto existing, backend_->GetExact(tid, p.Parent()));
    if (!existing.empty() && existing.front().op == ProvOp::kInsert) {
      return Status::OK();  // inferable from the parent's insert
    }
  }
  return backend_->WriteRecords({ProvRecord::Insert(tid, p)});
}

Status HierStore::TrackDelete(const update::ApplyEffect& effect) {
  if (effect.deleted.empty()) {
    return Status::InvalidArgument("delete effect with no deleted nodes");
  }
  // Only the subtree root is recorded; descendants (in the pre-state)
  // are inferred as deleted.
  int64_t tid = BumpTid();
  return backend_->WriteRecords(
      {ProvRecord::Delete(tid, effect.deleted.front())});
}

Status HierStore::TrackCopy(const update::ApplyEffect& effect) {
  if (effect.copied.empty()) {
    return Status::InvalidArgument("copy effect with no copied nodes");
  }
  int64_t tid = BumpTid();
  const auto& [loc, src] = effect.copied.front();
  return backend_->WriteRecords({ProvRecord::Copy(tid, loc, src)});
}

}  // namespace cpdb::provenance
