#include "provenance/hier_store.h"

namespace cpdb::provenance {

Status HierStore::CheckEffect(update::OpKind kind,
                              const update::ApplyEffect& effect) {
  switch (kind) {
    case update::OpKind::kInsert:
      if (effect.inserted.empty()) {
        return Status::InvalidArgument("insert effect with no inserted node");
      }
      return Status::OK();
    case update::OpKind::kDelete:
      if (effect.deleted.empty()) {
        return Status::InvalidArgument("delete effect with no deleted nodes");
      }
      return Status::OK();
    case update::OpKind::kCopy:
      if (effect.copied.empty()) {
        return Status::InvalidArgument("copy effect with no copied nodes");
      }
      return Status::OK();
  }
  return Status::Internal("unknown update kind");
}

Status HierStore::AppendRecord(int64_t tid, update::OpKind kind,
                               const update::ApplyEffect& effect,
                               std::vector<ProvRecord>* out) {
  switch (kind) {
    case update::OpKind::kInsert: {
      const tree::Path& p = effect.inserted.front();
      // Probe whether an ancestor record in this transaction would make
      // the new record inferable. With per-operation transactions the
      // probe never hits, but it is a real provenance-store round trip —
      // the cause of the hierarchical method's higher insert cost in
      // Figure 10. Deliberately kept as a single point lookup per insert
      // (not folded into the group commit) so that cost survives both the
      // cursor read redesign and the batched write path.
      if (!p.IsRoot()) {
        CPDB_ASSIGN_OR_RETURN(auto existing,
                              backend_->GetExact(tid, p.Parent()));
        if (!existing.empty() && existing.front().op == ProvOp::kInsert) {
          return Status::OK();  // inferable from the parent's insert
        }
      }
      out->push_back(ProvRecord::Insert(tid, p));
      return Status::OK();
    }
    case update::OpKind::kDelete:
      // Only the subtree root is recorded; descendants (in the pre-state)
      // are inferred as deleted.
      out->push_back(ProvRecord::Delete(tid, effect.deleted.front()));
      return Status::OK();
    case update::OpKind::kCopy: {
      const auto& [loc, src] = effect.copied.front();
      out->push_back(ProvRecord::Copy(tid, loc, src));
      return Status::OK();
    }
  }
  return Status::Internal("unknown update kind");
}

Status HierStore::TrackInsert(const update::ApplyEffect& effect) {
  CPDB_RETURN_IF_ERROR(CheckEffect(update::OpKind::kInsert, effect));
  std::vector<ProvRecord> records;
  CPDB_RETURN_IF_ERROR(
      AppendRecord(BumpTid(), update::OpKind::kInsert, effect, &records));
  if (records.empty()) return Status::OK();  // inferable: nothing to write
  return backend_->WriteRecords(records);
}

Status HierStore::TrackDelete(const update::ApplyEffect& effect) {
  CPDB_RETURN_IF_ERROR(CheckEffect(update::OpKind::kDelete, effect));
  std::vector<ProvRecord> records;
  CPDB_RETURN_IF_ERROR(
      AppendRecord(BumpTid(), update::OpKind::kDelete, effect, &records));
  return backend_->WriteRecords(records);
}

Status HierStore::TrackCopy(const update::ApplyEffect& effect) {
  CPDB_RETURN_IF_ERROR(CheckEffect(update::OpKind::kCopy, effect));
  std::vector<ProvRecord> records;
  CPDB_RETURN_IF_ERROR(
      AppendRecord(BumpTid(), update::OpKind::kCopy, effect, &records));
  return backend_->WriteRecords(records);
}

Status HierStore::TrackBatch(const std::vector<TrackedOp>& ops,
                             std::vector<int64_t>* tids) {
  if (ops.empty()) return Status::OK();
  // Validate every effect before consuming any tid, so a malformed batch
  // neither advances the version sequence nor writes anything.
  for (const TrackedOp& op : ops) {
    CPDB_RETURN_IF_ERROR(CheckEffect(op.kind, op.effect));
  }
  std::vector<ProvRecord> records;
  records.reserve(ops.size());
  for (const TrackedOp& op : ops) {
    int64_t tid = BumpTid();  // each op is still its own transaction
    CPDB_RETURN_IF_ERROR(AppendRecord(tid, op.kind, op.effect, &records));
    if (tids != nullptr) tids->push_back(tid);
  }
  if (records.empty()) return Status::OK();
  return backend_->WriteRecords(records);
}

}  // namespace cpdb::provenance
