#pragma once

#include <functional>
#include <vector>

#include "provenance/prov_record.h"
#include "tree/tree.h"
#include "util/result.h"

namespace cpdb::provenance {

/// Callback giving the universe tree as of the *end* of transaction
/// `tid` (so `tid - 1` is the state the transaction started from).
/// Returns nullptr if the version is unknown.
using VersionFn = std::function<const tree::Tree*(int64_t tid)>;

/// Expands a hierarchical provenance table into the full provenance
/// table — the executable form of the paper's recursive view
/// (Section 2.1.3):
///
///   Prov(t,op,p,q)    <- HProv(t,op,p,q).
///   Prov(t,C,p/a,q/a) <- Prov(t,C,p,q), Infer(t,p/a).
///   Prov(t,I,p/a,bot) <- Prov(t,I,p,bot), Infer(t,p/a).
///   Prov(t,D,p/a,bot) <- Prov(t,D,p,bot), Infer(t,p/a).
///
/// (The paper prints the side condition as Infer(t,p); it must be
/// Infer(t,p/a) — the *derived child* must lack explicit provenance, or
/// explicit records at copied-into children would be shadowed. Figure
/// 5(c/d) confirms: 126 C T/c2/y overrides inference from 124 C T/c2.)
///
/// Insert/copy records expand over the children present at the end of
/// transaction t; delete records expand over the children in the input
/// version t-1. `versions` must therefore cover [t-1, t] for every tid in
/// `hier`.
///
/// The result is ordered by (tid, loc) and, for a store produced by
/// single-operation transactions, equals the naive store's table — a
/// property test in tests/inference_test.cc checks exactly that.
Result<std::vector<ProvRecord>> ExpandToFull(
    const std::vector<ProvRecord>& hier, const VersionFn& versions);

/// Convenience: expands only the records of one transaction.
Result<std::vector<ProvRecord>> ExpandTxn(
    const std::vector<ProvRecord>& txn_records, const tree::Tree* post,
    const tree::Tree* pre);

}  // namespace cpdb::provenance
