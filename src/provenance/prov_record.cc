#include "provenance/prov_record.h"

#include <algorithm>
#include <sstream>

namespace cpdb::provenance {

char ProvOpChar(ProvOp op) { return static_cast<char>(op); }

std::optional<ProvOp> ProvOpFromChar(char c) {
  switch (c) {
    case 'I':
      return ProvOp::kInsert;
    case 'C':
      return ProvOp::kCopy;
    case 'D':
      return ProvOp::kDelete;
    default:
      return std::nullopt;
  }
}

std::string ProvRecord::ToString() const {
  std::ostringstream os;
  os << tid << " " << ProvOpChar(op) << " " << loc.ToString() << " ";
  if (op == ProvOp::kCopy) {
    os << src.ToString();
  } else {
    os << "⊥";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ProvRecord& r) {
  return os << r.ToString();
}

std::string RecordsToTable(std::vector<ProvRecord> records) {
  std::sort(records.begin(), records.end());
  std::ostringstream os;
  os << "Tid Op Loc Src\n";
  for (const auto& r : records) os << r.ToString() << "\n";
  return os.str();
}

}  // namespace cpdb::provenance
