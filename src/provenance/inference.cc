#include "provenance/inference.h"

#include <algorithm>
#include <map>
#include <set>

namespace cpdb::provenance {

namespace {

/// Recursively derives records for descendants of `node` (located at
/// `loc` in the relevant version), stopping wherever an explicit record
/// exists (the Infer side condition).
void ExpandDown(const ProvRecord& base, const tree::Tree* node,
                const tree::Path& loc,
                const std::set<tree::Path>& explicit_locs,
                std::vector<ProvRecord>* out) {
  if (node == nullptr) return;
  for (const auto& [label, child] : node->children()) {
    tree::Path child_loc = loc.Child(label);
    if (explicit_locs.count(child_loc) > 0) continue;  // shadowed
    ProvRecord derived = base;
    derived.loc = child_loc;
    if (base.op == ProvOp::kCopy) {
      // Rebase is always relative to the explicit anchor record `base`.
      derived.src = child_loc.Rebase(base.loc, base.src);
    }
    out->push_back(derived);
    ExpandDown(base, child.get(), child_loc, explicit_locs, out);
  }
}

}  // namespace

Result<std::vector<ProvRecord>> ExpandTxn(
    const std::vector<ProvRecord>& txn_records, const tree::Tree* post,
    const tree::Tree* pre) {
  std::set<tree::Path> explicit_locs;
  for (const ProvRecord& r : txn_records) explicit_locs.insert(r.loc);

  std::vector<ProvRecord> out;
  for (const ProvRecord& r : txn_records) {
    out.push_back(r);
    const tree::Tree* version = r.op == ProvOp::kDelete ? pre : post;
    if (version == nullptr) {
      return Status::InvalidArgument(
          "missing version tree for transaction " + std::to_string(r.tid));
    }
    const tree::Tree* node = version->Find(r.loc);
    // A node can be legitimately absent in `post`: e.g. its subtree was
    // later overwritten in the same expansion set only for multi-op
    // transactions, which hierarchical per-op stores never produce. For
    // robustness we simply skip expansion then.
    ExpandDown(r, node, r.loc, explicit_locs, &out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<ProvRecord>> ExpandToFull(
    const std::vector<ProvRecord>& hier, const VersionFn& versions) {
  std::map<int64_t, std::vector<ProvRecord>> by_tid;
  for (const ProvRecord& r : hier) by_tid[r.tid].push_back(r);

  std::vector<ProvRecord> out;
  for (const auto& [tid, records] : by_tid) {
    CPDB_ASSIGN_OR_RETURN(
        auto expanded,
        ExpandTxn(records, versions(tid), versions(tid - 1)));
    out.insert(out.end(), expanded.begin(), expanded.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cpdb::provenance
