#pragma once

#include "provenance/store.h"

namespace cpdb::provenance {

/// Hierarchical provenance (Section 2.1.3 / 3.2.3): stores at most one
/// record per operation — the link for the *root* of the affected subtree.
/// Children's provenance is inferred from the closest ancestor's record
/// by the recursive view of Section 2.1.3, implemented on the fly by
/// Lookup(). Each operation is its own transaction.
///
/// Faithful to the paper's observed costs, inserts perform an existence
/// probe against the provenance store before writing ("we must first
/// query the provenance database to determine whether to add the
/// provenance record"), making hierarchical inserts slower than naive
/// ones while copies are much cheaper (Figure 10).
class HierStore : public ProvStore {
 public:
  using ProvStore::ProvStore;

  Strategy strategy() const override { return Strategy::kHierarchical; }

  Status TrackInsert(const update::ApplyEffect& effect) override;
  Status TrackDelete(const update::ApplyEffect& effect) override;
  Status TrackCopy(const update::ApplyEffect& effect) override;

  /// Group commit: per-op tids and records identical to the Track*
  /// calls — including the per-insert existence probe, which remains one
  /// real provenance-store round trip per insert (the Figure 10 cost) —
  /// but all surviving records flush in one WriteRecords round trip.
  Status TrackBatch(const std::vector<TrackedOp>& ops,
                    std::vector<int64_t>* tids = nullptr) override;

  Status Commit() override { return Status::OK(); }

  bool IsHierarchical() const override { return true; }

 private:
  /// Rejects malformed effects (empty touched-node lists) — checked
  /// before any tid is consumed, so a rejected call never advances the
  /// version sequence.
  static Status CheckEffect(update::OpKind kind,
                            const update::ApplyEffect& effect);

  /// Builds op's (at most one) record under `tid`, probing the backend
  /// for insert inferability; appends nothing when inferable. The effect
  /// must have passed CheckEffect.
  Status AppendRecord(int64_t tid, update::OpKind kind,
                      const update::ApplyEffect& effect,
                      std::vector<ProvRecord>* out);
};

}  // namespace cpdb::provenance
