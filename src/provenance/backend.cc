#include "provenance/backend.h"

#include <cassert>

namespace cpdb::provenance {

const char* ProvBackend::kProvTable = "Prov";
const char* ProvBackend::kMetaTable = "TxnMeta";

using relstore::ColumnType;
using relstore::Datum;
using relstore::Row;
using relstore::Schema;

ProvBackend::ProvBackend(relstore::Database* db, bool use_indexes)
    : db_(db), use_indexes_(use_indexes) {
  Schema prov_schema({{"Tid", ColumnType::kInt64, false},
                      {"Op", ColumnType::kString, false},
                      {"Loc", ColumnType::kString, false},
                      {"Src", ColumnType::kString, true}});
  auto prov = db_->CreateTable(kProvTable, prov_schema);
  assert(prov.ok());
  prov_ = prov.value();
  // {Tid, Loc} is the table key (paper Section 2.1); Loc and Tid are the
  // "natural candidates for indexing" the paper names.
  Status st =
      prov_->CreateIndex("pk_tid_loc", {0, 2}, relstore::IndexKind::kBTree,
                         /*unique=*/true);
  assert(st.ok());
  st = prov_->CreateIndex("idx_loc", {2}, relstore::IndexKind::kBTree);
  assert(st.ok());
  st = prov_->CreateIndex("idx_tid", {0}, relstore::IndexKind::kHash);
  assert(st.ok());

  Schema meta_schema({{"Tid", ColumnType::kInt64, false},
                      {"User", ColumnType::kString, true},
                      {"CommitSeq", ColumnType::kInt64, false},
                      {"Note", ColumnType::kString, true}});
  auto meta = db_->CreateTable(kMetaTable, meta_schema);
  assert(meta.ok());
  meta_ = meta.value();
  st = meta_->CreateIndex("pk_tid", {0}, relstore::IndexKind::kBTree,
                          /*unique=*/true);
  assert(st.ok());
  (void)st;
}

Row ProvBackend::ToRow(const ProvRecord& rec) {
  return Row{Datum(rec.tid), Datum(std::string(1, ProvOpChar(rec.op))),
             Datum(rec.loc.ToString()),
             rec.op == ProvOp::kCopy ? Datum(rec.src.ToString()) : Datum()};
}

Result<ProvRecord> ProvBackend::FromRow(const Row& row) {
  ProvRecord rec;
  rec.tid = row[0].AsInt();
  auto op = ProvOpFromChar(row[1].AsString().empty() ? '?'
                                                     : row[1].AsString()[0]);
  if (!op.has_value()) {
    return Status::Internal("corrupt Op column: " + row[1].ToString());
  }
  rec.op = *op;
  CPDB_ASSIGN_OR_RETURN(rec.loc, tree::Path::Parse(row[2].AsString()));
  if (!row[3].is_null()) {
    CPDB_ASSIGN_OR_RETURN(rec.src, tree::Path::Parse(row[3].AsString()));
  }
  return rec;
}

void ProvBackend::ChargeQuery(size_t rows_returned) {
  // Indexed: pay for the round trip and the rows actually returned.
  // Unindexed: the server scans the whole table per query.
  size_t rows = use_indexes_ ? rows_returned : prov_->RowCount();
  db_->cost().ChargeCall(rows);
}

Status ProvBackend::WriteRecords(const std::vector<ProvRecord>& records) {
  size_t bytes = 0;
  for (const ProvRecord& rec : records) {
    CPDB_RETURN_IF_ERROR(prov_->Insert(ToRow(rec)).status());
    bytes += rec.loc.ToString().size() + rec.src.ToString().size() + 16;
  }
  db_->cost().ChargeCall(records.size(), bytes);
  return Status::OK();
}

Status ProvBackend::WriteTxnMeta(const TxnMeta& meta) {
  CPDB_RETURN_IF_ERROR(
      meta_
          ->Insert(Row{Datum(meta.tid), Datum(meta.user),
                       Datum(meta.commit_seq), Datum(meta.note)})
          .status());
  db_->cost().ChargeCall(1);
  return Status::OK();
}

Result<std::vector<ProvRecord>> ProvBackend::GetExact(int64_t tid,
                                                      const tree::Path& loc) {
  std::vector<ProvRecord> out;
  Status inner = Status::OK();
  CPDB_RETURN_IF_ERROR(prov_->LookupEq(
      "pk_tid_loc", Row{Datum(tid), Datum(loc.ToString())},
      [&](const relstore::Rid&, const Row& row) {
        auto rec = FromRow(row);
        if (!rec.ok()) {
          inner = rec.status();
          return false;
        }
        out.push_back(std::move(rec).value());
        return true;
      }));
  CPDB_RETURN_IF_ERROR(inner);
  ChargeQuery(out.size());
  return out;
}

Result<std::vector<ProvRecord>> ProvBackend::GetAtLoc(const tree::Path& loc) {
  std::vector<ProvRecord> out;
  Status inner = Status::OK();
  CPDB_RETURN_IF_ERROR(prov_->LookupEq(
      "idx_loc", Row{Datum(loc.ToString())},
      [&](const relstore::Rid&, const Row& row) {
        auto rec = FromRow(row);
        if (!rec.ok()) {
          inner = rec.status();
          return false;
        }
        out.push_back(std::move(rec).value());
        return true;
      }));
  CPDB_RETURN_IF_ERROR(inner);
  ChargeQuery(out.size());
  return out;
}

Result<std::vector<ProvRecord>> ProvBackend::GetUnder(const tree::Path& loc) {
  std::vector<ProvRecord> out;
  Status inner = Status::OK();
  auto emit = [&](const relstore::Rid&, const Row& row) {
    auto rec = FromRow(row);
    if (!rec.ok()) {
      inner = rec.status();
      return false;
    }
    out.push_back(std::move(rec).value());
    return true;
  };
  // The node itself plus everything strictly below it. Scanning the
  // string prefix "loc/" is exact (labels cannot contain '/').
  CPDB_RETURN_IF_ERROR(
      prov_->LookupEq("idx_loc", Row{Datum(loc.ToString())}, emit));
  CPDB_RETURN_IF_ERROR(inner);
  CPDB_RETURN_IF_ERROR(
      prov_->ScanPrefix("idx_loc", loc.ToString() + "/", emit));
  CPDB_RETURN_IF_ERROR(inner);
  ChargeQuery(out.size());
  return out;
}

Result<std::vector<ProvRecord>> ProvBackend::GetAtLocOrAncestors(
    const tree::Path& loc) {
  std::vector<ProvRecord> out;
  Status inner = Status::OK();
  auto emit = [&](const relstore::Rid&, const Row& row) {
    auto rec = FromRow(row);
    if (!rec.ok()) {
      inner = rec.status();
      return false;
    }
    out.push_back(std::move(rec).value());
    return true;
  };
  tree::Path a = loc;
  for (;;) {
    CPDB_RETURN_IF_ERROR(
        prov_->LookupEq("idx_loc", Row{Datum(a.ToString())}, emit));
    CPDB_RETURN_IF_ERROR(inner);
    if (a.IsRoot()) break;
    a = a.Parent();
  }
  ChargeQuery(out.size());
  return out;
}

Result<std::vector<ProvRecord>> ProvBackend::GetForTid(int64_t tid) {
  std::vector<ProvRecord> out;
  Status inner = Status::OK();
  CPDB_RETURN_IF_ERROR(prov_->LookupEq(
      "idx_tid", Row{Datum(tid)}, [&](const relstore::Rid&, const Row& row) {
        auto rec = FromRow(row);
        if (!rec.ok()) {
          inner = rec.status();
          return false;
        }
        out.push_back(std::move(rec).value());
        return true;
      }));
  CPDB_RETURN_IF_ERROR(inner);
  ChargeQuery(out.size());
  return out;
}

Result<std::vector<ProvRecord>> ProvBackend::GetAll() {
  std::vector<ProvRecord> out;
  Status inner = Status::OK();
  CPDB_RETURN_IF_ERROR(prov_->ScanIndex(
      "pk_tid_loc", [&](const relstore::Rid&, const Row& row) {
        auto rec = FromRow(row);
        if (!rec.ok()) {
          inner = rec.status();
          return false;
        }
        out.push_back(std::move(rec).value());
        return true;
      }));
  CPDB_RETURN_IF_ERROR(inner);
  ChargeQuery(out.size());
  return out;
}

size_t ProvBackend::RowCount() const { return prov_->RowCount(); }

size_t ProvBackend::PhysicalBytes() const { return prov_->PhysicalBytes(); }

}  // namespace cpdb::provenance
