#include "provenance/backend.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace cpdb::provenance {

const char* ProvBackend::kProvTable = "Prov";
const char* ProvBackend::kMetaTable = "TxnMeta";

using relstore::ColumnType;
using relstore::Datum;
using relstore::Row;
using relstore::ScanSpec;
using relstore::Schema;

namespace {

/// True if the table carries an index matching `want` exactly — name,
/// columns, kind, and uniqueness. Name alone is not enough: a foreign
/// index merely NAMED pk_tid_loc would silently break the unique-key and
/// cursor-ordering contracts.
bool HasIndex(const relstore::Table& table,
              const relstore::IndexDef& want) {
  for (const relstore::IndexDef& def : table.IndexDefs()) {
    if (def.name == want.name) {
      return def.columns == want.columns && def.kind == want.kind &&
             def.unique == want.unique;
    }
  }
  return false;
}

/// Hard abort (active in all build types, like BTree::CheckInvariants)
/// when an adopted table is not ours: silently adopting a foreign "Prov"
/// would surface as baffling write errors far from the construction
/// site, and release builds strip assert().
void CheckAdopted(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr,
                 "ProvBackend: existing table is not a provenance store "
                 "(%s)\n",
                 what);
    std::abort();
  }
}

}  // namespace

ProvBackend ProvBackend::View(ProvBackend* shared,
                              relstore::CostModel* sink) {
  ProvBackend view;
  view.db_ = shared->db_;
  view.prov_ = shared->prov_;
  view.meta_ = shared->meta_;
  view.use_indexes_ = shared->use_indexes_;
  view.sink_ = sink;
  view.write_mu_ = shared->write_mu_;
  return view;
}

ProvBackend::ProvBackend(relstore::Database* db, bool use_indexes)
    : db_(db), use_indexes_(use_indexes), sink_(&db->cost()),
      write_mu_(std::make_shared<Mutex>()) {
  Schema prov_schema({{"Tid", ColumnType::kInt64, false},
                      {"Op", ColumnType::kString, false},
                      {"Loc", ColumnType::kString, false},
                      {"Src", ColumnType::kString, true}});
  // A recovered durable database already holds the provenance tables
  // (recreated by the checkpoint/log replay, indexes included); adopt
  // them so reopening a store resumes where the last session committed —
  // but only if they really are OUR tables: adopting a stranger named
  // "Prov" would surface as baffling write errors far from here.
  auto existing_prov = db_->GetTable(kProvTable);
  if (existing_prov.ok()) {
    prov_ = existing_prov.value();
    CheckAdopted(prov_->schema() == prov_schema, "Prov schema mismatch");
    CheckAdopted(HasIndex(*prov_, {"pk_tid_loc",
                                   {0, 2},
                                   relstore::IndexKind::kBTree,
                                   /*unique=*/true}),
                 "Prov pk_tid_loc missing or mismatched");
    CheckAdopted(HasIndex(*prov_, {"idx_loc_tid",
                                   {2, 0},
                                   relstore::IndexKind::kBTree,
                                   /*unique=*/false}),
                 "Prov idx_loc_tid missing or mismatched");
  } else {
    auto prov = db_->CreateTable(kProvTable, std::move(prov_schema));
    assert(prov.ok());
    prov_ = prov.value();
    // {Tid, Loc} is the table key (paper Section 2.1); Loc and Tid are
    // the "natural candidates for indexing" the paper names. Both indexes
    // carry the full key so every cursor's ordering is deterministic: the
    // primary yields (Tid, Loc), the secondary (Loc, Tid).
    Status st = prov_->CreateIndex("pk_tid_loc", {0, 2},
                                   relstore::IndexKind::kBTree,
                                   /*unique=*/true);
    assert(st.ok());
    st = prov_->CreateIndex("idx_loc_tid", {2, 0},
                            relstore::IndexKind::kBTree);
    assert(st.ok());
    (void)st;
  }

  Schema meta_schema({{"Tid", ColumnType::kInt64, false},
                      {"User", ColumnType::kString, true},
                      {"CommitSeq", ColumnType::kInt64, false},
                      {"Note", ColumnType::kString, true}});
  auto existing_meta = db_->GetTable(kMetaTable);
  if (existing_meta.ok()) {
    meta_ = existing_meta.value();
    CheckAdopted(meta_->schema() == meta_schema, "TxnMeta schema mismatch");
    CheckAdopted(
        HasIndex(*meta_,
                 {"pk_tid", {0}, relstore::IndexKind::kBTree, true}),
        "TxnMeta pk_tid missing or mismatched");
  } else {
    auto meta = db_->CreateTable(kMetaTable, std::move(meta_schema));
    assert(meta.ok());
    meta_ = meta.value();
    Status st = meta_->CreateIndex("pk_tid", {0},
                                   relstore::IndexKind::kBTree,
                                   /*unique=*/true);
    assert(st.ok());
    (void)st;
  }
}

Row ProvBackend::ToRow(const ProvRecord& rec) {
  return Row{Datum(rec.tid), Datum(std::string(1, ProvOpChar(rec.op))),
             Datum(rec.loc.ToString()),
             rec.op == ProvOp::kCopy ? Datum(rec.src.ToString()) : Datum()};
}

Result<ProvRecord> ProvBackend::FromRow(const Row& row) {
  ProvRecord rec;
  rec.tid = row[0].AsInt();
  auto op = ProvOpFromChar(row[1].AsString().empty() ? '?'
                                                     : row[1].AsString()[0]);
  if (!op.has_value()) {
    return Status::Internal("corrupt Op column: " + row[1].ToString());
  }
  rec.op = *op;
  CPDB_ASSIGN_OR_RETURN(rec.loc, tree::Path::Parse(row[2].AsString()));
  if (!row[3].is_null()) {
    CPDB_ASSIGN_OR_RETURN(rec.src, tree::Path::Parse(row[3].AsString()));
  }
  return rec;
}

size_t ProvBackend::ApproxBytes(const ProvRecord& rec) {
  return rec.loc.ToString().size() + rec.src.ToString().size() + 16;
}

// ----- ProvCursor ----------------------------------------------------------

void ProvCursor::AddSegment(relstore::ScanSpec spec) {
  auto cur = prov_->OpenScan(std::move(spec));
  if (!cur.ok()) {
    status_ = cur.status();
    return;
  }
  segments_.push_back(std::move(cur).value());
}

size_t ProvCursor::Next(std::vector<ProvRecord>* batch, size_t max) {
  batch->clear();
  if (exhausted_ || !status_.ok() || max == 0) return 0;
  Row row;
  while (batch->size() < max && seg_ < segments_.size()) {
    relstore::Table::Cursor& cur = segments_[seg_];
    if (!cur.Next(&row)) {
      if (!cur.status().ok()) {
        status_ = cur.status();
        break;
      }
      ++seg_;  // segment drained; the statement continues with the next
      continue;
    }
    auto rec = ProvBackend::FromRow(row);
    if (!rec.ok()) {
      status_ = rec.status();
      break;
    }
    batch->push_back(std::move(rec).value());
  }
  if (seg_ >= segments_.size() || !status_.ok()) exhausted_ = true;
  // One round trip per fetch that reaches the server. An empty statement
  // (no segments — e.g. an ancestor scan of a too-shallow path) is never
  // sent and costs nothing. In unindexed mode the first fetch pays the
  // server-side full-table scan.
  if (!segments_.empty()) {
    size_t rows = batch->size();
    if (first_fetch_ && !use_indexes_) rows = prov_->RowCount();
    sink_->ChargeCall(rows);
    ++round_trips_;
    first_fetch_ = false;
  }
  return batch->size();
}

bool ProvCursor::Next(ProvRecord* rec) {
  if (buf_pos_ >= buf_.size()) {
    if (exhausted_ || !status_.ok()) return false;
    Next(&buf_, kDefaultBatch);
    buf_pos_ = 0;
    if (buf_.empty()) return false;
  }
  *rec = std::move(buf_[buf_pos_++]);
  return true;
}

// ----- Writes --------------------------------------------------------------

Status ProvBackend::WriteRecords(const std::vector<ProvRecord>& records) {
  MutexLock write_gate(*write_mu_);
  relstore::WriteBatch batch;
  size_t bytes = 0;
  for (const ProvRecord& rec : records) {
    batch.Insert(ToRow(rec));
    bytes += ApproxBytes(rec);
  }
  // One statement, validated up front: a duplicate {Tid, Loc} rejects the
  // whole batch with nothing written (the pre-batch path left a partial
  // insert prefix behind). Each index absorbs the batch as one sorted run.
  CPDB_RETURN_IF_ERROR(prov_->ApplyBatch(batch).status());
  sink_->ChargeWrite(records.size(), bytes);
  return Status::OK();
}

Status ProvBackend::WriteTxnMeta(const TxnMeta& meta) {
  MutexLock write_gate(*write_mu_);
  CPDB_RETURN_IF_ERROR(
      meta_
          ->Insert(Row{Datum(meta.tid), Datum(meta.user),
                       Datum(meta.commit_seq), Datum(meta.note)})
          .status());
  sink_->ChargeWrite(1);
  return Status::OK();
}

// ----- Streaming reads -----------------------------------------------------

ProvCursor ProvBackend::ScanAll() {
  ProvCursor cur = MakeCursor();
  ScanSpec spec;
  spec.index = "pk_tid_loc";
  cur.AddSegment(Bounded(std::move(spec)));
  return cur;
}

ProvCursor ProvBackend::ScanForTid(int64_t tid) {
  ProvCursor cur = MakeCursor();
  ScanSpec spec;
  spec.index = "pk_tid_loc";
  spec.eq = Row{Datum(tid)};
  cur.AddSegment(Bounded(std::move(spec)));
  return cur;
}

ProvCursor ProvBackend::ScanAtLoc(const tree::Path& loc) {
  ProvCursor cur = MakeCursor();
  ScanSpec spec;
  spec.index = "idx_loc_tid";
  spec.eq = Row{Datum(loc.ToString())};
  cur.AddSegment(Bounded(std::move(spec)));
  return cur;
}

ProvCursor ProvBackend::ScanUnder(const tree::Path& loc) {
  ProvCursor cur = MakeCursor();
  if (loc.IsRoot()) {
    // Everything is under the universe root.
    ScanSpec spec;
    spec.index = "idx_loc_tid";
    cur.AddSegment(Bounded(std::move(spec)));
    return cur;
  }
  // The node itself plus everything strictly below it. The two ranges are
  // separately contiguous in the index ("loc" and "loc/..."; labels may
  // contain characters sorting before '/', so one string range would
  // admit strangers like "loc!x"). Both ride on the same statement.
  ScanSpec self;
  self.index = "idx_loc_tid";
  self.eq = Row{Datum(loc.ToString())};
  cur.AddSegment(Bounded(std::move(self)));
  ScanSpec below;
  below.index = "idx_loc_tid";
  below.prefix = loc.ToString() + "/";
  cur.AddSegment(Bounded(std::move(below)));
  return cur;
}

ProvCursor ProvBackend::ScanAtLocOrAncestors(const tree::Path& loc,
                                             bool include_self) {
  std::vector<tree::Path> targets;
  if (include_self) targets.push_back(loc);
  tree::Path a = loc;
  while (a.Depth() > 2) {
    a = a.Parent();
    targets.push_back(a);
  }
  // Shallowest first, so the merged stream is (Loc, Tid)-ordered (an
  // ancestor's rendering is a string prefix of its descendants').
  std::sort(targets.begin(), targets.end());
  ProvCursor cur = MakeCursor();
  for (const tree::Path& t : targets) {
    ScanSpec spec;
    spec.index = "idx_loc_tid";
    spec.eq = Row{Datum(t.ToString())};
    cur.AddSegment(Bounded(std::move(spec)));
  }
  return cur;
}

// ----- Batched point lookups -----------------------------------------------

Result<std::vector<ProvRecord>> ProvBackend::LookupMany(
    int64_t tid, const std::vector<tree::Path>& locs) {
  std::vector<ProvRecord> out;
  if (locs.empty()) return out;  // empty statement: nothing to send
  if (read_watermark_ >= 0 && tid > read_watermark_) {
    // The statement's own constant is past this handle's snapshot bound:
    // every row it could match is invisible. Decided client-side (the
    // session knows its watermark), so no round trip is issued.
    return out;
  }
  std::vector<Row> keys;
  keys.reserve(locs.size());
  for (const tree::Path& loc : locs) {
    keys.push_back(Row{Datum(tid), Datum(loc.ToString())});
  }
  Status inner = Status::OK();
  CPDB_RETURN_IF_ERROR(prov_->MultiGet(
      "pk_tid_loc", keys,
      [&](size_t, const relstore::Rid&, const Row& row) {
        auto rec = FromRow(row);
        if (!rec.ok()) {
          inner = rec.status();
          return false;
        }
        out.push_back(std::move(rec).value());
        return true;
      }));
  CPDB_RETURN_IF_ERROR(inner);
  sink_->ChargeCall(use_indexes_ ? out.size() : prov_->RowCount());
  return out;
}

// ----- One-shot shims ------------------------------------------------------

Result<std::vector<ProvRecord>> ProvBackend::Drain(ProvCursor cursor) {
  std::vector<ProvRecord> out;
  cursor.Next(&out, ProvCursor::kNoLimit);
  CPDB_RETURN_IF_ERROR(cursor.status());
  return out;
}

Result<std::vector<ProvRecord>> ProvBackend::GetExact(int64_t tid,
                                                      const tree::Path& loc) {
  return LookupMany(tid, {loc});
}

Result<std::vector<ProvRecord>> ProvBackend::GetAtLoc(const tree::Path& loc) {
  return Drain(ScanAtLoc(loc));
}

Result<std::vector<ProvRecord>> ProvBackend::GetUnder(const tree::Path& loc) {
  return Drain(ScanUnder(loc));
}

Result<std::vector<ProvRecord>> ProvBackend::GetAtLocOrAncestors(
    const tree::Path& loc) {
  return Drain(ScanAtLocOrAncestors(loc, /*include_self=*/true));
}

Result<std::vector<ProvRecord>> ProvBackend::GetForTid(int64_t tid) {
  return Drain(ScanForTid(tid));
}

Result<std::vector<ProvRecord>> ProvBackend::GetAll() {
  return Drain(ScanAll());
}

size_t ProvBackend::RowCount() const { return prov_->RowCount(); }

size_t ProvBackend::PhysicalBytes() const { return prov_->PhysicalBytes(); }

int64_t ProvBackend::MaxTid() const {
  // The largest (Tid, Loc) key leads with the largest Tid: one O(log n)
  // rightmost descent per index, no heap reads. TxnMeta is consulted too
  // — a committed tid can outlive its Prov rows (deletion patterns prune
  // them; a transaction may record only metadata) and must not be reused.
  int64_t max_tid = 0;
  auto last_prov = prov_->LastKey("pk_tid_loc");
  if (last_prov.ok()) max_tid = (*last_prov)[0].AsInt();
  auto last_meta = meta_->LastKey("pk_tid");
  if (last_meta.ok() && (*last_meta)[0].AsInt() > max_tid) {
    max_tid = (*last_meta)[0].AsInt();
  }
  return max_tid;
}

}  // namespace cpdb::provenance
