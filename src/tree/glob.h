#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tree/path.h"
#include "util/result.h"

namespace cpdb::tree {

/// A path pattern for approximate provenance (paper Section 6): segments
/// may be literal labels, "*" (exactly one segment), or "**" (any number
/// of segments). "T/a/*/b" matches T/a/x/b for any x.
class PathGlob {
 public:
  PathGlob() = default;

  /// Parses "T/a/*/b". Fails on empty segments.
  static Result<PathGlob> Parse(const std::string& text);
  static PathGlob MustParse(const std::string& text);

  /// A glob with only literal segments (matches exactly one path).
  static PathGlob Exact(const Path& p);

  bool Matches(const Path& p) const;

  /// Matches and returns the labels bound by each single-segment "*"
  /// wildcard, in order ("**" is not capturable). std::nullopt = no match.
  std::optional<std::vector<std::string>> Capture(const Path& p) const;

  /// Substitutes captured labels into this glob's "*" wildcards, yielding
  /// a concrete path. Fails if the arity differs or "**" is present.
  Result<Path> Substitute(const std::vector<std::string>& bindings) const;

  /// Number of "*" wildcards (capture arity).
  size_t StarCount() const;

  /// True if any wildcard is present.
  bool HasWildcards() const;

  /// True if every path this glob matches is also matched by `other`.
  /// (Conservative: returns false when undecided; exact for globs without
  /// "**".)
  bool SubsumedBy(const PathGlob& other) const;

  const std::vector<std::string>& segments() const { return segments_; }
  std::string ToString() const;

  bool operator==(const PathGlob& o) const { return segments_ == o.segments_; }
  bool operator<(const PathGlob& o) const { return segments_ < o.segments_; }

 private:
  std::vector<std::string> segments_;
};

}  // namespace cpdb::tree
