#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tree/path.h"
#include "tree/value.h"
#include "util/result.h"
#include "util/status.h"

namespace cpdb::tree {

/// An unordered, edge-labeled tree with data values at the leaves — the
/// paper's data model (Section 2): t ::= {a1 : v1, ..., an : vn} where each
/// vi is a subtree or a data value.
///
/// A Tree object is one node; its children are owned subtrees reached by
/// labeled edges. Invariant: a node carries a Value only if it has no
/// children ("values only at the leaves"). A node with neither children
/// nor value is the empty tree {} — a legal insert payload in the update
/// language ("ins {c2 : {}} into T").
///
/// Trees are move-only; copies are explicit via Clone() because the copy
/// operation of the update language is semantically a deep copy and
/// accidental copies of multi-megabyte curated databases are a bug.
///
/// Clone() is O(fanout), not O(subtree): children are shared_ptr-owned and
/// a clone shares them structurally (persistent-tree style). Mutation goes
/// copy-on-write — every mutable accessor privatizes a shared node (child
/// use_count > 1) by shallow-copying it before handing out a Tree*, so a
/// mutation can never be observed through another clone. Two invariants
/// make this safe: (1) a mutable Tree* is only reachable by descending
/// from an owned root through the CoW accessors, and (2) any node
/// reachable from two roots has a shared ancestor on every path from
/// either root, so a CoW descent clones from the divergence point down and
/// never touches nodes another root can see.
///
/// Concurrency contract: concurrent readers of clones that share
/// structure are safe; a writer mutating one clone is safe against
/// readers of OTHER clones (CoW isolates them) but, as with any
/// container, not against concurrent access to the same clone.
///
/// Children are kept in a std::map so iteration order is deterministic,
/// which the model permits (trees are unordered, so any canonical order is
/// sound) and which makes serialization, hashing, and tests reproducible.
class Tree {
 public:
  /// Constructs the empty tree {}.
  Tree() = default;

  /// Constructs a leaf carrying `v`.
  explicit Tree(Value v) : value_(std::move(v)) {}

  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  /// Copy of this subtree. Semantically a deep copy; physically O(fanout)
  /// — the clone shares child nodes with this tree until one side mutates
  /// (copy-on-write).
  Tree Clone() const;

  // ----- Node-local accessors -------------------------------------------

  bool HasValue() const { return value_.has_value(); }
  /// Precondition: HasValue().
  const Value& value() const { return *value_; }

  /// Sets the leaf value. Fails if this node has children.
  Status SetValue(Value v);
  /// Removes the leaf value (node becomes the empty tree if childless).
  void ClearValue() { value_.reset(); }

  bool HasChildren() const { return !children_.empty(); }
  size_t ChildCount() const { return children_.size(); }

  /// True for a node with neither children nor value.
  bool IsEmpty() const { return children_.empty() && !value_.has_value(); }

  /// Child by label, or nullptr. The mutable overload privatizes a shared
  /// child (copy-on-write) before returning it.
  const Tree* GetChild(const std::string& label) const;
  Tree* GetChild(const std::string& label);

  /// Deterministic (sorted) iteration over children.
  const std::map<std::string, std::shared_ptr<Tree>>& children() const {
    return children_;
  }

  /// True if `other` is the same physical node or shares this node's
  /// children map entry-for-entry (diagnostic; used by CoW tests and the
  /// snapshot-cost accounting).
  bool SharesAllChildrenWith(const Tree& other) const;

  /// Adds edge `label` to `subtree`. Fails with AlreadyExists if the label
  /// is present (the paper's t ] t' union) and InvalidArgument if this node
  /// holds a value (values live only at leaves) or the label is malformed.
  Status AddChild(const std::string& label, Tree subtree);

  /// Removes edge `label` and its subtree. Fails with NotFound if absent
  /// (the paper's t - a operation).
  Status RemoveChild(const std::string& label);

  /// Removes and returns the subtree under `label`, or NotFound.
  Result<Tree> TakeChild(const std::string& label);

  /// Replaces (or creates) edge `label` with `subtree`.
  void PutChild(const std::string& label, Tree subtree);

  // ----- Path-addressed operations (relative to this node) ---------------

  /// Node at `p`, or nullptr if the path does not exist. The mutable
  /// overload privatizes every shared node along the path (copy-on-write),
  /// so use the const overload (e.g. via std::as_const) for pure reads.
  const Tree* Find(const Path& p) const;
  Tree* Find(const Path& p);

  bool Contains(const Path& p) const { return Find(p) != nullptr; }

  /// The paper's t[p := t'] — replaces the subtree at `p`. As in the
  /// paper's examples (operation (7) "copy S1/a3 into T/c3" targets a
  /// fresh edge), the final edge of `p` is created if absent, but the
  /// parent of `p` must exist; fails with NotFound otherwise.
  Status ReplaceAt(const Path& p, Tree subtree);

  /// Inserts edge {label : subtree} under the node at `p`
  /// (the paper's "ins {a : v} into p"). Fails with NotFound if `p` is
  /// absent, AlreadyExists on duplicate edge.
  Status InsertAt(const Path& p, const std::string& label, Tree subtree);

  /// Deletes edge `label` under the node at `p`
  /// (the paper's "del a from p"). Fails with NotFound if `p` or the edge
  /// is absent.
  Status DeleteAt(const Path& p, const std::string& label);

  // ----- Whole-subtree utilities -----------------------------------------

  /// Number of nodes in this subtree, excluding this (root) node. The
  /// paper's provenance accounting counts the nodes a copy touches: a copy
  /// of a "subtree of size four (a parent with three children)" touches 4
  /// nodes = 1 (root, counted by the caller) + 3 descendants.
  size_t DescendantCount() const;

  /// Number of nodes in this subtree including this node.
  size_t NodeCount() const { return 1 + DescendantCount(); }

  /// Approximate in-memory footprint in bytes (labels + values + overhead).
  size_t ByteSize() const;

  /// Structural equality (labels, shape, and leaf values).
  bool Equals(const Tree& other) const;

  /// Order-independent structural hash (FNV over canonical encoding).
  uint64_t Hash() const;

  /// Calls `fn(path, node)` for every node in preorder; `path` is relative
  /// to this node (the root gets the empty path).
  void Visit(
      const std::function<void(const Path&, const Tree&)>& fn) const;

  /// All node paths in this subtree (preorder), relative to this node,
  /// including the empty path for this node itself.
  std::vector<Path> AllPaths() const;

  /// All leaf paths (nodes with values or empty trees).
  std::vector<Path> LeafPaths() const;

  /// Compact one-line rendering: {a: {x: 1}, b: "s"} — parseable by
  /// ParseTree() in serialize.h.
  std::string ToString() const;

 private:
  /// Replaces a shared child entry with a private shallow copy so in-place
  /// mutation cannot be observed through other clones. Returns the (now
  /// exclusively owned) child, or nullptr if the label is absent.
  Tree* MutableChild(const std::string& label);

  std::map<std::string, std::shared_ptr<Tree>> children_;
  std::optional<Value> value_;
};

}  // namespace cpdb::tree
