#include "tree/serialize.h"

#include <cctype>
#include <sstream>

#include "util/str.h"

namespace cpdb::tree {

namespace {

/// Recursive-descent parser for the tree literal syntax.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Tree> Parse() {
    SkipSpace();
    auto t = ParseTreeNode();
    if (!t.ok()) return t;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters");
    }
    return t;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("tree parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Tree> ParseTreeNode() {
    SkipSpace();
    if (Consume('{')) {
      Tree node;
      SkipSpace();
      if (Consume('}')) return node;
      for (;;) {
        SkipSpace();
        auto label = ParseToken();
        if (!label.ok()) return label.status();
        SkipSpace();
        if (!Consume(':')) return Err("expected ':' after label");
        auto child = ParseTreeNode();
        if (!child.ok()) return child;
        Status st = node.AddChild(label.value(), std::move(child).value());
        if (!st.ok()) return st;
        SkipSpace();
        if (Consume('}')) break;
        if (!Consume(',')) return Err("expected ',' or '}'");
      }
      return node;
    }
    if (Peek('"')) {
      auto s = ParseQuoted();
      if (!s.ok()) return s.status();
      return Tree(Value(s.value()));
    }
    auto tok = ParseToken();
    if (!tok.ok()) return tok.status();
    return Tree(Value::FromString(tok.value()));
  }

  Result<std::string> ParseQuoted() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    if (!Consume('"')) return Err("unterminated string");
    return out;
  }

  Result<std::string> ParseToken() {
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ':' || c == ',' || c == '{' || c == '}' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) return Err("expected token");
    return text_.substr(start, pos_ - start);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void PrettyRec(const Tree& t, const std::string& label, int indent,
               std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  if (!t.HasChildren()) {
    if (t.HasValue()) {
      *os << label << " = " << t.value().ToString() << "\n";
    } else {
      *os << label << " = {}\n";
    }
    return;
  }
  *os << label << "\n";
  for (const auto& [l, child] : t.children()) {
    PrettyRec(*child, l, indent + 1, os);
  }
}

}  // namespace

Result<Tree> ParseTree(const std::string& text) {
  return Parser(text).Parse();
}

std::string ToPretty(const Tree& t) {
  std::ostringstream os;
  for (const auto& [label, child] : t.children()) {
    PrettyRec(*child, label, 0, &os);
  }
  if (t.HasValue()) os << "= " << t.value().ToString() << "\n";
  return os.str();
}

}  // namespace cpdb::tree
