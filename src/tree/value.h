#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace cpdb::tree {

/// A leaf data value from the paper's domain D.
///
/// The paper's trees "store data values from some domain D only at the
/// leaves". We support the value kinds that occur in curated scientific
/// databases: integers, floating point numbers, and strings, plus a null
/// marker used for leaves that exist structurally but carry no datum.
class Value {
 public:
  /// Null value (distinct from "no value": an interior node has no Value
  /// at all, while a leaf may carry an explicit null).
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}                 // NOLINT
  Value(double v) : v_(v) {}                  // NOLINT
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  /// Precondition: is_int().
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  /// Precondition: is_double().
  double AsDouble() const { return std::get<double>(v_); }
  /// Precondition: is_string().
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Canonical textual rendering ("null", "12", "3.5", or the raw string).
  std::string ToString() const;

  /// Parses the canonical rendering back: integers and doubles are
  /// recognised, "null" maps to the null value, everything else is a string.
  static Value FromString(const std::string& s);

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return v_ < other.v_; }

  /// Approximate in-memory footprint in bytes, used by storage accounting.
  size_t ByteSize() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace cpdb::tree
