#include "tree/tree.h"

#include <sstream>

namespace cpdb::tree {

Tree Tree::Clone() const {
  // Structural sharing: the clone references the same child nodes; either
  // side privatizes on its first mutation (MutableChild). Copying the map
  // is O(fanout) of this node only — no recursion.
  Tree out;
  out.value_ = value_;
  out.children_ = children_;
  return out;
}

Tree* Tree::MutableChild(const std::string& label) {
  auto it = children_.find(label);
  if (it == children_.end()) return nullptr;
  if (it->second.use_count() > 1) {
    // Shared with another clone: replace with a private shallow copy. The
    // copy shares ITS children, so the privatization cost stays O(fanout)
    // per step of the descent.
    it->second = std::make_shared<Tree>(it->second->Clone());
  }
  return it->second.get();
}

Status Tree::SetValue(Value v) {
  if (!children_.empty()) {
    return Status::InvalidArgument(
        "cannot set a value on a node with children");
  }
  value_ = std::move(v);
  return Status::OK();
}

const Tree* Tree::GetChild(const std::string& label) const {
  auto it = children_.find(label);
  return it == children_.end() ? nullptr : it->second.get();
}

Tree* Tree::GetChild(const std::string& label) { return MutableChild(label); }

Status Tree::AddChild(const std::string& label, Tree subtree) {
  if (!IsValidLabel(label)) {
    return Status::InvalidArgument("invalid edge label '" + label + "'");
  }
  if (value_.has_value()) {
    return Status::InvalidArgument(
        "cannot add child '" + label + "' to a leaf carrying a value");
  }
  auto [it, inserted] =
      children_.emplace(label, std::make_shared<Tree>(std::move(subtree)));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("edge '" + label + "' already exists");
  }
  return Status::OK();
}

Status Tree::RemoveChild(const std::string& label) {
  if (children_.erase(label) == 0) {
    return Status::NotFound("edge '" + label + "' does not exist");
  }
  return Status::OK();
}

Result<Tree> Tree::TakeChild(const std::string& label) {
  auto it = children_.find(label);
  if (it == children_.end()) {
    return Status::NotFound("edge '" + label + "' does not exist");
  }
  // Moving out of a node another clone can still see would gut it; take a
  // structural copy instead (O(fanout)).
  Tree out = it->second.use_count() > 1 ? it->second->Clone()
                                        : std::move(*it->second);
  children_.erase(it);
  return out;
}

void Tree::PutChild(const std::string& label, Tree subtree) {
  children_[label] = std::make_shared<Tree>(std::move(subtree));
  value_.reset();
}

const Tree* Tree::Find(const Path& p) const {
  const Tree* cur = this;
  for (const auto& label : p.labels()) {
    cur = cur->GetChild(label);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

Tree* Tree::Find(const Path& p) {
  // Copy-on-write descent: every shared node on the path is privatized so
  // the caller may mutate the result without other clones observing it.
  Tree* cur = this;
  for (const auto& label : p.labels()) {
    cur = cur->MutableChild(label);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

bool Tree::SharesAllChildrenWith(const Tree& other) const {
  if (this == &other) return true;
  if (children_.size() != other.children_.size()) return false;
  auto it = children_.begin();
  auto jt = other.children_.begin();
  for (; it != children_.end(); ++it, ++jt) {
    if (it->first != jt->first || it->second != jt->second) return false;
  }
  return true;
}

Status Tree::ReplaceAt(const Path& p, Tree subtree) {
  if (p.IsRoot()) {
    *this = std::move(subtree);
    return Status::OK();
  }
  Tree* parent = Find(p.Parent());
  if (parent == nullptr) {
    return Status::NotFound("path '" + p.Parent().ToString() +
                            "' does not exist");
  }
  if (parent->HasValue()) {
    return Status::InvalidArgument("cannot create edge under leaf '" +
                                   p.Parent().ToString() + "'");
  }
  parent->PutChild(p.Leaf(), std::move(subtree));
  return Status::OK();
}

Status Tree::InsertAt(const Path& p, const std::string& label, Tree subtree) {
  Tree* node = Find(p);
  if (node == nullptr) {
    return Status::NotFound("path '" + p.ToString() + "' does not exist");
  }
  return node->AddChild(label, std::move(subtree));
}

Status Tree::DeleteAt(const Path& p, const std::string& label) {
  Tree* node = Find(p);
  if (node == nullptr) {
    return Status::NotFound("path '" + p.ToString() + "' does not exist");
  }
  return node->RemoveChild(label);
}

size_t Tree::DescendantCount() const {
  size_t n = 0;
  for (const auto& [label, child] : children_) {
    (void)label;
    n += 1 + child->DescendantCount();
  }
  return n;
}

size_t Tree::ByteSize() const {
  size_t n = sizeof(Tree);
  if (value_.has_value()) n += value_->ByteSize();
  for (const auto& [label, child] : children_) {
    n += label.size() + child->ByteSize();
  }
  return n;
}

bool Tree::Equals(const Tree& other) const {
  if (value_.has_value() != other.value_.has_value()) return false;
  if (value_.has_value() && !(*value_ == *other.value_)) return false;
  if (children_.size() != other.children_.size()) return false;
  auto it = children_.begin();
  auto jt = other.children_.begin();
  for (; it != children_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    // Shared node => identical subtree, no need to recurse. This makes
    // snapshot-vs-snapshot comparison proportional to the diverged part.
    if (it->second == jt->second) continue;
    if (!it->second->Equals(*jt->second)) return false;
  }
  return true;
}

uint64_t Tree::Hash() const {
  // FNV-1a over a canonical encoding; children are visited in sorted order
  // so the hash is independent of insertion order, matching the unordered
  // tree model.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  if (value_.has_value()) {
    mix("v:" + value_->ToString());
  }
  for (const auto& [label, child] : children_) {
    mix("l:" + label);
    uint64_t ch = child->Hash();
    for (int i = 0; i < 8; ++i) {
      h ^= (ch >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

void Tree::Visit(
    const std::function<void(const Path&, const Tree&)>& fn) const {
  struct Walker {
    const std::function<void(const Path&, const Tree&)>& fn;
    void Walk(const Path& p, const Tree& t) {
      fn(p, t);
      for (const auto& [label, child] : t.children()) {
        Walk(p.Child(label), *child);
      }
    }
  };
  Walker w{fn};
  w.Walk(Path(), *this);
}

std::vector<Path> Tree::AllPaths() const {
  std::vector<Path> out;
  Visit([&out](const Path& p, const Tree&) { out.push_back(p); });
  return out;
}

std::vector<Path> Tree::LeafPaths() const {
  std::vector<Path> out;
  Visit([&out](const Path& p, const Tree& t) {
    if (!t.HasChildren()) out.push_back(p);
  });
  return out;
}

std::string Tree::ToString() const {
  if (value_.has_value()) {
    if (value_->is_string()) return "\"" + value_->AsString() + "\"";
    return value_->ToString();
  }
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [label, child] : children_) {
    if (!first) os << ", ";
    first = false;
    os << label << ": " << child->ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace cpdb::tree
