#include "tree/path.h"

#include <cassert>
#include <cstdlib>

#include "util/str.h"

namespace cpdb::tree {

bool IsValidLabel(const std::string& label) {
  return !label.empty() && label.find('/') == std::string::npos;
}

Path::Path(std::vector<std::string> labels) : labels_(std::move(labels)) {
#ifndef NDEBUG
  for (const auto& l : labels_) assert(IsValidLabel(l));
#endif
}

Result<Path> Path::Parse(const std::string& text) {
  if (text.empty()) return Path();
  std::vector<std::string> labels = Split(text, '/');
  for (const auto& l : labels) {
    if (!IsValidLabel(l)) {
      return Status::InvalidArgument("invalid path label in '" + text + "'");
    }
  }
  return Path(std::move(labels));
}

Path Path::MustParse(const std::string& text) {
  Result<Path> r = Parse(text);
  if (!r.ok()) {
    std::abort();
  }
  return std::move(r).value();
}

Path Path::Parent() const {
  assert(!IsRoot());
  std::vector<std::string> labels(labels_.begin(), labels_.end() - 1);
  return Path(std::move(labels));
}

Path Path::Child(const std::string& label) const {
  std::vector<std::string> labels = labels_;
  labels.push_back(label);
  return Path(std::move(labels));
}

Path Path::Concat(const Path& suffix) const {
  std::vector<std::string> labels = labels_;
  labels.insert(labels.end(), suffix.labels_.begin(), suffix.labels_.end());
  return Path(std::move(labels));
}

bool Path::IsPrefixOf(const Path& other) const {
  if (labels_.size() > other.labels_.size()) return false;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] != other.labels_[i]) return false;
  }
  return true;
}

bool Path::IsStrictPrefixOf(const Path& other) const {
  return labels_.size() < other.labels_.size() && IsPrefixOf(other);
}

Result<Path> Path::RelativeTo(const Path& ancestor) const {
  if (!ancestor.IsPrefixOf(*this)) {
    return Status::InvalidArgument("'" + ancestor.ToString() +
                                   "' is not a prefix of '" + ToString() +
                                   "'");
  }
  std::vector<std::string> labels(labels_.begin() + ancestor.Depth(),
                                  labels_.end());
  return Path(std::move(labels));
}

Path Path::Rebase(const Path& from, const Path& to) const {
  assert(from.IsPrefixOf(*this));
  std::vector<std::string> labels = to.labels_;
  labels.insert(labels.end(), labels_.begin() + from.Depth(), labels_.end());
  return Path(std::move(labels));
}

std::string Path::ToString() const { return Join(labels_, '/'); }

std::ostream& operator<<(std::ostream& os, const Path& p) {
  return os << p.ToString();
}

}  // namespace cpdb::tree
