#include "tree/diff.h"

namespace cpdb::tree {

namespace {

std::string LeafValueOf(const Tree& t) {
  return t.HasValue() ? t.value().ToString() : std::string();
}

void AddAll(const Tree& t, const Path& at, DiffEntry::Kind kind,
            std::vector<DiffEntry>* out) {
  t.Visit([&](const Path& rel, const Tree& node) {
    DiffEntry e;
    e.kind = kind;
    e.path = at.Concat(rel);
    if (kind == DiffEntry::Kind::kAdded) {
      e.new_value = LeafValueOf(node);
    } else {
      e.old_value = LeafValueOf(node);
    }
    out->push_back(std::move(e));
  });
}

void DiffRec(const Tree& before, const Tree& after, const Path& at,
             std::vector<DiffEntry>* out) {
  // Leaf value comparison.
  bool bv = before.HasValue(), av = after.HasValue();
  if ((bv || av) &&
      (bv != av || !(before.value() == after.value()))) {
    DiffEntry e;
    e.kind = DiffEntry::Kind::kValueChanged;
    e.path = at;
    e.old_value = LeafValueOf(before);
    e.new_value = LeafValueOf(after);
    out->push_back(std::move(e));
  }

  // Merge-walk the sorted child maps.
  auto bi = before.children().begin();
  auto ai = after.children().begin();
  while (bi != before.children().end() || ai != after.children().end()) {
    if (ai == after.children().end() ||
        (bi != before.children().end() && bi->first < ai->first)) {
      AddAll(*bi->second, at.Child(bi->first), DiffEntry::Kind::kRemoved, out);
      ++bi;
    } else if (bi == before.children().end() || ai->first < bi->first) {
      AddAll(*ai->second, at.Child(ai->first), DiffEntry::Kind::kAdded, out);
      ++ai;
    } else {
      DiffRec(*bi->second, *ai->second, at.Child(bi->first), out);
      ++bi;
      ++ai;
    }
  }
}

}  // namespace

std::ostream& operator<<(std::ostream& os, const DiffEntry& e) {
  switch (e.kind) {
    case DiffEntry::Kind::kAdded:
      os << "+ " << e.path;
      if (!e.new_value.empty()) os << " = " << e.new_value;
      break;
    case DiffEntry::Kind::kRemoved:
      os << "- " << e.path;
      if (!e.old_value.empty()) os << " = " << e.old_value;
      break;
    case DiffEntry::Kind::kValueChanged:
      os << "~ " << e.path << " : " << e.old_value << " -> " << e.new_value;
      break;
  }
  return os;
}

std::vector<DiffEntry> DiffTrees(const Tree& before, const Tree& after) {
  std::vector<DiffEntry> out;
  DiffRec(before, after, Path(), &out);
  return out;
}

DiffStats SummarizeDiff(const std::vector<DiffEntry>& diff) {
  DiffStats s;
  for (const auto& e : diff) {
    switch (e.kind) {
      case DiffEntry::Kind::kAdded:
        ++s.added;
        break;
      case DiffEntry::Kind::kRemoved:
        ++s.removed;
        break;
      case DiffEntry::Kind::kValueChanged:
        ++s.changed;
        break;
    }
  }
  return s;
}

}  // namespace cpdb::tree
