#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "tree/tree.h"

namespace cpdb::tree {

/// One elementary difference between two tree versions.
struct DiffEntry {
  enum class Kind {
    kAdded,         ///< path exists only in the new version
    kRemoved,       ///< path exists only in the old version
    kValueChanged,  ///< path exists in both but the leaf value differs
  };
  Kind kind;
  Path path;
  /// For kValueChanged: old and new values; for kAdded/kRemoved the
  /// value at the (single-sided) path if it is a leaf.
  std::string old_value;
  std::string new_value;

  bool operator==(const DiffEntry& other) const {
    return kind == other.kind && path == other.path &&
           old_value == other.old_value && new_value == other.new_value;
  }
};

std::ostream& operator<<(std::ostream& os, const DiffEntry& e);

/// Structural diff of two trees in deterministic (path-sorted) order.
///
/// This captures exactly the information a version-control or archiving
/// system retains (paper Section 5): *how the versions differ*, but not
/// how the change was performed — copies are indistinguishable from fresh
/// inserts in a diff, which is the paper's argument for why provenance
/// recording is not subsumed by archiving. Tests use this to contrast
/// diff-derived information with provenance-derived information.
std::vector<DiffEntry> DiffTrees(const Tree& before, const Tree& after);

/// Summary counts of a diff.
struct DiffStats {
  size_t added = 0;
  size_t removed = 0;
  size_t changed = 0;
  size_t Total() const { return added + removed + changed; }
};

DiffStats SummarizeDiff(const std::vector<DiffEntry>& diff);

}  // namespace cpdb::tree
