#include "tree/xml.h"

#include <cctype>
#include <map>
#include <sstream>

namespace cpdb::tree {

std::string XmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string XmlUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] == '&') {
      if (s.compare(i, 5, "&amp;") == 0) {
        out += '&';
        i += 5;
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) {
        out += '<';
        i += 4;
        continue;
      }
      if (s.compare(i, 4, "&gt;") == 0) {
        out += '>';
        i += 4;
        continue;
      }
      if (s.compare(i, 6, "&quot;") == 0) {
        out += '"';
        i += 6;
        continue;
      }
    }
    out += s[i++];
  }
  return out;
}

void ToXmlRec(const Tree& t, const std::string& tag, int indent,
              std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  *os << "<" << tag << ">";
  if (t.HasChildren()) {
    *os << "\n";
    for (const auto& [label, child] : t.children()) {
      ToXmlRec(*child, label, indent + 1, os);
    }
    for (int i = 0; i < indent; ++i) *os << "  ";
  } else if (t.HasValue()) {
    *os << XmlEscape(t.value().ToString());
  }
  *os << "</" << tag << ">\n";
}

/// Minimal recursive-descent XML parser (elements + text only).
class XmlParser {
 public:
  explicit XmlParser(const std::string& text) : text_(text) {}

  Result<Tree> Parse() {
    SkipSpaceAndProlog();
    std::string tag;
    auto t = ParseElement(&tag);
    if (!t.ok()) return t;
    SkipSpaceAndProlog();
    if (pos_ != text_.size()) return Err("trailing content");
    // The root element's tag is discarded; its content becomes the tree.
    return t;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("xml parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipSpaceAndProlog() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (text_.compare(pos_, 2, "<?") == 0) {
        size_t end = text_.find("?>", pos_);
        pos_ = (end == std::string::npos) ? text_.size() : end + 2;
        continue;
      }
      if (text_.compare(pos_, 4, "<!--") == 0) {
        size_t end = text_.find("-->", pos_);
        pos_ = (end == std::string::npos) ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  Result<Tree> ParseElement(std::string* tag_out) {
    if (pos_ >= text_.size() || text_[pos_] != '<') return Err("expected '<'");
    ++pos_;
    std::string tag = ParseName();
    if (tag.empty()) return Err("expected tag name");
    // Skip attributes (ignored by the tree model).
    while (pos_ < text_.size() && text_[pos_] != '>' && text_[pos_] != '/') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '/') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] != '>') return Err("bad />");
      ++pos_;
      *tag_out = tag;
      return Tree();  // self-closing element = empty tree
    }
    if (pos_ >= text_.size()) return Err("unterminated tag");
    ++pos_;  // consume '>'

    Tree node;
    std::string text_content;
    std::map<std::string, int> tag_counts;
    for (;;) {
      if (pos_ >= text_.size()) return Err("unexpected end of input");
      if (text_.compare(pos_, 2, "</") == 0) {
        pos_ += 2;
        std::string close = ParseName();
        if (close != tag) return Err("mismatched close tag '" + close + "'");
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Err("expected '>'");
        }
        ++pos_;
        break;
      }
      if (text_[pos_] == '<') {
        if (text_.compare(pos_, 4, "<!--") == 0) {
          size_t end = text_.find("-->", pos_);
          if (end == std::string::npos) return Err("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        std::string child_tag;
        auto child = ParseElement(&child_tag);
        if (!child.ok()) return child;
        int n = ++tag_counts[child_tag];
        std::string label =
            n == 1 ? child_tag : child_tag + "{" + std::to_string(n) + "}";
        Status st = node.AddChild(label, std::move(child).value());
        if (!st.ok()) return st;
      } else {
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
        text_content += text_.substr(start, pos_ - start);
      }
    }

    if (!node.HasChildren()) {
      std::string trimmed;
      {
        size_t b = text_content.find_first_not_of(" \t\r\n");
        size_t e = text_content.find_last_not_of(" \t\r\n");
        if (b != std::string::npos) {
          trimmed = text_content.substr(b, e - b + 1);
        }
      }
      if (!trimmed.empty()) {
        Status st = node.SetValue(Value::FromString(XmlUnescape(trimmed)));
        if (!st.ok()) return st;
      }
    }
    *tag_out = tag;
    return node;
  }

  std::string ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == '{' || text_[pos_] == '}')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToXml(const Tree& t, const std::string& root_tag) {
  std::ostringstream os;
  ToXmlRec(t, root_tag, 0, &os);
  return os.str();
}

Result<Tree> FromXml(const std::string& xml) { return XmlParser(xml).Parse(); }

}  // namespace cpdb::tree
