#pragma once

#include <string>

#include "tree/tree.h"
#include "util/result.h"

namespace cpdb::tree {

/// Parses the compact tree literal syntax produced by Tree::ToString():
///
///   tree    ::= '{' [binding (',' binding)*] '}' | value
///   binding ::= label ':' tree
///   value   ::= integer | float | quoted string | bare word | 'null'
///
/// Examples: `{}`; `{x: 1, y: 2}`; `{a1: {x: 1, y: 3}}`; `"hello"`.
/// Bare words (unquoted strings without structural characters) parse as
/// string values, so `{name: ABC1}` is accepted.
Result<Tree> ParseTree(const std::string& text);

/// Multi-line indented rendering for human consumption, e.g.
///   a1
///     x = 1
///     y = 3
std::string ToPretty(const Tree& t);

}  // namespace cpdb::tree
