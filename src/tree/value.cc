#include "tree/value.h"

#include <sstream>

#include "util/str.h"

namespace cpdb::tree {

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::ostringstream os;
    os << AsDouble();
    return os.str();
  }
  return AsString();
}

Value Value::FromString(const std::string& s) {
  if (s == "null") return Value();
  int64_t i;
  if (ParseInt64(s, &i)) return Value(i);
  double d;
  if (ParseDouble(s, &d)) return Value(d);
  return Value(s);
}

size_t Value::ByteSize() const {
  if (is_string()) return AsString().size() + sizeof(size_t);
  return 8;
}

}  // namespace cpdb::tree
