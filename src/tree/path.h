#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/result.h"

namespace cpdb::tree {

/// A path p in Sigma* addressing a unique node of an edge-labeled tree
/// (paper Section 2). Rendered as slash-separated labels, e.g. "T/c1/y".
///
/// The empty path addresses the root. Labels may not contain '/' and may
/// not be empty. Paths are small value types ordered lexicographically by
/// their label sequence, which makes ancestor ranges contiguous in sorted
/// containers and B-trees (used by prefix scans in the provenance store).
class Path {
 public:
  /// The root (empty) path.
  Path() = default;

  /// Builds a path from explicit labels. Precondition: labels are valid.
  explicit Path(std::vector<std::string> labels);

  /// Parses "a/b/c". Empty string yields the root path. Fails on empty
  /// labels (e.g. "a//b") or leading/trailing slashes.
  static Result<Path> Parse(const std::string& text);

  /// Parses, aborting on error. Only for use with trusted literals in
  /// tests/examples.
  static Path MustParse(const std::string& text);

  bool IsRoot() const { return labels_.empty(); }
  size_t Depth() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& At(size_t i) const { return labels_[i]; }

  /// Final label. Precondition: !IsRoot().
  const std::string& Leaf() const { return labels_.back(); }

  /// Path with the final label removed. Precondition: !IsRoot().
  Path Parent() const;

  /// This path extended by one label.
  Path Child(const std::string& label) const;

  /// This path followed by all labels of `suffix`.
  Path Concat(const Path& suffix) const;

  /// True if this path is a (non-strict) prefix of `other` — the "p <= q"
  /// relation in the paper's Mod query.
  bool IsPrefixOf(const Path& other) const;

  /// True if this is a strict (proper) prefix of `other`.
  bool IsStrictPrefixOf(const Path& other) const;

  /// If this is a prefix of `other`, returns the remainder such that
  /// this->Concat(remainder) == other.
  Result<Path> RelativeTo(const Path& ancestor) const;

  /// Replaces the prefix `from` with `to`. Precondition established by
  /// caller: `from` is a prefix of this path. Used by hierarchical
  /// provenance inference: if p was copied from q, then p/a came from q/a.
  Path Rebase(const Path& from, const Path& to) const;

  /// Slash-joined rendering; "" for the root.
  std::string ToString() const;

  bool operator==(const Path& other) const { return labels_ == other.labels_; }
  bool operator!=(const Path& other) const { return !(*this == other); }
  bool operator<(const Path& other) const { return labels_ < other.labels_; }

 private:
  std::vector<std::string> labels_;
};

std::ostream& operator<<(std::ostream& os, const Path& p);

/// Validates a single edge label: non-empty and without '/'.
bool IsValidLabel(const std::string& label);

}  // namespace cpdb::tree
