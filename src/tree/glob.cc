#include "tree/glob.h"

#include <cstdlib>
#include <functional>

#include "util/str.h"

namespace cpdb::tree {

Result<PathGlob> PathGlob::Parse(const std::string& text) {
  PathGlob g;
  if (text.empty()) return g;
  g.segments_ = Split(text, '/');
  for (const auto& s : g.segments_) {
    if (s.empty()) {
      return Status::InvalidArgument("empty segment in glob '" + text + "'");
    }
  }
  return g;
}

PathGlob PathGlob::MustParse(const std::string& text) {
  auto r = Parse(text);
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

PathGlob PathGlob::Exact(const Path& p) {
  PathGlob g;
  g.segments_ = p.labels();
  return g;
}

bool PathGlob::Matches(const Path& p) const {
  return GlobMatchSegments(segments_, p.labels());
}

std::optional<std::vector<std::string>> PathGlob::Capture(
    const Path& p) const {
  // Backtracking match that records '*' bindings. '**' participates in
  // matching but contributes no captures.
  std::vector<std::string> bindings;
  const auto& subject = p.labels();

  std::function<bool(size_t, size_t)> rec = [&](size_t gi,
                                                size_t si) -> bool {
    if (gi == segments_.size()) return si == subject.size();
    const std::string& seg = segments_[gi];
    if (seg == "**") {
      for (size_t skip = si; skip <= subject.size(); ++skip) {
        if (rec(gi + 1, skip)) return true;
      }
      return false;
    }
    if (si == subject.size()) return false;
    if (seg == "*") {
      bindings.push_back(subject[si]);
      if (rec(gi + 1, si + 1)) return true;
      bindings.pop_back();
      return false;
    }
    if (seg != subject[si]) return false;
    return rec(gi + 1, si + 1);
  };
  if (!rec(0, 0)) return std::nullopt;
  return bindings;
}

Result<Path> PathGlob::Substitute(
    const std::vector<std::string>& bindings) const {
  std::vector<std::string> labels;
  size_t next = 0;
  for (const std::string& seg : segments_) {
    if (seg == "**") {
      return Status::InvalidArgument("cannot substitute into '**'");
    }
    if (seg == "*") {
      if (next >= bindings.size()) {
        return Status::InvalidArgument("not enough bindings for glob '" +
                                       ToString() + "'");
      }
      labels.push_back(bindings[next++]);
    } else {
      labels.push_back(seg);
    }
  }
  if (next != bindings.size()) {
    return Status::InvalidArgument("too many bindings for glob '" +
                                   ToString() + "'");
  }
  return Path(std::move(labels));
}

size_t PathGlob::StarCount() const {
  size_t n = 0;
  for (const auto& s : segments_) {
    if (s == "*") ++n;
  }
  return n;
}

bool PathGlob::HasWildcards() const {
  for (const auto& s : segments_) {
    if (s == "*" || s == "**") return true;
  }
  return false;
}

bool PathGlob::SubsumedBy(const PathGlob& other) const {
  for (const auto& s : segments_) {
    if (s == "**") return segments_ == other.segments_;
  }
  // Without '**' on our side, we match exactly paths of length
  // segments_.size(); treat our own segments as a "subject with holes".
  // Conservative check: other must match every instantiation; with only
  // single-segment wildcards this reduces to segment-wise compatibility.
  bool other_has_deep = false;
  for (const auto& s : other.segments_) {
    if (s == "**") other_has_deep = true;
  }
  if (other_has_deep) {
    // Fall back to a conservative structural equality check.
    return segments_ == other.segments_;
  }
  if (segments_.size() != other.segments_.size()) return false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const std::string& a = segments_[i];
    const std::string& b = other.segments_[i];
    if (b == "*") continue;       // anything fits
    if (a == "*") return false;   // we are broader here
    if (a != b) return false;
  }
  return true;
}

std::string PathGlob::ToString() const { return Join(segments_, '/'); }

}  // namespace cpdb::tree
