#pragma once

#include <string>

#include "tree/tree.h"
#include "util/result.h"

namespace cpdb::tree {

/// XML round-tripping for trees.
///
/// The paper uses XML "only as an abstraction for exchanging and locating
/// data in databases" (Section 1.3). These helpers render a tree as keyed
/// XML and parse such XML back. Tree children map to nested elements; leaf
/// values become element text. Because tree edges within a parent are
/// unique (the model requires each label sequence to identify at most one
/// element), elements produced by ToXml never repeat a tag within a parent.
///
/// FromXml supports general well-formed XML subsets without attributes or
/// namespaces; repeated sibling tags are disambiguated by appending
/// "{2}", "{3}", ... to later duplicates, mirroring the keyed-XML
/// convention of Buneman et al.'s archiving work that the paper builds on
/// (e.g. "Citation{3}/Title").
std::string ToXml(const Tree& t, const std::string& root_tag = "db");

Result<Tree> FromXml(const std::string& xml);

/// Escapes &, <, >, " for inclusion in XML text.
std::string XmlEscape(const std::string& s);

}  // namespace cpdb::tree
