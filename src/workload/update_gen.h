#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tree/tree.h"
#include "update/semantics.h"
#include "update/update.h"
#include "util/result.h"
#include "util/rng.h"

namespace cpdb::workload {

/// Update patterns of the paper's Table 2.
enum class Pattern {
  kAdd,     ///< all random adds
  kDelete,  ///< all random deletes
  kCopy,    ///< all random copies
  kAcMix,   ///< equal mix of random adds and copies
  kMix,     ///< equal mix of random adds, deletes, copies
  kReal,    ///< copy one subtree, add 3 nodes, delete 3 nodes (bulk-like)
};

const char* PatternName(Pattern p);
Result<Pattern> PatternFromName(const std::string& name);

/// Deletion patterns of the paper's Table 3 (victim selection for the
/// delete slots of a mix run).
enum class DeletePolicy {
  kRandom,  ///< del-random: paths deleted at random
  kAdded,   ///< del-add: all added paths deleted
  kCopied,  ///< del-copy: only copies deleted
  kMix,     ///< del-mix: 50-50 mix of adds and copies deleted
  kReal,    ///< del-real: 3 nodes from the copied subtree deleted
};

const char* DeletePolicyName(DeletePolicy p);
Result<DeletePolicy> DeletePolicyFromName(const std::string& name);

struct GenOptions {
  Pattern pattern = Pattern::kMix;
  DeletePolicy delete_policy = DeletePolicy::kRandom;
  /// When false, operations that would be deletes are skipped entirely —
  /// the "(ac)" runs of Figure 11.
  bool include_deletes = true;
  uint64_t seed = 42;
  std::string target_label = "T";
  std::string source_label = "S1";
};

/// Generates a valid random update stream against a live universe tree.
///
/// The generator owns no tree; it watches the universe the editor
/// mutates. Call Next() for a candidate operation (validated against the
/// current tree), apply it through the editor, then report the outcome
/// with OnApplied() so the internal path pools stay in sync.
class UpdateGenerator {
 public:
  UpdateGenerator(const tree::Tree* universe, GenOptions options);

  /// Next operation, or std::nullopt if the pattern cannot make progress
  /// (e.g. delete-only pattern with an empty target). When
  /// options.include_deletes is false and the slot would have been a
  /// delete, returns std::nullopt with *skipped set to true — the step is
  /// consumed without an operation, keeping the add/copy stream of an
  /// "(ac)" run aligned with its "(acd)" twin (Figure 11).
  std::optional<update::Update> Next(bool* skipped = nullptr);

  /// Must be called after the editor successfully applies `u`.
  void OnApplied(const update::Update& u,
                 const update::ApplyEffect& effect);

  // Counters (for bench reporting).
  size_t adds() const { return adds_; }
  size_t deletes() const { return deletes_; }
  size_t copies() const { return copies_; }
  size_t skipped_deletes() const { return skipped_deletes_; }

 private:
  std::optional<update::Update> NextAdd();
  std::optional<update::Update> NextDelete();
  std::optional<update::Update> NextCopy(const tree::Path& dst_parent_hint);
  std::optional<update::Update> NextReal();

  /// Random existing non-leaf node in the target subtree (pool-backed,
  /// lazily validated).
  std::optional<tree::Path> PickContainer();

  /// Random pool victim validated against the tree; erases stale entries.
  /// With `recent_window` > 0, picks only among the last that many pool
  /// entries — the del-add / del-mix patterns delete *recently* added
  /// paths, so that insert+delete frequently cancel within a transaction
  /// (the effect Figure 11 shows for the transactional methods).
  std::optional<tree::Path> PickFrom(std::vector<tree::Path>* pool,
                                     bool must_be_deletable,
                                     size_t recent_window = 0);

  bool Exists(const tree::Path& p) const {
    return universe_->Find(p) != nullptr;
  }

  const tree::Tree* universe_;
  GenOptions options_;
  Rng rng_;
  tree::Path target_root_;

  std::vector<tree::Path> containers_;   // candidate insert parents
  std::vector<tree::Path> added_;        // paths created by adds
  std::vector<tree::Path> copied_roots_; // roots of pasted subtrees
  std::vector<tree::Path> any_nodes_;    // all known target paths
  std::vector<tree::Path> source_entries_;  // size-4 subtree roots in S

  // State of the "real" pattern's 7-op cycle.
  int real_phase_ = 0;
  tree::Path real_root_;
  std::vector<std::string> real_victims_;

  size_t fresh_counter_ = 0;
  size_t adds_ = 0, deletes_ = 0, copies_ = 0, skipped_deletes_ = 0;
};

}  // namespace cpdb::workload
