#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace cpdb::workload {

/// Constant-time (rejection-free) Zipfian key sampler over [0, n).
///
/// Curated databases are the canonical skewed workload: a few hot records
/// receive most of the edits. This is the YCSB/Gray "quick zipf"
/// construction: zeta(n, theta) is computed once up front, and every
/// Next() maps one uniform draw through the closed-form inverse CDF —
/// no rejection loop, so the cost per sample is O(1) and independent of
/// the skew. Rank 0 is the hottest key.
///
/// `theta` in [0, 1): 0 degenerates to uniform, 0.99 is the YCSB default
/// hot-key skew. The sampler is deterministic from its Rng, so workloads
/// are exactly reproducible from a seed (the repo-wide rule).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// The next sampled rank in [0, n); rank 0 is the most popular.
  uint64_t Next();

  /// Like Next(), but ranks are scattered over [0, n) by an FNV-1a style
  /// hash so the hot keys are not clustered at the low indices (the YCSB
  /// "scrambled zipfian"). Same distribution of *frequencies*, different
  /// assignment of frequency to key.
  uint64_t NextScrambled();

  /// P(rank) under the fitted distribution — exposed so tests can pin the
  /// sampled histogram against the analytic mass function.
  double Probability(uint64_t rank) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;   ///< zeta(n, theta)
  double alpha_;   ///< 1 / (1 - theta)
  double eta_;
  double half_pow_theta_;  ///< 0.5^theta
  Rng rng_;
};

}  // namespace cpdb::workload
