#include "workload/zipf.h"

#include <cassert>
#include <cmath>

namespace cpdb::workload {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  assert(n_ > 0);
  assert(theta_ >= 0.0 && theta_ < 1.0);
  zetan_ = Zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = Zeta(2 < n_ ? 2 : n_, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

uint64_t ZipfGenerator::Next() {
  // Gray et al., "Quickly generating billion-record synthetic databases"
  // (SIGMOD '94), as used by YCSB's ZipfianGenerator.
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t ZipfGenerator::NextScrambled() {
  // FNV-1a over the rank's bytes, folded back into [0, n). Collisions
  // merely merge two ranks' mass onto one key — acceptable for load
  // generation, and deterministic.
  uint64_t rank = Next();
  uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (rank >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h % n_;
}

double ZipfGenerator::Probability(uint64_t rank) const {
  assert(rank < n_);
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

}  // namespace cpdb::workload
