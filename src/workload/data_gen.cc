#include "workload/data_gen.h"

#include "util/rng.h"

namespace cpdb::workload {

namespace {

const char* kOrganelles[] = {"nucleus",      "mitochondrion", "golgi",
                             "cytoplasm",    "membrane",      "lysosome",
                             "peroxisome",   "ribosome",      "vacuole",
                             "cytoskeleton"};

const char* kSpecies[] = {"H.sapiens",    "M.musculus", "S.cerevisiae",
                          "D.melanogaster", "C.elegans", "A.thaliana"};

std::string ProteinName(Rng* rng) {
  // SwissProt-style accession: letter + 5 alphanumerics, e.g. O95477.
  std::string name;
  name.push_back(static_cast<char>('A' + rng->NextBelow(26)));
  for (int i = 0; i < 5; ++i) {
    name.push_back(static_cast<char>('0' + rng->NextBelow(10)));
  }
  return name;
}

}  // namespace

tree::Tree GenMimiLike(size_t entries, uint64_t seed) {
  Rng rng(seed);
  tree::Tree root;
  for (size_t i = 0; i < entries; ++i) {
    tree::Tree entry;
    (void)entry.AddChild("name", tree::Tree(tree::Value(ProteinName(&rng))));
    (void)entry.AddChild(
        "organism",
        tree::Tree(tree::Value(kSpecies[rng.NextBelow(6)])));
    (void)entry.AddChild("weight",
                         tree::Tree(tree::Value(rng.NextInt(5000, 250000))));
    tree::Tree interactions;
    size_t n_inter = 1 + rng.NextBelow(3);
    for (size_t j = 0; j < n_inter; ++j) {
      tree::Tree inter;
      (void)inter.AddChild("partner",
                           tree::Tree(tree::Value(ProteinName(&rng))));
      (void)inter.AddChild(
          "evidence", tree::Tree(tree::Value(rng.NextBool(0.5)
                                                 ? std::string("yeast2hybrid")
                                                 : std::string("coIP"))));
      (void)interactions.AddChild("i" + std::to_string(j + 1),
                                  std::move(inter));
    }
    (void)entry.AddChild("interactions", std::move(interactions));
    (void)root.AddChild("prot" + std::to_string(i + 1), std::move(entry));
  }
  return root;
}

tree::Tree GenOrganelleLike(size_t entries, uint64_t seed) {
  Rng rng(seed);
  tree::Tree root;
  for (size_t i = 0; i < entries; ++i) {
    tree::Tree entry;
    // Exactly three leaf children: the size-four copy unit.
    (void)entry.AddChild("protein",
                         tree::Tree(tree::Value(ProteinName(&rng))));
    (void)entry.AddChild(
        "organelle",
        tree::Tree(tree::Value(kOrganelles[rng.NextBelow(10)])));
    (void)entry.AddChild(
        "species", tree::Tree(tree::Value(kSpecies[rng.NextBelow(6)])));
    (void)root.AddChild("o" + std::to_string(i + 1), std::move(entry));
  }
  return root;
}

Result<std::string> FillOrganelleRelational(relstore::Database* db,
                                            size_t rows, uint64_t seed) {
  Rng rng(seed);
  using relstore::ColumnType;
  using relstore::Datum;
  relstore::Schema schema({{"id", ColumnType::kString, false},
                           {"protein", ColumnType::kString, false},
                           {"organelle", ColumnType::kString, false},
                           {"species", ColumnType::kString, false}});
  CPDB_ASSIGN_OR_RETURN(relstore::Table * table,
                        db->CreateTable("organelle", schema));
  CPDB_RETURN_IF_ERROR(table->CreateIndex(
      "pk_id", {0}, relstore::IndexKind::kBTree, /*unique=*/true));
  std::vector<relstore::Row> batch;
  batch.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    batch.push_back({Datum("o" + std::to_string(i + 1)),
                     Datum(ProteinName(&rng)),
                     Datum(std::string(kOrganelles[rng.NextBelow(10)])),
                     Datum(std::string(kSpecies[rng.NextBelow(6)]))});
  }
  CPDB_RETURN_IF_ERROR(table->BulkLoad(batch).status());
  return std::string("organelle");
}

}  // namespace cpdb::workload
