#include "workload/update_gen.h"

namespace cpdb::workload {

using update::OpKind;
using update::Update;

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kAdd:
      return "add";
    case Pattern::kDelete:
      return "delete";
    case Pattern::kCopy:
      return "copy";
    case Pattern::kAcMix:
      return "ac-mix";
    case Pattern::kMix:
      return "mix";
    case Pattern::kReal:
      return "real";
  }
  return "?";
}

Result<Pattern> PatternFromName(const std::string& name) {
  for (Pattern p : {Pattern::kAdd, Pattern::kDelete, Pattern::kCopy,
                    Pattern::kAcMix, Pattern::kMix, Pattern::kReal}) {
    if (name == PatternName(p)) return p;
  }
  return Status::InvalidArgument("unknown update pattern '" + name + "'");
}

const char* DeletePolicyName(DeletePolicy p) {
  switch (p) {
    case DeletePolicy::kRandom:
      return "del-random";
    case DeletePolicy::kAdded:
      return "del-add";
    case DeletePolicy::kCopied:
      return "del-copy";
    case DeletePolicy::kMix:
      return "del-mix";
    case DeletePolicy::kReal:
      return "del-real";
  }
  return "?";
}

Result<DeletePolicy> DeletePolicyFromName(const std::string& name) {
  for (DeletePolicy p :
       {DeletePolicy::kRandom, DeletePolicy::kAdded, DeletePolicy::kCopied,
        DeletePolicy::kMix, DeletePolicy::kReal}) {
    if (name == DeletePolicyName(p)) return p;
  }
  return Status::InvalidArgument("unknown deletion pattern '" + name + "'");
}

UpdateGenerator::UpdateGenerator(const tree::Tree* universe,
                                 GenOptions options)
    : universe_(universe), options_(std::move(options)), rng_(options.seed) {
  target_root_ = tree::Path({options_.target_label});
  const tree::Tree* target = universe_->Find(target_root_);
  if (target != nullptr) {
    target->Visit([&](const tree::Path& rel, const tree::Tree& node) {
      tree::Path abs = target_root_.Concat(rel);
      any_nodes_.push_back(abs);
      if (!node.HasValue()) containers_.push_back(abs);
    });
  }
  const tree::Tree* source =
      universe_->Find(tree::Path({options_.source_label}));
  if (source != nullptr) {
    for (const auto& [label, child] : source->children()) {
      (void)child;
      source_entries_.push_back(
          tree::Path({options_.source_label, label}));
    }
  }
}

std::optional<tree::Path> UpdateGenerator::PickContainer() {
  for (int tries = 0; tries < 64 && !containers_.empty(); ++tries) {
    size_t i = rng_.NextIndex(containers_.size());
    const tree::Tree* node = universe_->Find(containers_[i]);
    if (node != nullptr && !node->HasValue()) return containers_[i];
    containers_[i] = containers_.back();
    containers_.pop_back();
  }
  return target_root_;  // the target root always exists and is a container
}

std::optional<tree::Path> UpdateGenerator::PickFrom(
    std::vector<tree::Path>* pool, bool must_be_deletable,
    size_t recent_window) {
  for (int tries = 0; tries < 64 && !pool->empty(); ++tries) {
    size_t lo = recent_window > 0 && pool->size() > recent_window
                    ? pool->size() - recent_window
                    : 0;
    size_t i = lo + rng_.NextIndex(pool->size() - lo);
    tree::Path p = (*pool)[i];
    bool ok = Exists(p);
    if (ok && must_be_deletable) {
      // Deletable = strictly below the target root (we never delete T).
      ok = target_root_.IsStrictPrefixOf(p);
    }
    if (ok) return p;
    (*pool)[i] = pool->back();
    pool->pop_back();
  }
  return std::nullopt;
}

std::optional<Update> UpdateGenerator::NextAdd() {
  auto parent = PickContainer();
  if (!parent.has_value()) return std::nullopt;
  std::string label = "n" + std::to_string(++fresh_counter_);
  // Half leaf values, half empty nodes — both legal insert payloads.
  std::optional<tree::Value> payload;
  if (rng_.NextBool(0.5)) payload = tree::Value(rng_.NextInt(0, 99999));
  return Update::Insert(*parent, label, payload);
}

std::optional<Update> UpdateGenerator::NextDelete() {
  std::optional<tree::Path> victim;
  switch (options_.delete_policy) {
    case DeletePolicy::kRandom:
      // Random path deletion, biased to leaves: curators delete individual
      // fields far more often than whole records, and the paper's random
      // deletes cost ~1 provenance record each (Figure 7's delete bar
      // matches its add bar for every method).
      for (int tries = 0; tries < 8; ++tries) {
        victim = PickFrom(&any_nodes_, /*must_be_deletable=*/true);
        if (!victim.has_value()) break;
        const tree::Tree* node = universe_->Find(*victim);
        if (node != nullptr && !node->HasChildren()) break;  // leaf: done
      }
      break;
    case DeletePolicy::kAdded:
      victim = PickFrom(&added_, true, /*recent_window=*/12);
      break;
    case DeletePolicy::kCopied:
      victim = PickFrom(&copied_roots_, true, /*recent_window=*/12);
      break;
    case DeletePolicy::kMix:
      victim = rng_.NextBool(0.5) ? PickFrom(&added_, true, 12)
                                  : PickFrom(&copied_roots_, true, 12);
      if (!victim.has_value()) {
        victim = rng_.NextBool(0.5) ? PickFrom(&copied_roots_, true, 12)
                                    : PickFrom(&added_, true, 12);
      }
      break;
    case DeletePolicy::kReal: {
      // Delete a child of a previously copied subtree.
      auto root = PickFrom(&copied_roots_, true);
      if (root.has_value()) {
        const tree::Tree* node = universe_->Find(*root);
        if (node != nullptr && node->HasChildren()) {
          size_t k = rng_.NextIndex(node->ChildCount());
          auto it = node->children().begin();
          std::advance(it, static_cast<long>(k));
          victim = root->Child(it->first);
        }
      }
      break;
    }
  }
  if (!victim.has_value()) return std::nullopt;
  return Update::Delete(victim->Parent(), victim->Leaf());
}

std::optional<Update> UpdateGenerator::NextCopy(
    const tree::Path& dst_parent_hint) {
  if (source_entries_.empty()) return std::nullopt;
  const tree::Path& src =
      source_entries_[rng_.NextIndex(source_entries_.size())];
  std::string label = "c" + std::to_string(++fresh_counter_);
  return Update::Copy(src, dst_parent_hint.Child(label));
}

std::optional<Update> UpdateGenerator::NextReal() {
  // The paper's "real" bulk-like pattern, a 7-operation cycle: copy one
  // subtree, delete three existing subtree elements, insert three new
  // elements under the subtree root (Section 4.1: "repeatedly copies a
  // subtree into the target, then inserts three elements under the
  // subtree root and deletes three existing subtree elements"). The
  // deletes directly follow the copy so that, as in the paper's Figure 8,
  // transactional stores cancel many copy+delete pairs within one
  // transaction.
  if (real_phase_ == 0) {
    auto parent = PickContainer();
    if (!parent.has_value()) return std::nullopt;
    auto copy = NextCopy(*parent);
    if (!copy.has_value()) return std::nullopt;
    real_root_ = copy->target;
    real_victims_.clear();
    real_phase_ = 1;
    return copy;
  }
  if (real_phase_ >= 1 && real_phase_ <= 3) {
    // Delete the original children of the freshly copied entry.
    if (real_victims_.empty() && real_phase_ == 1) {
      const tree::Tree* node = universe_->Find(real_root_);
      if (node != nullptr) {
        for (const auto& [label, child] : node->children()) {
          (void)child;
          real_victims_.push_back(label);
        }
      }
    }
    ++real_phase_;
    while (!real_victims_.empty()) {
      std::string victim = real_victims_.back();
      real_victims_.pop_back();
      if (universe_->Find(real_root_.Child(victim)) != nullptr) {
        return Update::Delete(real_root_, victim);
      }
    }
    // Nothing left to delete: fall through to an insert phase op.
  }
  // Phases 4..6 (or delete-starved earlier phases): insert fresh nodes.
  ++real_phase_;
  if (real_phase_ > 6) real_phase_ = 0;
  std::string label = "n" + std::to_string(++fresh_counter_);
  std::optional<tree::Value> payload;
  if (rng_.NextBool(0.5)) payload = tree::Value(rng_.NextInt(0, 99999));
  if (universe_->Find(real_root_) == nullptr) {
    real_phase_ = 0;
    return NextReal();
  }
  return Update::Insert(real_root_, label, payload);
}

std::optional<Update> UpdateGenerator::Next(bool* skipped) {
  if (skipped != nullptr) *skipped = false;
  Pattern p = options_.pattern;
  if (p == Pattern::kAcMix) {
    p = rng_.NextBool(0.5) ? Pattern::kAdd : Pattern::kCopy;
  } else if (p == Pattern::kMix) {
    switch (rng_.NextBelow(3)) {
      case 0:
        p = Pattern::kAdd;
        break;
      case 1:
        p = Pattern::kDelete;
        break;
      default:
        p = Pattern::kCopy;
        break;
    }
  }
  switch (p) {
    case Pattern::kAdd:
      return NextAdd();
    case Pattern::kDelete: {
      if (!options_.include_deletes) {
        ++skipped_deletes_;
        if (skipped != nullptr) *skipped = true;
        return std::nullopt;  // "(ac)" run: the delete slot is a no-op
      }
      auto del = NextDelete();
      // A delete-starved pool falls back to an add so long runs make
      // progress (matches random-update behaviour on a shrinking tree).
      return del.has_value() ? del : NextAdd();
    }
    case Pattern::kCopy: {
      auto parent = PickContainer();
      if (!parent.has_value()) return std::nullopt;
      return NextCopy(*parent);
    }
    case Pattern::kReal:
      return NextReal();
    default:
      return std::nullopt;
  }
}

void UpdateGenerator::OnApplied(const Update& u,
                                const update::ApplyEffect& effect) {
  switch (u.kind) {
    case OpKind::kInsert: {
      ++adds_;
      for (const tree::Path& p : effect.inserted) {
        any_nodes_.push_back(p);
        added_.push_back(p);
        const tree::Tree* node = universe_->Find(p);
        if (node != nullptr && !node->HasValue()) containers_.push_back(p);
      }
      break;
    }
    case OpKind::kDelete:
      ++deletes_;
      // Pools are validated lazily; nothing to do eagerly.
      break;
    case OpKind::kCopy: {
      ++copies_;
      if (!effect.copied.empty()) {
        copied_roots_.push_back(effect.copied.front().first);
      }
      for (const auto& [loc, src] : effect.copied) {
        (void)src;
        any_nodes_.push_back(loc);
        const tree::Tree* node = universe_->Find(loc);
        if (node != nullptr && !node->HasValue()) containers_.push_back(loc);
      }
      break;
    }
  }
}

}  // namespace cpdb::workload
