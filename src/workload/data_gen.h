#pragma once

#include <cstdint>

#include "relstore/database.h"
#include "tree/tree.h"
#include "util/status.h"

namespace cpdb::workload {

/// Synthetic stand-ins for the paper's evaluation data (Section 4.1).
/// Only the tree *shape* matters to the experiments — the updates are
/// random and "the copies were all of subtrees of size four (a parent
/// with three children)" — so the generators reproduce shape and scale
/// with deterministic pseudo-biological content.

/// MiMI-like curated target: protein-interaction entries, each a record
/// with a handful of leaf fields and a small nested substructure.
/// `entries` scales the database (the paper used a 27.3 MB MiMI copy).
tree::Tree GenMimiLike(size_t entries, uint64_t seed);

/// OrganelleDB-like source: `entries` subtrees of size four — a parent
/// with exactly three leaf children (protein, organelle, species) — the
/// copy-unit shape of every experiment.
tree::Tree GenOrganelleLike(size_t entries, uint64_t seed);

/// The same OrganelleDB-like content as a relational table
/// organelle(id, protein, organelle, species) inside `db`, for use with
/// wrap::RelationalSourceDb. Returns the created table's name.
Result<std::string> FillOrganelleRelational(relstore::Database* db,
                                            size_t rows, uint64_t seed);

}  // namespace cpdb::workload
