#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relstore/database.h"
#include "relstore/journal.h"
#include "storage/log_format.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace cpdb::storage {

/// Counters of one durability engine's session (see also the CostModel's
/// fsync/log-bytes counters, which benches difference the same way they
/// difference round trips).
struct DurabilityStats {
  uint64_t last_seq = 0;        ///< newest durable commit sequence
  size_t commits = 0;           ///< log records appended this session
  size_t fsyncs = 0;            ///< fsync barriers issued
  size_t log_bytes = 0;         ///< bytes appended to the log
  size_t checkpoints = 0;       ///< checkpoints written this session
  size_t replayed_commits = 0;  ///< log records recovery applied
  bool snapshot_loaded = false; ///< recovery started from a checkpoint
};

/// The durability engine of one Database: write-ahead logging with group
/// commit, checkpointing, and crash recovery.
///
/// Directory layout under `dir`:
///
///   wal.log         CRC32-framed commit records (see storage/wal.h)
///   CHECKPOINT      binary full-database snapshot (storage/snapshot.h)
///   CHECKPOINT.tmp  transient; atomically renamed over CHECKPOINT
///
/// Write path: Table/Database report every successful mutation through
/// the Journal interface; the notes buffer in `pending_`. Sync() seals
/// the buffer into ONE CommitRecord (seq = ++last_seq), appends it as one
/// framed log record, and fsyncs — one fsync per committed transaction
/// regardless of how many tables or rows it touched, the write-side twin
/// of the batched WriteBatch/TrackBatch path it rides on.
///
/// Recovery (inside Attach): load CHECKPOINT if present (tables rebuilt
/// via BulkLoad), then replay wal.log in order, skipping records whose
/// seq <= the checkpoint's (the crash window between writing a checkpoint
/// and truncating the log) and truncating any torn or corrupt tail back
/// to the last committed transaction. Because data tables and provenance
/// tables share the Database — and therefore the log — both recover to
/// the same committed transaction, always.
///
/// Thread safety: internally synchronized. The pending-note buffer, the
/// sticky failure, the stats, and the log handle are all GUARDED_BY one
/// internal mutex (compiler-checked under -Wthread-safety), and Sync
/// holds it across seal-append-fsync so a commit record can never
/// interleave with another committer's notes. The service layer's
/// exclusive latch already serializes callers today; the internal lock is
/// the defense line the MVCC refactor (parallel disjoint-subtree commits)
/// will lean on. Note: the caller still owns transaction boundaries — a
/// multi-call mutation sequence is made atomic by the engine's latch, not
/// by this mutex.
class Durability : public relstore::Journal {
 public:
  /// Creates `dir` if needed, recovers its contents into `db` (which must
  /// hold no tables), and opens the log for appending. Does NOT attach
  /// itself to the tables — Database::Open does that after recovery so
  /// replayed writes are not re-logged.
  ///
  /// Single-writer: the directory is guarded by an advisory flock on
  /// `dir/LOCK` held for the engine's lifetime, so a second concurrent
  /// Open of the same directory fails with FailedPrecondition instead of
  /// interleaving two sessions' commit records. The kernel drops the
  /// lock when the holding process dies, so a crashed session never
  /// blocks recovery.
  static Result<std::unique_ptr<Durability>> Attach(relstore::Database* db,
                                                    std::string dir);
  ~Durability() override;

  /// Group-commit barrier; see class comment. No-op when nothing pending.
  ///
  /// Fail-stop: once a commit fails to reach the log (append or fsync
  /// error), the engine rejects every further Sync with the original
  /// error — the in-memory state is ahead of the log at that point, and
  /// appending later commits over the gap would recover a state that
  /// skips a transaction the caller already observed.
  Status Sync() CPDB_EXCLUDES(mu_);

  /// Sync(), write a fresh CHECKPOINT, then truncate the log.
  Status Checkpoint() CPDB_EXCLUDES(mu_);

  /// Sync() then close the log. Idempotent; post-Close writes are
  /// rejected at the Database level (journal detached).
  Status Close() CPDB_EXCLUDES(mu_);

  bool open() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return wal_ != nullptr;
  }
  /// Point-in-time copy of the session counters.
  DurabilityStats stats() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return stats_;
  }

  /// Forwards latency histograms onto the underlying log's write path
  /// (see Wal::SetMetricSinks). Safe any time; no-op if already closed.
  void SetMetricSinks(obs::Histogram* append_us, obs::Histogram* fsync_us)
      CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    if (wal_ != nullptr) wal_->SetMetricSinks(append_us, fsync_us);
  }
  const std::string& dir() const { return dir_; }

  static std::string WalPath(const std::string& dir);
  static std::string CheckpointPath(const std::string& dir);
  static std::string LockPath(const std::string& dir);

  // ----- relstore::Journal -------------------------------------------------
  void NoteCreateTable(const std::string& table,
                       const relstore::Schema& schema) override
      CPDB_EXCLUDES(mu_);
  void NoteDropTable(const std::string& table) override CPDB_EXCLUDES(mu_);
  void NoteCreateIndex(const std::string& table,
                       const relstore::IndexDef& def) override
      CPDB_EXCLUDES(mu_);
  void NoteInsert(const std::string& table,
                  const relstore::Row& row) override CPDB_EXCLUDES(mu_);
  void NoteDelete(const std::string& table,
                  const relstore::Row& row) override CPDB_EXCLUDES(mu_);

 private:
  Durability(relstore::Database* db, std::string dir)
      : db_(db), dir_(std::move(dir)) {}

  /// Applies one replayed write to the recovering database.
  Status ApplyWrite(const LogWrite& w);

  /// Sync's body; Checkpoint and Close ride the same hold so their
  /// barrier-then-mutate sequences stay atomic against other committers.
  Status SyncLocked() CPDB_REQUIRES(mu_);

  /// Stages one journal note (the shared tail of the Note* overrides).
  void PushPending(LogWrite w) CPDB_EXCLUDES(mu_);

  relstore::Database* db_;
  std::string dir_;
  int lock_fd_ = -1;  ///< flock on dir/LOCK; released on close/death
  mutable Mutex mu_;
  std::unique_ptr<Wal> wal_ CPDB_GUARDED_BY(mu_);
  std::vector<LogWrite> pending_ CPDB_GUARDED_BY(mu_);
  DurabilityStats stats_ CPDB_GUARDED_BY(mu_);
  Status fail_ CPDB_GUARDED_BY(mu_);  ///< sticky first log failure (see Sync)

  /// Database's move operations re-point the back reference.
  friend class relstore::Database;
  void RebindDatabase(relstore::Database* db) { db_ = db; }
};

}  // namespace cpdb::storage
