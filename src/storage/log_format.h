#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relstore/datum.h"
#include "relstore/journal.h"
#include "relstore/schema.h"

namespace cpdb::storage {

/// One journalled state change inside a commit record. DDL (create/drop
/// table, create index) is logged alongside row writes so a log replayed
/// into an empty Database rebuilds schemas and access paths before the
/// rows that need them — recovery with no checkpoint on disk starts from
/// nothing but the log.
enum class LogOp : uint8_t {
  kCreateTable = 1,
  kDropTable = 2,
  kCreateIndex = 3,
  kInsert = 4,
  kDelete = 5,
};

/// One Note* call, serialized. `row` carries the full row image for
/// kInsert/kDelete; `schema` the table schema for kCreateTable; `index`
/// the definition for kCreateIndex.
struct LogWrite {
  LogOp op = LogOp::kInsert;
  std::string table;
  relstore::Row row;
  relstore::Schema schema;
  relstore::IndexDef index;
};

/// One committed transaction — the unit the write-ahead log appends,
/// checksums, and fsyncs. `seq` is the database's monotonically
/// increasing commit sequence; recovery replays records in file order and
/// skips any with seq <= the checkpoint's sequence (the crash window
/// between writing a checkpoint and truncating the log).
struct CommitRecord {
  uint64_t seq = 0;
  std::vector<LogWrite> writes;

  void EncodeTo(std::string* out) const;
  /// Strict whole-payload decode; false on any trailing or missing bytes.
  static bool DecodeFrom(const std::string& in, CommitRecord* out);
};

// Schema / index-definition codecs, shared by the log and the checkpoint
// files so the two formats stay byte-identical.
void EncodeSchema(const relstore::Schema& schema, std::string* out);
bool DecodeSchema(const std::string& in, size_t* pos,
                  relstore::Schema* out);
void EncodeIndexDef(const relstore::IndexDef& def, std::string* out);
bool DecodeIndexDef(const std::string& in, size_t* pos,
                    relstore::IndexDef* out);

}  // namespace cpdb::storage
