#include "storage/log_format.h"

#include "util/crc32.h"

namespace cpdb::storage {

using relstore::Column;
using relstore::ColumnType;
using relstore::Row;
using relstore::Schema;

void EncodeSchema(const Schema& schema, std::string* out) {
  PutVarint64(out, schema.NumColumns());
  for (const Column& col : schema.columns()) {
    PutLengthPrefixed(out, col.name);
    out->push_back(static_cast<char>(col.type));
    out->push_back(col.nullable ? 1 : 0);
  }
}

bool DecodeSchema(const std::string& in, size_t* pos, Schema* out) {
  uint64_t n;
  if (!GetVarint64(in, pos, &n)) return false;
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Column col;
    if (!GetLengthPrefixed(in, pos, &col.name)) return false;
    if (*pos + 2 > in.size()) return false;
    uint8_t type = static_cast<uint8_t>(in[*pos]);
    if (type > static_cast<uint8_t>(ColumnType::kString)) return false;
    col.type = static_cast<ColumnType>(type);
    col.nullable = in[*pos + 1] != 0;
    *pos += 2;
    columns.push_back(std::move(col));
  }
  *out = Schema(std::move(columns));
  return true;
}

void EncodeIndexDef(const relstore::IndexDef& def, std::string* out) {
  PutLengthPrefixed(out, def.name);
  PutVarint64(out, def.columns.size());
  for (int c : def.columns) PutVarint64(out, static_cast<uint64_t>(c));
  out->push_back(def.kind == relstore::IndexKind::kBTree ? 0 : 1);
  out->push_back(def.unique ? 1 : 0);
}

bool DecodeIndexDef(const std::string& in, size_t* pos,
                    relstore::IndexDef* out) {
  if (!GetLengthPrefixed(in, pos, &out->name)) return false;
  uint64_t n;
  if (!GetVarint64(in, pos, &n)) return false;
  out->columns.clear();
  out->columns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t c;
    if (!GetVarint64(in, pos, &c)) return false;
    out->columns.push_back(static_cast<int>(c));
  }
  if (*pos + 2 > in.size()) return false;
  out->kind = in[*pos] == 0 ? relstore::IndexKind::kBTree
                            : relstore::IndexKind::kHash;
  out->unique = in[*pos + 1] != 0;
  *pos += 2;
  return true;
}

void CommitRecord::EncodeTo(std::string* out) const {
  PutVarint64(out, seq);
  PutVarint64(out, writes.size());
  for (const LogWrite& w : writes) {
    out->push_back(static_cast<char>(w.op));
    PutLengthPrefixed(out, w.table);
    switch (w.op) {
      case LogOp::kInsert:
      case LogOp::kDelete:
        relstore::EncodeRow(w.row, out);
        break;
      case LogOp::kCreateTable:
        EncodeSchema(w.schema, out);
        break;
      case LogOp::kCreateIndex:
        EncodeIndexDef(w.index, out);
        break;
      case LogOp::kDropTable:
        break;
    }
  }
}

bool CommitRecord::DecodeFrom(const std::string& in, CommitRecord* out) {
  size_t pos = 0;
  out->writes.clear();
  if (!GetVarint64(in, &pos, &out->seq)) return false;
  uint64_t n;
  if (!GetVarint64(in, &pos, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    if (pos >= in.size()) return false;
    LogWrite w;
    uint8_t op = static_cast<uint8_t>(in[pos++]);
    if (op < static_cast<uint8_t>(LogOp::kCreateTable) ||
        op > static_cast<uint8_t>(LogOp::kDelete)) {
      return false;
    }
    w.op = static_cast<LogOp>(op);
    if (!GetLengthPrefixed(in, &pos, &w.table)) return false;
    switch (w.op) {
      case LogOp::kInsert:
      case LogOp::kDelete:
        if (!relstore::DecodeRow(in, &pos, &w.row)) return false;
        break;
      case LogOp::kCreateTable:
        if (!DecodeSchema(in, &pos, &w.schema)) return false;
        break;
      case LogOp::kCreateIndex:
        if (!DecodeIndexDef(in, &pos, &w.index)) return false;
        break;
      case LogOp::kDropTable:
        break;
    }
    out->writes.push_back(std::move(w));
  }
  return pos == in.size();  // a checksummed payload must parse exactly
}

}  // namespace cpdb::storage
