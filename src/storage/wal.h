#pragma once

#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace cpdb::storage {

/// Append-only write-ahead log file with checksummed, length-prefixed
/// framing:
///
///   record := varint(payload_len) | u32 crc32(payload) | payload
///
/// One framed record per committed transaction (group commit): the caller
/// encodes everything the transaction changed into one payload, Append()s
/// it, and Sync()s once — one fsync per commit whatever the transaction's
/// length. A record is atomic on recovery: Replay() surfaces only
/// payloads whose length and CRC check out, stops at the first torn or
/// corrupt frame, and truncates the file back to the last good boundary
/// so the next Append starts on clean bytes.
///
/// Thread safety: internally synchronized. Every mutating entry point
/// serializes on an internal mutex (GUARDED_BY-checked under
/// -Wthread-safety), so concurrent appenders cannot interleave a frame —
/// today the Durability engine is the only caller and already serializes,
/// but the invariant is load-bearing for the planned MVCC write path
/// where disjoint-subtree committers log in parallel.
class Wal {
 public:
  /// Opens (creating if needed) the log at `path` for appending.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one framed record; returns the framed size in bytes via
  /// `*framed_bytes` (optional). Buffered in the OS until Sync().
  ///
  /// Failure atomicity: a short write (ENOSPC, EIO) would leave a torn
  /// frame that recovery treats as end-of-log — every later record,
  /// fsynced or not, would silently vanish behind it. A failed append
  /// therefore truncates the file back to the last good record boundary;
  /// if even that fails, the log POISONS itself and rejects all further
  /// appends (fail-stop), so a commit is never acknowledged behind a
  /// tear.
  Status Append(const std::string& payload, size_t* framed_bytes = nullptr)
      CPDB_EXCLUDES(mu_);

  /// fsync barrier: everything appended so far is durable on return.
  Status Sync() CPDB_EXCLUDES(mu_);

  /// Empties the log (after a checkpoint made its contents redundant).
  Status TruncateAll() CPDB_EXCLUDES(mu_);

  /// Closes the file descriptor WITHOUT syncing — pending OS buffers are
  /// the crash window by design; callers that want durability Sync()
  /// first. Idempotent.
  void Close() CPDB_EXCLUDES(mu_);

  size_t AppendedBytes() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return appended_bytes_;
  }
  size_t SyncCount() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return sync_count_;
  }

  /// Wires latency histograms onto the write path: every Append records
  /// its wall time into `append_us`, every fsync (Sync and TruncateAll's
  /// barrier) into `fsync_us`. Either may be null (unmetered). Owned by
  /// the caller's registry, which must outlive the log.
  void SetMetricSinks(obs::Histogram* append_us, obs::Histogram* fsync_us)
      CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    append_us_ = append_us;
    fsync_us_ = fsync_us;
  }

  /// Replays every complete, checksum-valid record of the log at `path`
  /// in file order, calling `fn(payload)` for each; stops (successfully)
  /// at the first torn or corrupt frame and truncates the file to the
  /// last good record boundary. Returns the number of records surfaced,
  /// or the first error `fn` reported. A missing file replays 0 records.
  static Result<size_t> Replay(
      const std::string& path,
      const std::function<Status(const std::string&)>& fn);

 private:
  Wal(int fd, std::string path, size_t file_size)
      : fd_(fd), path_(std::move(path)), file_size_(file_size) {}

  mutable Mutex mu_;
  int fd_ CPDB_GUARDED_BY(mu_) = -1;
  const std::string path_;  ///< immutable after Open
  /// Last known-good record boundary.
  size_t file_size_ CPDB_GUARDED_BY(mu_) = 0;
  bool poisoned_ CPDB_GUARDED_BY(mu_) = false;
  size_t appended_bytes_ CPDB_GUARDED_BY(mu_) = 0;
  size_t sync_count_ CPDB_GUARDED_BY(mu_) = 0;
  obs::Histogram* append_us_ CPDB_GUARDED_BY(mu_) = nullptr;
  obs::Histogram* fsync_us_ CPDB_GUARDED_BY(mu_) = nullptr;
};

/// fsyncs a directory, making renames/creations inside it durable —
/// without it, a checkpoint's atomic rename (or a fresh log's directory
/// entry) can evaporate in a power loss even though its data survived.
Status SyncDir(const std::string& dir);

/// The directory containing `path` ("." for a bare filename) — the
/// argument SyncDir needs for a file's directory entry.
std::string DirOf(const std::string& path);

}  // namespace cpdb::storage
