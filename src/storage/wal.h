#pragma once

#include <functional>
#include <memory>
#include <string>

#include "util/result.h"

namespace cpdb::storage {

/// Append-only write-ahead log file with checksummed, length-prefixed
/// framing:
///
///   record := varint(payload_len) | u32 crc32(payload) | payload
///
/// One framed record per committed transaction (group commit): the caller
/// encodes everything the transaction changed into one payload, Append()s
/// it, and Sync()s once — one fsync per commit whatever the transaction's
/// length. A record is atomic on recovery: Replay() surfaces only
/// payloads whose length and CRC check out, stops at the first torn or
/// corrupt frame, and truncates the file back to the last good boundary
/// so the next Append starts on clean bytes.
class Wal {
 public:
  /// Opens (creating if needed) the log at `path` for appending.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one framed record; returns the framed size in bytes via
  /// `*framed_bytes` (optional). Buffered in the OS until Sync().
  ///
  /// Failure atomicity: a short write (ENOSPC, EIO) would leave a torn
  /// frame that recovery treats as end-of-log — every later record,
  /// fsynced or not, would silently vanish behind it. A failed append
  /// therefore truncates the file back to the last good record boundary;
  /// if even that fails, the log POISONS itself and rejects all further
  /// appends (fail-stop), so a commit is never acknowledged behind a
  /// tear.
  Status Append(const std::string& payload, size_t* framed_bytes = nullptr);

  /// fsync barrier: everything appended so far is durable on return.
  Status Sync();

  /// Empties the log (after a checkpoint made its contents redundant).
  Status TruncateAll();

  /// Closes the file descriptor WITHOUT syncing — pending OS buffers are
  /// the crash window by design; callers that want durability Sync()
  /// first. Idempotent.
  void Close();

  size_t AppendedBytes() const { return appended_bytes_; }
  size_t SyncCount() const { return sync_count_; }

  /// Replays every complete, checksum-valid record of the log at `path`
  /// in file order, calling `fn(payload)` for each; stops (successfully)
  /// at the first torn or corrupt frame and truncates the file to the
  /// last good record boundary. Returns the number of records surfaced,
  /// or the first error `fn` reported. A missing file replays 0 records.
  static Result<size_t> Replay(
      const std::string& path,
      const std::function<Status(const std::string&)>& fn);

 private:
  Wal(int fd, std::string path, size_t file_size)
      : fd_(fd), path_(std::move(path)), file_size_(file_size) {}

  int fd_ = -1;
  std::string path_;
  size_t file_size_ = 0;  // last known-good record boundary
  bool poisoned_ = false;
  size_t appended_bytes_ = 0;
  size_t sync_count_ = 0;
};

/// fsyncs a directory, making renames/creations inside it durable —
/// without it, a checkpoint's atomic rename (or a fresh log's directory
/// entry) can evaporate in a power loss even though its data survived.
Status SyncDir(const std::string& dir);

/// The directory containing `path` ("." for a bare filename) — the
/// argument SyncDir needs for a file's directory entry.
std::string DirOf(const std::string& path);

}  // namespace cpdb::storage
