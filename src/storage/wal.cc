#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/crc32.h"

namespace cpdb::storage {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path +
                          "': " + std::strerror(errno));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

}  // namespace

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("directory fsync failed", dir);
  return Status::OK();
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open WAL", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("cannot stat WAL", path);
  }
  // Make the (possibly fresh) directory entry itself durable: data
  // fsyncs are pointless if the file's name can vanish with the dir.
  Status dir_sync = SyncDir(DirOf(path));
  if (!dir_sync.ok()) {
    ::close(fd);
    return dir_sync;
  }
  return std::unique_ptr<Wal>(
      new Wal(fd, path, static_cast<size_t>(st.st_size)));
}

Wal::~Wal() { Close(); }

void Wal::Close() {
  MutexLock l(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Wal::Append(const std::string& payload, size_t* framed_bytes) {
  MutexLock l(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "WAL '" + path_ + "' is poisoned by an unrecoverable torn write");
  }
  const double start_us = append_us_ ? obs::NowMicros() : 0;
  std::string frame;
  frame.reserve(payload.size() + kMaxVarint64Bytes + 4);
  PutVarint64(&frame, payload.size());
  PutU32(&frame, Crc32(payload));
  frame.append(payload);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status write_err = Errno("WAL write failed", path_);
      // Cut the torn frame back off; a tear left in place would make
      // recovery treat this spot as end-of-log and silently drop every
      // later record. If the cut fails too, fail-stop.
      if (::ftruncate(fd_, static_cast<off_t>(file_size_)) != 0) {
        poisoned_ = true;
      }
      return write_err;
    }
    off += static_cast<size_t>(n);
  }
  file_size_ += frame.size();
  appended_bytes_ += frame.size();
  if (framed_bytes != nullptr) *framed_bytes = frame.size();
  if (append_us_) append_us_->Record(obs::NowMicros() - start_us);
  return Status::OK();
}

Status Wal::Sync() {
  MutexLock l(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  const double start_us = fsync_us_ ? obs::NowMicros() : 0;
  if (::fsync(fd_) != 0) return Errno("WAL fsync failed", path_);
  if (fsync_us_) fsync_us_->Record(obs::NowMicros() - start_us);
  ++sync_count_;
  return Status::OK();
}

Status Wal::TruncateAll() {
  MutexLock l(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (::ftruncate(fd_, 0) != 0) return Errno("WAL truncate failed", path_);
  file_size_ = 0;
  poisoned_ = false;  // a fresh, empty log is clean again
  if (::fsync(fd_) != 0) return Errno("WAL fsync failed", path_);
  ++sync_count_;
  return Status::OK();
}

Result<size_t> Wal::Replay(
    const std::string& path,
    const std::function<Status(const std::string&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return size_t{0};  // no log yet: nothing to replay
  in.seekg(0, std::ios::end);
  const size_t file_size = static_cast<size_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  size_t consumed = 0;  // end offset of the last fully verified record
  size_t records = 0;
  // One record buffer, reused: recovery memory is bounded by the largest
  // record, not the log size (a session that never checkpoints can grow
  // the log without bound).
  std::string payload;
  std::string header;
  while (consumed < file_size) {
    // Pull the length's bytes off the stream, then decode them with the
    // one canonical varint decoder — the replay loop must never drift
    // from the encoder's wire contract.
    header.clear();
    while (header.size() < kMaxVarint64Bytes) {
      int c = in.get();
      if (c == std::char_traits<char>::eof()) break;  // torn length
      header.push_back(static_cast<char>(c));
      if ((c & 0x80) == 0) break;
    }
    uint64_t len;
    size_t header_pos = 0;
    if (!GetVarint64(header, &header_pos, &len) ||
        header_pos != header.size()) {
      break;  // torn or overlong length varint
    }
    char crc_buf[4];
    if (!in.read(crc_buf, 4)) break;  // torn header
    uint32_t crc;
    std::memcpy(&crc, crc_buf, 4);
    const size_t body_off = consumed + header.size() + 4;
    // Also guards the resize below against an absurd corrupt length.
    if (len > file_size - body_off) break;  // torn payload
    payload.resize(len);
    if (len > 0 &&
        !in.read(payload.data(), static_cast<std::streamsize>(len))) {
      break;
    }
    if (Crc32(payload) != crc) break;  // corrupt payload
    CPDB_RETURN_IF_ERROR(fn(payload));
    consumed = body_off + len;
    ++records;
  }
  in.close();
  if (consumed < file_size) {
    // Torn or corrupt tail: cut the file back to the last good commit so
    // subsequent appends extend a clean log. Anything past the first bad
    // frame is unreachable anyway (frames only parse in sequence).
    if (::truncate(path.c_str(), static_cast<off_t>(consumed)) != 0) {
      return Errno("WAL tail truncate failed", path);
    }
  }
  return records;
}

}  // namespace cpdb::storage
