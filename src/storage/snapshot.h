#pragma once

#include <cstdint>
#include <string>

#include "relstore/database.h"
#include "util/result.h"

namespace cpdb::storage {

/// Binary checkpoint of a whole Database — every table's schema, index
/// definitions, and live rows — stamped with the commit sequence it
/// captures. Layout (all integers varint unless noted):
///
///   "CPDBCKPT" (8 bytes) | u8 version
///   seq | n_tables
///   per table: name(lp) | schema | n_indexes x index_def | n_rows x row
///   u32 crc32 over everything after the magic
///
/// WriteSnapshot writes to `path + ".tmp"`, fsyncs, then renames over
/// `path`, so a crash mid-checkpoint leaves the previous checkpoint
/// intact (rename is atomic on POSIX). LoadSnapshot verifies the CRC
/// before touching the database and restores each table with one
/// Table::BulkLoad (B+-trees built by sorted bulk load, not per-row
/// inserts).
Status WriteSnapshot(const relstore::Database& db, uint64_t seq,
                     const std::string& path);

/// Restores a snapshot into `db`, which must hold no tables yet.
/// Returns the commit sequence the snapshot captured. Fails without
/// side effects on a missing file, bad magic, or CRC mismatch.
Result<uint64_t> LoadSnapshot(relstore::Database* db,
                              const std::string& path);

}  // namespace cpdb::storage
