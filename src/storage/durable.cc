#include "storage/durable.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <filesystem>

#include "storage/snapshot.h"

namespace cpdb::storage {

namespace fs = std::filesystem;

std::string Durability::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

std::string Durability::CheckpointPath(const std::string& dir) {
  return dir + "/CHECKPOINT";
}

std::string Durability::LockPath(const std::string& dir) {
  return dir + "/LOCK";
}

Durability::~Durability() {
  // The WAL fd closes unsynced (the crash window is intentional); the
  // advisory lock drops with its fd.
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

Status Durability::ApplyWrite(const LogWrite& w) {
  switch (w.op) {
    case LogOp::kCreateTable:
      return db_->CreateTable(w.table, w.schema).status();
    case LogOp::kDropTable:
      return db_->DropTable(w.table);
    case LogOp::kCreateIndex: {
      CPDB_ASSIGN_OR_RETURN(relstore::Table * table,
                            db_->GetTable(w.table));
      return table->CreateIndex(w.index.name, w.index.columns,
                                w.index.kind, w.index.unique);
    }
    case LogOp::kInsert: {
      CPDB_ASSIGN_OR_RETURN(relstore::Table * table,
                            db_->GetTable(w.table));
      return table->Insert(w.row).status();
    }
    case LogOp::kDelete: {
      CPDB_ASSIGN_OR_RETURN(relstore::Table * table,
                            db_->GetTable(w.table));
      // The log names deleted rows by image (Rids are not stable across
      // checkpoint restores); see Table::DeleteRowImage.
      return table->DeleteRowImage(w.row);
    }
  }
  return Status::Internal("unknown log op");
}

Result<std::unique_ptr<Durability>> Durability::Attach(
    relstore::Database* db, std::string dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir +
                            "': " + ec.message());
  }
  std::unique_ptr<Durability> d(new Durability(db, std::move(dir)));

  // Phase 0: single-writer guard. flock (not O_EXCL) so a crashed
  // session's stale lock file never blocks recovery — the kernel drops
  // the lock with the dead process.
  d->lock_fd_ = ::open(LockPath(d->dir_).c_str(), O_CREAT | O_RDWR, 0644);
  if (d->lock_fd_ < 0) {
    return Status::Internal("cannot open '" + LockPath(d->dir_) + "'");
  }
  if (::flock(d->lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    return Status::FailedPrecondition(
        "'" + d->dir_ + "' is locked by another live session");
  }

  // Phase 1: newest checkpoint, if any. A leftover CHECKPOINT.tmp is a
  // checkpoint that never committed its rename; ignore and remove it.
  // Recovery runs single-threaded before the handle is published, so the
  // phases accumulate into locals and land in the guarded stats once, at
  // the end.
  fs::remove(CheckpointPath(d->dir_) + ".tmp", ec);
  DurabilityStats recovered;
  uint64_t snapshot_seq = 0;
  auto loaded = LoadSnapshot(db, CheckpointPath(d->dir_));
  if (loaded.ok()) {
    snapshot_seq = loaded.value();
    recovered.snapshot_loaded = true;
  } else if (!loaded.status().IsNotFound()) {
    return loaded.status();  // a checkpoint exists but cannot be trusted
  }

  // Phase 2: replay the log tail past the checkpoint; Wal::Replay
  // truncates any torn or corrupt tail to the last good commit.
  recovered.last_seq = snapshot_seq;
  auto replayed = Wal::Replay(
      WalPath(d->dir_), [&](const std::string& payload) -> Status {
        CommitRecord rec;
        if (!CommitRecord::DecodeFrom(payload, &rec)) {
          // The frame passed its CRC but carries bytes this build cannot
          // parse — refuse to guess rather than recover wrong state.
          return Status::Internal("undecodable commit record in WAL");
        }
        if (rec.seq <= snapshot_seq) return Status::OK();  // checkpointed
        for (const LogWrite& w : rec.writes) {
          CPDB_RETURN_IF_ERROR(d->ApplyWrite(w));
        }
        recovered.last_seq = rec.seq;
        ++recovered.replayed_commits;
        return Status::OK();
      });
  CPDB_RETURN_IF_ERROR(replayed.status());

  CPDB_ASSIGN_OR_RETURN(auto wal, Wal::Open(WalPath(d->dir_)));
  MutexLock l(d->mu_);
  d->stats_ = recovered;
  d->wal_ = std::move(wal);
  return d;
}

Status Durability::Sync() {
  MutexLock l(mu_);
  return SyncLocked();
}

Status Durability::SyncLocked() {
  if (!fail_.ok()) return fail_;  // fail-stop: the log has a gap
  if (wal_ == nullptr) {
    return pending_.empty()
               ? Status::OK()
               : Status::FailedPrecondition("durability engine is closed");
  }
  if (pending_.empty()) return Status::OK();
  CommitRecord rec;
  rec.seq = stats_.last_seq + 1;
  rec.writes = std::move(pending_);
  pending_.clear();
  std::string payload;
  rec.EncodeTo(&payload);
  size_t framed = 0;
  Status appended = wal_->Append(payload, &framed);
  if (appended.ok()) appended = wal_->Sync();
  if (!appended.ok()) {
    fail_ = appended;
    return appended;
  }
  stats_.last_seq = rec.seq;
  ++stats_.commits;
  ++stats_.fsyncs;
  stats_.log_bytes += framed;
  db_->cost().ChargeLog(framed);
  db_->cost().ChargeFsync();
  return Status::OK();
}

Status Durability::Checkpoint() {
  MutexLock l(mu_);
  if (!fail_.ok()) return fail_;
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability engine is closed");
  }
  CPDB_RETURN_IF_ERROR(SyncLocked());
  CPDB_RETURN_IF_ERROR(
      WriteSnapshot(*db_, stats_.last_seq, CheckpointPath(dir_)));
  ++stats_.fsyncs;  // the snapshot's own fsync-before-rename
  db_->cost().ChargeFsync();
  // The log is redundant below the checkpoint; TruncateAll fsyncs.
  CPDB_RETURN_IF_ERROR(wal_->TruncateAll());
  ++stats_.fsyncs;
  db_->cost().ChargeFsync();
  ++stats_.checkpoints;
  return Status::OK();
}

Status Durability::Close() {
  MutexLock l(mu_);
  if (wal_ == nullptr && lock_fd_ < 0) return Status::OK();
  // Flush what we can, but release the log and the directory lock even
  // when the final Sync fails (e.g. a fail-stopped engine): Close must
  // always leave the directory reopenable by another session. The error
  // still reaches the caller, who knows the tail was not flushed.
  Status synced = wal_ != nullptr ? SyncLocked() : Status::OK();
  if (wal_ != nullptr) {
    wal_->Close();
    wal_.reset();
  }
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
  return synced;
}

void Durability::PushPending(LogWrite w) {
  MutexLock l(mu_);
  pending_.push_back(std::move(w));
}

void Durability::NoteCreateTable(const std::string& table,
                                 const relstore::Schema& schema) {
  LogWrite w;
  w.op = LogOp::kCreateTable;
  w.table = table;
  w.schema = schema;
  PushPending(std::move(w));
}

void Durability::NoteDropTable(const std::string& table) {
  LogWrite w;
  w.op = LogOp::kDropTable;
  w.table = table;
  PushPending(std::move(w));
}

void Durability::NoteCreateIndex(const std::string& table,
                                 const relstore::IndexDef& def) {
  LogWrite w;
  w.op = LogOp::kCreateIndex;
  w.table = table;
  w.index = def;
  PushPending(std::move(w));
}

void Durability::NoteInsert(const std::string& table,
                            const relstore::Row& row) {
  LogWrite w;
  w.op = LogOp::kInsert;
  w.table = table;
  w.row = row;
  PushPending(std::move(w));
}

void Durability::NoteDelete(const std::string& table,
                            const relstore::Row& row) {
  LogWrite w;
  w.op = LogOp::kDelete;
  w.table = table;
  w.row = row;
  PushPending(std::move(w));
}

}  // namespace cpdb::storage
