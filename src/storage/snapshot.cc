#include "storage/snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "storage/log_format.h"
#include "storage/wal.h"  // SyncDir
#include "util/crc32.h"

namespace cpdb::storage {

namespace {

constexpr char kMagic[8] = {'C', 'P', 'D', 'B', 'C', 'K', 'P', 'T'};
constexpr uint8_t kVersion = 1;

}  // namespace

Status WriteSnapshot(const relstore::Database& db, uint64_t seq,
                     const std::string& path) {
  std::string body;
  body.push_back(static_cast<char>(kVersion));
  PutVarint64(&body, seq);
  PutVarint64(&body, db.TableCount());
  db.ForEachTable([&](const relstore::Table& table) {
    PutLengthPrefixed(&body, table.name());
    EncodeSchema(table.schema(), &body);
    std::vector<relstore::IndexDef> defs = table.IndexDefs();
    PutVarint64(&body, defs.size());
    for (const relstore::IndexDef& def : defs) EncodeIndexDef(def, &body);
    PutVarint64(&body, table.RowCount());
    table.Scan([&](const relstore::Rid&, const relstore::Row& row) {
      relstore::EncodeRow(row, &body);
      return true;
    });
  });

  std::string file(kMagic, sizeof kMagic);
  file += body;
  uint32_t crc = Crc32(body);
  char crc_buf[4];
  std::memcpy(crc_buf, &crc, 4);
  file.append(crc_buf, 4);

  // Temp-write + fsync + atomic rename: a crash at any point leaves
  // either the old checkpoint or the new one, never a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot write checkpoint '" + tmp + "'");
    }
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("checkpoint write failed '" + tmp + "'");
    }
  }
  FILE* f = std::fopen(tmp.c_str(), "rb+");
  if (f == nullptr || ::fsync(::fileno(f)) != 0) {
    if (f != nullptr) std::fclose(f);
    return Status::Internal("checkpoint fsync failed '" + tmp + "'");
  }
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("checkpoint rename failed '" + path + "'");
  }
  // The rename is only durable once the directory is: without this, a
  // power loss could keep a subsequently truncated WAL but lose the
  // checkpoint's directory entry — dropping every checkpointed commit.
  return SyncDir(DirOf(path));
}

Result<uint64_t> LoadSnapshot(relstore::Database* db,
                              const std::string& path) {
  if (db->TableCount() != 0) {
    return Status::FailedPrecondition(
        "snapshot load requires an empty database");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no checkpoint at '" + path + "'");
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  if (file.size() < sizeof kMagic + 1 + 4 ||
      std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
    return Status::Internal("checkpoint '" + path + "' has a bad header");
  }
  const std::string body = file.substr(
      sizeof kMagic, file.size() - sizeof kMagic - 4);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, file.data() + file.size() - 4, 4);
  if (Crc32(body) != stored_crc) {
    return Status::Internal("checkpoint '" + path + "' fails its checksum");
  }

  size_t pos = 0;
  auto corrupt = [&path]() {
    return Status::Internal("checkpoint '" + path + "' is malformed");
  };
  if (pos >= body.size() ||
      static_cast<uint8_t>(body[pos++]) != kVersion) {
    return corrupt();
  }
  uint64_t seq, n_tables;
  if (!GetVarint64(body, &pos, &seq)) return corrupt();
  if (!GetVarint64(body, &pos, &n_tables)) return corrupt();
  for (uint64_t t = 0; t < n_tables; ++t) {
    std::string name;
    relstore::Schema schema;
    if (!GetLengthPrefixed(body, &pos, &name)) return corrupt();
    if (!DecodeSchema(body, &pos, &schema)) return corrupt();
    CPDB_ASSIGN_OR_RETURN(relstore::Table * table,
                          db->CreateTable(name, std::move(schema)));
    uint64_t n_indexes;
    if (!GetVarint64(body, &pos, &n_indexes)) return corrupt();
    for (uint64_t i = 0; i < n_indexes; ++i) {
      relstore::IndexDef def;
      if (!DecodeIndexDef(body, &pos, &def)) return corrupt();
      CPDB_RETURN_IF_ERROR(
          table->CreateIndex(def.name, def.columns, def.kind, def.unique));
    }
    uint64_t n_rows;
    if (!GetVarint64(body, &pos, &n_rows)) return corrupt();
    std::vector<relstore::Row> rows;
    rows.reserve(n_rows);
    for (uint64_t r = 0; r < n_rows; ++r) {
      relstore::Row row;
      if (!relstore::DecodeRow(body, &pos, &row)) return corrupt();
      rows.push_back(std::move(row));
    }
    CPDB_RETURN_IF_ERROR(table->BulkLoad(rows).status());
  }
  if (pos != body.size()) return corrupt();
  return seq;
}

}  // namespace cpdb::storage
