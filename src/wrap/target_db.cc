#include "wrap/target_db.h"

namespace cpdb::wrap {

Status TreeTargetDb::ApplyNative(const update::Update& u,
                                 const tree::Tree* copied_subtree) {
  switch (u.kind) {
    case update::OpKind::kInsert: {
      tree::Tree payload;
      if (u.value.has_value()) payload = tree::Tree(*u.value);
      CPDB_RETURN_IF_ERROR(
          content_.InsertAt(u.target, u.label, std::move(payload)));
      cost_.ChargeCall(1);
      return Status::OK();
    }
    case update::OpKind::kDelete: {
      CPDB_RETURN_IF_ERROR(content_.DeleteAt(u.target, u.label));
      cost_.ChargeCall(1);
      return Status::OK();
    }
    case update::OpKind::kCopy: {
      if (copied_subtree == nullptr) {
        return Status::InvalidArgument(
            "paste into the native store requires the copied subtree");
      }
      CPDB_RETURN_IF_ERROR(
          content_.ReplaceAt(u.target, copied_subtree->Clone()));
      cost_.ChargeCall(copied_subtree->NodeCount());
      return Status::OK();
    }
  }
  return Status::Internal("unknown update kind");
}

}  // namespace cpdb::wrap
