#include "wrap/target_db.h"

namespace cpdb::wrap {

Status TreeTargetDb::ApplyOne(const update::Update& u,
                              const tree::Tree* copied_subtree,
                              size_t* rows) {
  switch (u.kind) {
    case update::OpKind::kInsert: {
      tree::Tree payload;
      if (u.value.has_value()) payload = tree::Tree(*u.value);
      CPDB_RETURN_IF_ERROR(
          content_.InsertAt(u.target, u.label, std::move(payload)));
      *rows = 1;
      return Status::OK();
    }
    case update::OpKind::kDelete: {
      CPDB_RETURN_IF_ERROR(content_.DeleteAt(u.target, u.label));
      *rows = 1;
      return Status::OK();
    }
    case update::OpKind::kCopy: {
      if (copied_subtree == nullptr) {
        return Status::InvalidArgument(
            "paste into the native store requires the copied subtree");
      }
      CPDB_RETURN_IF_ERROR(
          content_.ReplaceAt(u.target, copied_subtree->Clone()));
      *rows = copied_subtree->NodeCount();
      return Status::OK();
    }
  }
  return Status::Internal("unknown update kind");
}

Status TreeTargetDb::ApplyNative(const update::Update& u,
                                 const tree::Tree* copied_subtree) {
  size_t rows = 0;
  CPDB_RETURN_IF_ERROR(ApplyOne(u, copied_subtree, &rows));
  cost_.ChargeWrite(rows);
  return Status::OK();
}

Status TreeTargetDb::ApplyBatch(const std::vector<NativeOp>& ops) {
  size_t total_rows = 0;
  for (const NativeOp& op : ops) {
    size_t rows = 0;
    CPDB_RETURN_IF_ERROR(ApplyOne(op.update, op.pasted, &rows));
    total_rows += rows;
  }
  if (!ops.empty()) {
    MutexLock l(cost_mu_);
    cost_.ChargeWrite(total_rows);
  }
  return Status::OK();
}

bool TreeTargetDb::PrepareParallelApply(const std::vector<tree::Path>& claims) {
  // The mutable Find privatizes (copy-on-write) every shared node from
  // the root down to each claim, single-threaded, so the concurrent
  // ApplyBatch descents that follow only READ those path nodes — their
  // own claimed subtrees are the only nodes they clone or mutate. A
  // claim that does not (fully) exist is fine: the member's apply will
  // fail exactly as it would serially.
  for (const tree::Path& claim : claims) {
    (void)content_.Find(claim);
  }
  return true;
}

}  // namespace cpdb::wrap
