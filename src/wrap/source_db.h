#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tree/path.h"
#include "tree/tree.h"
#include "tree/value.h"
#include "util/result.h"

namespace cpdb::wrap {

/// One node delivered by SourceDb::CopyNode — identifying path (relative
/// to the source root) plus the leaf value, if any (Figure 6: "Each node
/// contains the identifying path and data value").
struct CopiedNode {
  tree::Path path;
  std::optional<tree::Value> value;
};

/// Wrapper a source database must implement (paper Figure 6): a
/// fully-keyed XML (tree) view of the underlying data plus subtree
/// export. "This approach does not require that any of the source or
/// target databases represent data internally as XML" — see
/// RelationalSourceDb for a relational implementation.
class SourceDb {
 public:
  virtual ~SourceDb() = default;

  /// The label under which this source is mounted (e.g. "S1",
  /// "OrganelleDB").
  virtual const std::string& name() const = 0;

  /// treeFromDB(): the keyed tree view of the exposed data. The source
  /// decides how much to expose ("it is up to the databases'
  /// administrators how much data to expose").
  virtual Result<tree::Tree> TreeFromDb() = 0;

  /// copyNode(): the nodes of the subtree rooted at `rel` (preorder,
  /// root first); a leaf yields a single-element list.
  virtual Result<std::vector<CopiedNode>> CopyNode(const tree::Path& rel) = 0;
};

/// A source database that is natively a tree (flat XML file, web page —
/// the paper's SwissProt/OMIM browsing scenario).
class TreeSourceDb : public SourceDb {
 public:
  TreeSourceDb(std::string name, tree::Tree content)
      : name_(std::move(name)), content_(std::move(content)) {}

  const std::string& name() const override { return name_; }
  Result<tree::Tree> TreeFromDb() override { return content_.Clone(); }
  Result<std::vector<CopiedNode>> CopyNode(const tree::Path& rel) override;

  const tree::Tree& content() const { return content_; }

 private:
  std::string name_;
  tree::Tree content_;
};

}  // namespace cpdb::wrap
