#pragma once

#include <string>
#include <vector>

#include "relstore/database.h"
#include "wrap/source_db.h"

namespace cpdb::wrap {

/// Fully-keyed tree view of a relational database (the paper's
/// OrganelleDB-on-MySQL source): the data values are addressed by
/// four-level paths DB/R/tid/F — field F of the tuple with key `tid` in
/// table R (Section 2). Only listed tables are exposed (typically the
/// "catalog" relation, Section 3.1).
///
/// Each wrapper call charges the database's CostModel with one client
/// round trip, since in the paper's deployment the wrapper talks to a
/// remote MySQL server.
class RelationalSourceDb : public SourceDb {
 public:
  /// Exposes `tables` of `db`. By convention the first column of each
  /// exposed table is its tuple identifier and renders the tuple's edge
  /// label; remaining columns become leaf fields.
  RelationalSourceDb(std::string name, relstore::Database* db,
                     std::vector<std::string> tables)
      : name_(std::move(name)), db_(db), tables_(std::move(tables)) {}

  const std::string& name() const override { return name_; }

  Result<tree::Tree> TreeFromDb() override;

  Result<std::vector<CopiedNode>> CopyNode(const tree::Path& rel) override;

 private:
  /// Renders one tuple as a subtree {field: value, ...} of its non-key
  /// columns.
  static tree::Tree RowToTree(const relstore::Schema& schema,
                              const relstore::Row& row);
  static tree::Value DatumToValue(const relstore::Datum& d);

  std::string name_;
  relstore::Database* db_;
  std::vector<std::string> tables_;
};

}  // namespace cpdb::wrap
