#include "wrap/source_db.h"

#include <utility>

namespace cpdb::wrap {

Result<std::vector<CopiedNode>> TreeSourceDb::CopyNode(
    const tree::Path& rel) {
  // Const lookup: sources are read-only and may be shared across
  // concurrent sessions; the mutable Find would copy-on-write the path.
  const tree::Tree* node = std::as_const(content_).Find(rel);
  if (node == nullptr) {
    return Status::NotFound("no node at '" + rel.ToString() + "' in source " +
                            name_);
  }
  std::vector<CopiedNode> out;
  node->Visit([&](const tree::Path& sub, const tree::Tree& t) {
    CopiedNode cn;
    cn.path = rel.Concat(sub);
    if (t.HasValue()) cn.value = t.value();
    out.push_back(std::move(cn));
  });
  return out;
}

}  // namespace cpdb::wrap
