#include "wrap/source_db.h"

namespace cpdb::wrap {

Result<std::vector<CopiedNode>> TreeSourceDb::CopyNode(
    const tree::Path& rel) {
  const tree::Tree* node = content_.Find(rel);
  if (node == nullptr) {
    return Status::NotFound("no node at '" + rel.ToString() + "' in source " +
                            name_);
  }
  std::vector<CopiedNode> out;
  node->Visit([&](const tree::Path& sub, const tree::Tree& t) {
    CopiedNode cn;
    cn.path = rel.Concat(sub);
    if (t.HasValue()) cn.value = t.value();
    out.push_back(std::move(cn));
  });
  return out;
}

}  // namespace cpdb::wrap
