#pragma once

#include <string>
#include <vector>

#include "relstore/database.h"
#include "wrap/target_db.h"

namespace cpdb::wrap {

/// A relational database as the curated target, addressed by four-level
/// paths R/tid/F (table / tuple / field) below the mount label. This
/// demonstrates the paper's claim that "any underlying data model for
/// which path addresses make sense can be used" on the *target* side too.
///
/// Path-to-SQL mapping of the atomic updates:
///   ins {tid : {}} into R          -> INSERT a fresh tuple (NULL fields)
///   ins {F : v} into R/tid         -> UPDATE R SET F = v (F was NULL)
///   del tid from R                 -> DELETE FROM R WHERE key = tid
///   del F from R/tid               -> UPDATE R SET F = NULL
///   copy ... into R/tid            -> upsert the whole tuple
///   copy ... into R/tid/F          -> UPDATE R SET F = value
/// Updates that do not fit the relational schema (new tables, extra
/// nesting, unknown fields) fail with NotSupported/InvalidArgument —
/// mirroring a real wrapper's schema mapping limits.
class RelationalTargetDb : public TargetDb {
 public:
  /// Exposes `tables` of `db`; first column of each table is the tuple
  /// identifier (as in RelationalSourceDb).
  RelationalTargetDb(std::string name, relstore::Database* db,
                     std::vector<std::string> tables)
      : name_(std::move(name)), db_(db), tables_(std::move(tables)) {}

  const std::string& name() const override { return name_; }

  Result<tree::Tree> TreeFromDb() override;

  Status ApplyNative(const update::Update& u,
                     const tree::Tree* copied_subtree) override;

  /// One modelled SQL batch statement for the whole transaction: each
  /// op's SQL mechanics run in order, one round trip charged in total.
  Status ApplyBatch(const std::vector<NativeOp>& ops) override;

  /// Group-commit barrier of the backing store — one fsync per committed
  /// transaction when `db` is durable, a no-op otherwise. When the target
  /// shares its Database with the provenance backend, data and provenance
  /// ride the same log record and recover to the same transaction.
  Status Sync() override { return db_->Sync(); }

  relstore::CostModel& cost() override { return db_->cost(); }

 private:
  /// The path-to-SQL mechanics of one update, with no cost charged.
  Status ApplyOne(const update::Update& u, const tree::Tree* copied_subtree);

  Result<relstore::Table*> TableFor(const std::string& name);

  /// Finds the row with identifier `tid_label` (first-column rendering).
  Result<relstore::Rid> FindRow(relstore::Table* table,
                                const std::string& tid_label);

  /// Replaces a row in place (delete + insert).
  Status RewriteRow(relstore::Table* table, const relstore::Rid& rid,
                    relstore::Row row);

  static Result<relstore::Datum> ValueToDatum(const tree::Value& v,
                                              relstore::ColumnType type);

  std::string name_;
  relstore::Database* db_;
  std::vector<std::string> tables_;
};

}  // namespace cpdb::wrap
