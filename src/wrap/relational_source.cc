#include "wrap/relational_source.h"

namespace cpdb::wrap {

tree::Value RelationalSourceDb::DatumToValue(const relstore::Datum& d) {
  if (d.is_int()) return tree::Value(d.AsInt());
  if (d.is_double()) return tree::Value(d.AsDouble());
  if (d.is_string()) return tree::Value(d.AsString());
  return tree::Value();  // NULL
}

tree::Tree RelationalSourceDb::RowToTree(const relstore::Schema& schema,
                                         const relstore::Row& row) {
  tree::Tree tuple;
  for (size_t c = 1; c < row.size(); ++c) {
    // Field labels come from the schema; tables with duplicate column
    // names are rejected at schema level, so AddChild cannot collide.
    (void)tuple.AddChild(schema.column(c).name,
                         tree::Tree(DatumToValue(row[c])));
  }
  return tuple;
}

Result<tree::Tree> RelationalSourceDb::TreeFromDb() {
  tree::Tree root;
  size_t rows = 0;
  for (const std::string& table_name : tables_) {
    CPDB_ASSIGN_OR_RETURN(const relstore::Table* table,
                          static_cast<const relstore::Database*>(db_)
                              ->GetTable(table_name));
    tree::Tree rel;
    Status inner = Status::OK();
    table->Scan([&](const relstore::Rid&, const relstore::Row& row) {
      if (row.empty()) return true;
      std::string label = row[0].ToString();
      Status st = rel.AddChild(label, RowToTree(table->schema(), row));
      if (!st.ok()) {
        // Duplicate first-column keys break path uniqueness; surface it.
        inner = Status::InvalidArgument(
            "table '" + table_name +
            "' has duplicate tuple identifier: " + label);
        return false;
      }
      ++rows;
      return true;
    });
    CPDB_RETURN_IF_ERROR(inner);
    CPDB_RETURN_IF_ERROR(root.AddChild(table_name, std::move(rel)));
  }
  // One client call shipping the whole exposed view.
  db_->cost().ChargeCall(rows);
  return root;
}

Result<std::vector<CopiedNode>> RelationalSourceDb::CopyNode(
    const tree::Path& rel) {
  // Materialise the view and export from it; a production wrapper would
  // translate the path into a point query, which we emulate cost-wise by
  // charging only the returned rows.
  CPDB_ASSIGN_OR_RETURN(tree::Tree view, TreeFromDb());
  const tree::Tree* node = view.Find(rel);
  if (node == nullptr) {
    return Status::NotFound("no node at '" + rel.ToString() + "' in source " +
                            name_);
  }
  std::vector<CopiedNode> out;
  node->Visit([&](const tree::Path& sub, const tree::Tree& t) {
    CopiedNode cn;
    cn.path = rel.Concat(sub);
    if (t.HasValue()) cn.value = t.value();
    out.push_back(std::move(cn));
  });
  return out;
}

}  // namespace cpdb::wrap
