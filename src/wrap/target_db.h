#pragma once

#include <string>
#include <vector>

#include "relstore/cost_model.h"
#include "tree/tree.h"
#include "update/update.h"
#include "util/mutex.h"
#include "util/result.h"

namespace cpdb::wrap {

using cpdb::Mutex;
using cpdb::MutexLock;

/// One update of a committed transaction, ready for the native store:
/// paths already rebased to the target's root, and for copies the
/// materialised subtree (borrowed; must outlive the call it is passed
/// to), because the native store cannot see the editor's universe.
struct NativeOp {
  update::Update update;
  const tree::Tree* pasted = nullptr;
};

/// Wrapper a target database must implement (paper Figure 6): initial
/// tree view plus the update methods addNode / deleteNode / pasteNode,
/// here unified as ApplyNative(update) since the three update verbs map
/// 1:1 onto the atomic update language.
///
/// The editor keeps the authoritative universe tree; ApplyNative pushes
/// each applied update through to the native store so it stays in sync,
/// and charges the target's interaction cost (the dominant "dataset
/// update" time of Figure 9 — Timber-over-SOAP in the paper).
///
/// Batched write path: a committed transaction's (or applied script's)
/// updates arrive together via ApplyBatch, which concrete wrappers charge
/// as ONE modelled client call carrying all the rows — the write-side
/// analogue of the cursor read API's one-round-trip-per-batch contract.
/// The base implementation falls back to per-op ApplyNative calls (and
/// their per-op cost), so third-party wrappers stay correct unmodified.
class TargetDb {
 public:
  virtual ~TargetDb() = default;

  /// The label under which the target mounts in the universe (e.g. "T").
  virtual const std::string& name() const = 0;

  /// Initial content (fully-keyed tree view).
  virtual Result<tree::Tree> TreeFromDb() = 0;

  /// Mirrors one applied update into the native store. `u`'s paths are
  /// relative to this database's root (the mount label stripped).
  /// For copies the already-materialised subtree is supplied, because the
  /// native store cannot see the editor's universe.
  virtual Status ApplyNative(const update::Update& u,
                             const tree::Tree* copied_subtree) = 0;

  /// Mirrors a whole transaction's updates, in order, in one modelled
  /// round trip (overrides; the default delegates per op). `ops` must be
  /// a replay of updates already validated against the editor's universe;
  /// a mid-batch failure aborts the remainder and is reported — like a
  /// failed commit replay today, the native store then needs a reload.
  virtual Status ApplyBatch(const std::vector<NativeOp>& ops) {
    for (const NativeOp& op : ops) {
      CPDB_RETURN_IF_ERROR(ApplyNative(op.update, op.pasted));
    }
    return Status::OK();
  }

  /// Durability barrier, called by the editor once per committed
  /// transaction after the transaction's native writes. Wrappers over a
  /// durable store override this to group-commit (RelationalTargetDb
  /// forwards to Database::Sync); the default is the in-memory no-op, so
  /// existing wrappers stay correct unmodified.
  virtual Status Sync() { return Status::OK(); }

  /// True when TreeFromDb is O(1) — a copy-on-write clone rather than a
  /// scan — so the service layer can publish a version after every commit
  /// cohort (service::SnapshotManager). Wrappers whose TreeFromDb walks
  /// the native store keep the default: sessions then materialize on
  /// demand and the engine counts each scan as a snapshot rebuild.
  virtual bool CheapSnapshots() const { return false; }

  /// Prepares the native store for a batch of CONCURRENT ApplyBatch calls
  /// whose writes are confined to the given disjoint subtrees (paths
  /// relative to this database's root). Returns false when the wrapper
  /// cannot support concurrent application (the caller must fall back to
  /// serial apply). Called with the engine's exclusive latch held, before
  /// the concurrent calls start.
  virtual bool PrepareParallelApply(const std::vector<tree::Path>& claims) {
    (void)claims;
    return false;
  }

  /// Accumulated simulated interaction cost.
  virtual relstore::CostModel& cost() = 0;
};

/// A native tree/XML target database — the stand-in for MiMI-on-Timber.
/// Content mirrors the editor's universe; ApplyNative re-applies the
/// update locally and charges one round trip per update plus per-node
/// costs for pastes.
class TreeTargetDb : public TargetDb {
 public:
  TreeTargetDb(std::string name, tree::Tree initial,
               relstore::CostParams cost_params = DefaultTargetCost())
      : name_(std::move(name)),
        content_(std::move(initial)),
        cost_(cost_params) {}

  /// Target-database interaction dominates per-op time in the paper
  /// (hundreds of ms against Timber via SOAP); scaled down ~1000x like
  /// the provenance-store costs so that ratios are preserved.
  static relstore::CostParams DefaultTargetCost() {
    relstore::CostParams p;
    p.roundtrip_us = 400.0;
    p.per_row_us = 10.0;
    return p;
  }

  const std::string& name() const override { return name_; }
  /// O(1): a copy-on-write clone sharing every node with the live content
  /// (tree::Tree structural sharing), so snapshotting never copies data.
  Result<tree::Tree> TreeFromDb() override { return content_.Clone(); }
  bool CheapSnapshots() const override { return true; }
  Status ApplyNative(const update::Update& u,
                     const tree::Tree* copied_subtree) override;
  /// Applies every update, charging one round trip for the whole batch
  /// (rows = total nodes moved) instead of one per op.
  Status ApplyBatch(const std::vector<NativeOp>& ops) override;
  /// Privatizes the copy-on-write path down to each claimed subtree root,
  /// so concurrent ApplyBatch calls confined to those subtrees never
  /// clone (= write) a node outside their claim. The cost model is the
  /// one piece of state the claims cannot partition; ApplyBatch guards it
  /// with cost_mu_.
  bool PrepareParallelApply(const std::vector<tree::Path>& claims) override;
  relstore::CostModel& cost() override { return cost_; }

  const tree::Tree& content() const { return content_; }

 private:
  /// The shared update mechanics, with no cost charged.
  Status ApplyOne(const update::Update& u, const tree::Tree* copied_subtree,
                  size_t* rows);

  std::string name_;
  tree::Tree content_;
  relstore::CostModel cost_;
  /// Serializes cost charges from concurrent ApplyBatch calls (parallel
  /// cohort apply); the tree itself is partitioned by the claims.
  Mutex cost_mu_;
};

}  // namespace cpdb::wrap
