#include "wrap/relational_target.h"

#include "util/str.h"
#include "wrap/relational_source.h"

namespace cpdb::wrap {

using relstore::ColumnType;
using relstore::Datum;
using relstore::Rid;
using relstore::Row;
using relstore::Table;

Result<tree::Tree> RelationalTargetDb::TreeFromDb() {
  // The read side is identical to the source wrapper's keyed view.
  RelationalSourceDb reader(name_, db_, tables_);
  return reader.TreeFromDb();
}

Result<Table*> RelationalTargetDb::TableFor(const std::string& name) {
  for (const std::string& t : tables_) {
    if (t == name) return db_->GetTable(name);
  }
  return Status::NotFound("table '" + name + "' is not exposed by target " +
                          name_);
}

Result<Rid> RelationalTargetDb::FindRow(Table* table,
                                        const std::string& tid_label) {
  Rid found{0, 0};
  bool ok = false;
  table->Scan([&](const Rid& rid, const Row& row) {
    if (!row.empty() && row[0].ToString() == tid_label) {
      found = rid;
      ok = true;
      return false;
    }
    return true;
  });
  if (!ok) {
    return Status::NotFound("no tuple '" + tid_label + "' in table " +
                            table->name());
  }
  return found;
}

Status RelationalTargetDb::RewriteRow(Table* table, const Rid& rid,
                                      Row row) {
  CPDB_RETURN_IF_ERROR(table->Delete(rid));
  return table->Insert(row).status();
}

Result<Datum> RelationalTargetDb::ValueToDatum(const tree::Value& v,
                                               ColumnType type) {
  if (v.is_null()) return Datum();
  switch (type) {
    case ColumnType::kInt64:
      if (v.is_int()) return Datum(v.AsInt());
      break;
    case ColumnType::kDouble:
      if (v.is_double()) return Datum(v.AsDouble());
      if (v.is_int()) return Datum(static_cast<double>(v.AsInt()));
      break;
    case ColumnType::kString:
      return Datum(v.ToString());
  }
  return Status::InvalidArgument("value '" + v.ToString() +
                                 "' does not fit column type");
}

Status RelationalTargetDb::ApplyNative(const update::Update& u,
                                       const tree::Tree* copied_subtree) {
  cost().ChargeWrite(1);
  return ApplyOne(u, copied_subtree);
}

Status RelationalTargetDb::ApplyBatch(const std::vector<NativeOp>& ops) {
  if (ops.empty()) return Status::OK();
  cost().ChargeWrite(ops.size());
  for (const NativeOp& op : ops) {
    CPDB_RETURN_IF_ERROR(ApplyOne(op.update, op.pasted));
  }
  return Status::OK();
}

Status RelationalTargetDb::ApplyOne(const update::Update& u,
                                    const tree::Tree* copied_subtree) {
  const tree::Path& p = u.target;

  switch (u.kind) {
    case update::OpKind::kInsert: {
      if (p.Depth() == 1) {
        // ins {tid : {}} into R: fresh tuple, NULL fields.
        CPDB_ASSIGN_OR_RETURN(Table * table, TableFor(p.At(0)));
        if (u.value.has_value()) {
          return Status::NotSupported(
              "a tuple node cannot carry a data value");
        }
        Row row(table->schema().NumColumns());
        row[0] = Datum(u.label);
        if (table->schema().column(0).type == ColumnType::kInt64) {
          int64_t key;
          if (!ParseInt64(u.label, &key)) {
            return Status::InvalidArgument("tuple id '" + u.label +
                                           "' is not an integer key");
          }
          row[0] = Datum(key);
        }
        return table->Insert(row).status();
      }
      if (p.Depth() == 2) {
        // ins {F : v} into R/tid: set a field that is currently NULL.
        CPDB_ASSIGN_OR_RETURN(Table * table, TableFor(p.At(0)));
        int col = table->schema().IndexOf(u.label);
        if (col <= 0) {
          return Status::NotSupported("no column '" + u.label +
                                      "' in table " + p.At(0));
        }
        CPDB_ASSIGN_OR_RETURN(Rid rid, FindRow(table, p.At(1)));
        CPDB_ASSIGN_OR_RETURN(Row row, table->Get(rid));
        if (!row[static_cast<size_t>(col)].is_null()) {
          return Status::AlreadyExists("field '" + u.label +
                                       "' already set");
        }
        tree::Value v = u.value.value_or(tree::Value());
        CPDB_ASSIGN_OR_RETURN(
            row[static_cast<size_t>(col)],
            ValueToDatum(v, table->schema().column(static_cast<size_t>(col))
                                .type));
        return RewriteRow(table, rid, std::move(row));
      }
      return Status::NotSupported(
          "relational target supports only R and R/tid insert depths");
    }

    case update::OpKind::kDelete: {
      if (p.Depth() == 1) {
        // del tid from R.
        CPDB_ASSIGN_OR_RETURN(Table * table, TableFor(p.At(0)));
        CPDB_ASSIGN_OR_RETURN(Rid rid, FindRow(table, u.label));
        return table->Delete(rid);
      }
      if (p.Depth() == 2) {
        // del F from R/tid: NULL out the field.
        CPDB_ASSIGN_OR_RETURN(Table * table, TableFor(p.At(0)));
        int col = table->schema().IndexOf(u.label);
        if (col <= 0) {
          return Status::NotSupported("no column '" + u.label +
                                      "' in table " + p.At(0));
        }
        CPDB_ASSIGN_OR_RETURN(Rid rid, FindRow(table, p.At(1)));
        CPDB_ASSIGN_OR_RETURN(Row row, table->Get(rid));
        row[static_cast<size_t>(col)] = Datum();
        return RewriteRow(table, rid, std::move(row));
      }
      return Status::NotSupported(
          "relational target supports only R and R/tid delete depths");
    }

    case update::OpKind::kCopy: {
      if (copied_subtree == nullptr) {
        return Status::InvalidArgument("paste requires the copied subtree");
      }
      if (p.Depth() == 2) {
        // copy ... into R/tid: upsert the whole tuple from the subtree's
        // leaf children.
        CPDB_ASSIGN_OR_RETURN(Table * table, TableFor(p.At(0)));
        auto existing = FindRow(table, p.At(1));
        Row row(table->schema().NumColumns());
        if (existing.ok()) {
          CPDB_ASSIGN_OR_RETURN(row, table->Get(existing.value()));
        } else {
          row[0] = table->schema().column(0).type == ColumnType::kInt64
                       ? Datum()
                       : Datum(p.At(1));
          if (table->schema().column(0).type == ColumnType::kInt64) {
            int64_t key;
            if (!ParseInt64(p.At(1), &key)) {
              return Status::InvalidArgument("tuple id '" + p.At(1) +
                                             "' is not an integer key");
            }
            row[0] = Datum(key);
          }
        }
        for (const auto& [label, child] : copied_subtree->children()) {
          int col = table->schema().IndexOf(label);
          if (col <= 0) {
            return Status::NotSupported("no column '" + label +
                                        "' in table " + p.At(0));
          }
          tree::Value v =
              child->HasValue() ? child->value() : tree::Value();
          CPDB_ASSIGN_OR_RETURN(
              row[static_cast<size_t>(col)],
              ValueToDatum(v, table->schema()
                                  .column(static_cast<size_t>(col))
                                  .type));
        }
        if (existing.ok()) {
          return RewriteRow(table, existing.value(), std::move(row));
        }
        return table->Insert(row).status();
      }
      if (p.Depth() == 3) {
        // copy ... into R/tid/F: field update.
        CPDB_ASSIGN_OR_RETURN(Table * table, TableFor(p.At(0)));
        int col = table->schema().IndexOf(p.At(2));
        if (col <= 0) {
          return Status::NotSupported("no column '" + p.At(2) +
                                      "' in table " + p.At(0));
        }
        CPDB_ASSIGN_OR_RETURN(Rid rid, FindRow(table, p.At(1)));
        CPDB_ASSIGN_OR_RETURN(Row row, table->Get(rid));
        tree::Value v = copied_subtree->HasValue() ? copied_subtree->value()
                                                   : tree::Value();
        CPDB_ASSIGN_OR_RETURN(
            row[static_cast<size_t>(col)],
            ValueToDatum(v, table->schema().column(static_cast<size_t>(col))
                                .type));
        return RewriteRow(table, rid, std::move(row));
      }
      return Status::NotSupported(
          "relational target supports pastes at R/tid and R/tid/F only");
    }
  }
  return Status::Internal("unknown update kind");
}

}  // namespace cpdb::wrap
