#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cpdb::relstore {

/// Record identifier: page number + slot within the page.
struct Rid {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const Rid& o) const {
    return page == o.page && slot == o.slot;
  }
  bool operator<(const Rid& o) const {
    return page != o.page ? page < o.page : slot < o.slot;
  }
  std::string ToString() const {
    return std::to_string(page) + ":" + std::to_string(slot);
  }
};

/// A slotted heap page holding variable-length records.
///
/// Layout is the classic slotted-page design: a slot directory grows from
/// the front, record payloads grow from the back, and the page is full when
/// they would meet. Deleting a record tombstones its slot; the payload
/// space is reclaimed by Compact() when fragmentation passes a threshold.
/// Pages are the unit of physical-size accounting for the storage figures
/// (the paper's Figure 8 reports provenance table sizes in MB).
class Page {
 public:
  static constexpr size_t kPageSize = 4096;
  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kSlotSize = 4;  // offset:u16 + len:u16

  Page();

  /// Bytes available for one more record (including its slot entry).
  size_t FreeSpace() const;

  /// True if a record of `len` bytes fits (possibly after compaction).
  bool Fits(size_t len) const;

  /// Stores a record; returns its slot. Fails if it does not fit.
  Result<uint16_t> Insert(const std::string& record);

  /// Reads the record in `slot`. Fails on empty/tombstoned slots.
  Result<std::string> Read(uint16_t slot) const;

  /// Tombstones `slot`. Fails if already dead or out of range.
  Status Delete(uint16_t slot);

  /// True if the slot holds a live record.
  bool IsLive(uint16_t slot) const;

  uint16_t SlotCount() const { return slot_count_; }
  size_t LiveRecords() const { return live_records_; }

  /// Bytes of live payload (excluding headers and dead space).
  size_t LiveBytes() const { return live_bytes_; }

 private:
  void Compact();

  // In-memory representation; offsets are into data_.
  struct Slot {
    uint16_t offset = 0;
    uint16_t len = 0;
    bool live = false;
  };

  std::string data_;           // payload arena, size kPageSize
  std::vector<Slot> slots_;    // slot directory
  uint16_t slot_count_ = 0;
  size_t free_ptr_;            // start of free region (end of payloads)
  size_t live_records_ = 0;
  size_t live_bytes_ = 0;
  size_t dead_bytes_ = 0;
};

}  // namespace cpdb::relstore
