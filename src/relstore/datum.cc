#include "relstore/datum.h"

#include <cstring>
#include <sstream>

namespace cpdb::relstore {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

std::string Datum::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::ostringstream os;
    os << AsDouble();
    return os.str();
  }
  return AsString();
}

size_t Datum::Hash() const {
  size_t h = 0xcbf29ce484222325ULL;
  auto mix_bytes = [&h](const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ULL;
    }
  };
  size_t tag = v_.index();
  mix_bytes(&tag, sizeof(tag));
  if (is_int()) {
    int64_t v = AsInt();
    mix_bytes(&v, sizeof(v));
  } else if (is_double()) {
    double v = AsDouble();
    mix_bytes(&v, sizeof(v));
  } else if (is_string()) {
    mix_bytes(AsString().data(), AsString().size());
  }
  return h;
}

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

}  // namespace

void Datum::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(v_.index()));
  if (is_int()) {
    char buf[8];
    int64_t v = AsInt();
    std::memcpy(buf, &v, 8);
    out->append(buf, 8);
  } else if (is_double()) {
    char buf[8];
    double v = AsDouble();
    std::memcpy(buf, &v, 8);
    out->append(buf, 8);
  } else if (is_string()) {
    PutU32(out, static_cast<uint32_t>(AsString().size()));
    out->append(AsString());
  }
}

bool Datum::DecodeFrom(const std::string& in, size_t* pos, Datum* out) {
  if (*pos >= in.size()) return false;
  uint8_t tag = static_cast<uint8_t>(in[(*pos)++]);
  switch (tag) {
    case 0:
      *out = Datum();
      return true;
    case 1: {
      if (*pos + 8 > in.size()) return false;
      int64_t v;
      std::memcpy(&v, in.data() + *pos, 8);
      *pos += 8;
      *out = Datum(v);
      return true;
    }
    case 2: {
      if (*pos + 8 > in.size()) return false;
      double v;
      std::memcpy(&v, in.data() + *pos, 8);
      *pos += 8;
      *out = Datum(v);
      return true;
    }
    case 3: {
      uint32_t len;
      if (!GetU32(in, pos, &len)) return false;
      if (*pos + len > in.size()) return false;
      *out = Datum(in.substr(*pos, len));
      *pos += len;
      return true;
    }
    default:
      return false;
  }
}

std::ostream& operator<<(std::ostream& os, const Datum& d) {
  return os << d.ToString();
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

size_t HashRow(const Row& row) {
  size_t h = 14695981039346656037ULL;
  for (const Datum& d : row) {
    h ^= d.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

bool RowLess(const Row& a, const Row& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

void EncodeRow(const Row& row, std::string* out) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Datum& d : row) d.EncodeTo(out);
}

bool DecodeRow(const std::string& in, size_t* pos, Row* out) {
  uint32_t n;
  if (!GetU32(in, pos, &n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Datum d;
    if (!Datum::DecodeFrom(in, pos, &d)) return false;
    out->push_back(std::move(d));
  }
  return true;
}

}  // namespace cpdb::relstore
