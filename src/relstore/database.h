#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relstore/cost_model.h"
#include "relstore/table.h"
#include "util/result.h"

namespace cpdb::storage {
class Durability;
}  // namespace cpdb::storage

namespace cpdb::relstore {

/// A named catalog of tables with an attached interaction cost model —
/// the stand-in for the MySQL server holding the provenance store (and,
/// wrapped, the OrganelleDB source).
///
/// The CostModel is *not* charged automatically by Table methods; callers
/// that model client/server traffic (the provenance stores) charge one
/// round trip per logical client call via cost(). This mirrors the paper's
/// accounting, where one SQL statement is one round trip regardless of how
/// many rows it carries.
///
/// Durability: a Database constructed directly is in-memory, exactly as
/// before. Open(name, dir) instead attaches a storage::Durability engine
/// rooted at `dir`: it first recovers the on-disk state (checkpoint, then
/// the write-ahead log tail), then journals every subsequent mutation and
/// makes it durable at the next Sync() — the group-commit barrier the
/// editor issues once per committed transaction. See storage/durable.h
/// and the README's "Durability" section for the file layout and the
/// recovery protocol.
class Database {
 public:
  // Both out of line: storage::Durability is incomplete here.
  explicit Database(std::string name);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  // Movable: tables are pointer-stable behind unique_ptr, and the
  // durability engine's back reference (if any) is re-pointed at the
  // destination.
  Database(Database&&);
  Database& operator=(Database&&);

  /// Opens a durable database rooted at directory `dir` (created if
  /// missing). Recovery runs before this returns: the newest checkpoint
  /// is restored, the log tail past it replayed, and any torn or corrupt
  /// tail truncated back to the last committed transaction.
  static Result<std::unique_ptr<Database>> Open(std::string name,
                                               const std::string& dir);

  const std::string& name() const { return name_; }

  /// Creates a table; fails if the name is taken.
  Result<Table*> CreateTable(const std::string& table_name, Schema schema);

  /// Fails with NotFound if absent.
  Result<Table*> GetTable(const std::string& table_name);
  Result<const Table*> GetTable(const std::string& table_name) const;

  Status DropTable(const std::string& table_name);

  /// Visits every table in name order (checkpointing, stats).
  void ForEachTable(const std::function<void(const Table&)>& fn) const;

  /// Table names in name order.
  std::vector<std::string> TableNames() const;

  size_t TableCount() const { return tables_.size(); }

  /// Total physical footprint across tables.
  size_t PhysicalBytes() const;

  // ----- Durability control (no-ops / errors for in-memory databases) ------

  /// True when a Durability engine is attached and accepting writes.
  bool durable() const;

  /// Group-commit barrier: seals every mutation since the previous Sync
  /// into ONE checksummed log record and fsyncs it — the transaction
  /// boundary of crash recovery. A no-op (OK, no fsync) when nothing is
  /// pending or the database is in-memory.
  Status Sync();

  /// Writes a full checkpoint and truncates the log. Implies Sync().
  /// Fails with FailedPrecondition for in-memory databases.
  Status Checkpoint();

  /// Clean shutdown: Sync() then release the log. Further mutations stay
  /// in memory only. OK and a no-op for in-memory databases.
  Status Close();

  /// The attached durability engine (stats, test hooks), or nullptr.
  storage::Durability* durability() { return durability_.get(); }

  CostModel& cost() { return cost_; }
  const CostModel& cost() const { return cost_; }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  CostModel cost_;
  std::unique_ptr<storage::Durability> durability_;
};

}  // namespace cpdb::relstore
