#pragma once

#include <map>
#include <memory>
#include <string>

#include "relstore/cost_model.h"
#include "relstore/table.h"
#include "util/result.h"

namespace cpdb::relstore {

/// A named catalog of tables with an attached interaction cost model —
/// the stand-in for the MySQL server holding the provenance store (and,
/// wrapped, the OrganelleDB source).
///
/// The CostModel is *not* charged automatically by Table methods; callers
/// that model client/server traffic (the provenance stores) charge one
/// round trip per logical client call via cost(). This mirrors the paper's
/// accounting, where one SQL statement is one round trip regardless of how
/// many rows it carries.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates a table; fails if the name is taken.
  Result<Table*> CreateTable(const std::string& table_name, Schema schema);

  /// Fails with NotFound if absent.
  Result<Table*> GetTable(const std::string& table_name);
  Result<const Table*> GetTable(const std::string& table_name) const;

  Status DropTable(const std::string& table_name);

  /// Total physical footprint across tables.
  size_t PhysicalBytes() const;

  CostModel& cost() { return cost_; }
  const CostModel& cost() const { return cost_; }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  CostModel cost_;
};

}  // namespace cpdb::relstore
