#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "relstore/table.h"

namespace cpdb::relstore {

/// Volcano-style pull iterator over rows.
///
/// A small physical-operator library sufficient for the provenance
/// queries and the datalog bridge: sequential scan, index scan, filter,
/// project, hash join, sort, distinct, and limit. Operators own their
/// children and pull rows one at a time via Next().
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// Produces the next row; returns false at end of stream.
  virtual bool Next(Row* out) = 0;

  /// Drains the iterator into a vector (for tests and small results).
  std::vector<Row> Collect();
};

using RowIteratorPtr = std::unique_ptr<RowIterator>;

/// Sequential scan of a table (storage order).
RowIteratorPtr MakeSeqScan(const Table* table);

/// Streaming scan over a ScanSpec (see table.h): rows are pulled from a
/// Table::Cursor one at a time, never materialized. The general access
/// path; the index/prefix scans below are conveniences over it.
RowIteratorPtr MakeCursorScan(const Table* table, ScanSpec spec);

/// Equality index scan (cursor-backed for B+-tree indexes; one-shot for
/// hash indexes).
RowIteratorPtr MakeIndexScan(const Table* table, std::string index_name,
                             Row key);

/// Prefix index scan on a string-first btree index (cursor-backed).
RowIteratorPtr MakePrefixScan(const Table* table, std::string index_name,
                              std::string prefix);

/// Keeps rows where `pred` is true.
RowIteratorPtr MakeFilter(RowIteratorPtr child,
                          std::function<bool(const Row&)> pred);

/// Emits `cols`-projected rows.
RowIteratorPtr MakeProject(RowIteratorPtr child, std::vector<int> cols);

/// Hash join on left.cols == right.cols (equi-join); output is the left
/// row concatenated with the right row. The right input is fully built
/// into the hash table first.
RowIteratorPtr MakeHashJoin(RowIteratorPtr left, std::vector<int> left_cols,
                            RowIteratorPtr right,
                            std::vector<int> right_cols);

/// Buffers and sorts the child's rows by the given columns (ascending).
RowIteratorPtr MakeSort(RowIteratorPtr child, std::vector<int> cols);

/// Removes duplicate rows (buffers a hash set of seen rows).
RowIteratorPtr MakeDistinct(RowIteratorPtr child);

/// Stops after `n` rows.
RowIteratorPtr MakeLimit(RowIteratorPtr child, size_t n);

/// Materialised constant relation.
RowIteratorPtr MakeValues(std::vector<Row> rows);

}  // namespace cpdb::relstore
