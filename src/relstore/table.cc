#include "relstore/table.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/str.h"

namespace cpdb::relstore {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Status Table::CreateIndex(const std::string& index_name,
                          std::vector<int> columns, IndexKind kind,
                          bool unique) {
  if (RowCount() != 0) {
    return Status::FailedPrecondition(
        "indexes must be created on an empty table");
  }
  if (FindIndex(index_name) != nullptr) {
    return Status::AlreadyExists("index '" + index_name + "' exists");
  }
  for (int c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= schema_.NumColumns()) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  if (unique && kind != IndexKind::kBTree && kind != IndexKind::kHash) {
    return Status::InvalidArgument("bad index kind");
  }
  Index idx;
  idx.name = index_name;
  idx.columns = std::move(columns);
  idx.kind = kind;
  idx.unique = unique;
  if (kind == IndexKind::kBTree) {
    idx.btree = std::make_unique<BTree>();
  } else {
    idx.hash = std::make_unique<HashIndex>();
  }
  indexes_.push_back(std::move(idx));
  if (journal_ != nullptr) {
    journal_->NoteCreateIndex(
        name_, {index_name, indexes_.back().columns, kind, unique});
  }
  return Status::OK();
}

std::vector<IndexDef> Table::IndexDefs() const {
  std::vector<IndexDef> defs;
  defs.reserve(indexes_.size());
  for (const Index& idx : indexes_) {
    defs.push_back({idx.name, idx.columns, idx.kind, idx.unique});
  }
  return defs;
}

Row Table::ExtractKey(const Index& idx, const Row& row) const {
  Row key;
  key.reserve(idx.columns.size());
  for (int c : idx.columns) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

const Table::Index* Table::FindIndex(const std::string& name) const {
  for (const auto& idx : indexes_) {
    if (idx.name == name) return &idx;
  }
  return nullptr;
}

Result<Rid> Table::Insert(const Row& row) {
  CPDB_RETURN_IF_ERROR(schema_.Validate(row));
  // Unique-constraint checks before any mutation.
  for (const auto& idx : indexes_) {
    if (!idx.unique) continue;
    Row key = ExtractKey(idx, row);
    bool found = false;
    if (idx.kind == IndexKind::kBTree) {
      idx.btree->LookupEq(key, [&](const Row&, const Rid&) {
        found = true;
        return false;
      });
    } else {
      idx.hash->LookupEq(key, [&](const Rid&) {
        found = true;
        return false;
      });
    }
    if (found) {
      return Status::AlreadyExists("duplicate key " + RowToString(key) +
                                   " in unique index '" + idx.name + "'");
    }
  }
  std::string encoded;
  EncodeRow(row, &encoded);
  CPDB_ASSIGN_OR_RETURN(Rid rid, heap_.Insert(encoded));
  for (auto& idx : indexes_) {
    Row key = ExtractKey(idx, row);
    if (idx.kind == IndexKind::kBTree) {
      idx.btree->Insert(key, rid);
    } else {
      idx.hash->Insert(key, rid);
    }
  }
  if (journal_ != nullptr) journal_->NoteInsert(name_, row);
  return rid;
}

Result<size_t> Table::BulkLoad(const std::vector<Row>& rows) {
  if (RowCount() != 0) {
    return Status::FailedPrecondition("bulk load requires an empty table");
  }
  // Validate everything before mutating, so a bad batch leaves the table
  // untouched.
  for (const Row& row : rows) {
    CPDB_RETURN_IF_ERROR(schema_.Validate(row));
  }
  // Extract each index's keys once; reused for the duplicate check here
  // and the index build below.
  std::vector<std::vector<Row>> index_keys(indexes_.size());
  for (size_t ix = 0; ix < indexes_.size(); ++ix) {
    index_keys[ix].reserve(rows.size());
    for (const Row& row : rows) {
      index_keys[ix].push_back(ExtractKey(indexes_[ix], row));
    }
  }
  for (size_t ix = 0; ix < indexes_.size(); ++ix) {
    if (!indexes_[ix].unique) continue;
    // Sort pointers, not rows, for the adjacency duplicate check.
    std::vector<const Row*> keys;
    keys.reserve(index_keys[ix].size());
    for (const Row& key : index_keys[ix]) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const Row* a, const Row* b) { return RowLess(*a, *b); });
    for (size_t i = 0; i + 1 < keys.size(); ++i) {
      if (!RowLess(*keys[i], *keys[i + 1])) {
        return Status::AlreadyExists(
            "duplicate key " + RowToString(*keys[i]) + " in unique index '" +
            indexes_[ix].name + "'");
      }
    }
  }
  std::vector<Rid> rids;
  rids.reserve(rows.size());
  std::string encoded;
  for (const Row& row : rows) {
    encoded.clear();
    EncodeRow(row, &encoded);
    auto rid = heap_.Insert(encoded);
    if (!rid.ok()) {
      // Schema validation can't see encoded size, so an oversized record
      // surfaces here; un-store the partial batch to keep the documented
      // no-side-effects contract (indexes are not built yet).
      for (const Rid& stored : rids) (void)heap_.Delete(stored);
      return rid.status();
    }
    rids.push_back(rid.value());
  }
  for (size_t ix = 0; ix < indexes_.size(); ++ix) {
    Index& idx = indexes_[ix];
    if (idx.kind == IndexKind::kBTree) {
      std::vector<std::pair<Row, Rid>> items;
      items.reserve(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        items.emplace_back(std::move(index_keys[ix][i]), rids[i]);
      }
      idx.btree->BulkLoad(std::move(items));
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        idx.hash->Insert(std::move(index_keys[ix][i]), rids[i]);
      }
    }
  }
  if (journal_ != nullptr) {
    for (const Row& row : rows) journal_->NoteInsert(name_, row);
  }
  return rows.size();
}

Result<Row> Table::Get(const Rid& rid) const {
  CPDB_ASSIGN_OR_RETURN(std::string rec, heap_.Read(rid));
  Row row;
  size_t pos = 0;
  if (!DecodeRow(rec, &pos, &row)) {
    return Status::Internal("corrupt record at " + rid.ToString());
  }
  return row;
}

Status Table::Delete(const Rid& rid) {
  CPDB_ASSIGN_OR_RETURN(Row row, Get(rid));
  CPDB_RETURN_IF_ERROR(heap_.Delete(rid));
  for (auto& idx : indexes_) {
    Row key = ExtractKey(idx, row);
    if (idx.kind == IndexKind::kBTree) {
      idx.btree->Erase(key, rid);
    } else {
      idx.hash->Erase(key, rid);
    }
  }
  if (journal_ != nullptr) journal_->NoteDelete(name_, row);
  return Status::OK();
}

Status Table::DeleteRowImage(const Row& row) {
  std::optional<Rid> victim;
  Status inner = Status::OK();
  auto probe = [&](const Rid& rid, const Row& candidate) {
    if (candidate == row) {
      victim = rid;
      return false;
    }
    return true;
  };
  if (!indexes_.empty()) {
    const Index& idx = indexes_.front();
    if (row.size() < schema_.NumColumns()) {
      return Status::InvalidArgument("row image too short for table '" +
                                     name_ + "'");
    }
    Row key = ExtractKey(idx, row);
    auto emit = [&](const Rid& rid) {
      auto fetched = Get(rid);
      if (!fetched.ok()) {
        inner = fetched.status();
        return false;
      }
      return probe(rid, fetched.value());
    };
    if (idx.kind == IndexKind::kBTree) {
      idx.btree->LookupEq(key, [&](const Row&, const Rid& rid) {
        return emit(rid);
      });
    } else {
      idx.hash->LookupEq(key, emit);
    }
    CPDB_RETURN_IF_ERROR(inner);
  } else {
    Scan(probe);
  }
  if (!victim.has_value()) {
    return Status::NotFound("no row equal to " + RowToString(row) +
                            " in table '" + name_ + "'");
  }
  return Delete(*victim);
}

size_t Table::DeleteWhere(const std::function<bool(const Row&)>& pred) {
  std::vector<Rid> doomed;
  Scan([&](const Rid& rid, const Row& row) {
    if (pred(row)) doomed.push_back(rid);
    return true;
  });
  size_t n = 0;
  for (const Rid& rid : doomed) {
    if (Delete(rid).ok()) ++n;
  }
  return n;
}

Result<size_t> Table::DeleteWhere(
    const std::string& index_name, const Row& key,
    const std::function<bool(const Row&)>& pred) {
  const Index* idx = FindIndex(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index '" + index_name + "'");
  }
  if (key.size() != idx->columns.size()) {
    return Status::InvalidArgument("key arity mismatch for index '" +
                                   index_name + "'");
  }
  // Collect first, delete after: Delete() mutates the index being probed.
  std::vector<Rid> doomed;
  Status inner = Status::OK();
  auto match = [&](const Rid& rid) {
    if (pred != nullptr) {
      auto row = Get(rid);
      if (!row.ok()) {
        inner = row.status();
        return false;
      }
      if (!pred(row.value())) return true;
    }
    doomed.push_back(rid);
    return true;
  };
  if (idx->kind == IndexKind::kBTree) {
    idx->btree->LookupEq(key, [&](const Row&, const Rid& rid) {
      return match(rid);
    });
  } else {
    idx->hash->LookupEq(key, match);
  }
  CPDB_RETURN_IF_ERROR(inner);
  size_t n = 0;
  for (const Rid& rid : doomed) {
    if (Delete(rid).ok()) ++n;
  }
  return n;
}

Result<size_t> Table::ApplyBatch(const WriteBatch& batch) {
  // ---- Validation phase: nothing below may mutate until it all passes.
  for (const WriteBatch::InsertOp& op : batch.inserts()) {
    CPDB_RETURN_IF_ERROR(schema_.Validate(op.row));
  }
  std::vector<Row> doomed_rows;
  doomed_rows.reserve(batch.deletes().size());
  {
    std::vector<Rid> rids;
    rids.reserve(batch.deletes().size());
    for (const WriteBatch::DeleteOp& op : batch.deletes()) {
      rids.push_back(op.rid);
    }
    std::sort(rids.begin(), rids.end());
    for (size_t i = 0; i + 1 < rids.size(); ++i) {
      if (rids[i] == rids[i + 1]) {
        return Status::InvalidArgument("rid " + rids[i].ToString() +
                                       " deleted twice in one batch");
      }
    }
    for (const WriteBatch::DeleteOp& op : batch.deletes()) {
      CPDB_ASSIGN_OR_RETURN(Row row, Get(op.rid));
      doomed_rows.push_back(std::move(row));
    }
  }
  // Unique constraints, evaluated against the post-batch state: a key is
  // free if absent from the index or freed by one of the batch's deletes.
  for (const auto& idx : indexes_) {
    if (!idx.unique) continue;
    // Sorted with a consumed mark, so each delete frees its key exactly
    // once and lookups stay logarithmic.
    std::vector<std::pair<Row, bool>> freed;
    freed.reserve(doomed_rows.size());
    for (const Row& row : doomed_rows) {
      freed.emplace_back(ExtractKey(idx, row), false);
    }
    std::sort(freed.begin(), freed.end(),
              [](const std::pair<Row, bool>& a,
                 const std::pair<Row, bool>& b) {
                return RowLess(a.first, b.first);
              });
    std::vector<Row> batch_keys;
    batch_keys.reserve(batch.inserts().size());
    for (const WriteBatch::InsertOp& op : batch.inserts()) {
      batch_keys.push_back(ExtractKey(idx, op.row));
    }
    {
      // In-batch duplicates: sort pointers, check adjacency (as BulkLoad).
      std::vector<const Row*> sorted;
      sorted.reserve(batch_keys.size());
      for (const Row& key : batch_keys) sorted.push_back(&key);
      std::sort(sorted.begin(), sorted.end(),
                [](const Row* a, const Row* b) { return RowLess(*a, *b); });
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        if (!RowLess(*sorted[i], *sorted[i + 1])) {
          return Status::AlreadyExists(
              "duplicate key " + RowToString(*sorted[i]) +
              " in unique index '" + idx.name + "' within one batch");
        }
      }
    }
    for (const Row& key : batch_keys) {
      bool taken = false;
      if (idx.kind == IndexKind::kBTree) {
        idx.btree->LookupEq(key, [&](const Row&, const Rid&) {
          taken = true;
          return false;
        });
      } else {
        idx.hash->LookupEq(key, [&](const Rid&) {
          taken = true;
          return false;
        });
      }
      if (taken) {
        auto it = std::lower_bound(
            freed.begin(), freed.end(), key,
            [](const std::pair<Row, bool>& f, const Row& k) {
              return RowLess(f.first, k);
            });
        bool consumed = false;
        for (; it != freed.end() && !RowLess(key, it->first); ++it) {
          if (!it->second) {
            it->second = true;  // each delete frees its key once
            consumed = true;
            break;
          }
        }
        if (!consumed) {
          return Status::AlreadyExists("duplicate key " + RowToString(key) +
                                       " in unique index '" + idx.name +
                                       "'");
        }
      }
    }
  }

  // ---- Execution phase. Heap inserts first (the only step that can
  // still fail, on an oversized record) so a failure needs only the new
  // rows un-stored; deletes and index maintenance follow.
  std::vector<Rid> new_rids;
  new_rids.reserve(batch.inserts().size());
  std::string encoded;
  for (const WriteBatch::InsertOp& op : batch.inserts()) {
    encoded.clear();
    EncodeRow(op.row, &encoded);
    auto rid = heap_.Insert(encoded);
    if (!rid.ok()) {
      for (const Rid& stored : new_rids) (void)heap_.Delete(stored);
      return rid.status();
    }
    new_rids.push_back(rid.value());
  }
  for (const WriteBatch::DeleteOp& op : batch.deletes()) {
    CPDB_RETURN_IF_ERROR(heap_.Delete(op.rid));  // validated above
  }
  // Index maintenance, once per index: erase the doomed entries, then
  // feed the new entries as one sorted run.
  for (auto& idx : indexes_) {
    if (idx.kind == IndexKind::kBTree) {
      for (size_t i = 0; i < doomed_rows.size(); ++i) {
        idx.btree->Erase(ExtractKey(idx, doomed_rows[i]),
                         batch.deletes()[i].rid);
      }
      std::vector<std::pair<Row, Rid>> run;
      run.reserve(batch.inserts().size());
      for (size_t i = 0; i < batch.inserts().size(); ++i) {
        run.emplace_back(ExtractKey(idx, batch.inserts()[i].row),
                         new_rids[i]);
      }
      idx.btree->BulkUpsert(std::move(run));
    } else {
      for (size_t i = 0; i < doomed_rows.size(); ++i) {
        idx.hash->Erase(ExtractKey(idx, doomed_rows[i]),
                        batch.deletes()[i].rid);
      }
      for (size_t i = 0; i < batch.inserts().size(); ++i) {
        idx.hash->Insert(ExtractKey(idx, batch.inserts()[i].row),
                         new_rids[i]);
      }
    }
  }
  if (journal_ != nullptr) {
    // Deletes first: sequential replay of the journal must pass the same
    // unique-key checks this batch was validated under (net of its
    // deletes), so a delete+reinsert of one key replays cleanly.
    for (const Row& row : doomed_rows) journal_->NoteDelete(name_, row);
    for (const WriteBatch::InsertOp& op : batch.inserts()) {
      journal_->NoteInsert(name_, op.row);
    }
  }
  return batch.size();
}

void Table::Scan(
    const std::function<bool(const Rid&, const Row&)>& fn) const {
  heap_.Scan([&](const Rid& rid, const std::string& rec) {
    Row row;
    size_t pos = 0;
    if (!DecodeRow(rec, &pos, &row)) return true;  // skip corrupt
    return fn(rid, row);
  });
}

Result<Table::Cursor> Table::OpenScan(ScanSpec spec) const {
  const Index* idx = FindIndex(spec.index);
  if (idx == nullptr) {
    return Status::NotFound("no index '" + spec.index + "'");
  }
  if (idx->kind != IndexKind::kBTree) {
    return Status::NotSupported("cursor scan requires a btree index");
  }
  if (spec.lower.size() > idx->columns.size() ||
      spec.eq.size() > idx->columns.size()) {
    return Status::InvalidArgument("scan bound exceeds key arity of '" +
                                   spec.index + "'");
  }
  Cursor cur;
  cur.table_ = this;
  // Derive the start position: an explicit lower bound wins; otherwise an
  // equality prefix or string prefix names the first possible key. A
  // partial-arity bound compares as a prefix row, which sorts before
  // every full key extending it.
  const Row* start = nullptr;
  Row derived;
  if (!spec.lower.empty()) {
    start = &spec.lower;
  } else if (!spec.eq.empty()) {
    start = &spec.eq;
  } else if (!spec.prefix.empty()) {
    derived = Row{Datum(spec.prefix)};
    start = &derived;
  }
  cur.pos_ = start == nullptr ? idx->btree->SeekFirst()
                              : idx->btree->Seek(*start);
  cur.spec_ = std::move(spec);
  cur.done_ = !cur.pos_.Valid();
  return cur;
}

bool Table::Cursor::Next(Row* row, Rid* rid) {
  if (done_) return false;
  while (pos_.Valid()) {
    const Row& key = pos_.key();
    if (spec_.limit > 0 && produced_ >= spec_.limit) break;
    if (!spec_.eq.empty()) {
      Row head(key.begin(),
               key.begin() + static_cast<ptrdiff_t>(spec_.eq.size()));
      if (head != spec_.eq) break;  // ordered: past the eq range
    }
    if (!spec_.prefix.empty()) {
      if (key.empty() || !key[0].is_string() ||
          !StartsWith(key[0].AsString(), spec_.prefix)) {
        break;  // ordered: past the prefix range
      }
    }
    auto fetched = table_->Get(pos_.rid());
    if (!fetched.ok()) {
      status_ = fetched.status();
      done_ = true;
      return false;
    }
    if (spec_.visible_col >= 0) {
      const Row& r = fetched.value();
      size_t col = static_cast<size_t>(spec_.visible_col);
      if (col < r.size() && r[col].is_int() &&
          r[col].AsInt() > spec_.visible_max) {
        pos_.Advance();  // younger than the reader's snapshot
        continue;
      }
    }
    if (spec_.predicate != nullptr && !spec_.predicate(fetched.value())) {
      pos_.Advance();
      continue;
    }
    if (rid != nullptr) *rid = pos_.rid();
    *row = std::move(fetched).value();
    pos_.Advance();
    ++produced_;
    return true;
  }
  done_ = true;
  return false;
}

size_t Table::Cursor::Next(std::vector<Row>* batch, size_t max) {
  batch->clear();
  Row row;
  while (batch->size() < max && Next(&row)) {
    batch->push_back(std::move(row));
  }
  return batch->size();
}

Status Table::MultiGet(
    const std::string& index_name, const std::vector<Row>& keys,
    const std::function<bool(size_t, const Rid&, const Row&)>& fn) const {
  const Index* idx = FindIndex(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index '" + index_name + "'");
  }
  Status inner = Status::OK();
  bool stop = false;
  for (size_t i = 0; i < keys.size() && !stop; ++i) {
    if (keys[i].size() != idx->columns.size()) {
      return Status::InvalidArgument("key arity mismatch for index '" +
                                     index_name + "'");
    }
    auto emit = [&](const Rid& rid) {
      auto row = Get(rid);
      if (!row.ok()) {
        inner = row.status();
        return false;
      }
      if (!fn(i, rid, row.value())) {
        stop = true;
        return false;
      }
      return true;
    };
    if (idx->kind == IndexKind::kBTree) {
      idx->btree->LookupEq(keys[i], [&](const Row&, const Rid& rid) {
        return emit(rid);
      });
    } else {
      idx->hash->LookupEq(keys[i], emit);
    }
    CPDB_RETURN_IF_ERROR(inner);
  }
  return Status::OK();
}

Status Table::LookupEq(
    const std::string& index_name, const Row& key,
    const std::function<bool(const Rid&, const Row&)>& fn) const {
  const Index* idx = FindIndex(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index '" + index_name + "'");
  }
  if (key.size() != idx->columns.size()) {
    return Status::InvalidArgument("key arity mismatch for index '" +
                                   index_name + "'");
  }
  Status inner = Status::OK();
  auto emit = [&](const Rid& rid) {
    auto row = Get(rid);
    if (!row.ok()) {
      inner = row.status();
      return false;
    }
    return fn(rid, row.value());
  };
  if (idx->kind == IndexKind::kBTree) {
    idx->btree->LookupEq(key, [&](const Row&, const Rid& rid) {
      return emit(rid);
    });
  } else {
    idx->hash->LookupEq(key, emit);
  }
  return inner;
}

Status Table::ScanPrefix(
    const std::string& index_name, const std::string& prefix,
    const std::function<bool(const Rid&, const Row&)>& fn) const {
  const Index* idx = FindIndex(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index '" + index_name + "'");
  }
  if (idx->kind != IndexKind::kBTree) {
    return Status::NotSupported("prefix scan requires a btree index");
  }
  Status inner = Status::OK();
  idx->btree->ScanFrom({Datum(prefix)}, [&](const Row& key, const Rid& rid) {
    if (key.empty() || !key[0].is_string()) return true;
    if (!StartsWith(key[0].AsString(), prefix)) return false;  // done
    auto row = Get(rid);
    if (!row.ok()) {
      inner = row.status();
      return false;
    }
    return fn(rid, row.value());
  });
  return inner;
}

Status Table::ScanIndex(
    const std::string& index_name,
    const std::function<bool(const Rid&, const Row&)>& fn) const {
  const Index* idx = FindIndex(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index '" + index_name + "'");
  }
  if (idx->kind != IndexKind::kBTree) {
    return Status::NotSupported("ordered scan requires a btree index");
  }
  Status inner = Status::OK();
  idx->btree->ScanAll([&](const Row&, const Rid& rid) {
    auto row = Get(rid);
    if (!row.ok()) {
      inner = row.status();
      return false;
    }
    return fn(rid, row.value());
  });
  return inner;
}

Result<Row> Table::LastKey(const std::string& index_name) const {
  const Index* idx = FindIndex(index_name);
  if (idx == nullptr) {
    return Status::NotFound("no index '" + index_name + "'");
  }
  if (idx->kind != IndexKind::kBTree) {
    return Status::NotSupported("max-key read requires a btree index");
  }
  BTree::Cursor last = idx->btree->SeekLast();
  if (!last.Valid()) {
    return Status::NotFound("table '" + name_ + "' is empty");
  }
  return last.key();
}

}  // namespace cpdb::relstore
