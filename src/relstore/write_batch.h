#pragma once

#include <utility>
#include <vector>

#include "relstore/datum.h"
#include "relstore/page.h"

namespace cpdb::relstore {

/// A staged set of writes against one table — the unit the batched write
/// path ships in a single modelled client round trip, the write-side
/// counterpart of the cursor/batch read API.
///
/// A batch mixes inserts (full rows) and deletes (by Rid) freely. Order
/// within the batch is not significant: Table::ApplyBatch validates the
/// whole batch up front against the table state *minus* the batch's
/// deletes, so deleting a row and inserting its unique-key replacement in
/// one batch is legal regardless of staging order. Inserting the same
/// unique key twice, deleting the same Rid twice, or deleting a missing
/// Rid fails validation and leaves the table untouched.
class [[nodiscard]] WriteBatch {
 public:
  struct InsertOp {
    Row row;
  };
  struct DeleteOp {
    Rid rid;
  };

  /// Stages a full row for insertion.
  void Insert(Row row) { inserts_.push_back({std::move(row)}); }

  /// Stages the row at `rid` for deletion.
  void Delete(const Rid& rid) { deletes_.push_back({rid}); }

  [[nodiscard]] const std::vector<InsertOp>& inserts() const {
    return inserts_;
  }
  [[nodiscard]] const std::vector<DeleteOp>& deletes() const {
    return deletes_;
  }

  [[nodiscard]] size_t size() const {
    return inserts_.size() + deletes_.size();
  }
  [[nodiscard]] bool empty() const {
    return inserts_.empty() && deletes_.empty();
  }

  /// Discards all staged writes (abort of an unsent batch).
  void Clear() {
    inserts_.clear();
    deletes_.clear();
  }

 private:
  std::vector<InsertOp> inserts_;
  std::vector<DeleteOp> deletes_;
};

}  // namespace cpdb::relstore
