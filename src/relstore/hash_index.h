#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "relstore/datum.h"
#include "relstore/page.h"

namespace cpdb::relstore {

/// Unordered (hash) secondary index from composite keys to record ids.
/// Equality lookups only; the provenance store uses it for Tid lookups
/// where range order is irrelevant.
class HashIndex {
 public:
  void Insert(const Row& key, const Rid& rid) {
    buckets_[key].push_back(rid);
    ++size_;
  }

  bool Erase(const Row& key, const Rid& rid) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return false;
    auto& rids = it->second;
    for (size_t i = 0; i < rids.size(); ++i) {
      if (rids[i] == rid) {
        rids.erase(rids.begin() + static_cast<long>(i));
        if (rids.empty()) buckets_.erase(it);
        --size_;
        return true;
      }
    }
    return false;
  }

  /// Calls `fn(rid)` for each entry with the given key until it returns
  /// false.
  void LookupEq(const Row& key,
                const std::function<bool(const Rid&)>& fn) const {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return;
    for (const Rid& rid : it->second) {
      if (!fn(rid)) return;
    }
  }

  size_t size() const { return size_; }
  size_t DistinctKeys() const { return buckets_.size(); }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  std::unordered_map<Row, std::vector<Rid>, RowHash> buckets_;
  size_t size_ = 0;
};

}  // namespace cpdb::relstore
