#include "relstore/exec.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cpdb::relstore {

std::vector<Row> RowIterator::Collect() {
  std::vector<Row> out;
  Row row;
  while (Next(&row)) out.push_back(row);
  return out;
}

namespace {

class MaterializedIterator : public RowIterator {
 public:
  explicit MaterializedIterator(std::vector<Row> rows)
      : rows_(std::move(rows)) {}

  bool Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class SeqScanIterator : public RowIterator {
 public:
  explicit SeqScanIterator(const Table* table) {
    // Materialise eagerly: the HeapFile visitor API doesn't suspend, and
    // tables in this engine are in-memory anyway.
    table->Scan([this](const Rid&, const Row& row) {
      rows_.push_back(row);
      return true;
    });
  }

  bool Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class CursorScanIterator : public RowIterator {
 public:
  explicit CursorScanIterator(Table::Cursor cursor)
      : cursor_(std::move(cursor)) {}

  bool Next(Row* out) override { return cursor_.Next(out); }

 private:
  Table::Cursor cursor_;
};

class FilterIterator : public RowIterator {
 public:
  FilterIterator(RowIteratorPtr child, std::function<bool(const Row&)> pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  bool Next(Row* out) override {
    while (child_->Next(out)) {
      if (pred_(*out)) return true;
    }
    return false;
  }

 private:
  RowIteratorPtr child_;
  std::function<bool(const Row&)> pred_;
};

class ProjectIterator : public RowIterator {
 public:
  ProjectIterator(RowIteratorPtr child, std::vector<int> cols)
      : child_(std::move(child)), cols_(std::move(cols)) {}

  bool Next(Row* out) override {
    Row row;
    if (!child_->Next(&row)) return false;
    out->clear();
    out->reserve(cols_.size());
    for (int c : cols_) out->push_back(row[static_cast<size_t>(c)]);
    return true;
  }

 private:
  RowIteratorPtr child_;
  std::vector<int> cols_;
};

class HashJoinIterator : public RowIterator {
 public:
  HashJoinIterator(RowIteratorPtr left, std::vector<int> left_cols,
                   RowIteratorPtr right, std::vector<int> right_cols)
      : left_(std::move(left)),
        left_cols_(std::move(left_cols)),
        right_cols_(std::move(right_cols)) {
    Row row;
    while (right->Next(&row)) {
      table_[ExtractKey(row, right_cols_)].push_back(row);
    }
  }

  bool Next(Row* out) override {
    for (;;) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        *out = current_left_;
        const Row& r = (*matches_)[match_pos_++];
        out->insert(out->end(), r.begin(), r.end());
        return true;
      }
      if (!left_->Next(&current_left_)) return false;
      auto it = table_.find(ExtractKey(current_left_, left_cols_));
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }

 private:
  static Row ExtractKey(const Row& row, const std::vector<int>& cols) {
    Row key;
    key.reserve(cols.size());
    for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
    return key;
  }

  struct RowHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };

  RowIteratorPtr left_;
  std::vector<int> left_cols_;
  std::vector<int> right_cols_;
  std::unordered_map<Row, std::vector<Row>, RowHash> table_;
  Row current_left_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

class SortIterator : public RowIterator {
 public:
  SortIterator(RowIteratorPtr child, std::vector<int> cols)
      : cols_(std::move(cols)) {
    rows_ = child->Collect();
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (int c : cols_) {
                         auto i = static_cast<size_t>(c);
                         if (a[i] < b[i]) return true;
                         if (b[i] < a[i]) return false;
                       }
                       return false;
                     });
  }

  bool Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

 private:
  std::vector<int> cols_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class DistinctIterator : public RowIterator {
 public:
  explicit DistinctIterator(RowIteratorPtr child)
      : child_(std::move(child)) {}

  bool Next(Row* out) override {
    while (child_->Next(out)) {
      if (seen_.insert(*out).second) return true;
    }
    return false;
  }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  RowIteratorPtr child_;
  std::unordered_set<Row, RowHash> seen_;
};

class LimitIterator : public RowIterator {
 public:
  LimitIterator(RowIteratorPtr child, size_t n)
      : child_(std::move(child)), remaining_(n) {}

  bool Next(Row* out) override {
    if (remaining_ == 0) return false;
    if (!child_->Next(out)) return false;
    --remaining_;
    return true;
  }

 private:
  RowIteratorPtr child_;
  size_t remaining_;
};

}  // namespace

RowIteratorPtr MakeSeqScan(const Table* table) {
  return std::make_unique<SeqScanIterator>(table);
}

RowIteratorPtr MakeCursorScan(const Table* table, ScanSpec spec) {
  auto cursor = table->OpenScan(std::move(spec));
  // Errors (missing/unsuitable index, bad bounds) yield an empty stream;
  // callers that care open the cursor via Table::OpenScan directly.
  if (!cursor.ok()) {
    return std::make_unique<MaterializedIterator>(std::vector<Row>{});
  }
  return std::make_unique<CursorScanIterator>(std::move(cursor).value());
}

RowIteratorPtr MakeIndexScan(const Table* table, std::string index_name,
                             Row key) {
  ScanSpec spec;
  spec.index = index_name;
  spec.eq = key;
  auto cursor = table->OpenScan(std::move(spec));
  if (cursor.ok()) {
    return std::make_unique<CursorScanIterator>(std::move(cursor).value());
  }
  // Hash indexes have no cursor; fall back to a one-shot lookup. Errors
  // (missing index) yield an empty stream; callers that care use
  // Table::LookupEq directly.
  std::vector<Row> rows;
  (void)table->LookupEq(index_name, key, [&](const Rid&, const Row& row) {
    rows.push_back(row);
    return true;
  });
  return std::make_unique<MaterializedIterator>(std::move(rows));
}

RowIteratorPtr MakePrefixScan(const Table* table, std::string index_name,
                              std::string prefix) {
  ScanSpec spec;
  spec.index = std::move(index_name);
  spec.prefix = std::move(prefix);
  return MakeCursorScan(table, std::move(spec));
}

RowIteratorPtr MakeFilter(RowIteratorPtr child,
                          std::function<bool(const Row&)> pred) {
  return std::make_unique<FilterIterator>(std::move(child), std::move(pred));
}

RowIteratorPtr MakeProject(RowIteratorPtr child, std::vector<int> cols) {
  return std::make_unique<ProjectIterator>(std::move(child), std::move(cols));
}

RowIteratorPtr MakeHashJoin(RowIteratorPtr left, std::vector<int> left_cols,
                            RowIteratorPtr right,
                            std::vector<int> right_cols) {
  return std::make_unique<HashJoinIterator>(std::move(left),
                                            std::move(left_cols),
                                            std::move(right),
                                            std::move(right_cols));
}

RowIteratorPtr MakeSort(RowIteratorPtr child, std::vector<int> cols) {
  return std::make_unique<SortIterator>(std::move(child), std::move(cols));
}

RowIteratorPtr MakeDistinct(RowIteratorPtr child) {
  return std::make_unique<DistinctIterator>(std::move(child));
}

RowIteratorPtr MakeLimit(RowIteratorPtr child, size_t n) {
  return std::make_unique<LimitIterator>(std::move(child), n);
}

RowIteratorPtr MakeValues(std::vector<Row> rows) {
  return std::make_unique<MaterializedIterator>(std::move(rows));
}

}  // namespace cpdb::relstore
