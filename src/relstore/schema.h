#pragma once

#include <string>
#include <vector>

#include "relstore/datum.h"
#include "util/result.h"
#include "util/status.h"

namespace cpdb::relstore {

/// One column definition.
struct Column {
  std::string name;
  ColumnType type;
  bool nullable = true;
};

/// An ordered list of typed, named columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or -1.
  int IndexOf(const std::string& name) const;

  /// Checks arity, types (NULLs allowed only if nullable).
  Status Validate(const Row& row) const;

  /// "Prov(Tid INT64, Op STRING, Loc STRING, Src STRING)"-style rendering.
  std::string ToString(const std::string& table_name = "") const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace cpdb::relstore
