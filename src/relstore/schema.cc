#include "relstore/schema.h"

#include <sstream>

namespace cpdb::relstore {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::Validate(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Datum& d = row[i];
    const Column& c = columns_[i];
    if (d.is_null()) {
      if (!c.nullable) {
        return Status::InvalidArgument("NULL in non-nullable column '" +
                                       c.name + "'");
      }
      continue;
    }
    bool ok = (c.type == ColumnType::kInt64 && d.is_int()) ||
              (c.type == ColumnType::kDouble && d.is_double()) ||
              (c.type == ColumnType::kString && d.is_string());
    if (!ok) {
      return Status::InvalidArgument("type mismatch in column '" + c.name +
                                     "': expected " +
                                     ColumnTypeName(c.type) + ", got " +
                                     d.ToString());
    }
  }
  return Status::OK();
}

std::string Schema::ToString(const std::string& table_name) const {
  std::ostringstream os;
  if (!table_name.empty()) os << table_name;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << " " << ColumnTypeName(columns_[i].type);
    if (!columns_[i].nullable) os << " NOT NULL";
  }
  os << ")";
  return os.str();
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].nullable != other.columns_[i].nullable) {
      return false;
    }
  }
  return true;
}

}  // namespace cpdb::relstore
