#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "relstore/datum.h"
#include "relstore/page.h"

namespace cpdb::relstore {

/// In-memory B+tree mapping composite keys (Row) to record ids.
///
/// Duplicate keys are supported by ordering entries on (key, rid); all
/// operations that name a specific entry take both. Leaves form a doubly
/// linked chain for ordered range scans — which the provenance store uses
/// for Loc-prefix lookups (every descendant of a path is a contiguous key
/// range) — and for O(1) unlink when a leaf is merged away.
///
/// Deletion uses the standard B+tree rebalance: a leaf or internal node
/// that drops below minimum occupancy borrows an entry from an adjacent
/// sibling, or is merged with one, so the occupancy and height bounds hold
/// for any interleaving of inserts and erases. `CheckInvariants()`
/// verifies the full structural contract and stays armed in release
/// builds (it does not rely on `assert`).
class BTree {
 public:
  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid). Duplicate (key, rid) pairs are ignored.
  void Insert(const Row& key, const Rid& rid);

  /// Removes (key, rid); returns false if not present.
  bool Erase(const Row& key, const Rid& rid);

  /// Builds the tree from `items` in one pass, replacing incremental
  /// insertion for initial loads (workload generators, storage benches).
  /// The tree must be empty. Input need not be sorted; exact duplicate
  /// (key, rid) pairs are dropped, matching Insert semantics. Leaves are
  /// packed full, so the result is the minimum-height tree for the data.
  void BulkLoad(std::vector<std::pair<Row, Rid>> items);

  /// Calls `fn(key, rid)` for all entries with key == `key`.
  void LookupEq(const Row& key,
                const std::function<bool(const Row&, const Rid&)>& fn) const;

  /// Calls `fn` for all entries with lo <= key, in order, until `fn`
  /// returns false. With `lo` empty, scans from the smallest key.
  void ScanFrom(const Row& lo,
                const std::function<bool(const Row&, const Rid&)>& fn) const;

  /// Calls `fn` for all entries, in key order, until `fn` returns false.
  void ScanAll(const std::function<bool(const Row&, const Rid&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 = a single leaf). Exposed for tests.
  size_t Height() const;

  /// Verifies the full structural contract — separator bounds, occupancy
  /// minima, uniform leaf depth, doubly-linked chain integrity, and entry
  /// count — and aborts with a diagnostic on violation. Active in all
  /// build types. Exposed for property tests.
  void CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Row key;
    Rid rid;
  };

  static bool EntryLess(const Entry& a, const Entry& b);
  static size_t ChildIndex(const Node& node, const Entry& probe);

  Node* FindLeaf(const Row& key, const Rid& rid) const;
  void SplitChild(Node* parent, size_t child_idx);
  bool EraseRec(Node* node, const Entry& probe);
  void FixUnderflow(Node* parent, size_t child_idx);
  void MergeChildren(Node* parent, size_t left_idx);
  void CheckNode(const Node* node, const Entry* lo, const Entry* hi,
                 size_t depth, size_t* leaf_depth,
                 std::vector<const Node*>* leaves) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace cpdb::relstore
