#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "relstore/datum.h"
#include "relstore/page.h"

namespace cpdb::relstore {

/// In-memory B+tree mapping composite keys (Row) to record ids.
///
/// Duplicate keys are supported by ordering entries on (key, rid); all
/// operations that name a specific entry take both. Leaves form a doubly
/// linked chain for ordered range scans — which the provenance store uses
/// for Loc-prefix lookups (every descendant of a path is a contiguous key
/// range) — and for O(1) unlink when a leaf is merged away.
///
/// Deletion uses the standard B+tree rebalance: a leaf or internal node
/// that drops below minimum occupancy borrows an entry from an adjacent
/// sibling, or is merged with one, so the occupancy and height bounds hold
/// for any interleaving of inserts and erases. `CheckInvariants()`
/// verifies the full structural contract and stays armed in release
/// builds (it does not rely on `assert`).
class BTree {
 private:
  struct Node;  // declared up front so Cursor can hold a leaf position

 public:
  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid). Duplicate (key, rid) pairs are ignored.
  void Insert(const Row& key, const Rid& rid);

  /// Removes (key, rid); returns false if not present.
  bool Erase(const Row& key, const Rid& rid);

  /// Builds the tree from `items` in one pass, replacing incremental
  /// insertion for initial loads (workload generators, storage benches).
  /// The tree must be empty. Input need not be sorted; exact duplicate
  /// (key, rid) pairs are dropped, matching Insert semantics. Leaves are
  /// packed full, so the result is the minimum-height tree for the data.
  void BulkLoad(std::vector<std::pair<Row, Rid>> items);

  /// Sorted-run bulk insert into a possibly non-empty tree; (key, rid)
  /// pairs already present are ignored (Insert semantics). Returns the
  /// number of entries actually added. Input need not be sorted. The
  /// batched write path (Table::ApplyBatch) feeds each index exactly one
  /// run per batch: small runs take ordered per-key descents, runs large
  /// relative to the tree take a single leaf-chain merge + rebuild
  /// (O(n + k) instead of k descents). Invalidates all cursors.
  size_t BulkUpsert(std::vector<std::pair<Row, Rid>> items);

  /// Read cursor positioned on one entry of the leaf chain. Obtained from
  /// Seek()/SeekFirst(); stepping follows the doubly-linked leaves, so a
  /// full traversal touches each leaf exactly once with no re-descent.
  ///
  /// Consistency contract: a cursor is a borrowed position inside the
  /// tree. Any mutation (Insert, Erase, BulkLoad) invalidates every
  /// outstanding cursor; advancing or dereferencing one afterwards is
  /// undefined. Scans in this codebase never interleave with writes to
  /// the same index (single-writer, read-then-write phases), which is the
  /// contract the provenance cursors document upward.
  class Cursor {
   public:
    Cursor() = default;

    bool Valid() const { return leaf_ != nullptr; }
    /// Precondition for key()/rid()/Advance(): Valid().
    const Row& key() const;
    const Rid& rid() const;
    /// Steps to the next entry in (key, rid) order; becomes invalid past
    /// the last entry.
    void Advance();

   private:
    friend class BTree;
    const Node* leaf_ = nullptr;
    size_t idx_ = 0;
  };

  /// Cursor on the smallest entry (invalid if the tree is empty).
  Cursor SeekFirst() const;

  /// Cursor on the largest entry (invalid if the tree is empty) — an
  /// O(height) rightmost descent, used for max-key reads like resuming a
  /// recovered store's transaction counter.
  Cursor SeekLast() const;

  /// Cursor on the first entry with key >= `lo` (ties resolved to the
  /// smallest rid); invalid if no such entry exists.
  Cursor Seek(const Row& lo) const;

  /// Calls `fn(key, rid)` for all entries with key == `key`.
  void LookupEq(const Row& key,
                const std::function<bool(const Row&, const Rid&)>& fn) const;

  /// Calls `fn` for all entries with lo <= key, in order, until `fn`
  /// returns false. With `lo` empty, scans from the smallest key.
  void ScanFrom(const Row& lo,
                const std::function<bool(const Row&, const Rid&)>& fn) const;

  /// Calls `fn` for all entries, in key order, until `fn` returns false.
  void ScanAll(const std::function<bool(const Row&, const Rid&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 = a single leaf). Exposed for tests.
  size_t Height() const;

  /// Verifies the full structural contract — separator bounds, occupancy
  /// minima, uniform leaf depth, doubly-linked chain integrity, and entry
  /// count — and aborts with a diagnostic on violation. Active in all
  /// build types. Exposed for property tests.
  void CheckInvariants() const;

 private:
  struct Entry {
    Row key;
    Rid rid;
  };

  static bool EntryLess(const Entry& a, const Entry& b);
  static bool EntryEq(const Entry& a, const Entry& b);
  static size_t ChildIndex(const Node& node, const Entry& probe);

  Node* FindLeaf(const Row& key, const Rid& rid) const;
  void BuildFromSorted(std::vector<Entry> entries);
  void SplitChild(Node* parent, size_t child_idx);
  bool EraseRec(Node* node, const Entry& probe);
  void FixUnderflow(Node* parent, size_t child_idx);
  void MergeChildren(Node* parent, size_t left_idx);
  void CheckNode(const Node* node, const Entry* lo, const Entry* hi,
                 size_t depth, size_t* leaf_depth,
                 std::vector<const Node*>* leaves) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace cpdb::relstore
