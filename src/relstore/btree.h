#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "relstore/datum.h"
#include "relstore/page.h"

namespace cpdb::relstore {

/// In-memory B+tree mapping composite keys (Row) to record ids.
///
/// Duplicate keys are supported by ordering entries on (key, rid); all
/// operations that name a specific entry take both. Leaves are chained for
/// ordered range scans, which the provenance store uses for Loc-prefix
/// lookups (every descendant of a path is a contiguous key range).
class BTree {
 public:
  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid). Duplicate (key, rid) pairs are ignored.
  void Insert(const Row& key, const Rid& rid);

  /// Removes (key, rid); returns false if not present.
  bool Erase(const Row& key, const Rid& rid);

  /// Calls `fn(key, rid)` for all entries with key == `key`.
  void LookupEq(const Row& key,
                const std::function<bool(const Row&, const Rid&)>& fn) const;

  /// Calls `fn` for all entries with lo <= key, in order, until `fn`
  /// returns false. With `lo` empty, scans from the smallest key.
  void ScanFrom(const Row& lo,
                const std::function<bool(const Row&, const Rid&)>& fn) const;

  /// Calls `fn` for all entries, in key order, until `fn` returns false.
  void ScanAll(const std::function<bool(const Row&, const Rid&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 = a single leaf). Exposed for tests.
  size_t Height() const;

  /// Verifies ordering and fanout invariants; aborts on violation.
  /// Exposed for property tests.
  void CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Row key;
    Rid rid;
  };

  static bool EntryLess(const Entry& a, const Entry& b);

  Node* FindLeaf(const Row& key, const Rid& rid,
                 std::vector<Node*>* path) const;
  void SplitChild(Node* parent, size_t child_idx);
  void RebalanceAfterErase(std::vector<Node*>& path);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace cpdb::relstore
