#pragma once

#include <cstddef>

#include "util/sim_clock.h"

namespace cpdb::relstore {

/// Parameters of the simulated client/server interaction cost.
///
/// The paper's CPDB is a Java client talking to MySQL via JDBC and to
/// Timber via SOAP; its timing results (Figures 9, 10, 12) are dominated
/// by these round trips — the paper explicitly attributes transactional
/// provenance's speed to "the reduced number of round-trips to the
/// provenance database". Our substrates are in-process, so we charge each
/// modelled round trip and each transferred row to a SimClock. The default
/// magnitudes are scaled down ~1000x from the paper's wall-clock times
/// (450 ms per Timber update -> 450 us simulated); only ratios matter for
/// the reproduced figures.
struct CostParams {
  /// Fixed cost of one client call (connection + parse + dispatch).
  double roundtrip_us = 60.0;
  /// Marginal cost per row written to or read from the store.
  double per_row_us = 10.0;
  /// Marginal cost per KB of payload.
  double per_kb_us = 1.0;
};

/// Accumulates simulated interaction time for one store.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  /// Charges one client round trip moving `rows` rows / `bytes` payload.
  void ChargeCall(size_t rows = 0, size_t bytes = 0) {
    ++calls_;
    rows_ += rows;
    clock_.Advance(params_.roundtrip_us +
                   static_cast<double>(rows) * params_.per_row_us +
                   static_cast<double>(bytes) / 1024.0 * params_.per_kb_us);
  }

  /// Charges pure local CPU work (no round trip), e.g. provlist upkeep.
  void ChargeLocal(double micros) { clock_.Advance(micros); }

  double ElapsedMicros() const { return clock_.ElapsedMicros(); }
  double ElapsedMillis() const { return clock_.ElapsedMillis(); }
  size_t Calls() const { return calls_; }
  size_t RowsMoved() const { return rows_; }

  void Reset() {
    clock_.Reset();
    calls_ = 0;
    rows_ = 0;
  }

  const CostParams& params() const { return params_; }
  void set_params(CostParams p) { params_ = p; }

 private:
  CostParams params_;
  SimClock clock_;
  size_t calls_ = 0;
  size_t rows_ = 0;
};

}  // namespace cpdb::relstore
