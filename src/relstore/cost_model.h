#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/sim_clock.h"

namespace cpdb::relstore {

/// Parameters of the simulated client/server interaction cost.
///
/// The paper's CPDB is a Java client talking to MySQL via JDBC and to
/// Timber via SOAP; its timing results (Figures 9, 10, 12) are dominated
/// by these round trips — the paper explicitly attributes transactional
/// provenance's speed to "the reduced number of round-trips to the
/// provenance database". Our substrates are in-process, so we charge each
/// modelled round trip and each transferred row to a SimClock. The default
/// magnitudes are scaled down ~1000x from the paper's wall-clock times
/// (450 ms per Timber update -> 450 us simulated); only ratios matter for
/// the reproduced figures.
struct CostParams {
  /// Fixed cost of one client call (connection + parse + dispatch).
  double roundtrip_us = 60.0;
  /// Marginal cost per row written to or read from the store.
  double per_row_us = 10.0;
  /// Marginal cost per KB of payload.
  double per_kb_us = 1.0;
  /// Cost of one fsync barrier (durable group commit). Only charged by
  /// durable databases; in-memory stores never pay it.
  double fsync_us = 120.0;
};

/// Point-in-time reading of a CostModel's counters. Queries and benches
/// measure a code path by taking a snapshot before and after and
/// differencing: `calls` is the modelled round-trip count (the paper's
/// unit of query cost), `rows` the transferred-row count. `write_calls`
/// and `write_rows` are the write-side subset — round trips issued by
/// ChargeWrite (WriteRecords, target ApplyBatch/ApplyNative) — so benches
/// can difference write round trips the same way reads do.
struct CostSnapshot {
  double micros = 0;
  size_t calls = 0;
  size_t rows = 0;
  size_t write_calls = 0;
  size_t write_rows = 0;
  /// Durability counters (zero for in-memory stores): fsync barriers
  /// issued and bytes appended to the write-ahead log.
  size_t fsyncs = 0;
  size_t log_bytes = 0;
};

/// Accumulates simulated interaction time for one store.
///
/// Accounting contract (matching the paper's "one SQL statement is one
/// round trip"): every ChargeCall is one client/server round trip, no
/// matter how many rows ride on it. Cursor-based reads charge one round
/// trip per *batch fetched*, not per materialized result vector — a scan
/// drained in a single batch costs exactly one call, like the one-shot
/// queries it replaced, while a huge result streamed in k batches costs k.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  /// Charges one client round trip moving `rows` rows / `bytes` payload.
  void ChargeCall(size_t rows = 0, size_t bytes = 0) {
    ++calls_;
    rows_ += rows;
    clock_.Advance(params_.roundtrip_us +
                   static_cast<double>(rows) * params_.per_row_us +
                   static_cast<double>(bytes) / 1024.0 * params_.per_kb_us);
  }

  /// Charges one client round trip that *writes* `rows` rows. Identical
  /// timing/accounting to ChargeCall (write calls are counted in Calls()
  /// too), but additionally bumps the write-side counters so callers can
  /// difference write round trips separately from reads — the quantity
  /// the batched write path reduces.
  void ChargeWrite(size_t rows = 0, size_t bytes = 0) {
    ++write_calls_;
    write_rows_ += rows;
    ChargeCall(rows, bytes);
  }

  /// Charges pure local CPU work (no round trip), e.g. provlist upkeep.
  void ChargeLocal(double micros) { clock_.Advance(micros); }

  /// Records `bytes` appended to the write-ahead log. No clock charge of
  /// its own: the log append rides the commit's fsync barrier below.
  void ChargeLog(size_t bytes) { log_bytes_ += bytes; }

  /// Charges one fsync barrier (durable group commit).
  void ChargeFsync() {
    ++fsyncs_;
    clock_.Advance(params_.fsync_us);
  }

  double ElapsedMicros() const { return clock_.ElapsedMicros(); }
  double ElapsedMillis() const { return clock_.ElapsedMillis(); }
  size_t Calls() const { return calls_; }
  size_t RowsMoved() const { return rows_; }
  size_t WriteCalls() const { return write_calls_; }
  size_t WriteRows() const { return write_rows_; }
  size_t Fsyncs() const { return fsyncs_; }
  size_t LogBytes() const { return log_bytes_; }

  CostSnapshot Snap() const {
    return {clock_.ElapsedMicros(), calls_, rows_, write_calls_,
            write_rows_, fsyncs_, log_bytes_};
  }

  void Reset() {
    clock_.Reset();
    calls_ = 0;
    rows_ = 0;
    write_calls_ = 0;
    write_rows_ = 0;
    fsyncs_ = 0;
    log_bytes_ = 0;
  }

  const CostParams& params() const { return params_; }
  void set_params(CostParams p) { params_ = p; }

 private:
  CostParams params_;
  SimClock clock_;
  size_t calls_ = 0;
  size_t rows_ = 0;
  size_t write_calls_ = 0;
  size_t write_rows_ = 0;
  size_t fsyncs_ = 0;
  size_t log_bytes_ = 0;
};

/// Race-free accumulator of CostSnapshots from many threads — the
/// engine-wide totals of the service layer.
///
/// CostModel itself is deliberately NOT thread-safe: it sits on every
/// charge path and a single session only ever charges it from one thread
/// at a time (the service layer gives each session its own plain model and
/// routes backend charges to it — see ProvBackend's cost sink). What IS
/// shared across threads is the *aggregation*: sessions fold their
/// snapshots in here (SessionPool::Release, bench teardown), concurrently
/// with other sessions folding theirs, so every counter is a relaxed
/// atomic. Snap() reads the counters individually; the result is a sum of
/// whole snapshots ever folded, not a consistent cut across concurrent
/// Add() calls — exact once the folding threads have been joined, which is
/// when benches and tests read it.
class CostAggregate {
 public:
  void Add(const CostSnapshot& s) {
    AddMicros(s.micros);
    calls_.fetch_add(s.calls, std::memory_order_relaxed);
    rows_.fetch_add(s.rows, std::memory_order_relaxed);
    write_calls_.fetch_add(s.write_calls, std::memory_order_relaxed);
    write_rows_.fetch_add(s.write_rows, std::memory_order_relaxed);
    fsyncs_.fetch_add(s.fsyncs, std::memory_order_relaxed);
    log_bytes_.fetch_add(s.log_bytes, std::memory_order_relaxed);
  }

  CostSnapshot Snap() const {
    CostSnapshot s;
    s.micros = micros_.load(std::memory_order_relaxed);
    s.calls = calls_.load(std::memory_order_relaxed);
    s.rows = rows_.load(std::memory_order_relaxed);
    s.write_calls = write_calls_.load(std::memory_order_relaxed);
    s.write_rows = write_rows_.load(std::memory_order_relaxed);
    s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
    s.log_bytes = log_bytes_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    micros_.store(0, std::memory_order_relaxed);
    calls_.store(0, std::memory_order_relaxed);
    rows_.store(0, std::memory_order_relaxed);
    write_calls_.store(0, std::memory_order_relaxed);
    write_rows_.store(0, std::memory_order_relaxed);
    fsyncs_.store(0, std::memory_order_relaxed);
    log_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  // fetch_add on atomic<double> is C++20; CAS keeps this C++17.
  void AddMicros(double micros) {
    double cur = micros_.load(std::memory_order_relaxed);
    while (!micros_.compare_exchange_weak(cur, cur + micros,
                                          std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> micros_{0};
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> write_calls_{0};
  std::atomic<uint64_t> write_rows_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> log_bytes_{0};
};

}  // namespace cpdb::relstore
