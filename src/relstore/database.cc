#include "relstore/database.h"

namespace cpdb::relstore {

Result<Table*> Database::CreateTable(const std::string& table_name,
                                     Schema schema) {
  if (tables_.count(table_name) > 0) {
    return Status::AlreadyExists("table '" + table_name + "' exists");
  }
  auto table = std::make_unique<Table>(table_name, std::move(schema));
  Table* ptr = table.get();
  tables_[table_name] = std::move(table);
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& table_name) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& table_name) const {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Database::DropTable(const std::string& table_name) {
  if (tables_.erase(table_name) == 0) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  return Status::OK();
}

size_t Database::PhysicalBytes() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) {
    (void)name;
    n += table->PhysicalBytes();
  }
  return n;
}

}  // namespace cpdb::relstore
