#include "relstore/database.h"

#include "storage/durable.h"

namespace cpdb::relstore {

Database::Database(std::string name) : name_(std::move(name)) {}

Database::~Database() = default;

Database::Database(Database&& other)
    : name_(std::move(other.name_)),
      tables_(std::move(other.tables_)),
      cost_(other.cost_),
      durability_(std::move(other.durability_)) {
  if (durability_ != nullptr) durability_->RebindDatabase(this);
}

Database& Database::operator=(Database&& other) {
  if (this != &other) {
    name_ = std::move(other.name_);
    tables_ = std::move(other.tables_);
    cost_ = other.cost_;
    durability_ = std::move(other.durability_);
    if (durability_ != nullptr) durability_->RebindDatabase(this);
  }
  return *this;
}

Result<std::unique_ptr<Database>> Database::Open(std::string name,
                                                const std::string& dir) {
  auto db = std::make_unique<Database>(std::move(name));
  // Recovery replays into the journal-less database, so nothing replayed
  // is re-logged; the journal attaches to existing tables afterwards and
  // to new tables as CreateTable makes them.
  CPDB_ASSIGN_OR_RETURN(db->durability_,
                        storage::Durability::Attach(db.get(), dir));
  for (auto& [table_name, table] : db->tables_) {
    (void)table_name;
    table->set_journal(db->durability_.get());
  }
  return db;
}

Result<Table*> Database::CreateTable(const std::string& table_name,
                                     Schema schema) {
  if (tables_.count(table_name) > 0) {
    return Status::AlreadyExists("table '" + table_name + "' exists");
  }
  // Journal before the move: nothing can fail past the duplicate check,
  // and the in-memory path keeps its zero-copy Schema handoff.
  if (durable()) durability_->NoteCreateTable(table_name, schema);
  auto table = std::make_unique<Table>(table_name, std::move(schema));
  Table* ptr = table.get();
  tables_[table_name] = std::move(table);
  if (durable()) ptr->set_journal(durability_.get());
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& table_name) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& table_name) const {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Database::DropTable(const std::string& table_name) {
  if (tables_.erase(table_name) == 0) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  if (durable()) durability_->NoteDropTable(table_name);
  return Status::OK();
}

void Database::ForEachTable(
    const std::function<void(const Table&)>& fn) const {
  for (const auto& [name, table] : tables_) {
    (void)name;
    fn(*table);
  }
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

size_t Database::PhysicalBytes() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) {
    (void)name;
    n += table->PhysicalBytes();
  }
  return n;
}

bool Database::durable() const {
  return durability_ != nullptr && durability_->open();
}

Status Database::Sync() {
  return durable() ? durability_->Sync() : Status::OK();
}

Status Database::Checkpoint() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition("database '" + name_ +
                                      "' is in-memory");
  }
  if (!durability_->open()) {
    return Status::FailedPrecondition("database '" + name_ +
                                      "' was closed");
  }
  return durability_->Checkpoint();
}

Status Database::Close() {
  if (durability_ == nullptr) return Status::OK();
  Status st = durability_->Close();
  // Detach the journal: post-Close mutations are in-memory only.
  for (auto& [table_name, table] : tables_) {
    (void)table_name;
    table->set_journal(nullptr);
  }
  return st;
}

}  // namespace cpdb::relstore
