#include "relstore/btree.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace cpdb::relstore {

namespace {
constexpr size_t kMaxEntries = 64;  // fanout
constexpr size_t kMinEntries = kMaxEntries / 2;
}  // namespace

struct BTree::Node {
  bool leaf = true;
  // Leaf: `entries` holds the data; `next` chains leaves left-to-right.
  // Internal: `keys[i]` separates children[i] (< key) from children[i+1]
  // (>= key); keys are (key,rid) pairs so duplicates split cleanly.
  std::vector<Entry> entries;                   // leaf payload or seps
  std::vector<std::unique_ptr<Node>> children;  // internal only
  Node* next = nullptr;                         // leaf chain
};

bool BTree::EntryLess(const Entry& a, const Entry& b) {
  if (RowLess(a.key, b.key)) return true;
  if (RowLess(b.key, a.key)) return false;
  return a.rid < b.rid;
}

BTree::BTree() : root_(std::make_unique<Node>()) {}
BTree::~BTree() = default;

BTree::Node* BTree::FindLeaf(const Row& key, const Rid& rid,
                             std::vector<Node*>* path) const {
  Node* cur = root_.get();
  Entry probe{key, rid};
  while (!cur->leaf) {
    if (path != nullptr) path->push_back(cur);
    // children[i] holds entries < entries[i]; find first sep > probe.
    size_t i = 0;
    while (i < cur->entries.size() && !EntryLess(probe, cur->entries[i])) {
      ++i;
    }
    cur = cur->children[i].get();
  }
  if (path != nullptr) path->push_back(cur);
  return cur;
}

void BTree::SplitChild(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  size_t mid = child->entries.size() / 2;

  if (child->leaf) {
    right->entries.assign(child->entries.begin() + mid, child->entries.end());
    child->entries.resize(mid);
    right->next = child->next;
    child->next = right.get();
    // Separator is a copy of the right half's first entry.
    parent->entries.insert(parent->entries.begin() + child_idx,
                           right->entries.front());
  } else {
    // Middle entry moves up; children split around it.
    Entry sep = child->entries[mid];
    right->entries.assign(child->entries.begin() + mid + 1,
                          child->entries.end());
    right->children.reserve(child->children.size() - mid - 1);
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->entries.resize(mid);
    child->children.resize(mid + 1);
    parent->entries.insert(parent->entries.begin() + child_idx,
                           std::move(sep));
  }
  parent->children.insert(parent->children.begin() + child_idx + 1,
                          std::move(right));
}

void BTree::Insert(const Row& key, const Rid& rid) {
  if (root_->entries.size() >= kMaxEntries) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  Node* cur = root_.get();
  Entry probe{key, rid};
  while (!cur->leaf) {
    size_t i = 0;
    while (i < cur->entries.size() && !EntryLess(probe, cur->entries[i])) {
      ++i;
    }
    if (cur->children[i]->entries.size() >= kMaxEntries) {
      SplitChild(cur, i);
      // Re-decide which side to descend.
      if (!EntryLess(probe, cur->entries[i])) ++i;
    }
    cur = cur->children[i].get();
  }
  auto it = std::lower_bound(cur->entries.begin(), cur->entries.end(), probe,
                             EntryLess);
  if (it != cur->entries.end() && !EntryLess(probe, *it) &&
      !EntryLess(*it, probe)) {
    return;  // exact duplicate (key, rid); ignore
  }
  cur->entries.insert(it, std::move(probe));
  ++size_;
}

bool BTree::Erase(const Row& key, const Rid& rid) {
  // Lazy deletion strategy: remove from the leaf; underflow is tolerated
  // (nodes are merged only when empty). This keeps ordering and scan
  // correctness, trading worst-case height for simplicity — acceptable for
  // the delete volumes of the workloads, and verified by CheckInvariants.
  std::vector<Node*> path;
  Node* leaf = FindLeaf(key, rid, &path);
  Entry probe{key, rid};
  auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                             probe, EntryLess);
  if (it == leaf->entries.end() || EntryLess(probe, *it) ||
      EntryLess(*it, probe)) {
    return false;
  }
  leaf->entries.erase(it);
  --size_;
  RebalanceAfterErase(path);
  return true;
}

void BTree::RebalanceAfterErase(std::vector<Node*>& path) {
  // Collapse empty nodes bottom-up.
  for (size_t level = path.size(); level-- > 1;) {
    Node* node = path[level];
    Node* parent = path[level - 1];
    if (!node->entries.empty() || !node->children.empty()) break;
    if (!node->leaf) break;
    // Find the child pointer in the parent.
    size_t idx = 0;
    while (idx < parent->children.size() &&
           parent->children[idx].get() != node) {
      ++idx;
    }
    if (idx >= parent->children.size()) break;
    // Fix the leaf chain: predecessor leaf must skip the dying node.
    // Walk the chain from the leftmost leaf (O(#leaves), deletes of whole
    // nodes are rare).
    Node* left = root_.get();
    while (!left->leaf) left = left->children.front().get();
    if (left == node) {
      // node is leftmost; nothing points at it.
    } else {
      while (left != nullptr && left->next != node) left = left->next;
      if (left != nullptr) left->next = node->next;
    }
    parent->children.erase(parent->children.begin() + idx);
    if (!parent->entries.empty()) {
      size_t sep = idx > 0 ? idx - 1 : 0;
      parent->entries.erase(parent->entries.begin() + sep);
    }
  }
  // Shrink the root if it has a single child.
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
}

void BTree::LookupEq(
    const Row& key,
    const std::function<bool(const Row&, const Rid&)>& fn) const {
  ScanFrom(key, [&](const Row& k, const Rid& rid) {
    if (RowLess(key, k)) return false;  // past the key
    return fn(k, rid);
  });
}

void BTree::ScanFrom(
    const Row& lo,
    const std::function<bool(const Row&, const Rid&)>& fn) const {
  const Node* leaf = FindLeaf(lo, Rid{0, 0}, nullptr);
  Entry probe{lo, Rid{0, 0}};
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      if (EntryLess(e, probe)) continue;
      if (!fn(e.key, e.rid)) return;
    }
    leaf = leaf->next;
  }
}

void BTree::ScanAll(
    const std::function<bool(const Row&, const Rid&)>& fn) const {
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.front().get();
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      if (!fn(e.key, e.rid)) return;
    }
    leaf = leaf->next;
  }
}

size_t BTree::Height() const {
  size_t h = 1;
  const Node* cur = root_.get();
  while (!cur->leaf) {
    ++h;
    cur = cur->children.front().get();
  }
  return h;
}

void BTree::CheckInvariants() const {
  // Keys along the leaf chain must be non-decreasing, and the leaf chain
  // must contain exactly size() entries.
  const Node* leaf = root_.get();
  while (!leaf->leaf) {
    assert(!leaf->children.empty());
    assert(leaf->children.size() == leaf->entries.size() + 1);
    leaf = leaf->children.front().get();
  }
  size_t count = 0;
  const Entry* prev = nullptr;
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      if (prev != nullptr) {
        assert(!EntryLess(e, *prev));
      }
      prev = &e;
      ++count;
    }
    leaf = leaf->next;
  }
  assert(count == size_);
  (void)count;
}

}  // namespace cpdb::relstore
