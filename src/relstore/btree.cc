#include "relstore/btree.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>

namespace cpdb::relstore {

namespace {

constexpr size_t kMaxEntries = 64;  // fanout
// Minimum occupancy for non-root nodes. An internal node's minimum is one
// lower than a leaf's because splitting a full internal node moves the
// middle entry up, leaving (kMaxEntries - kMaxEntries/2 - 1) entries in
// the new right node.
constexpr size_t kMinLeafEntries = kMaxEntries / 2;
constexpr size_t kMinInternalEntries = kMaxEntries / 2 - 1;
constexpr size_t kMaxChildren = kMaxEntries + 1;
constexpr size_t kMinInternalChildren = kMinInternalEntries + 1;

// Invariant checks must survive -DNDEBUG: release-mode benches and the
// large drain probes are exactly where corruption is most expensive to
// chase, so these are hard aborts rather than assert().
[[noreturn]] void InvariantFailure(const char* what) {
  std::fprintf(stderr, "BTree invariant violated: %s\n", what);
  std::abort();
}

void Check(bool ok, const char* what) {
  if (!ok) InvariantFailure(what);
}

}  // namespace

struct BTree::Node {
  bool leaf = true;
  // Leaf: `entries` holds the data; `next`/`prev` form the leaf chain.
  // Internal: `entries[i]` separates children[i] (< entry) from
  // children[i+1] (>= entry); separators are (key,rid) pairs so duplicate
  // keys split cleanly.
  std::vector<Entry> entries;                   // leaf payload or seps
  std::vector<std::unique_ptr<Node>> children;  // internal only
  Node* next = nullptr;                         // leaf chain
  Node* prev = nullptr;                         // leaf chain, for O(1) unlink
};

bool BTree::EntryLess(const Entry& a, const Entry& b) {
  if (RowLess(a.key, b.key)) return true;
  if (RowLess(b.key, a.key)) return false;
  return a.rid < b.rid;
}

bool BTree::EntryEq(const Entry& a, const Entry& b) {
  return !EntryLess(a, b) && !EntryLess(b, a);
}

BTree::BTree() : root_(std::make_unique<Node>()) {}
BTree::~BTree() = default;

// Descent rule shared by lookup, insert, and erase: children[i] holds
// entries < entries[i], so the probe goes into the child after the last
// separator <= it.
size_t BTree::ChildIndex(const Node& node, const Entry& probe) {
  size_t i = 0;
  while (i < node.entries.size() && !EntryLess(probe, node.entries[i])) {
    ++i;
  }
  return i;
}

BTree::Node* BTree::FindLeaf(const Row& key, const Rid& rid) const {
  Node* cur = root_.get();
  Entry probe{key, rid};
  while (!cur->leaf) {
    cur = cur->children[ChildIndex(*cur, probe)].get();
  }
  return cur;
}

void BTree::SplitChild(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  size_t mid = child->entries.size() / 2;

  if (child->leaf) {
    right->entries.assign(child->entries.begin() + mid, child->entries.end());
    child->entries.resize(mid);
    right->next = child->next;
    right->prev = child;
    if (right->next != nullptr) right->next->prev = right.get();
    child->next = right.get();
    // Separator is a copy of the right half's first entry.
    parent->entries.insert(parent->entries.begin() + child_idx,
                           right->entries.front());
  } else {
    // Middle entry moves up; children split around it.
    Entry sep = child->entries[mid];
    right->entries.assign(child->entries.begin() + mid + 1,
                          child->entries.end());
    right->children.reserve(child->children.size() - mid - 1);
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->entries.resize(mid);
    child->children.resize(mid + 1);
    parent->entries.insert(parent->entries.begin() + child_idx,
                           std::move(sep));
  }
  parent->children.insert(parent->children.begin() + child_idx + 1,
                          std::move(right));
}

void BTree::Insert(const Row& key, const Rid& rid) {
  if (root_->entries.size() >= kMaxEntries) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  Node* cur = root_.get();
  Entry probe{key, rid};
  while (!cur->leaf) {
    size_t i = ChildIndex(*cur, probe);
    if (cur->children[i]->entries.size() >= kMaxEntries) {
      SplitChild(cur, i);
      // Re-decide which side to descend.
      if (!EntryLess(probe, cur->entries[i])) ++i;
    }
    cur = cur->children[i].get();
  }
  auto it = std::lower_bound(cur->entries.begin(), cur->entries.end(), probe,
                             EntryLess);
  if (it != cur->entries.end() && !EntryLess(probe, *it) &&
      !EntryLess(*it, probe)) {
    return;  // exact duplicate (key, rid); ignore
  }
  cur->entries.insert(it, std::move(probe));
  ++size_;
}

bool BTree::Erase(const Row& key, const Rid& rid) {
  Entry probe{key, rid};
  if (!EraseRec(root_.get(), probe)) return false;
  --size_;
  // Shrink the root while it is an internal node with a single child.
  while (!root_->leaf && root_->children.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children.front());
    root_ = std::move(child);
  }
  return true;
}

bool BTree::EraseRec(Node* node, const Entry& probe) {
  if (node->leaf) {
    auto it = std::lower_bound(node->entries.begin(), node->entries.end(),
                               probe, EntryLess);
    if (it == node->entries.end() || EntryLess(probe, *it)) return false;
    node->entries.erase(it);
    return true;
  }
  size_t i = ChildIndex(*node, probe);
  Node* child = node->children[i].get();
  if (!EraseRec(child, probe)) return false;
  size_t min_entries = child->leaf ? kMinLeafEntries : kMinInternalEntries;
  if (child->entries.size() < min_entries) FixUnderflow(node, i);
  return true;
}

void BTree::FixUnderflow(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  Node* left =
      child_idx > 0 ? parent->children[child_idx - 1].get() : nullptr;
  Node* right = child_idx + 1 < parent->children.size()
                    ? parent->children[child_idx + 1].get()
                    : nullptr;
  size_t min_entries = child->leaf ? kMinLeafEntries : kMinInternalEntries;

  if (left != nullptr && left->entries.size() > min_entries) {
    // Borrow the left sibling's maximum.
    if (child->leaf) {
      child->entries.insert(child->entries.begin(),
                            std::move(left->entries.back()));
      left->entries.pop_back();
      parent->entries[child_idx - 1] = child->entries.front();
    } else {
      // Rotate right through the separator.
      child->entries.insert(child->entries.begin(),
                            std::move(parent->entries[child_idx - 1]));
      parent->entries[child_idx - 1] = std::move(left->entries.back());
      left->entries.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
    return;
  }
  if (right != nullptr && right->entries.size() > min_entries) {
    // Borrow the right sibling's minimum.
    if (child->leaf) {
      child->entries.push_back(std::move(right->entries.front()));
      right->entries.erase(right->entries.begin());
      parent->entries[child_idx] = right->entries.front();
    } else {
      // Rotate left through the separator.
      child->entries.push_back(std::move(parent->entries[child_idx]));
      parent->entries[child_idx] = std::move(right->entries.front());
      right->entries.erase(right->entries.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
    return;
  }
  // No sibling can lend: merge with one. Both nodes are at (or, for the
  // underflowing child, just below) minimum occupancy, so the merged node
  // cannot exceed kMaxEntries.
  if (left != nullptr) {
    MergeChildren(parent, child_idx - 1);
  } else {
    MergeChildren(parent, child_idx);
  }
}

void BTree::MergeChildren(Node* parent, size_t left_idx) {
  Node* dst = parent->children[left_idx].get();
  Node* src = parent->children[left_idx + 1].get();
  if (dst->leaf) {
    dst->entries.insert(dst->entries.end(),
                        std::make_move_iterator(src->entries.begin()),
                        std::make_move_iterator(src->entries.end()));
    // Unlink src from the doubly-linked leaf chain in O(1).
    dst->next = src->next;
    if (src->next != nullptr) src->next->prev = dst;
  } else {
    // The separator between the two nodes moves down between their
    // child sequences.
    dst->entries.push_back(std::move(parent->entries[left_idx]));
    dst->entries.insert(dst->entries.end(),
                        std::make_move_iterator(src->entries.begin()),
                        std::make_move_iterator(src->entries.end()));
    for (auto& c : src->children) dst->children.push_back(std::move(c));
  }
  parent->entries.erase(parent->entries.begin() + left_idx);
  parent->children.erase(parent->children.begin() + left_idx + 1);
}

void BTree::BulkLoad(std::vector<std::pair<Row, Rid>> items) {
  Check(size_ == 0, "BulkLoad requires an empty tree");
  std::vector<Entry> entries;
  entries.reserve(items.size());
  for (auto& [key, rid] : items) entries.push_back(Entry{std::move(key), rid});
  std::sort(entries.begin(), entries.end(), EntryLess);
  entries.erase(std::unique(entries.begin(), entries.end(), EntryEq),
                entries.end());
  BuildFromSorted(std::move(entries));
}

size_t BTree::BulkUpsert(std::vector<std::pair<Row, Rid>> items) {
  std::vector<Entry> run;
  run.reserve(items.size());
  for (auto& [key, rid] : items) run.push_back(Entry{std::move(key), rid});
  std::sort(run.begin(), run.end(), EntryLess);
  run.erase(std::unique(run.begin(), run.end(), EntryEq), run.end());
  if (run.empty()) return 0;
  if (size_ == 0) {
    size_t added = run.size();
    BuildFromSorted(std::move(run));
    return added;
  }
  if (run.size() * 4 < size_) {
    // Small run relative to the tree: ordered per-key insertion. The
    // sorted order keeps successive descents on the same root-to-leaf
    // spine, so this is still cheaper than arbitrary-order inserts.
    size_t added = 0;
    for (Entry& e : run) {
      size_t before = size_;
      Insert(e.key, e.rid);
      added += size_ - before;
    }
    return added;
  }
  // Large run: one linear merge of the leaf chain with the sorted run,
  // rebuilt through the BulkLoad packer — O(n + k) instead of k descents.
  std::vector<Entry> merged;
  merged.reserve(size_ + run.size());
  std::vector<Entry> existing;
  existing.reserve(size_);
  ScanAll([&](const Row& key, const Rid& rid) {
    existing.push_back(Entry{key, rid});
    return true;
  });
  size_t before = existing.size();
  std::merge(std::make_move_iterator(existing.begin()),
             std::make_move_iterator(existing.end()),
             std::make_move_iterator(run.begin()),
             std::make_move_iterator(run.end()), std::back_inserter(merged),
             EntryLess);
  merged.erase(std::unique(merged.begin(), merged.end(), EntryEq),
               merged.end());
  size_t added = merged.size() - before;
  BuildFromSorted(std::move(merged));
  return added;
}

/// `entries` must be sorted by EntryLess with no duplicates; replaces the
/// current contents wholesale.
void BTree::BuildFromSorted(std::vector<Entry> entries) {
  size_ = entries.size();
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }

  // A built subtree plus the smallest entry it contains; the minimum of
  // node i+1 becomes the separator between siblings i and i+1.
  struct Built {
    std::unique_ptr<Node> node;
    Entry min;
  };

  // Chunk `remaining` items into nodes of up to `max_per`, keeping every
  // chunk at or above `min_per` by rebalancing against the final chunk.
  auto take_chunk = [](size_t remaining, size_t max_per, size_t min_per) {
    size_t take = std::min(max_per, remaining);
    if (remaining > take && remaining - take < min_per) {
      take = remaining - min_per;
    }
    return take;
  };

  // Leaf level: pack full (minimum-height tree); the erase path repairs
  // any underflow later deletions cause.
  std::vector<Built> level;
  for (size_t i = 0; i < entries.size();) {
    size_t take =
        take_chunk(entries.size() - i, kMaxEntries, kMinLeafEntries);
    auto leaf = std::make_unique<Node>();
    leaf->entries.assign(std::make_move_iterator(entries.begin() + i),
                         std::make_move_iterator(entries.begin() + i + take));
    if (!level.empty()) {
      Node* prev_leaf = level.back().node.get();
      prev_leaf->next = leaf.get();
      leaf->prev = prev_leaf;
    }
    Entry min = leaf->entries.front();
    level.push_back(Built{std::move(leaf), std::move(min)});
    i += take;
  }

  // Internal levels until a single root remains.
  while (level.size() > 1) {
    std::vector<Built> next_level;
    for (size_t i = 0; i < level.size();) {
      size_t take =
          take_chunk(level.size() - i, kMaxChildren, kMinInternalChildren);
      auto node = std::make_unique<Node>();
      node->leaf = false;
      node->children.reserve(take);
      node->entries.reserve(take - 1);
      for (size_t j = 0; j < take; ++j) {
        Built& b = level[i + j];
        if (j > 0) node->entries.push_back(std::move(b.min));
        node->children.push_back(std::move(b.node));
      }
      Entry min = level[i].min;
      next_level.push_back(Built{std::move(node), std::move(min)});
      i += take;
    }
    level = std::move(next_level);
  }
  root_ = std::move(level.front().node);
}

const Row& BTree::Cursor::key() const { return leaf_->entries[idx_].key; }

const Rid& BTree::Cursor::rid() const { return leaf_->entries[idx_].rid; }

void BTree::Cursor::Advance() {
  ++idx_;
  while (leaf_ != nullptr && idx_ >= leaf_->entries.size()) {
    leaf_ = leaf_->next;
    idx_ = 0;
  }
}

BTree::Cursor BTree::SeekLast() const {
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.back().get();
  Cursor cur;
  // Only an empty tree's root leaf can be empty; every other leaf holds
  // at least one entry by the occupancy invariant.
  if (leaf->entries.empty()) return cur;
  cur.leaf_ = leaf;
  cur.idx_ = leaf->entries.size() - 1;
  return cur;
}

BTree::Cursor BTree::SeekFirst() const {
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.front().get();
  Cursor cur;
  cur.leaf_ = leaf;
  cur.idx_ = 0;
  // An empty tree is a single empty leaf; normalize to invalid.
  while (cur.leaf_ != nullptr && cur.idx_ >= cur.leaf_->entries.size()) {
    cur.leaf_ = cur.leaf_->next;
    cur.idx_ = 0;
  }
  return cur;
}

BTree::Cursor BTree::Seek(const Row& lo) const {
  const Node* leaf = FindLeaf(lo, Rid{0, 0});
  Entry probe{lo, Rid{0, 0}};
  auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                             probe, EntryLess);
  Cursor cur;
  cur.leaf_ = leaf;
  cur.idx_ = static_cast<size_t>(it - leaf->entries.begin());
  // Only the landing leaf can position past its last entry; later leaves
  // hold entries >= lo by the separator invariant.
  while (cur.leaf_ != nullptr && cur.idx_ >= cur.leaf_->entries.size()) {
    cur.leaf_ = cur.leaf_->next;
    cur.idx_ = 0;
  }
  return cur;
}

void BTree::LookupEq(
    const Row& key,
    const std::function<bool(const Row&, const Rid&)>& fn) const {
  ScanFrom(key, [&](const Row& k, const Rid& rid) {
    if (RowLess(key, k)) return false;  // past the key
    return fn(k, rid);
  });
}

void BTree::ScanFrom(
    const Row& lo,
    const std::function<bool(const Row&, const Rid&)>& fn) const {
  for (Cursor cur = Seek(lo); cur.Valid(); cur.Advance()) {
    if (!fn(cur.key(), cur.rid())) return;
  }
}

void BTree::ScanAll(
    const std::function<bool(const Row&, const Rid&)>& fn) const {
  for (Cursor cur = SeekFirst(); cur.Valid(); cur.Advance()) {
    if (!fn(cur.key(), cur.rid())) return;
  }
}

size_t BTree::Height() const {
  size_t h = 1;
  const Node* cur = root_.get();
  while (!cur->leaf) {
    ++h;
    cur = cur->children.front().get();
  }
  return h;
}

void BTree::CheckNode(const Node* node, const Entry* lo, const Entry* hi,
                      size_t depth, size_t* leaf_depth,
                      std::vector<const Node*>* leaves) const {
  const bool is_root = node == root_.get();
  for (size_t i = 0; i + 1 < node->entries.size(); ++i) {
    Check(EntryLess(node->entries[i], node->entries[i + 1]),
          "entries out of order");
  }
  for (const Entry& e : node->entries) {
    if (lo != nullptr) Check(!EntryLess(e, *lo), "entry below lower bound");
    if (hi != nullptr) Check(EntryLess(e, *hi), "entry at/above upper bound");
  }
  if (node->leaf) {
    Check(node->children.empty(), "leaf with children");
    if (!is_root) {
      Check(node->entries.size() >= kMinLeafEntries, "leaf under-occupied");
    }
    Check(node->entries.size() <= kMaxEntries, "leaf over-occupied");
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else {
      Check(*leaf_depth == depth, "leaves at different depths");
    }
    leaves->push_back(node);
    return;
  }
  Check(node->children.size() == node->entries.size() + 1,
        "internal fanout mismatch");
  if (is_root) {
    Check(node->children.size() >= 2, "internal root with < 2 children");
  } else {
    Check(node->entries.size() >= kMinInternalEntries,
          "internal node under-occupied");
  }
  Check(node->entries.size() <= kMaxEntries, "internal node over-occupied");
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Entry* child_lo = i == 0 ? lo : &node->entries[i - 1];
    const Entry* child_hi = i == node->entries.size() ? hi : &node->entries[i];
    Check(node->children[i] != nullptr, "null child pointer");
    CheckNode(node->children[i].get(), child_lo, child_hi, depth + 1,
              leaf_depth, leaves);
  }
}

void BTree::CheckInvariants() const {
  Check(root_ != nullptr, "null root");
  size_t leaf_depth = 0;
  std::vector<const Node*> leaves;
  CheckNode(root_.get(), nullptr, nullptr, 1, &leaf_depth, &leaves);

  // The in-order leaf sequence must match the doubly-linked chain exactly.
  Check(!leaves.empty(), "no leaves");
  Check(leaves.front()->prev == nullptr, "first leaf has a predecessor");
  Check(leaves.back()->next == nullptr, "last leaf has a successor");
  size_t count = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    count += leaves[i]->entries.size();
    if (i + 1 < leaves.size()) {
      Check(leaves[i]->next == leaves[i + 1], "broken leaf next-chain");
      Check(leaves[i + 1]->prev == leaves[i], "broken leaf prev-chain");
    }
  }
  Check(count == size_, "entry count mismatch");
}

}  // namespace cpdb::relstore
