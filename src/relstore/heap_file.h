#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "relstore/page.h"
#include "util/result.h"

namespace cpdb::relstore {

/// A paged heap file of variable-length records.
///
/// Records are placed into the first page with room (tracked by a simple
/// free-space hint list), mirroring a real heap file's behaviour closely
/// enough for realistic physical-size accounting while staying in memory
/// (the paper's databases are tens of MB).
class HeapFile {
 public:
  /// Appends a record, returning its Rid.
  Result<Rid> Insert(const std::string& record);

  /// Reads the record at `rid`.
  Result<std::string> Read(const Rid& rid) const;

  /// Tombstones the record at `rid`.
  Status Delete(const Rid& rid);

  bool IsLive(const Rid& rid) const;

  /// Calls `fn(rid, record)` for every live record in storage order.
  /// Iteration stops early if `fn` returns false.
  void Scan(
      const std::function<bool(const Rid&, const std::string&)>& fn) const;

  size_t PageCount() const { return pages_.size(); }
  size_t RecordCount() const { return record_count_; }

  /// Physical footprint: page count * page size (what a file on disk
  /// would occupy).
  size_t PhysicalBytes() const { return pages_.size() * Page::kPageSize; }

  /// Bytes of live payload only.
  size_t LiveBytes() const;

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  // Pages that recently had free space; a hint, rechecked on use.
  std::vector<uint32_t> free_hints_;
  size_t record_count_ = 0;
};

}  // namespace cpdb::relstore
