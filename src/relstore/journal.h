#pragma once

#include <string>
#include <vector>

#include "relstore/datum.h"
#include "relstore/schema.h"

namespace cpdb::relstore {

/// Index implementation selector. Lives here (not table.h) so the journal
/// interface below can describe index DDL without depending on Table.
enum class IndexKind { kBTree, kHash };

/// Declarative description of one secondary index — what Table::CreateIndex
/// takes apart, and what checkpoints and the write-ahead log persist so a
/// recovered table rebuilds the same access paths.
struct IndexDef {
  std::string name;
  std::vector<int> columns;  ///< key columns, by schema position
  IndexKind kind = IndexKind::kBTree;
  bool unique = false;
};

/// Observer of all durable state changes inside a Database — the seam the
/// storage/ subsystem hangs off. A Table (and its owning Database, for
/// DDL) calls exactly one Note* per successful logical mutation, after the
/// in-memory structures are updated; the attached implementation stages
/// them and seals everything since the last barrier into one write-ahead
/// log record on Database::Sync() (group commit).
///
/// Deletes are journalled by full row image, not Rid: checkpoints restore
/// tables via BulkLoad, which repacks the heap, so Rids are not stable
/// across recovery. Replaying "delete one row equal to R" reproduces the
/// logical state exactly (identical rows are interchangeable).
///
/// Note* must not fail and must not re-enter the table; implementations
/// only buffer. In-memory databases have no journal attached and pay a
/// single null-pointer test per mutation.
class Journal {
 public:
  virtual ~Journal() = default;

  virtual void NoteCreateTable(const std::string& table,
                               const Schema& schema) = 0;
  virtual void NoteDropTable(const std::string& table) = 0;
  virtual void NoteCreateIndex(const std::string& table,
                               const IndexDef& def) = 0;
  virtual void NoteInsert(const std::string& table, const Row& row) = 0;
  virtual void NoteDelete(const std::string& table, const Row& row) = 0;
};

}  // namespace cpdb::relstore
