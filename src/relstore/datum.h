#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace cpdb::relstore {

/// SQL-style column types supported by the mini relational engine.
enum class ColumnType {
  kInt64,
  kDouble,
  kString,
};

const char* ColumnTypeName(ColumnType t);

/// A single relational value (possibly NULL). Ordering places NULL first,
/// then compares by value; cross-type comparison is by type index, which
/// only matters for heterogeneous composite keys and is deterministic.
class Datum {
 public:
  Datum() : v_(std::monostate{}) {}
  Datum(int64_t v) : v_(v) {}                   // NOLINT
  Datum(double v) : v_(v) {}                    // NOLINT
  Datum(std::string v) : v_(std::move(v)) {}    // NOLINT
  Datum(const char* v) : v_(std::string(v)) {}  // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  std::string ToString() const;

  bool operator==(const Datum& o) const { return v_ == o.v_; }
  bool operator!=(const Datum& o) const { return !(*this == o); }
  bool operator<(const Datum& o) const { return v_ < o.v_; }
  bool operator<=(const Datum& o) const { return !(o < *this); }

  /// FNV-1a hash for hash indexes / hash joins.
  size_t Hash() const;

  /// Appends a length-prefixed binary encoding to `out`.
  void EncodeTo(std::string* out) const;

  /// Decodes one datum from `in` starting at *pos; advances *pos.
  /// Returns false on malformed input.
  static bool DecodeFrom(const std::string& in, size_t* pos, Datum* out);

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Datum& d);

/// A tuple of datums.
using Row = std::vector<Datum>;

std::string RowToString(const Row& row);
size_t HashRow(const Row& row);

/// Lexicographic row comparison.
bool RowLess(const Row& a, const Row& b);

/// Serialises a full row (column count + datums).
void EncodeRow(const Row& row, std::string* out);
bool DecodeRow(const std::string& in, size_t* pos, Row* out);

}  // namespace cpdb::relstore
