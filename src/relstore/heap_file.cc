#include "relstore/heap_file.h"

namespace cpdb::relstore {

Result<Rid> HeapFile::Insert(const std::string& record) {
  // Try hinted pages first (most recently touched last).
  for (size_t i = free_hints_.size(); i-- > 0;) {
    uint32_t page_no = free_hints_[i];
    Page* page = pages_[page_no].get();
    if (page->Fits(record.size())) {
      auto slot = page->Insert(record);
      if (slot.ok()) {
        ++record_count_;
        return Rid{page_no, slot.value()};
      }
    }
    // Hint is stale; drop it.
    free_hints_.erase(free_hints_.begin() + static_cast<long>(i));
  }
  // Allocate a fresh page.
  pages_.push_back(std::make_unique<Page>());
  uint32_t page_no = static_cast<uint32_t>(pages_.size() - 1);
  auto slot = pages_.back()->Insert(record);
  if (!slot.ok()) return slot.status();
  free_hints_.push_back(page_no);
  ++record_count_;
  return Rid{page_no, slot.value()};
}

Result<std::string> HeapFile::Read(const Rid& rid) const {
  if (rid.page >= pages_.size()) {
    return Status::NotFound("page " + std::to_string(rid.page) +
                            " out of range");
  }
  return pages_[rid.page]->Read(rid.slot);
}

Status HeapFile::Delete(const Rid& rid) {
  if (rid.page >= pages_.size()) {
    return Status::NotFound("page " + std::to_string(rid.page) +
                            " out of range");
  }
  CPDB_RETURN_IF_ERROR(pages_[rid.page]->Delete(rid.slot));
  --record_count_;
  free_hints_.push_back(rid.page);
  return Status::OK();
}

bool HeapFile::IsLive(const Rid& rid) const {
  return rid.page < pages_.size() && pages_[rid.page]->IsLive(rid.slot);
}

void HeapFile::Scan(
    const std::function<bool(const Rid&, const std::string&)>& fn) const {
  for (uint32_t p = 0; p < pages_.size(); ++p) {
    const Page& page = *pages_[p];
    for (uint16_t s = 0; s < page.SlotCount(); ++s) {
      if (!page.IsLive(s)) continue;
      auto rec = page.Read(s);
      if (!rec.ok()) continue;
      if (!fn(Rid{p, s}, rec.value())) return;
    }
  }
}

size_t HeapFile::LiveBytes() const {
  size_t n = 0;
  for (const auto& p : pages_) n += p->LiveBytes();
  return n;
}

}  // namespace cpdb::relstore
