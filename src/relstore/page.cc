#include "relstore/page.h"

#include <cstring>

namespace cpdb::relstore {

Page::Page() : data_(kPageSize, '\0'), free_ptr_(kPageSize) {}

size_t Page::FreeSpace() const {
  size_t used_front = kHeaderSize + slots_.size() * kSlotSize;
  size_t contiguous = free_ptr_ > used_front ? free_ptr_ - used_front : 0;
  return contiguous + dead_bytes_;
}

bool Page::Fits(size_t len) const {
  size_t need = len + kSlotSize;
  return FreeSpace() >= need;
}

Result<uint16_t> Page::Insert(const std::string& record) {
  if (record.size() > kPageSize - kHeaderSize - kSlotSize) {
    return Status::InvalidArgument("record larger than page");
  }
  if (!Fits(record.size())) {
    return Status::FailedPrecondition("page full");
  }
  size_t used_front = kHeaderSize + (slots_.size() + 1) * kSlotSize;
  if (free_ptr_ < used_front + record.size()) {
    Compact();
    if (free_ptr_ < used_front + record.size()) {
      return Status::FailedPrecondition("page full after compaction");
    }
  }
  free_ptr_ -= record.size();
  std::memcpy(data_.data() + free_ptr_, record.data(), record.size());
  Slot s;
  s.offset = static_cast<uint16_t>(free_ptr_);
  s.len = static_cast<uint16_t>(record.size());
  s.live = true;
  slots_.push_back(s);
  slot_count_ = static_cast<uint16_t>(slots_.size());
  ++live_records_;
  live_bytes_ += record.size();
  return static_cast<uint16_t>(slots_.size() - 1);
}

Result<std::string> Page::Read(uint16_t slot) const {
  if (slot >= slots_.size() || !slots_[slot].live) {
    return Status::NotFound("no live record in slot " + std::to_string(slot));
  }
  const Slot& s = slots_[slot];
  return data_.substr(s.offset, s.len);
}

Status Page::Delete(uint16_t slot) {
  if (slot >= slots_.size() || !slots_[slot].live) {
    return Status::NotFound("no live record in slot " + std::to_string(slot));
  }
  slots_[slot].live = false;
  --live_records_;
  live_bytes_ -= slots_[slot].len;
  dead_bytes_ += slots_[slot].len;
  return Status::OK();
}

bool Page::IsLive(uint16_t slot) const {
  return slot < slots_.size() && slots_[slot].live;
}

void Page::Compact() {
  // Rewrites live payloads to the back of the page, preserving slot ids.
  std::string fresh(kPageSize, '\0');
  size_t ptr = kPageSize;
  for (Slot& s : slots_) {
    if (!s.live) {
      s.offset = 0;
      s.len = 0;
      continue;
    }
    ptr -= s.len;
    std::memcpy(fresh.data() + ptr, data_.data() + s.offset, s.len);
    s.offset = static_cast<uint16_t>(ptr);
  }
  data_ = std::move(fresh);
  free_ptr_ = ptr;
  dead_bytes_ = 0;
}

}  // namespace cpdb::relstore
