#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relstore/btree.h"
#include "relstore/cost_model.h"
#include "relstore/datum.h"
#include "relstore/hash_index.h"
#include "relstore/heap_file.h"
#include "relstore/journal.h"
#include "relstore/schema.h"
#include "relstore/write_batch.h"
#include "util/result.h"

namespace cpdb::relstore {

/// Declarative description of an index-backed ordered scan, evaluated
/// server-side by Table::OpenScan. The scan starts at the smallest index
/// entry >= the derived lower bound and streams rows in index-key order
/// until a stop condition fires:
///
///  - `eq`: stop once the leading eq.size() key columns differ from `eq`
///    (equality on a key prefix — point/dup lookups and composite-key
///    range restriction);
///  - `prefix`: stop once the (string) first key column no longer starts
///    with `prefix` (path-descendant scans);
///  - `limit`: stop after `limit` rows (0 = unlimited).
///
/// `lower` (inclusive, may name only a prefix of the key columns)
/// overrides the start position; when empty it is derived from `eq` /
/// `prefix`. `predicate` is a residual row filter pushed down into the
/// scan: rejected rows are never surfaced to the client (and never
/// charged as transferred rows by callers that model transfer cost).
struct ScanSpec {
  std::string index;
  Row lower;
  Row eq;
  std::string prefix;
  std::function<bool(const Row&)> predicate;
  size_t limit = 0;
  /// MVCC-lite visibility bound (the service layer's snapshot reads):
  /// when `visible_col` >= 0, rows whose int64 column `visible_col`
  /// exceeds `visible_max` are invisible to this scan — a reader pinned
  /// at a commit watermark never sees younger versions. Filtered at the
  /// read path like `predicate` (never surfaced, never charged as
  /// transferred). Non-int values in the bound column stay visible.
  int visible_col = -1;
  int64_t visible_max = 0;
};

/// A heap-backed table with optional unique constraint and secondary
/// indexes. Rows live in slotted pages (HeapFile); indexes map extracted
/// key columns to Rids and are maintained on every insert/delete.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Adds an index over `columns` (by position). `unique` makes inserts
  /// fail on duplicate keys — e.g. the provenance store's {Tid, Loc} key.
  /// Must be called while the table is empty.
  Status CreateIndex(const std::string& index_name,
                     std::vector<int> columns, IndexKind kind,
                     bool unique = false);

  /// Declarative descriptions of every index, in creation order — what
  /// checkpoints persist so recovery can rebuild the same access paths.
  std::vector<IndexDef> IndexDefs() const;

  /// Attaches (or detaches, with nullptr) the durability journal. Every
  /// successful mutation is reported to it; see relstore/journal.h.
  void set_journal(Journal* journal) { journal_ = journal; }

  /// Validates and stores a row, maintaining all indexes.
  Result<Rid> Insert(const Row& row);

  /// Bulk variant of Insert for initial loads: validates and stores every
  /// row, then builds each B+tree index with one sorted bulk load instead
  /// of per-row insertions. The table must be empty. Fails without side
  /// effects on a schema or unique-constraint violation (duplicates are
  /// detected within the batch). Returns the number of rows stored.
  Result<size_t> BulkLoad(const std::vector<Row>& rows);

  /// Applies a mixed insert/delete batch as one logical client statement.
  /// The whole batch is validated up front — schema of every insert,
  /// existence and uniqueness of every delete Rid, and unique-key
  /// constraints evaluated against the table state net of the batch's own
  /// deletes — so a failing batch leaves the table completely untouched.
  /// Each index is then maintained once per batch: B+-trees take the
  /// batch's erases followed by one sorted-run BulkUpsert of the new
  /// keys. Returns the number of rows written + removed. Cost accounting
  /// stays with the caller (one ChargeWrite per ApplyBatch), like every
  /// other Table method.
  Result<size_t> ApplyBatch(const WriteBatch& batch);

  /// Reads the row at `rid`.
  Result<Row> Get(const Rid& rid) const;

  /// Deletes the row at `rid`, maintaining all indexes.
  Status Delete(const Rid& rid);

  /// Deletes ONE row equal to `row` (identical rows are interchangeable,
  /// so any match reproduces the same logical state). Routed through the
  /// first index when one exists — O(log n), no heap scan. Exists for
  /// write-ahead-log recovery, which journals deletes by row image
  /// because Rids are not stable across checkpoint BulkLoad restores.
  /// NotFound when no equal row exists.
  Status DeleteRowImage(const Row& row);

  /// Deletes every row matching `pred`; returns the count removed. Scans
  /// the full heap — when the predicate includes an equality on an
  /// indexed key, prefer the index-routed overload below.
  size_t DeleteWhere(const std::function<bool(const Row&)>& pred);

  /// Index-routed DeleteWhere: deletes every row whose `index_name` key
  /// equals `key` (full key arity) and that passes the residual `pred`
  /// (nullptr = delete all matches). Only the matching rows are ever
  /// read — no heap scan — so the row cost is O(matches), not O(table).
  /// Returns the count removed.
  Result<size_t> DeleteWhere(const std::string& index_name, const Row& key,
                             const std::function<bool(const Row&)>& pred =
                                 nullptr);

  /// Full scan in storage order; stops early when `fn` returns false.
  void Scan(const std::function<bool(const Rid&, const Row&)>& fn) const;

  /// Streaming cursor over one ScanSpec, pulling rows straight off the
  /// B+-tree leaf chain (no materialized result set). Obtained from
  /// OpenScan().
  ///
  /// Consistency: the cursor borrows a position inside the index; any
  /// mutation of the table invalidates it (same single-writer contract as
  /// BTree::Cursor). Rows are produced in index-key order.
  class Cursor {
   public:
    /// An exhausted cursor; OpenScan returns a live one.
    Cursor() = default;

    /// Fills `*batch` (cleared first; caller-owned, capacity reused
    /// across calls) with up to `max` rows. Returns the number of rows
    /// produced; 0 means the scan is over (or failed — check status()).
    size_t Next(std::vector<Row>* batch, size_t max);

    /// Single-row variant; `rid` is optional.
    bool Next(Row* row, Rid* rid = nullptr);

    /// True once the scan has produced its last row.
    bool done() const { return done_; }

    /// First row-decode error hit by the scan, if any (the cursor stops
    /// there).
    const Status& status() const { return status_; }

   private:
    friend class Table;
    const Table* table_ = nullptr;
    ScanSpec spec_;
    BTree::Cursor pos_;
    size_t produced_ = 0;
    bool done_ = true;
    Status status_;
  };

  /// Opens a streaming scan. Fails if the named index is missing, is not
  /// a B+-tree, or the spec's bounds exceed the index key arity.
  Result<Cursor> OpenScan(ScanSpec spec) const;

  /// Batched point lookups: one logical client call resolving every key
  /// (arity must match the index) through the named index. Emits
  /// fn(key_index, rid, row) for each match, grouped by key in the order
  /// given; stops early when `fn` returns false. Works on both B+-tree
  /// and hash indexes.
  Status MultiGet(const std::string& index_name, const std::vector<Row>& keys,
                  const std::function<bool(size_t, const Rid&, const Row&)>&
                      fn) const;

  /// Equality lookup through the named index.
  Status LookupEq(const std::string& index_name, const Row& key,
                  const std::function<bool(const Rid&, const Row&)>& fn) const;

  /// Ordered scan of rows whose (string) first index column starts with
  /// `prefix`; BTree indexes only. Used for path-descendant queries.
  Status ScanPrefix(const std::string& index_name, const std::string& prefix,
                    const std::function<bool(const Rid&, const Row&)>& fn)
      const;

  /// Ordered scan of the whole index.
  Status ScanIndex(const std::string& index_name,
                   const std::function<bool(const Rid&, const Row&)>& fn)
      const;

  /// Largest key in the named B+-tree index — one O(log n) rightmost
  /// descent, no heap reads. NotFound when the table is empty.
  Result<Row> LastKey(const std::string& index_name) const;

  size_t RowCount() const { return heap_.RecordCount(); }

  /// Disk-style physical footprint (pages), as reported in Figure 8.
  size_t PhysicalBytes() const { return heap_.PhysicalBytes(); }

  /// Bytes of live row payload.
  size_t LiveBytes() const { return heap_.LiveBytes(); }

 private:
  struct Index {
    std::string name;
    std::vector<int> columns;
    IndexKind kind;
    bool unique;
    std::unique_ptr<BTree> btree;
    std::unique_ptr<HashIndex> hash;
  };

  Row ExtractKey(const Index& idx, const Row& row) const;
  const Index* FindIndex(const std::string& name) const;

  std::string name_;
  Schema schema_;
  HeapFile heap_;
  std::vector<Index> indexes_;
  Journal* journal_ = nullptr;
};

}  // namespace cpdb::relstore
