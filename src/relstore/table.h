#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relstore/btree.h"
#include "relstore/cost_model.h"
#include "relstore/datum.h"
#include "relstore/hash_index.h"
#include "relstore/heap_file.h"
#include "relstore/schema.h"
#include "util/result.h"

namespace cpdb::relstore {

enum class IndexKind { kBTree, kHash };

/// A heap-backed table with optional unique constraint and secondary
/// indexes. Rows live in slotted pages (HeapFile); indexes map extracted
/// key columns to Rids and are maintained on every insert/delete.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Adds an index over `columns` (by position). `unique` makes inserts
  /// fail on duplicate keys — e.g. the provenance store's {Tid, Loc} key.
  /// Must be called while the table is empty.
  Status CreateIndex(const std::string& index_name,
                     std::vector<int> columns, IndexKind kind,
                     bool unique = false);

  /// Validates and stores a row, maintaining all indexes.
  Result<Rid> Insert(const Row& row);

  /// Bulk variant of Insert for initial loads: validates and stores every
  /// row, then builds each B+tree index with one sorted bulk load instead
  /// of per-row insertions. The table must be empty. Fails without side
  /// effects on a schema or unique-constraint violation (duplicates are
  /// detected within the batch). Returns the number of rows stored.
  Result<size_t> BulkLoad(const std::vector<Row>& rows);

  /// Reads the row at `rid`.
  Result<Row> Get(const Rid& rid) const;

  /// Deletes the row at `rid`, maintaining all indexes.
  Status Delete(const Rid& rid);

  /// Deletes every row matching `pred`; returns the count removed.
  size_t DeleteWhere(const std::function<bool(const Row&)>& pred);

  /// Full scan in storage order; stops early when `fn` returns false.
  void Scan(const std::function<bool(const Rid&, const Row&)>& fn) const;

  /// Equality lookup through the named index.
  Status LookupEq(const std::string& index_name, const Row& key,
                  const std::function<bool(const Rid&, const Row&)>& fn) const;

  /// Ordered scan of rows whose (string) first index column starts with
  /// `prefix`; BTree indexes only. Used for path-descendant queries.
  Status ScanPrefix(const std::string& index_name, const std::string& prefix,
                    const std::function<bool(const Rid&, const Row&)>& fn)
      const;

  /// Ordered scan of the whole index.
  Status ScanIndex(const std::string& index_name,
                   const std::function<bool(const Rid&, const Row&)>& fn)
      const;

  size_t RowCount() const { return heap_.RecordCount(); }

  /// Disk-style physical footprint (pages), as reported in Figure 8.
  size_t PhysicalBytes() const { return heap_.PhysicalBytes(); }

  /// Bytes of live row payload.
  size_t LiveBytes() const { return heap_.LiveBytes(); }

 private:
  struct Index {
    std::string name;
    std::vector<int> columns;
    IndexKind kind;
    bool unique;
    std::unique_ptr<BTree> btree;
    std::unique_ptr<HashIndex> hash;
  };

  Row ExtractKey(const Index& idx, const Row& row) const;
  const Index* FindIndex(const std::string& name) const;

  std::string name_;
  Schema schema_;
  HeapFile heap_;
  std::vector<Index> indexes_;
};

}  // namespace cpdb::relstore
