#include "obs/report.h"

namespace cpdb::obs {

void Reporter::Start() {
  {
    MutexLock l(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  base_ = registry_->TakeSample();
  base_us_ = NowMicros();
  thread_ = std::thread([this] { Loop(); });
}

void Reporter::Stop() {
  {
    MutexLock l(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  MutexLock l(mu_);
  running_ = false;
}

std::vector<std::string> Reporter::Rows() const {
  MutexLock l(mu_);
  return rows_;
}

void Reporter::FoldWindow(const Sample& prev, const Sample& cur, uint64_t seq,
                          double window_ms) {
  std::string delta = Registry::DeltaJson(prev, cur);
  // Splice the window metadata into the delta object: {"interval_seq":N,
  // "interval_ms":W, <delta fields>}.
  std::string row = "{\"interval_seq\":";
  AppendJsonNumber(&row, static_cast<double>(seq));
  row.append(",\"interval_ms\":");
  AppendJsonNumber(&row, window_ms);
  if (delta.size() > 2) {  // non-empty object: skip its '{'
    row.push_back(',');
    row.append(delta, 1, delta.size() - 1);
  } else {
    row.push_back('}');
  }
  MutexLock l(mu_);
  rows_.push_back(std::move(row));
}

void Reporter::Loop() {
  Sample prev = std::move(base_);
  double prev_us = base_us_;
  uint64_t seq = 0;
  for (;;) {
    bool stopping;
    {
      MutexLock l(mu_);
      if (!stop_) cv_.WaitFor(mu_, interval_ms_);
      stopping = stop_;
    }
    Sample cur = registry_->TakeSample();
    double now_us = NowMicros();
    double window_ms = (now_us - prev_us) / 1000.0;
    // On stop, fold whatever partial window accumulated — unless nothing
    // did (back-to-back stop) where an empty row is just noise.
    if (!stopping || window_ms >= 1.0) {
      FoldWindow(prev, cur, seq++, window_ms);
    }
    if (stopping) return;
    prev = std::move(cur);
    prev_us = now_us;
  }
}

}  // namespace cpdb::obs
