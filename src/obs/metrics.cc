#include "obs/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace cpdb::obs {

double NowMicros() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::micro>(
             clock::now().time_since_epoch())
      .count();
}

Histogram::Snapshot& Histogram::Snapshot::operator+=(const Snapshot& o) {
  count += o.count;
  sum_ns += o.sum_ns;
  for (size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
  return *this;
}

Histogram::Snapshot Histogram::Snapshot::Delta(const Snapshot& prev) const {
  Snapshot d;
  d.count = count - prev.count;
  d.sum_ns = sum_ns - prev.sum_ns;
  for (size_t i = 0; i < kBuckets; ++i)
    d.buckets[i] = buckets[i] - prev.buckets[i];
  return d;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the buckets.
  double rank = q * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      double lo = i == 0 ? 0.0 : BucketUpperUs(i - 1);
      double hi = BucketUpperUs(i);
      if (std::isinf(hi)) return lo;  // overflow bucket: report its floor
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    seen = next;
  }
  return BucketUpperUs(kBuckets - 2);  // unreachable when count > 0
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

double Histogram::BucketUpperUs(size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return static_cast<double>(uint64_t{1} << i);
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("0");
    return;
  }
  char buf[64];
  // Counters and gauges come through as integral doubles; render them as
  // JSON integers so textual consumers ("\"commits\":12") keep working.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  out->append(buf);
}

namespace {

void AppendPromNumber(std::string* out, double v) {
  if (std::isinf(v)) {
    out->append(v > 0 ? "+Inf" : "-Inf");
    return;
  }
  AppendJsonNumber(out, v);
}

/// `name{labels}` or bare `name`; `extra` splices histogram `le` labels
/// next to the user labels.
void AppendSeries(std::string* out, const std::string& name,
                  const std::string& labels, const std::string& extra = "") {
  out->append(name);
  if (!labels.empty() || !extra.empty()) {
    out->push_back('{');
    out->append(labels);
    if (!labels.empty() && !extra.empty()) out->push_back(',');
    out->append(extra);
    out->push_back('}');
  }
}

void AppendHistKeys(std::string* out, const std::string& key,
                    const Histogram::Snapshot& s, bool* first) {
  auto emit = [&](const char* suffix, double v) {
    if (!*first) out->push_back(',');
    *first = false;
    out->push_back('"');
    out->append(key);
    out->append(suffix);
    out->append("\":");
    AppendJsonNumber(out, v);
  };
  emit("_count", static_cast<double>(s.count));
  emit("_p50_us", s.Percentile(0.50));
  emit("_p99_us", s.Percentile(0.99));
  emit("_p999_us", s.Percentile(0.999));
  emit("_mean_us", s.MeanMicros());
}

}  // namespace

Registry::Metric* Registry::Find(const std::string& name,
                                 const std::string& labels) {
  for (auto& m : metrics_) {
    if (m->name == name && m->labels == labels) return m.get();
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& help,
                              const std::string& labels,
                              const std::string& json_key) {
  MutexLock l(mu_);
  if (Metric* m = Find(name, labels)) return m->counter.get();
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = labels;
  m->help = help;
  m->json_key = json_key;
  m->kind = Kind::kCounter;
  m->counter = std::make_unique<Counter>();
  Counter* out = m->counter.get();
  metrics_.push_back(std::move(m));
  return out;
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const std::string& labels,
                          const std::string& json_key) {
  MutexLock l(mu_);
  if (Metric* m = Find(name, labels)) return m->gauge.get();
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = labels;
  m->help = help;
  m->json_key = json_key;
  m->kind = Kind::kGauge;
  m->gauge = std::make_unique<Gauge>();
  Gauge* out = m->gauge.get();
  metrics_.push_back(std::move(m));
  return out;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels,
                                  const std::string& json_key) {
  MutexLock l(mu_);
  if (Metric* m = Find(name, labels)) return m->hist.get();
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = labels;
  m->help = help;
  m->json_key = json_key;
  m->kind = Kind::kHistogram;
  m->hist = std::make_unique<Histogram>();
  Histogram* out = m->hist.get();
  metrics_.push_back(std::move(m));
  return out;
}

void Registry::SetCallback(const std::string& name, const std::string& help,
                           bool monotonic, std::function<double()> fn,
                           const std::string& labels,
                           const std::string& json_key) {
  MutexLock l(mu_);
  if (Metric* m = Find(name, labels)) {
    // Re-registration rebinds: a restarted Server (tests spin several up
    // against one Engine) replaces its predecessor's dangling closure.
    m->fn = std::move(fn);
    m->monotonic = monotonic;
    return;
  }
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = labels;
  m->help = help;
  m->json_key = json_key;
  m->kind = Kind::kCallback;
  m->monotonic = monotonic;
  m->fn = std::move(fn);
  metrics_.push_back(std::move(m));
}

std::string Registry::RenderPrometheus() const {
  MutexLock l(mu_);
  std::string out;
  out.reserve(4096);
  // HELP/TYPE once per series name, at its first occurrence; later
  // metrics with the same name (other label sets) append bare samples.
  auto first_of_name = [&](size_t idx) {
    for (size_t j = 0; j < idx; ++j) {
      if (metrics_[j]->name == metrics_[idx]->name) return false;
    }
    return true;
  };
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = *metrics_[i];
    if (first_of_name(i)) {
      out.append("# HELP ").append(m.name).append(" ").append(m.help);
      out.push_back('\n');
      out.append("# TYPE ").append(m.name).append(" ");
      switch (m.kind) {
        case Kind::kCounter:
          out.append("counter");
          break;
        case Kind::kHistogram:
          out.append("histogram");
          break;
        case Kind::kGauge:
          out.append("gauge");
          break;
        case Kind::kCallback:
          out.append(m.monotonic ? "counter" : "gauge");
          break;
      }
      out.push_back('\n');
    }
    switch (m.kind) {
      case Kind::kCounter: {
        AppendSeries(&out, m.name, m.labels);
        out.push_back(' ');
        AppendPromNumber(&out, static_cast<double>(m.counter->Value()));
        out.push_back('\n');
        break;
      }
      case Kind::kGauge: {
        AppendSeries(&out, m.name, m.labels);
        out.push_back(' ');
        AppendPromNumber(&out, static_cast<double>(m.gauge->Value()));
        out.push_back('\n');
        break;
      }
      case Kind::kCallback: {
        AppendSeries(&out, m.name, m.labels);
        out.push_back(' ');
        AppendPromNumber(&out, m.fn ? m.fn() : 0.0);
        out.push_back('\n');
        break;
      }
      case Kind::kHistogram: {
        Histogram::Snapshot s = m.hist->Snap();
        uint64_t cum = 0;
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          cum += s.buckets[b];
          std::string le = "le=\"";
          {
            std::string num;
            AppendPromNumber(&num, Histogram::BucketUpperUs(b));
            le.append(num);
          }
          le.push_back('"');
          AppendSeries(&out, m.name + "_bucket", m.labels, le);
          out.push_back(' ');
          AppendPromNumber(&out, static_cast<double>(cum));
          out.push_back('\n');
        }
        AppendSeries(&out, m.name + "_sum", m.labels);
        out.push_back(' ');
        // Prometheus histogram sums carry the native unit — the series
        // name ends in _us, so export microseconds.
        AppendPromNumber(&out, s.SumMicros());
        out.push_back('\n');
        AppendSeries(&out, m.name + "_count", m.labels);
        out.push_back(' ');
        AppendPromNumber(&out, static_cast<double>(s.count));
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string Registry::RenderJson() const {
  MutexLock l(mu_);
  std::string out;
  out.reserve(1024);
  out.push_back('{');
  bool first = true;
  for (const auto& mp : metrics_) {
    const Metric& m = *mp;
    if (m.json_key.empty()) continue;
    if (m.kind == Kind::kHistogram) {
      AppendHistKeys(&out, m.json_key, m.hist->Snap(), &first);
      continue;
    }
    double v = 0;
    switch (m.kind) {
      case Kind::kCounter:
        v = static_cast<double>(m.counter->Value());
        break;
      case Kind::kGauge:
        v = static_cast<double>(m.gauge->Value());
        break;
      case Kind::kCallback:
        v = m.fn ? m.fn() : 0.0;
        break;
      case Kind::kHistogram:
        break;  // handled above
    }
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(m.json_key);
    out.append("\":");
    AppendJsonNumber(&out, v);
  }
  out.push_back('}');
  return out;
}

Sample Registry::TakeSample() const {
  MutexLock l(mu_);
  Sample s;
  for (const auto& mp : metrics_) {
    const Metric& m = *mp;
    if (m.json_key.empty()) continue;
    switch (m.kind) {
      case Kind::kCounter:
        s.scalars.push_back(
            {m.json_key, static_cast<double>(m.counter->Value()), true});
        break;
      case Kind::kGauge:
        s.scalars.push_back(
            {m.json_key, static_cast<double>(m.gauge->Value()), false});
        break;
      case Kind::kCallback:
        s.scalars.push_back({m.json_key, m.fn ? m.fn() : 0.0, m.monotonic});
        break;
      case Kind::kHistogram:
        s.hists.emplace_back(m.json_key, m.hist->Snap());
        break;
    }
  }
  return s;
}

std::string Registry::DeltaJson(const Sample& prev, const Sample& cur) {
  std::string out;
  out.push_back('{');
  bool first = true;
  auto find_prev = [&](const std::string& key) -> const SampleEntry* {
    for (const auto& e : prev.scalars) {
      if (e.key == key) return &e;
    }
    return nullptr;
  };
  for (const auto& e : cur.scalars) {
    double v = e.value;
    if (e.monotonic) {
      if (const SampleEntry* p = find_prev(e.key)) v -= p->value;
    }
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(e.key);
    out.append("\":");
    AppendJsonNumber(&out, v);
  }
  for (const auto& [key, snap] : cur.hists) {
    Histogram::Snapshot d = snap;
    for (const auto& [pkey, psnap] : prev.hists) {
      if (pkey == key) {
        d = snap.Delta(psnap);
        break;
      }
    }
    AppendHistKeys(&out, key, d, &first);
  }
  out.push_back('}');
  return out;
}

}  // namespace cpdb::obs
