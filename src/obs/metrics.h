#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::obs {

/// Monotonic microsecond clock for latency measurement (steady, never
/// steps backwards). One call ~20ns; cheap enough for the commit path.
double NowMicros();

/// Lock-free monotonic counter. Record paths are one relaxed fetch_add;
/// readers see a value that is never behind what they already observed
/// through another metric (per-metric monotonicity, not cross-metric
/// ordering — scrapes are statistical, not transactional).
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Lock-free gauge (a value that can go both ways).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket log-scale latency histogram with mergeable snapshots.
///
/// Buckets are powers of two in MICROSECONDS: bucket 0 holds values in
/// [0, 1us), bucket i holds [2^(i-1), 2^i) us, and the last bucket is the
/// +Inf overflow. 28 buckets cover 1us .. ~67s — WAL fsyncs, queue waits,
/// and whole-cohort applies all land mid-range with ~2x resolution, which
/// is what a log-scale latency histogram is for (exact percentiles stay
/// the benches' job; see bench/harness.h).
///
/// Record() is wait-free: one bit-scan plus two relaxed fetch_adds, no
/// locks, safe from any thread (the TSan-labeled obs stress test hammers
/// one histogram from 8 threads). Snapshots are copies and can be merged
/// (operator+= adds bucket-wise) and differenced (Delta) to scope
/// percentiles to a measurement window.
class Histogram {
 public:
  static constexpr size_t kBuckets = 28;

  void Record(double value_us) {
    size_t b = BucketOf(value_us);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(value_us <= 0
                          ? 0
                          : static_cast<uint64_t>(value_us * 1000.0),
                      std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    std::array<uint64_t, kBuckets> buckets{};

    Snapshot& operator+=(const Snapshot& o);
    /// this - prev, bucket-wise (for windowed percentiles). Counters only
    /// grow, so a same-histogram delta is never negative.
    Snapshot Delta(const Snapshot& prev) const;
    /// q in [0,1]. Linear interpolation inside the winning bucket; exact
    /// enough for p50/p99/p999 at 2x bucket resolution. 0 when empty.
    double Percentile(double q) const;
    double SumMicros() const { return static_cast<double>(sum_ns) / 1000.0; }
    double MeanMicros() const {
      return count == 0 ? 0.0 : SumMicros() / static_cast<double>(count);
    }
  };

  Snapshot Snap() const;

  /// Upper bound (exclusive) of bucket `i` in us; +Inf for the last.
  static double BucketUpperUs(size_t i);

  static size_t BucketOf(double value_us) {
    if (value_us < 1.0) return 0;
    uint64_t v = static_cast<uint64_t>(value_us);
    // floor(log2(v)) via bit width; bucket i covers [2^(i-1), 2^i).
    size_t b = 1;
    while (v >>= 1) ++b;
    return b >= kBuckets ? kBuckets - 1 : b;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// One entry of a Registry::Sample — a flattened scalar keyed by its
/// JSON name. `monotonic` drives windowed reporting: counters are
/// differenced between samples, gauges are reported as-is.
struct SampleEntry {
  std::string key;
  double value = 0;
  bool monotonic = false;
};

/// A point-in-time read of every JSON-exported metric in a registry.
struct Sample {
  std::vector<SampleEntry> scalars;
  std::vector<std::pair<std::string, Histogram::Snapshot>> hists;
};

/// The metrics registry: the ONE typed surface every subsystem exports
/// through (cpdb_lint's OBS-METRICS rule bans ad-hoc atomic counters in
/// src/service and src/net so this cannot silently drift from reality).
///
/// Each metric has a Prometheus name (+ optional label set) and an
/// optional JSON key. The same registry renders both export paths —
/// the `METRICS` wire verb / `--metrics-port` HTTP endpoint
/// (RenderPrometheus) and the `STATS` verb / bench rows (RenderJson) —
/// so the two can never disagree about a value's source.
///
/// Registration is mutex-guarded and idempotent (same name+labels+kind
/// returns the same object); record paths on the returned objects are
/// lock-free. Callbacks re-registered under the same identity replace
/// the previous function (a restarted Server re-binds its gauges).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// `name` is the Prometheus series name (e.g. "cpdb_commits_total"),
  /// `labels` an optional `k="v"[,...]` set rendered inside the braces,
  /// `json_key` the flat STATS/bench field name ("" = not in JSON).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "",
                      const std::string& json_key = "") CPDB_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "",
                  const std::string& json_key = "") CPDB_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::string& labels = "",
                          const std::string& json_key = "")
      CPDB_EXCLUDES(mu_);

  /// A metric whose value is computed at scrape time — the bridge for
  /// state that already has an owner (queue stats, pool counters,
  /// durability stats). `monotonic` selects counter vs gauge semantics.
  void SetCallback(const std::string& name, const std::string& help,
                   bool monotonic, std::function<double()> fn,
                   const std::string& labels = "",
                   const std::string& json_key = "") CPDB_EXCLUDES(mu_);

  /// Prometheus text exposition format, one HELP/TYPE block per series
  /// name, histograms as cumulative `_bucket{le=...}` + `_sum`/`_count`.
  std::string RenderPrometheus() const CPDB_EXCLUDES(mu_);

  /// One flat JSON object over every metric with a json_key. Scalars
  /// render as numbers; a histogram `k` renders as `k_count`, `k_p50_us`,
  /// `k_p99_us`, `k_p999_us`, `k_mean_us`.
  std::string RenderJson() const CPDB_EXCLUDES(mu_);

  /// Point-in-time sample of the JSON-exported surface, for windowed
  /// reporting (obs::Reporter folds sample deltas into bench rows).
  Sample TakeSample() const CPDB_EXCLUDES(mu_);

  /// Renders `cur - prev` as one flat JSON object: monotonic scalars are
  /// differenced, gauges reported at `cur`, histograms differenced then
  /// percentiled. Samples must come from the same registry.
  static std::string DeltaJson(const Sample& prev, const Sample& cur);

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Metric {
    std::string name;
    std::string labels;
    std::string help;
    std::string json_key;
    Kind kind;
    bool monotonic = false;  ///< callbacks only
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
    std::function<double()> fn;
  };

  Metric* Find(const std::string& name, const std::string& labels)
      CPDB_REQUIRES(mu_);

  mutable Mutex mu_;
  /// Registration order preserved: exposition groups by first-seen name
  /// and STATS keeps a stable field order across scrapes.
  std::vector<std::unique_ptr<Metric>> metrics_ CPDB_GUARDED_BY(mu_);
};

/// Appends one JSON number, trimming to integer rendering when the value
/// is integral (STATS consumers compare counters textually).
void AppendJsonNumber(std::string* out, double v);

}  // namespace cpdb::obs
