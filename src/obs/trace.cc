#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"

namespace cpdb::obs {

namespace {

void RingPush(std::vector<CommitSpan>* ring, size_t cap, size_t* next,
              CommitSpan span) {
  if (ring->size() < cap) {
    ring->push_back(std::move(span));
  } else {
    (*ring)[*next] = std::move(span);
  }
  *next = (*next + 1) % cap;
}

/// Most-recent-first copy-out of a ring whose `next` is the oldest slot
/// (once full) or the append position (while filling).
std::vector<CommitSpan> RingRecent(const std::vector<CommitSpan>& ring,
                                   size_t next, size_t max) {
  std::vector<CommitSpan> out;
  size_t n = ring.size() < max ? ring.size() : max;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Newest element sits just behind `next`, wrapping.
    size_t idx = (next + ring.size() - 1 - i) % ring.size();
    out.push_back(ring[idx]);
  }
  return out;
}

/// JSON string escape shared by span kinds/details and commit claims:
/// the payloads are paths and verb names, so dropping the rare byte that
/// would break the JSON string beats a full escaper.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

uint64_t SpanCollector::Open(const std::string& kind, uint64_t parent,
                             std::string detail) {
  if (!active()) return 0;
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return 0;
  }
  Span s;
  s.trace_id = ctx_.trace_id;
  s.span_id = next_id_++;
  s.parent_span_id = parent;
  s.kind = kind;
  s.detail = std::move(detail);
  s.start_us = NowMicros();
  spans_.push_back(std::move(s));
  return spans_.back().span_id;
}

void SpanCollector::Close(uint64_t id) {
  Span* s = Find(id);
  if (s != nullptr) s->dur_us = NowMicros() - s->start_us;
}

void SpanCollector::CloseWithCost(uint64_t id, uint64_t rows,
                                  uint64_t round_trips, double cost_us) {
  Span* s = Find(id);
  if (s == nullptr) return;
  s->dur_us = NowMicros() - s->start_us;
  s->rows = rows;
  s->round_trips = round_trips;
  s->cost_us = cost_us;
}

uint64_t SpanCollector::AppendTimed(const std::string& kind, uint64_t parent,
                                    double start_us, double dur_us,
                                    int64_t tid) {
  if (!active()) return 0;
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return 0;
  }
  Span s;
  s.trace_id = ctx_.trace_id;
  s.span_id = next_id_++;
  s.parent_span_id = parent;
  s.kind = kind;
  s.start_us = start_us;
  s.dur_us = dur_us;
  s.tid = tid;
  spans_.push_back(std::move(s));
  return spans_.back().span_id;
}

Span* SpanCollector::Find(uint64_t id) {
  if (id == 0) return nullptr;
  for (Span& s : spans_) {
    if (s.span_id == id) return &s;
  }
  return nullptr;
}

void SpanStore::RingPushTrace(Ring* ring, size_t cap,
                              std::vector<Span> spans) {
  if (ring->traces.size() < cap) {
    ring->traces.push_back(std::move(spans));
  } else {
    ring->traces[ring->next] = std::move(spans);
  }
  ring->next = (ring->next + 1) % cap;
}

void SpanStore::Record(std::vector<Span> spans, bool sampled) {
  if (spans.empty()) return;
  bool dump = false;
  std::vector<Span> slow_copy;
  {
    MutexLock l(mu_);
    const bool slow = slow_threshold_us_ > 0 &&
                      spans.front().dur_us >= slow_threshold_us_;
    if (!sampled && !slow) return;
    if (slow) {
      ++slow_recorded_;
      slow_copy = spans;
      RingPushTrace(&slow_, slow_cap_, spans);
      dump = true;
    }
    if (sampled) {
      ++recorded_;
      // Pick the ring BEFORE handing the spans over: the map-subscript
      // argument and the move are indeterminately sequenced otherwise.
      Ring* ring = &recent_[spans.front().kind];
      RingPushTrace(ring, cap_, std::move(spans));
    }
  }
  if (dump) {
    // Outside the lock, symmetric with the slow-commit dump: a server
    // where every query is slow SHOULD be loud.
    std::string line = "cpdb slow-query: ";
    line += TreeJson(slow_copy);
    line.push_back('\n');
    std::fputs(line.c_str(), stderr);
  }
}

std::string SpanStore::SpanJson(const Span& span) {
  // Ids and counters render via std::to_string, NOT AppendJsonNumber: a
  // client-minted trace/span id uses the full 63-bit space and must not
  // be squeezed through a double's 53-bit mantissa.
  std::string out = "{\"span_id\":" + std::to_string(span.span_id);
  out.append(",\"parent_span_id\":" + std::to_string(span.parent_span_id));
  out.append(",\"kind\":");
  AppendJsonString(&out, span.kind);
  if (!span.detail.empty()) {
    out.append(",\"detail\":");
    AppendJsonString(&out, span.detail);
  }
  out.append(",\"start_us\":");
  AppendJsonNumber(&out, span.start_us);
  out.append(",\"dur_us\":");
  AppendJsonNumber(&out, span.dur_us);
  out.append(",\"rows\":" + std::to_string(span.rows));
  out.append(",\"round_trips\":" + std::to_string(span.round_trips));
  out.append(",\"cost_us\":");
  AppendJsonNumber(&out, span.cost_us);
  if (span.tid >= 0) {
    out.append(",\"tid\":" + std::to_string(span.tid));
  }
  out.push_back('}');
  return out;
}

namespace {

void AppendSpanTree(std::string* out, const std::vector<Span>& spans,
                    size_t index,
                    const std::vector<std::vector<size_t>>& children) {
  const Span& s = spans[index];
  std::string flat = SpanStore::SpanJson(s);
  flat.pop_back();  // re-open the object to nest "children"
  out->append(flat);
  out->append(",\"children\":[");
  for (size_t i = 0; i < children[index].size(); ++i) {
    if (i) out->push_back(',');
    AppendSpanTree(out, spans, children[index][i], children);
  }
  out->append("]}");
}

}  // namespace

std::string SpanStore::TreeJson(const std::vector<Span>& spans) {
  if (spans.empty()) return "{}";
  // Index spans by id, then attach each non-root span to its parent —
  // or to the root when the parent is unknown (an overflow-dropped
  // parent must not make its surviving children vanish from the render).
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].span_id] = i;
  std::vector<std::vector<size_t>> children(spans.size());
  for (size_t i = 1; i < spans.size(); ++i) {
    auto it = by_id.find(spans[i].parent_span_id);
    children[it != by_id.end() ? it->second : 0].push_back(i);
  }
  std::string out =
      "{\"trace_id\":" + std::to_string(spans.front().trace_id);
  out.append(",\"spans\":" + std::to_string(spans.size()));
  out.append(",\"root\":");
  AppendSpanTree(&out, spans, 0, children);
  out.push_back('}');
  return out;
}

std::string SpanStore::TracesJson(size_t max_per_kind) const {
  double threshold;
  uint64_t total, slow_total;
  std::vector<std::vector<Span>> traces;
  std::vector<std::vector<Span>> slow;
  {
    MutexLock l(mu_);
    threshold = slow_threshold_us_;
    total = recorded_;
    slow_total = slow_recorded_;
    for (const auto& [kind, ring] : recent_) {
      (void)kind;
      size_t n = ring.traces.size() < max_per_kind ? ring.traces.size()
                                                   : max_per_kind;
      for (size_t i = 0; i < n; ++i) {
        // Newest element sits just behind `next`, wrapping.
        size_t idx = (ring.next + ring.traces.size() - 1 - i) %
                     ring.traces.size();
        traces.push_back(ring.traces[idx]);
      }
    }
    size_t n = slow_.traces.size() < max_per_kind ? slow_.traces.size()
                                                  : max_per_kind;
    for (size_t i = 0; i < n; ++i) {
      size_t idx =
          (slow_.next + slow_.traces.size() - 1 - i) % slow_.traces.size();
      slow.push_back(slow_.traces[idx]);
    }
  }
  std::string out = "{\"slow_threshold_us\":";
  AppendJsonNumber(&out, threshold);
  out.append(",\"recorded\":");
  AppendJsonNumber(&out, static_cast<double>(total));
  out.append(",\"slow_recorded\":");
  AppendJsonNumber(&out, static_cast<double>(slow_total));
  out.append(",\"traces\":[");
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i) out.push_back(',');
    out.append(TreeJson(traces[i]));
  }
  out.append("],\"slow\":[");
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i) out.push_back(',');
    out.append(TreeJson(slow[i]));
  }
  out.append("]}");
  return out;
}

void TraceBuffer::Record(CommitSpan span) {
  bool dump = false;
  CommitSpan slow_copy;
  {
    MutexLock l(mu_);
    ++recorded_;
    bool slow = slow_threshold_us_ > 0 && span.total_us >= slow_threshold_us_;
    if (slow) {
      ++slow_recorded_;
      slow_copy = span;
      RingPush(&slow_, slow_cap_, &slow_next_, span);
      dump = true;
    }
    RingPush(&ring_, cap_, &next_, std::move(span));
  }
  if (dump) {
    std::string line = "cpdb slow-commit: ";
    line += SpanJson(slow_copy);
    line.push_back('\n');
    std::fputs(line.c_str(), stderr);
  }
}

std::vector<CommitSpan> TraceBuffer::Recent(size_t max) const {
  MutexLock l(mu_);
  return RingRecent(ring_, next_, max);
}

std::vector<CommitSpan> TraceBuffer::Slow(size_t max) const {
  MutexLock l(mu_);
  return RingRecent(slow_, slow_next_, max);
}

std::string TraceBuffer::SpanJson(const CommitSpan& span) {
  std::string out = "{\"tid\":";
  AppendJsonNumber(&out, static_cast<double>(span.tid));
  out.append(",\"cohort\":");
  AppendJsonNumber(&out, static_cast<double>(span.cohort));
  out.append(",\"cohort_size\":");
  AppendJsonNumber(&out, static_cast<double>(span.cohort_size));
  out.append(",\"leader\":");
  out.append(span.leader ? "true" : "false");
  out.append(",\"parallel\":");
  out.append(span.parallel ? "true" : "false");
  out.append(",\"queue_us\":");
  AppendJsonNumber(&out, span.queue_us);
  out.append(",\"apply_us\":");
  AppendJsonNumber(&out, span.apply_us);
  out.append(",\"seal_us\":");
  AppendJsonNumber(&out, span.seal_us);
  out.append(",\"wake_us\":");
  AppendJsonNumber(&out, span.wake_us);
  out.append(",\"total_us\":");
  AppendJsonNumber(&out, span.total_us);
  out.append(",\"claims\":[");
  for (size_t i = 0; i < span.claims.size(); ++i) {
    if (i) out.push_back(',');
    out.push_back('"');
    // Claims are tree paths — no quotes/backslashes to escape, but stay
    // defensive: drop any byte that would break the JSON string.
    for (char c : span.claims[i]) {
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
  }
  out.append("]}");
  return out;
}

std::string TraceBuffer::SlowLogJson(size_t max) const {
  double threshold;
  uint64_t total;
  std::vector<CommitSpan> spans;
  {
    MutexLock l(mu_);
    threshold = slow_threshold_us_;
    total = slow_recorded_;
    spans = RingRecent(slow_, slow_next_, max);
  }
  std::string out = "{\"slow_threshold_us\":";
  AppendJsonNumber(&out, threshold);
  out.append(",\"slow_recorded\":");
  AppendJsonNumber(&out, static_cast<double>(total));
  out.append(",\"slow\":[");
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i) out.push_back(',');
    out.append(SpanJson(spans[i]));
  }
  out.append("]}");
  return out;
}

}  // namespace cpdb::obs
