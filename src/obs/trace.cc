#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"

namespace cpdb::obs {

namespace {

void RingPush(std::vector<CommitSpan>* ring, size_t cap, size_t* next,
              CommitSpan span) {
  if (ring->size() < cap) {
    ring->push_back(std::move(span));
  } else {
    (*ring)[*next] = std::move(span);
  }
  *next = (*next + 1) % cap;
}

/// Most-recent-first copy-out of a ring whose `next` is the oldest slot
/// (once full) or the append position (while filling).
std::vector<CommitSpan> RingRecent(const std::vector<CommitSpan>& ring,
                                   size_t next, size_t max) {
  std::vector<CommitSpan> out;
  size_t n = ring.size() < max ? ring.size() : max;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Newest element sits just behind `next`, wrapping.
    size_t idx = (next + ring.size() - 1 - i) % ring.size();
    out.push_back(ring[idx]);
  }
  return out;
}

}  // namespace

void TraceBuffer::Record(CommitSpan span) {
  bool dump = false;
  CommitSpan slow_copy;
  {
    MutexLock l(mu_);
    ++recorded_;
    bool slow = slow_threshold_us_ > 0 && span.total_us >= slow_threshold_us_;
    if (slow) {
      ++slow_recorded_;
      slow_copy = span;
      RingPush(&slow_, slow_cap_, &slow_next_, span);
      dump = true;
    }
    RingPush(&ring_, cap_, &next_, std::move(span));
  }
  if (dump) {
    std::string line = "cpdb slow-commit: ";
    line += SpanJson(slow_copy);
    line.push_back('\n');
    std::fputs(line.c_str(), stderr);
  }
}

std::vector<CommitSpan> TraceBuffer::Recent(size_t max) const {
  MutexLock l(mu_);
  return RingRecent(ring_, next_, max);
}

std::vector<CommitSpan> TraceBuffer::Slow(size_t max) const {
  MutexLock l(mu_);
  return RingRecent(slow_, slow_next_, max);
}

std::string TraceBuffer::SpanJson(const CommitSpan& span) {
  std::string out = "{\"tid\":";
  AppendJsonNumber(&out, static_cast<double>(span.tid));
  out.append(",\"cohort\":");
  AppendJsonNumber(&out, static_cast<double>(span.cohort));
  out.append(",\"cohort_size\":");
  AppendJsonNumber(&out, static_cast<double>(span.cohort_size));
  out.append(",\"leader\":");
  out.append(span.leader ? "true" : "false");
  out.append(",\"parallel\":");
  out.append(span.parallel ? "true" : "false");
  out.append(",\"queue_us\":");
  AppendJsonNumber(&out, span.queue_us);
  out.append(",\"apply_us\":");
  AppendJsonNumber(&out, span.apply_us);
  out.append(",\"seal_us\":");
  AppendJsonNumber(&out, span.seal_us);
  out.append(",\"wake_us\":");
  AppendJsonNumber(&out, span.wake_us);
  out.append(",\"total_us\":");
  AppendJsonNumber(&out, span.total_us);
  out.append(",\"claims\":[");
  for (size_t i = 0; i < span.claims.size(); ++i) {
    if (i) out.push_back(',');
    out.push_back('"');
    // Claims are tree paths — no quotes/backslashes to escape, but stay
    // defensive: drop any byte that would break the JSON string.
    for (char c : span.claims[i]) {
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
  }
  out.append("]}");
  return out;
}

std::string TraceBuffer::SlowLogJson(size_t max) const {
  double threshold;
  uint64_t total;
  std::vector<CommitSpan> spans;
  {
    MutexLock l(mu_);
    threshold = slow_threshold_us_;
    total = slow_recorded_;
    spans = RingRecent(slow_, slow_next_, max);
  }
  std::string out = "{\"slow_threshold_us\":";
  AppendJsonNumber(&out, threshold);
  out.append(",\"slow_recorded\":");
  AppendJsonNumber(&out, static_cast<double>(total));
  out.append(",\"slow\":[");
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i) out.push_back(',');
    out.append(SpanJson(spans[i]));
  }
  out.append("]}");
  return out;
}

}  // namespace cpdb::obs
