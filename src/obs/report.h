#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::obs {

/// Periodic reporter: samples a Registry every `interval_ms` and folds
/// each window's delta (counters differenced, gauges as-is, histogram
/// percentiles over the window) into one flat JSON row. The owner drains
/// the rows at shutdown and wraps them in the bench harness `--json`
/// schema (`cpdb_serve --metrics-json` does exactly that), so live-server
/// telemetry and bench output share one document shape.
///
/// Start()/Stop() bracket the thread; Stop() takes a final partial-window
/// sample so short runs still produce a row. The thread wakes promptly on
/// Stop() via the timed CondVar wait — no busy polling, no orphan sleeps.
class Reporter {
 public:
  Reporter(Registry* registry, int64_t interval_ms)
      : registry_(registry),
        interval_ms_(interval_ms < 10 ? 10 : interval_ms) {}
  ~Reporter() { Stop(); }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  void Start() CPDB_EXCLUDES(mu_);
  void Stop() CPDB_EXCLUDES(mu_);

  /// One flat JSON object per completed window, oldest first. Each row
  /// carries "interval_seq" and "interval_ms" alongside the metric
  /// fields. Valid after Stop() (or mid-run; rows snapshot atomically).
  std::vector<std::string> Rows() const CPDB_EXCLUDES(mu_);

 private:
  void Loop() CPDB_EXCLUDES(mu_);
  void FoldWindow(const Sample& prev, const Sample& cur, uint64_t seq,
                  double window_ms) CPDB_EXCLUDES(mu_);

  Registry* const registry_;
  const int64_t interval_ms_;

  mutable Mutex mu_;
  CondVar cv_;
  bool running_ CPDB_GUARDED_BY(mu_) = false;
  bool stop_ CPDB_GUARDED_BY(mu_) = false;
  std::vector<std::string> rows_ CPDB_GUARDED_BY(mu_);
  /// Baseline sample, taken synchronously in Start() so every record
  /// made after Start() returns is counted in some window (the loop
  /// thread starting late cannot swallow early increments).
  Sample base_;
  double base_us_ = 0;
  std::thread thread_;  ///< started/joined only from Start()/Stop()
};

}  // namespace cpdb::obs
