#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::obs {

/// Wire-propagated trace identity: minted by a sampling client (or by the
/// server for its own slow-query/EXPLAIN collection), carried as an
/// optional field of every net/protocol request, and stamped onto every
/// span a request produces. trace_id 0 means "no context".
struct TraceContext {
  uint64_t trace_id = 0;
  /// Span id of the caller's enclosing span (the client's root); the
  /// server's root span reports it as its parent so a cross-process
  /// assembler can hang the server tree under the client span.
  uint64_t parent_span_id = 0;
  /// Sampled requests are stored in the trace store's recent rings;
  /// unsampled ones are collected only for the slow-query log.
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

/// One timed stage of a traced request. Span ids are trace-local and
/// assigned by the SpanCollector; parent/child assembly is by id.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// Dotted stage name, e.g. "server.GETMOD", "session.latch_wait",
  /// "query.subtree_scan", "commit.seal".
  std::string kind;
  /// Free-form annotation (path text, verb name); may be empty.
  std::string detail;
  double start_us = 0;  ///< NowMicros() at open
  double dur_us = 0;
  // Cost attribution, snapshotted from the session CostModel / cursor
  // round-trip counters over the span (zero when not applicable).
  uint64_t rows = 0;
  uint64_t round_trips = 0;
  double cost_us = 0;  ///< modelled interaction cost charged in the span
  int64_t tid = -1;    ///< commit linkage (-1 for non-commit spans)
};

/// Per-request scratch pad for the spans of ONE trace. Single-threaded by
/// construction: a connection's requests run on at most one worker at a
/// time, and the collector lives on that worker's stack for the duration
/// of one request. Spans are published to the engine's SpanStore in one
/// Record() call at request end.
///
/// An inactive collector (default-constructed, trace_id 0) turns every
/// method into a no-op returning 0/nullptr, so instrumented code paths
/// need no branching beyond a null check on the collector pointer.
class SpanCollector {
 public:
  /// Hard cap on spans per request: a runaway provenance walk must not
  /// turn one trace into an allocation storm. Overflow is counted.
  static constexpr size_t kMaxSpans = 128;

  SpanCollector() = default;
  explicit SpanCollector(TraceContext ctx)
      : ctx_(ctx),
        // Server span ids start past the caller's parent id so a wire
        // parent can never collide with (and mis-nest under) a local id.
        next_id_(ctx.parent_span_id + 1) {}

  bool active() const { return ctx_.trace_id != 0; }
  const TraceContext& context() const { return ctx_; }

  /// Opens a span (start stamped now). Returns its id, or 0 when the
  /// collector is inactive or full.
  uint64_t Open(const std::string& kind, uint64_t parent,
                std::string detail = std::string());

  /// Closes `id` (duration stamped now). No-op for id 0 / unknown ids.
  void Close(uint64_t id);

  /// Close() plus cost attribution in one call.
  void CloseWithCost(uint64_t id, uint64_t rows, uint64_t round_trips,
                     double cost_us);

  /// Appends an already-measured span (caller supplies start/duration —
  /// e.g. the commit queue's stage timeline re-based into this trace).
  /// Returns its id, or 0 when inactive or full.
  uint64_t AppendTimed(const std::string& kind, uint64_t parent,
                       double start_us, double dur_us, int64_t tid = -1);

  Span* Find(uint64_t id);

  /// Id of the first opened span (the request root); 0 before any Open.
  uint64_t root_span_id() const {
    return spans_.empty() ? 0 : spans_.front().span_id;
  }

  uint64_t dropped() const { return dropped_; }
  const std::vector<Span>& spans() const { return spans_; }
  std::vector<Span> Take() { return std::move(spans_); }

 private:
  TraceContext ctx_;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  std::vector<Span> spans_;
};

/// Engine-level store of assembled traces: per-root-kind recent rings for
/// sampled requests plus one ring of slow offenders — TraceBuffer's
/// commit flight recorder generalized to whole request trees. Backs the
/// TRACES verb, the EXPLAIN verb's inline render, and the slow-query
/// stderr log (--slow-query-ms), symmetric with the slow-commit log.
class SpanStore {
 public:
  explicit SpanStore(size_t capacity = 64, size_t slow_capacity = 64)
      : cap_(capacity == 0 ? 1 : capacity),
        slow_cap_(slow_capacity == 0 ? 1 : slow_capacity) {}

  /// <= 0 disables the slow-query log (the default).
  void SetSlowThresholdUs(double us) CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    slow_threshold_us_ = us;
  }
  double SlowThresholdUs() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return slow_threshold_us_;
  }

  /// Records one request's spans (spans[0] must be the root). Sampled
  /// traces land in the recent ring of the root's kind; a root past the
  /// slow threshold is also copied into the slow ring and dumped to
  /// stderr as one "cpdb slow-query:" JSON line. Unsampled + fast
  /// records nothing (the caller should not even collect in that case).
  void Record(std::vector<Span> spans, bool sampled) CPDB_EXCLUDES(mu_);

  /// Sampled traces stored so far (slow-only captures not included).
  uint64_t recorded() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return recorded_;
  }
  uint64_t slow_recorded() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return slow_recorded_;
  }

  /// One span as a flat JSON object (no children).
  static std::string SpanJson(const Span& span);

  /// One trace assembled as a parent/child tree:
  /// {"trace_id":...,"spans":N,"root":{...,"children":[...]}}.
  /// Orphans (parent id not in the set) nest under the root so no span
  /// is ever silently dropped from the render.
  static std::string TreeJson(const std::vector<Span>& spans);

  /// Every ring rendered: {"slow_threshold_us":...,"recorded":N,
  /// "slow_recorded":M,"traces":[tree,...],"slow":[tree,...]} with up to
  /// `max_per_kind` most-recent trees per root kind.
  std::string TracesJson(size_t max_per_kind = 8) const CPDB_EXCLUDES(mu_);

 private:
  struct Ring {
    std::vector<std::vector<Span>> traces;
    size_t next = 0;
  };

  static void RingPushTrace(Ring* ring, size_t cap, std::vector<Span> spans);

  const size_t cap_;
  const size_t slow_cap_;
  mutable Mutex mu_;
  /// Recent sampled traces, keyed by root span kind ("server.GETMOD",
  /// "server.COMMIT", ...), so a burst of one verb cannot evict the
  /// other verbs' history.
  std::map<std::string, Ring> recent_ CPDB_GUARDED_BY(mu_);
  Ring slow_ CPDB_GUARDED_BY(mu_);
  uint64_t recorded_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t slow_recorded_ CPDB_GUARDED_BY(mu_) = 0;
  double slow_threshold_us_ CPDB_GUARDED_BY(mu_) = 0;  ///< 0 = disabled
};

/// One committed transaction's timeline through the group-commit
/// pipeline, stamped by the session that drove it. Durations are
/// microseconds; stages are the commit queue's own phases:
///
///   queue_us  enqueue -> a leader picked the request up (cohort formed)
///   apply_us  the cohort's in-order (or parallel) apply of closures
///   seal_us   the single Database::Sync that made the cohort durable
///   wake_us   seal -> this committer observed its done flag
///   total_us  enqueue -> done, the latency the client paid
struct CommitSpan {
  int64_t tid = -1;
  uint64_t cohort = 0;       ///< leader-assigned cohort sequence number
  uint32_t cohort_size = 0;  ///< members sealed by the same fsync
  bool parallel = false;     ///< apply ran on the disjoint-subtree pool
  bool leader = false;       ///< this request led the cohort
  double queue_us = 0;
  double apply_us = 0;
  double seal_us = 0;
  double wake_us = 0;
  double total_us = 0;
  /// Staged write claims, pre-rendered ("/db/t/r" style) — the trace is
  /// for a human reading SLOWLOG, not for re-running conflict checks.
  std::vector<std::string> claims;
};

/// Ring buffer of recent commit timelines plus a second ring of the
/// slowest offenders — the flight recorder behind the SLOWLOG verb.
///
/// Record() is called once per committed transaction by its session
/// thread; a span past `slow_threshold_us` is copied into the slow ring
/// and dumped to stderr (rate-unlimited: a server where every commit is
/// slow SHOULD be loud). Lock-held work is O(span); the stderr write
/// happens outside the lock.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 256, size_t slow_capacity = 64)
      : cap_(capacity == 0 ? 1 : capacity),
        slow_cap_(slow_capacity == 0 ? 1 : slow_capacity) {}

  /// <= 0 disables the slow log entirely.
  void SetSlowThresholdUs(double us) CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    slow_threshold_us_ = us;
  }
  double SlowThresholdUs() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return slow_threshold_us_;
  }

  void Record(CommitSpan span) CPDB_EXCLUDES(mu_);

  /// Most-recent-first copies (SLOWLOG answers with these).
  std::vector<CommitSpan> Recent(size_t max = 64) const CPDB_EXCLUDES(mu_);
  std::vector<CommitSpan> Slow(size_t max = 64) const CPDB_EXCLUDES(mu_);

  uint64_t recorded() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return recorded_;
  }
  uint64_t slow_recorded() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return slow_recorded_;
  }

  /// One span as a JSON object — shared by SLOWLOG and the stderr dump
  /// so a slow line can be pasted into any JSON tooling.
  static std::string SpanJson(const CommitSpan& span);

  /// JSON array, most recent first: {"slow_threshold_us":...,
  /// "recorded":N,"slow":[span,...]}.
  std::string SlowLogJson(size_t max = 64) const CPDB_EXCLUDES(mu_);

 private:
  const size_t cap_;
  const size_t slow_cap_;
  mutable Mutex mu_;
  std::vector<CommitSpan> ring_ CPDB_GUARDED_BY(mu_);
  std::vector<CommitSpan> slow_ CPDB_GUARDED_BY(mu_);
  size_t next_ CPDB_GUARDED_BY(mu_) = 0;
  size_t slow_next_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t recorded_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t slow_recorded_ CPDB_GUARDED_BY(mu_) = 0;
  double slow_threshold_us_ CPDB_GUARDED_BY(mu_) = 0;  ///< 0 = disabled
};

}  // namespace cpdb::obs
