#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::obs {

/// One committed transaction's timeline through the group-commit
/// pipeline, stamped by the session that drove it. Durations are
/// microseconds; stages are the commit queue's own phases:
///
///   queue_us  enqueue -> a leader picked the request up (cohort formed)
///   apply_us  the cohort's in-order (or parallel) apply of closures
///   seal_us   the single Database::Sync that made the cohort durable
///   wake_us   seal -> this committer observed its done flag
///   total_us  enqueue -> done, the latency the client paid
struct CommitSpan {
  int64_t tid = -1;
  uint64_t cohort = 0;       ///< leader-assigned cohort sequence number
  uint32_t cohort_size = 0;  ///< members sealed by the same fsync
  bool parallel = false;     ///< apply ran on the disjoint-subtree pool
  bool leader = false;       ///< this request led the cohort
  double queue_us = 0;
  double apply_us = 0;
  double seal_us = 0;
  double wake_us = 0;
  double total_us = 0;
  /// Staged write claims, pre-rendered ("/db/t/r" style) — the trace is
  /// for a human reading SLOWLOG, not for re-running conflict checks.
  std::vector<std::string> claims;
};

/// Ring buffer of recent commit timelines plus a second ring of the
/// slowest offenders — the flight recorder behind the SLOWLOG verb.
///
/// Record() is called once per committed transaction by its session
/// thread; a span past `slow_threshold_us` is copied into the slow ring
/// and dumped to stderr (rate-unlimited: a server where every commit is
/// slow SHOULD be loud). Lock-held work is O(span); the stderr write
/// happens outside the lock.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 256, size_t slow_capacity = 64)
      : cap_(capacity == 0 ? 1 : capacity),
        slow_cap_(slow_capacity == 0 ? 1 : slow_capacity) {}

  /// <= 0 disables the slow log entirely.
  void SetSlowThresholdUs(double us) CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    slow_threshold_us_ = us;
  }
  double SlowThresholdUs() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return slow_threshold_us_;
  }

  void Record(CommitSpan span) CPDB_EXCLUDES(mu_);

  /// Most-recent-first copies (SLOWLOG answers with these).
  std::vector<CommitSpan> Recent(size_t max = 64) const CPDB_EXCLUDES(mu_);
  std::vector<CommitSpan> Slow(size_t max = 64) const CPDB_EXCLUDES(mu_);

  uint64_t recorded() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return recorded_;
  }
  uint64_t slow_recorded() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    return slow_recorded_;
  }

  /// One span as a JSON object — shared by SLOWLOG and the stderr dump
  /// so a slow line can be pasted into any JSON tooling.
  static std::string SpanJson(const CommitSpan& span);

  /// JSON array, most recent first: {"slow_threshold_us":...,
  /// "recorded":N,"slow":[span,...]}.
  std::string SlowLogJson(size_t max = 64) const CPDB_EXCLUDES(mu_);

 private:
  const size_t cap_;
  const size_t slow_cap_;
  mutable Mutex mu_;
  std::vector<CommitSpan> ring_ CPDB_GUARDED_BY(mu_);
  std::vector<CommitSpan> slow_ CPDB_GUARDED_BY(mu_);
  size_t next_ CPDB_GUARDED_BY(mu_) = 0;
  size_t slow_next_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t recorded_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t slow_recorded_ CPDB_GUARDED_BY(mu_) = 0;
  double slow_threshold_us_ CPDB_GUARDED_BY(mu_) = 0;  ///< 0 = disabled
};

}  // namespace cpdb::obs
