#include "service/engine.h"

namespace cpdb::service {

void Engine::WireMetrics() {
  // --- Commit-pipeline latency histograms (sinks wired into the layers
  // that own the measured sections; see each set_metrics contract).
  latch_.set_metrics(
      metrics_.GetHistogram("cpdb_latch_shared_wait_us",
                            "Contended shared-latch acquire wait (us)", "",
                            "latch_shared_wait_us"),
      metrics_.GetHistogram("cpdb_latch_excl_wait_us",
                            "Exclusive-latch acquire wait (us) - the "
                            "group-commit combining window",
                            "", "latch_excl_wait_us"));

  CommitQueue::StageMetrics sm;
  sm.queue_us =
      metrics_.GetHistogram("cpdb_commit_stage_us",
                            "Commit pipeline stage duration (us)",
                            "stage=\"queue\"", "commit_queue_us");
  sm.apply_us = metrics_.GetHistogram("cpdb_commit_stage_us",
                                      "Commit pipeline stage duration (us)",
                                      "stage=\"apply\"", "commit_apply_us");
  sm.seal_us = metrics_.GetHistogram("cpdb_commit_stage_us",
                                     "Commit pipeline stage duration (us)",
                                     "stage=\"seal\"", "commit_seal_us");
  sm.wake_us = metrics_.GetHistogram("cpdb_commit_stage_us",
                                     "Commit pipeline stage duration (us)",
                                     "stage=\"wake\"", "commit_wake_us");
  sm.total_us = metrics_.GetHistogram("cpdb_commit_stage_us",
                                      "Commit pipeline stage duration (us)",
                                      "stage=\"total\"", "commit_total_us");
  sm.cohort_size = metrics_.GetHistogram(
      "cpdb_commit_cohort_size", "Members per group-commit cohort", "",
      "cohort_size");
  sm.parallel_batch = metrics_.GetHistogram(
      "cpdb_commit_parallel_batch_size",
      "Members per disjoint-subtree parallel apply run", "",
      "parallel_batch_size");
  queue_.set_metrics(sm);

  if (backend_->db()->durable()) {
    backend_->db()->durability()->SetMetricSinks(
        metrics_.GetHistogram("cpdb_wal_append_us",
                              "WAL record append wall time (us)", "",
                              "wal_append_us"),
        metrics_.GetHistogram("cpdb_wal_fsync_us",
                              "WAL fsync barrier wall time (us)", "",
                              "wal_fsync_us"));
  }

  // --- Scrape-time callbacks over state that already has one owner.
  // The json_key names are the STATS contract (OPERATOR_GUIDE.md): the
  // server's StatsJson() renders from this registry, so the names here
  // ARE the wire fields.
  auto cb = [this](const char* name, const char* help, bool monotonic,
                   std::function<double()> fn, const char* json_key) {
    metrics_.SetCallback(name, help, monotonic, std::move(fn), "", json_key);
  };
  cb("cpdb_commit_queue_depth", "Committers enqueued behind the leader",
     false, [this] { return static_cast<double>(CommitQueueDepth()); },
     "queue_depth");
  cb("cpdb_commits_total", "Transactions committed", true,
     [this] { return static_cast<double>(queue_.stats().commits); },
     "commits");
  cb("cpdb_cohorts_total", "Group-commit cohorts sealed", true,
     [this] { return static_cast<double>(queue_.stats().cohorts); },
     "cohorts");
  cb("cpdb_combined_total", "Commits that rode another leader's seal", true,
     [this] { return static_cast<double>(queue_.stats().combined); },
     "combined");
  cb("cpdb_max_cohort", "Largest cohort sealed so far", false,
     [this] { return static_cast<double>(queue_.stats().max_cohort); },
     "max_cohort");
  cb("cpdb_parallel_cohorts_total",
     "Disjoint-subtree batches applied in parallel", true,
     [this] { return static_cast<double>(queue_.stats().parallel_cohorts); },
     "parallel_cohorts");
  cb("cpdb_parallel_applies_total", "Commits applied on the worker pool",
     true,
     [this] { return static_cast<double>(queue_.stats().parallel_applies); },
     "parallel_applies");
  cb("cpdb_last_tid", "Largest transaction id allocated", false,
     [this] { return static_cast<double>(LastAllocatedTid()); }, "last_tid");
  cb("cpdb_committed_tid", "Committed-state watermark tid", false,
     [this] { return static_cast<double>(CommittedTid()); }, "committed_tid");
  cb("cpdb_latch_epoch", "Exclusive latch sections completed", false,
     [this] { return static_cast<double>(latch_.Epoch()); }, "epoch");
  cb("cpdb_versions_live", "Committed-state versions in the chain", false,
     [this] { return static_cast<double>(snapshots_.stats().versions_live); },
     "versions_live");
  cb("cpdb_versions_published_total", "Committed-state versions published",
     true,
     [this] {
       return static_cast<double>(snapshots_.stats().versions_published);
     },
     "versions_published");
  cb("cpdb_versions_gced_total", "Committed-state versions garbage-collected",
     true,
     [this] { return static_cast<double>(snapshots_.stats().versions_gced); },
     "versions_gced");
  cb("cpdb_snapshot_rebuilds_total", "Full snapshot materializations", true,
     [this] {
       return static_cast<double>(snapshots_.stats().snapshot_rebuilds);
     },
     "snapshot_rebuilds");
  cb("cpdb_snapshot_rebuild_rows_total", "Rows scanned by full rebuilds",
     true,
     [this] {
       return static_cast<double>(snapshots_.stats().snapshot_rebuild_rows);
     },
     "snapshot_rebuild_rows");
  cb("cpdb_snapshot_refreshes_total", "O(1) session snapshot re-pins", true,
     [this] {
       return static_cast<double>(snapshots_.stats().snapshot_refreshes);
     },
     "snapshot_refreshes");
  cb("cpdb_slow_commits_total", "Commits past the slow-commit threshold",
     true, [this] { return static_cast<double>(trace_.slow_recorded()); },
     "slow_commits");
  cb("cpdb_traces_recorded_total", "Sampled request trace trees recorded",
     true, [this] { return static_cast<double>(spans_.recorded()); },
     "traces_recorded");
  cb("cpdb_slow_queries_total", "Requests past the slow-query threshold",
     true, [this] { return static_cast<double>(spans_.slow_recorded()); },
     "slow_queries");
  const bool durable = backend_->db()->durable();
  cb("cpdb_durable", "1 when a durability engine is attached", false,
     [durable] { return durable ? 1.0 : 0.0; }, "durable");
  if (durable) {
    // Absent entirely on in-memory engines — STATS omits the durability
    // fields there, and a scraper should see no series, not zeros.
    cb("cpdb_fsyncs_total", "fsync barriers issued", true,
       [this] {
         return static_cast<double>(db()->durability()->stats().fsyncs);
       },
       "fsyncs");
    cb("cpdb_log_bytes_total", "Bytes appended to the WAL", true,
       [this] {
         return static_cast<double>(db()->durability()->stats().log_bytes);
       },
       "log_bytes");
    cb("cpdb_replayed_commits_total", "Log records recovery applied", true,
       [this] {
         return static_cast<double>(
             db()->durability()->stats().replayed_commits);
       },
       "replayed_commits");
  }
}

}  // namespace cpdb::service
