#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/backend.h"
#include "relstore/cost_model.h"
#include "service/commit_queue.h"
#include "service/latch.h"
#include "service/snapshots.h"
#include "storage/durable.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "wrap/target_db.h"

namespace cpdb::service {

/// The multi-session engine: ONE shared curated target + provenance
/// backend (over one — possibly durable — relstore::Database), served to
/// N concurrent curator sessions.
///
/// Four shared facilities (see README "Service layer"):
///
///  * the SharedLatch — read-only sessions hold shared grants; committed
///    transactions apply under the commit queue's exclusive grant;
///  * the CommitQueue — leader/follower group commit, ONE WAL record and
///    ONE fsync per cohort via SyncShared(), with optional
///    disjoint-subtree parallel apply (EnableParallelApply);
///  * the SnapshotManager — the version chain of committed target states.
///    Cohorts advance the committed tid watermark; the session pool
///    publishes the tree at that watermark lazily, on the first acquire
///    that needs it (O(1) for cheap-snapshot targets: a copy-on-write
///    clone). Sessions pin the version they read, and versions older than
///    the oldest live pin are garbage-collected. Session staleness is a
///    tid comparison (CommittedTid()), replacing the latch-epoch stamp of
///    earlier revisions;
///  * engine-wide monotonic tid allocation — NextTid() is an atomic
///    counter fed once at attach from ProvBackend::MaxTid() (which also
///    consults TxnMeta), replacing the per-store sequential counters that
///    would race and mint duplicate tids across sessions.
///
/// The engine also aggregates per-session CostModels into a race-free
/// CostAggregate (sessions charge plain private models; SessionPool folds
/// them in on release), so bench totals over concurrent sessions are
/// exact without putting atomics on every charge path.
///
/// The engine borrows `backend` and `target`; both must outlive it, and
/// once the engine is attached every write to either must go through a
/// session commit (the editor rule "writable only via high-level
/// interfaces", now with "…of one engine" appended).
class Engine {
 public:
  /// Attaches to the shared store. Seeds the tid allocator from
  /// ProvBackend::MaxTid(), so a reopened durable store continues its
  /// transaction numbering exactly like a standalone session would.
  Engine(provenance::ProvBackend* backend, wrap::TargetDb* target)
      : backend_(backend),
        target_(target),
        base_tid_(backend->MaxTid()),
        next_tid_(base_tid_ + 1),
        committed_tid_(base_tid_),
        queue_(&latch_, [this](size_t) { return SyncShared(); }) {
    queue_.set_publish([this] { PublishSnapshot(); });
    queue_.set_prepare_parallel([this](const std::vector<tree::Path>& c) {
      return target_->PrepareParallelApply(c);
    });
    queue_.set_sync_probe(
        [this] { return sync_calls_.load(std::memory_order_relaxed); });
    WireMetrics();
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Mints the next engine-wide transaction number. Thread-safe; called
  /// by the sessions' provenance stores from inside commit closures.
  int64_t NextTid() { return next_tid_.fetch_add(1, std::memory_order_relaxed); }

  /// Largest tid handed out so far (base_tid when none yet).
  int64_t LastAllocatedTid() const {
    return next_tid_.load(std::memory_order_relaxed) - 1;
  }

  /// Tid the engine attached at: LastAllocatedTid() == base_tid() means
  /// no transaction has committed through this engine yet.
  int64_t base_tid() const { return base_tid_; }

  /// Watermark of the committed state: the last tid of the newest sealed
  /// cohort. A session whose snapshot_tid() matches is current — this tid
  /// comparison replaced the latch-epoch staleness stamp.
  int64_t CommittedTid() const {
    return committed_tid_.load(std::memory_order_acquire);
  }

  /// Shared grant for a batch of reads (queries, scans, snapshots).
  /// Never commit while holding one — the commit would deadlock behind
  /// the leader waiting for the grant to drain (and the analysis flags
  /// it: Commit excludes the latch this returns a scoped hold on).
  SharedLatch::ReadGuard Read() CPDB_ACQUIRE_SHARED(latch_) {
    return SharedLatch::ReadGuard(latch_);
  }

  /// Commits one transaction through the group-commit queue. `apply`
  /// runs under the exclusive latch (possibly on another committer's
  /// thread) and must contain every shared-state write of the
  /// transaction; the cohort seals with one SyncShared(). `claims` — the
  /// transaction's target-relative writeset — lets the leader batch it
  /// with disjoint cohort-mates on the apply pool; empty claims always
  /// fall back to in-order apply.
  Status Commit(std::function<Status()> apply,
                std::vector<tree::Path> claims = {},
                CommitQueue::Timeline* timeline = nullptr)
      CPDB_EXCLUDES(latch_) {
    return queue_.Commit(std::move(apply), std::move(claims), timeline);
  }

  /// Spins up the disjoint-subtree apply pool (see CommitQueue). Call
  /// once, before sessions start committing.
  void EnableParallelApply(size_t workers) { queue_.EnableParallelApply(workers); }

  /// Committers currently enqueued behind the leader — the admission
  /// signal the network front end sheds on (net::Server answers RETRY
  /// when this is deeper than its configured bound, instead of stacking
  /// more work behind a saturated group-commit queue).
  size_t CommitQueueDepth() const { return queue_.Pending(); }

  /// Checkpoints the shared store under the exclusive latch, so the
  /// snapshot covers a committed prefix and no in-flight cohort. Used by
  /// the network server's CHECKPOINT admin verb and by graceful drain
  /// (checkpoint-on-drain: recovery after a drained shutdown replays no
  /// log at all). A no-op for in-memory stores.
  Status Checkpoint() CPDB_EXCLUDES(latch_) {
    if (!backend_->db()->durable()) return Status::OK();
    SharedLatch::WriteGuard guard(latch_);
    return backend_->db()->Checkpoint();
  }

  /// The cohort seal: ONE durable group commit covering everything the
  /// cohort wrote — Database::Sync seals the provenance store's (and a
  /// shared relational target's) journal into one WAL record + one fsync,
  /// then the target's own barrier runs (free when it shares the
  /// Database or is in-memory). Runs on the commit queue's leader thread
  /// with the exclusive latch held; the contract crosses a std::function
  /// boundary the analysis cannot see through, so it is enforced by the
  /// CommitQueue's own annotations rather than a REQUIRES here. The call
  /// count feeds the queue's ONE-seal-per-cohort assertion.
  Status SyncShared() {
    sync_calls_.fetch_add(1, std::memory_order_relaxed);
    CPDB_RETURN_IF_ERROR(backend_->db()->Sync());
    return target_->Sync();
  }

  SharedLatch& latch() CPDB_RETURN_CAPABILITY(latch_) { return latch_; }
  CommitQueue& commit_queue() { return queue_; }
  SnapshotManager& snapshots() { return snapshots_; }
  provenance::ProvBackend* backend() { return backend_; }
  wrap::TargetDb* target() { return target_; }
  relstore::Database* db() { return backend_->db(); }

  /// Engine-wide totals of released sessions' cost models (plus anything
  /// folded in explicitly). Thread-safe.
  relstore::CostAggregate& cost_totals() { return cost_totals_; }

  /// Snapshot/version counters for STATS and the benches.
  SnapshotManager::Stats snapshot_stats() const { return snapshots_.stats(); }

  /// The engine's metrics registry — every commit-pipeline series
  /// (WAL/fsync latency, queue stage timings, latch waits, snapshot and
  /// cohort distributions) is registered here at construction, and the
  /// server/pool/tools layers add theirs on top. One registry renders
  /// both export surfaces: Prometheus (`METRICS`, `/metrics`) and the
  /// flat STATS/bench JSON.
  obs::Registry& metrics() { return metrics_; }

  /// Flight recorder of recent commit timelines (SLOWLOG's backing ring).
  obs::TraceBuffer& trace() { return trace_; }

  /// Commits slower than `us` end-to-end are copied into the slow ring
  /// and dumped to stderr; <= 0 disables (the default).
  void SetSlowCommitThresholdUs(double us) { trace_.SetSlowThresholdUs(us); }

  /// Store of assembled request trace trees — the read-side counterpart
  /// of trace(): the network server records every sampled request's span
  /// tree here, and the TRACES verb renders it back.
  obs::SpanStore& spans() { return spans_; }

  /// Read requests whose root span exceeds `us` are copied into the
  /// trace store's slow ring and dumped to stderr as one JSON line
  /// (--slow-query-ms, symmetric with the slow-commit log); <= 0
  /// disables (the default).
  void SetSlowQueryThresholdUs(double us) { spans_.SetSlowThresholdUs(us); }

  /// Mints a trace id for server-initiated collection (slow-query
  /// watch, EXPLAIN). The high bit marks it server-minted so it can
  /// never collide with a client's id space. Thread-safe.
  uint64_t MintTraceId() {
    return trace_id_seq_.fetch_add(1, std::memory_order_relaxed) |
           (uint64_t{1} << 63);
  }

 private:
  /// Runs on the commit queue's leader thread after a cohort's applies
  /// and seal, exclusive latch held: advances the committed watermark.
  /// Versions are published LAZILY — by the session pool, on the first
  /// acquire/refresh that needs this watermark — not here. Eager
  /// publishing would share the target's tree with a version after every
  /// cohort, making every subsequent commit's native replay re-privatize
  /// its copy-on-write path (one child-map clone per node per cohort);
  /// lazy publishing pays that wave once per session acquire instead.
  void PublishSnapshot() {
    committed_tid_.store(LastAllocatedTid(), std::memory_order_release);
  }

  /// Creates every engine-level metric and plugs the sinks into the
  /// latch, the commit queue, and the WAL (when durable) — all before
  /// any session thread exists, so the sink fields never race. Out of
  /// line (engine.cc): it is a page of registrations.
  void WireMetrics();

  provenance::ProvBackend* backend_;
  wrap::TargetDb* target_;
  /// Declared (so destroyed) outside the machinery that records into
  /// them: the queue's worker threads must die before their sinks.
  obs::Registry metrics_;
  obs::TraceBuffer trace_;
  obs::SpanStore spans_;
  std::atomic<uint64_t> trace_id_seq_{1};
  int64_t base_tid_;  ///< initialized before next_tid_ (declaration order)
  std::atomic<int64_t> next_tid_;
  std::atomic<int64_t> committed_tid_;
  std::atomic<uint64_t> sync_calls_{0};
  SharedLatch latch_;
  SnapshotManager snapshots_;
  CommitQueue queue_;
  relstore::CostAggregate cost_totals_;
};

}  // namespace cpdb::service
