#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>

#include "tree/tree.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::service {

/// The engine's version chain of committed target states — MVCC-lite.
///
/// Every group-commit cohort publishes the committed target tree at its
/// watermark tid (the last tid the cohort minted; tids are commit-ordered
/// because they are minted under the exclusive latch). Publishing is O(1):
/// the tree is a copy-on-write clone sharing all nodes with the live
/// target, so a "version" is one root pointer, not a copy of the database.
///
/// Sessions PIN the version their snapshot was opened at. A pinned
/// version cannot be garbage-collected; when the oldest pin is released,
/// every unpinned version older than the new oldest pin is dropped (the
/// latest version always survives — it IS the committed state). Because
/// versions share structure, dropping a version frees exactly the nodes
/// that were copy-on-write-superseded since — the per-version delta.
///
/// Counters feed Engine stats, the server STATS verb, and the benches:
///   versions_live     versions currently in the chain
///   versions_gced     versions dropped so far
///   snapshot_rebuilds full materializations (TargetDb::TreeFromDb scans)
///                     — the O(database) path this chain exists to avoid;
///                     a warm pool under write traffic must not add any.
class SnapshotManager {
 public:
  /// A pinned version: `root` is valid until Unpin(seq). seq == 0 means
  /// "no pin" (the chain was empty; the caller must materialize).
  struct Pin {
    int64_t tid = -1;
    uint64_t seq = 0;
    std::shared_ptr<const tree::Tree> root;
  };

  struct Stats {
    uint64_t versions_published = 0;
    uint64_t versions_gced = 0;
    uint64_t snapshot_rebuilds = 0;
    uint64_t snapshot_rebuild_rows = 0;
    uint64_t snapshot_refreshes = 0;  ///< O(1) session re-pins
    size_t versions_live = 0;
    int64_t latest_tid = -1;
  };

  /// Publishes the committed state at `watermark_tid`. Called by the
  /// commit queue's leader with the exclusive latch held (state is
  /// stable), and by the session pool when it bootstraps the chain from a
  /// full materialization. Also garbage-collects the unpinned prefix.
  void Publish(int64_t watermark_tid, tree::Tree root) CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    if (!chain_.empty() && chain_.back().tid >= watermark_tid) return;
    Version v;
    v.tid = watermark_tid;
    v.seq = ++last_seq_;
    v.root = std::make_shared<const tree::Tree>(std::move(root));
    chain_.push_back(std::move(v));
    ++published_;
    latest_tid_.store(watermark_tid, std::memory_order_release);
    CollectLocked();
  }

  /// Pins the newest version, O(1). Pin.seq == 0 if the chain is empty.
  Pin PinLatest() CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    if (chain_.empty()) return Pin{};
    Version& v = chain_.back();
    ++v.pins;
    return Pin{v.tid, v.seq, v.root};
  }

  /// Releases a pin taken by PinLatest; unblocks GC of the version once
  /// it is both unpinned and older than every remaining pin.
  void Unpin(const Pin& pin) CPDB_EXCLUDES(mu_) {
    if (pin.seq == 0) return;
    MutexLock l(mu_);
    for (Version& v : chain_) {
      if (v.seq == pin.seq) {
        --v.pins;
        break;
      }
    }
    CollectLocked();
  }

  /// Watermark of the newest published version, -1 when none. Readable
  /// without the lock (staleness checks on the session-acquire fast path).
  int64_t LatestTid() const {
    return latest_tid_.load(std::memory_order_acquire);
  }

  /// Accounting for the slow path: a full TreeFromDb materialization of
  /// `rows` nodes (chain bootstrap, or a target without cheap snapshots).
  void NoteRebuild(size_t rows) CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    ++rebuilds_;
    rebuild_rows_ += rows;
  }

  /// Accounting for the fast path: an O(1) re-pin of a pooled session.
  void NoteRefresh() CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    ++refreshes_;
  }

  Stats stats() const CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    Stats s;
    s.versions_published = published_;
    s.versions_gced = gced_;
    s.snapshot_rebuilds = rebuilds_;
    s.snapshot_rebuild_rows = rebuild_rows_;
    s.snapshot_refreshes = refreshes_;
    s.versions_live = chain_.size();
    s.latest_tid = latest_tid_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Version {
    int64_t tid = -1;
    uint64_t seq = 0;
    std::shared_ptr<const tree::Tree> root;
    size_t pins = 0;
  };

  /// Drops unpinned versions older than the oldest pin. The newest
  /// version is never dropped: it is the current committed state and the
  /// next session acquire pins it.
  void CollectLocked() CPDB_REQUIRES(mu_) {
    while (chain_.size() > 1 && chain_.front().pins == 0) {
      chain_.pop_front();
      ++gced_;
    }
  }

  mutable Mutex mu_;
  std::deque<Version> chain_ CPDB_GUARDED_BY(mu_);
  uint64_t last_seq_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t published_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t gced_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t rebuilds_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t rebuild_rows_ CPDB_GUARDED_BY(mu_) = 0;
  uint64_t refreshes_ CPDB_GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> latest_tid_{-1};
};

}  // namespace cpdb::service
