#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::service {

/// The engine's epoch-based shared/exclusive latch.
///
/// Read-only sessions (GetMod, Lookup, cursor scans) run concurrently
/// under shared grants; the commit queue's leader applies a whole cohort
/// of committed transactions under one exclusive grant. Every exclusive
/// release advances the *epoch* — the version number of the shared
/// engine state. Sessions stamp the epoch when they snapshot the target
/// (SessionPool::Acquire) and compare it on reuse: a stale stamp means
/// committed transactions have landed since, so the snapshot must be
/// rebuilt. Cursors obey the same rule as in the single-session world —
/// drain them under one shared grant; any epoch advance invalidates them.
///
/// Writer preference: once a committer is waiting, new shared requests
/// queue behind it. This bounds group-commit latency under a heavy read
/// load and, usefully, lets the cohort gather — while the leader waits
/// for active readers to drain, more committers pile onto the queue and
/// ride the same exclusive grant and fsync.
///
/// Not reentrant. A thread must never request the latch while holding it
/// (in particular: never commit while holding a read grant — the commit
/// blocks on the leader, which blocks on the read grant).
///
/// The latch is a Clang thread-safety CAPABILITY: annotate state guarded
/// by its exclusive section with CPDB_GUARDED_BY(latch) and functions
/// that must run inside a grant with CPDB_REQUIRES[_SHARED](latch), and
/// the discipline is compiler-checked under -Wthread-safety (see
/// util/thread_annotations.h and the `analyze` preset).
class CPDB_CAPABILITY("SharedLatch") SharedLatch {
 public:
  void LockShared() CPDB_ACQUIRE_SHARED() {
    // Only meter the contended path: the uncontended acquire is two
    // branches and must stay that cheap (every query takes it).
    obs::Histogram* h = shared_wait_us_;
    double start_us = 0;
    MutexLock l(mu_);
    if (h != nullptr && (writer_ || writers_waiting_ > 0)) {
      start_us = obs::NowMicros();
    }
    while (writer_ || writers_waiting_ > 0) can_read_.Wait(mu_);
    if (start_us != 0) h->Record(obs::NowMicros() - start_us);
    ++readers_;
  }

  void UnlockShared() CPDB_RELEASE_SHARED() {
    MutexLock l(mu_);
    if (--readers_ == 0) can_write_.NotifyOne();
  }

  void LockExclusive() CPDB_ACQUIRE() {
    // The exclusive wait is always recorded — it IS the group-commit
    // combining window (readers draining while the cohort gathers).
    obs::Histogram* h = excl_wait_us_;
    const double start_us = h != nullptr ? obs::NowMicros() : 0;
    MutexLock l(mu_);
    ++writers_waiting_;
    while (writer_ || readers_ > 0) can_write_.Wait(mu_);
    --writers_waiting_;
    writer_ = true;
    if (h != nullptr) h->Record(obs::NowMicros() - start_us);
  }

  void UnlockExclusive() CPDB_RELEASE() {
    MutexLock l(mu_);
    writer_ = false;
    epoch_.fetch_add(1, std::memory_order_release);
    can_write_.NotifyOne();
    can_read_.NotifyAll();
  }

  /// Number of exclusive sections ever completed — the version of the
  /// shared state. Readable without the latch.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Wait-latency sinks: `shared_wait` records how long contended shared
  /// acquires blocked (uncontended ones record nothing — see LockShared),
  /// `excl_wait` every exclusive acquire's wait. Either may be null. Set
  /// before the latch sees concurrent traffic (Engine's constructor).
  void set_metrics(obs::Histogram* shared_wait, obs::Histogram* excl_wait) {
    shared_wait_us_ = shared_wait;
    excl_wait_us_ = excl_wait;
  }

  /// RAII shared grant. Deliberately not movable: Engine::Read() and
  /// Session::ReadLock() return one by value through guaranteed copy
  /// elision, and a moved-from scoped capability is the one state the
  /// thread-safety analysis cannot track.
  class CPDB_SCOPED_CAPABILITY ReadGuard {
   public:
    explicit ReadGuard(SharedLatch& latch) CPDB_ACQUIRE_SHARED(latch)
        : latch_(latch) {
      latch_.LockShared();
    }
    ~ReadGuard() CPDB_RELEASE() { latch_.UnlockShared(); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard(ReadGuard&&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;

   private:
    SharedLatch& latch_;
  };

  /// RAII exclusive grant (same movability rules as ReadGuard).
  class CPDB_SCOPED_CAPABILITY WriteGuard {
   public:
    explicit WriteGuard(SharedLatch& latch) CPDB_ACQUIRE(latch)
        : latch_(latch) {
      latch_.LockExclusive();
    }
    ~WriteGuard() CPDB_RELEASE() { latch_.UnlockExclusive(); }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;
    WriteGuard(WriteGuard&&) = delete;
    WriteGuard& operator=(WriteGuard&&) = delete;

   private:
    SharedLatch& latch_;
  };

 private:
  Mutex mu_;
  CondVar can_read_;
  CondVar can_write_;
  size_t readers_ CPDB_GUARDED_BY(mu_) = 0;
  size_t writers_waiting_ CPDB_GUARDED_BY(mu_) = 0;
  bool writer_ CPDB_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> epoch_{0};
  /// Set once before concurrent use (set_metrics); read-only after.
  obs::Histogram* shared_wait_us_ = nullptr;
  obs::Histogram* excl_wait_us_ = nullptr;
};

}  // namespace cpdb::service
