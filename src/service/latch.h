#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cpdb::service {

/// The engine's epoch-based shared/exclusive latch.
///
/// Read-only sessions (GetMod, Lookup, cursor scans) run concurrently
/// under shared grants; the commit queue's leader applies a whole cohort
/// of committed transactions under one exclusive grant. Every exclusive
/// release advances the *epoch* — the version number of the shared
/// engine state. Sessions stamp the epoch when they snapshot the target
/// (SessionPool::Acquire) and compare it on reuse: a stale stamp means
/// committed transactions have landed since, so the snapshot must be
/// rebuilt. Cursors obey the same rule as in the single-session world —
/// drain them under one shared grant; any epoch advance invalidates them.
///
/// Writer preference: once a committer is waiting, new shared requests
/// queue behind it. This bounds group-commit latency under a heavy read
/// load and, usefully, lets the cohort gather — while the leader waits
/// for active readers to drain, more committers pile onto the queue and
/// ride the same exclusive grant and fsync.
///
/// Not reentrant. A thread must never request the latch while holding it
/// (in particular: never commit while holding a read grant — the commit
/// blocks on the leader, which blocks on the read grant).
class SharedLatch {
 public:
  void LockShared() {
    std::unique_lock<std::mutex> l(mu_);
    can_read_.wait(l, [&] { return !writer_ && writers_waiting_ == 0; });
    ++readers_;
  }

  void UnlockShared() {
    std::lock_guard<std::mutex> l(mu_);
    if (--readers_ == 0) can_write_.notify_one();
  }

  void LockExclusive() {
    std::unique_lock<std::mutex> l(mu_);
    ++writers_waiting_;
    can_write_.wait(l, [&] { return !writer_ && readers_ == 0; });
    --writers_waiting_;
    writer_ = true;
  }

  void UnlockExclusive() {
    std::lock_guard<std::mutex> l(mu_);
    writer_ = false;
    epoch_.fetch_add(1, std::memory_order_release);
    can_write_.notify_one();
    can_read_.notify_all();
  }

  /// Number of exclusive sections ever completed — the version of the
  /// shared state. Readable without the latch.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// RAII shared grant.
  class ReadGuard {
   public:
    explicit ReadGuard(SharedLatch& latch) : latch_(&latch) {
      latch_->LockShared();
    }
    ~ReadGuard() {
      if (latch_ != nullptr) latch_->UnlockShared();
    }
    ReadGuard(ReadGuard&& o) : latch_(o.latch_) { o.latch_ = nullptr; }
    ReadGuard& operator=(ReadGuard&&) = delete;
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    SharedLatch* latch_;
  };

  /// RAII exclusive grant.
  class WriteGuard {
   public:
    explicit WriteGuard(SharedLatch& latch) : latch_(&latch) {
      latch_->LockExclusive();
    }
    ~WriteGuard() {
      if (latch_ != nullptr) latch_->UnlockExclusive();
    }
    WriteGuard(WriteGuard&& o) : latch_(o.latch_) { o.latch_ = nullptr; }
    WriteGuard& operator=(WriteGuard&&) = delete;
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    SharedLatch* latch_;
  };

 private:
  std::mutex mu_;
  std::condition_variable can_read_;
  std::condition_variable can_write_;
  size_t readers_ = 0;
  size_t writers_waiting_ = 0;
  bool writer_ = false;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace cpdb::service
