#include "service/commit_queue.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace cpdb::service {

namespace {

/// Writeset conflict = one claim is a prefix of (or equal to) another:
/// mutating a node's child map while another member descends through or
/// mutates inside that subtree. Disjoint (prefix-free) claims touch
/// disjoint node sets — see TreeTargetDb::PrepareParallelApply for why
/// the shared ancestors above the claims stay read-only.
bool Conflicts(const std::vector<tree::Path>& a,
               const std::vector<tree::Path>& b) {
  for (const tree::Path& pa : a) {
    for (const tree::Path& pb : b) {
      if (pa.IsPrefixOf(pb) || pb.IsPrefixOf(pa)) return true;
    }
  }
  return false;
}

}  // namespace

CommitQueue::~CommitQueue() {
  {
    MutexLock l(pool_mu_);
    pool_stop_ = true;
    pool_work_.NotifyAll();
  }
  for (std::thread& w : workers_) w.join();
}

void CommitQueue::EnableParallelApply(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Status CommitQueue::Commit(std::function<Status()> apply,
                           std::vector<tree::Path> claims,
                           Timeline* timeline) {
  Request req;
  req.apply = std::move(apply);
  req.claims = std::move(claims);
  req.enqueue_us = obs::NowMicros();

  bool led = false;
  {
    MutexLock l(mu_);
    queue_.push_back(&req);
    if (leader_active_) {
      // Follow: a leader is combining. Wake when our cohort sealed, or
      // when the finishing leader promoted us to run the next one. The
      // wait is on OUR request's CondVar — the leader wakes exactly the
      // threads whose state changed, not every committer in the building.
      while (!req.done && !req.leader) req.cv.Wait(mu_);
    }
    if (!req.done) {
      led = true;
      leader_active_ = true;
      RunCohort();
    }
  }
  // Post-done: the leader's stamps on `req` are ordered by the mu_
  // handshake. The member records its own stage durations — commits are
  // the unit the percentiles answer for, see StageMetrics.
  const double done_us = obs::NowMicros();
  Timeline t;
  t.cohort = req.cohort_id;
  t.cohort_size = req.cohort_size;
  t.parallel = req.parallel;
  t.leader = led;
  t.queue_us = req.lead_us - req.enqueue_us;
  t.apply_us = req.applied_us - req.lead_us;
  t.seal_us = req.sealed_us - req.applied_us;
  t.wake_us = done_us - req.sealed_us;
  t.total_us = done_us - req.enqueue_us;
  if (metrics_.queue_us) metrics_.queue_us->Record(t.queue_us);
  if (metrics_.apply_us) metrics_.apply_us->Record(t.apply_us);
  if (metrics_.seal_us) metrics_.seal_us->Record(t.seal_us);
  if (metrics_.wake_us) metrics_.wake_us->Record(t.wake_us);
  if (metrics_.total_us) metrics_.total_us->Record(t.total_us);
  if (timeline != nullptr) *timeline = t;
  return req.result;
}

void CommitQueue::RunCohort() {
  // Acquire the exclusive grant BEFORE draining: every committer that
  // arrives while we wait out the active readers joins this cohort and
  // rides our fsync — the opportunistic-combining window.
  mu_.Unlock();
  latch_->LockExclusive();
  mu_.Lock();
  std::vector<Request*> cohort(queue_.begin(), queue_.end());
  queue_.clear();
  TestHooks hooks = hooks_;  // per-cohort snapshot; hooks_ stays under mu_
  const uint64_t cohort_id = ++cohort_seq_;
  mu_.Unlock();

  // One leader-side stamp per stage boundary, shared by every member:
  // the cohort moves through the pipeline as a unit.
  const double lead_us = obs::NowMicros();
  uint64_t syncs_before = sync_probe_ ? sync_probe_() : 0;
  ApplyCohort(cohort);
  const double applied_us = obs::NowMicros();
  if (hooks.before_seal) hooks.before_seal(cohort.size());
  Status sealed = seal_(cohort.size());
  if (hooks.after_seal) hooks.after_seal(cohort.size());
  const double sealed_us = obs::NowMicros();
  if (sync_probe_ && sync_probe_() != syncs_before + 1) {
    // The ONE-seal contract is load-bearing for both durability (cohort =
    // one WAL record) and the perf model (fsyncs_per_commit = 1/cohort);
    // a member's apply closure running its own barrier silently breaks
    // crash atomicity, so this is a fail-stop, parallel apply or not.
    std::fprintf(stderr,
                 "CommitQueue: cohort of %zu sealed with %llu barriers, "
                 "expected exactly 1\n",
                 cohort.size(),
                 static_cast<unsigned long long>(sync_probe_() -
                                                 syncs_before));
    std::abort();
  }
  if (publish_) publish_();
  latch_->UnlockExclusive();

  if (metrics_.cohort_size) {
    metrics_.cohort_size->Record(static_cast<double>(cohort.size()));
  }

  mu_.Lock();
  stats_.commits += cohort.size();
  stats_.cohorts += 1;
  stats_.combined += cohort.size() - 1;
  if (cohort.size() > stats_.max_cohort) stats_.max_cohort = cohort.size();
  for (Request* r : cohort) {
    if (!sealed.ok() && r->result.ok()) r->result = sealed;
    r->lead_us = lead_us;
    r->applied_us = applied_us;
    r->sealed_us = sealed_us;
    r->cohort_id = cohort_id;
    r->cohort_size = static_cast<uint32_t>(cohort.size());
    r->done = true;
    r->cv.NotifyOne();
  }
  // One cohort per leader: pass the baton so a hot queue cannot pin one
  // committer into combining forever.
  if (!queue_.empty()) {
    queue_.front()->leader = true;
    queue_.front()->cv.NotifyOne();
  } else {
    leader_active_ = false;
  }
}

void CommitQueue::ApplyCohort(const std::vector<Request*>& cohort) {
  uint64_t parallel_cohorts = 0;
  uint64_t parallel_applies = 0;
  size_t i = 0;
  while (i < cohort.size()) {
    // Grow a maximal run of consecutive members with declared writesets
    // that are pairwise disjoint. Members without claims, or the first
    // conflicting member, end the run (and apply in enqueue order, which
    // preserves their relative order with everything they overlap).
    size_t end = i + 1;
    if (!workers_.empty() && prepare_parallel_ && !cohort[i]->claims.empty()) {
      while (end < cohort.size() && !cohort[end]->claims.empty()) {
        bool disjoint = true;
        for (size_t k = i; k < end && disjoint; ++k) {
          disjoint = !Conflicts(cohort[k]->claims, cohort[end]->claims);
        }
        if (!disjoint) break;
        ++end;
      }
    }
    bool parallel = end - i >= 2;
    if (parallel) {
      std::vector<tree::Path> all_claims;
      for (size_t k = i; k < end; ++k) {
        all_claims.insert(all_claims.end(), cohort[k]->claims.begin(),
                          cohort[k]->claims.end());
      }
      parallel = prepare_parallel_(all_claims);
    }
    if (parallel) {
      std::vector<Request*> batch(cohort.begin() + static_cast<long>(i),
                                  cohort.begin() + static_cast<long>(end));
      for (Request* r : batch) r->parallel = true;
      RunParallelBatch(batch);
      ++parallel_cohorts;
      parallel_applies += batch.size();
      if (metrics_.parallel_batch) {
        metrics_.parallel_batch->Record(static_cast<double>(batch.size()));
      }
    } else {
      for (size_t k = i; k < end; ++k) {
        cohort[k]->result = cohort[k]->apply();
      }
    }
    i = end;
  }
  if (parallel_cohorts > 0) {
    MutexLock l(mu_);
    stats_.parallel_cohorts += parallel_cohorts;
    stats_.parallel_applies += parallel_applies;
  }
}

void CommitQueue::RunParallelBatch(const std::vector<Request*>& batch) {
  pool_mu_.Lock();
  batch_ = &batch;
  batch_next_ = 0;
  batch_pending_ = batch.size();
  pool_work_.NotifyAll();
  // The leader applies too — with N workers, N+1 appliers drain the
  // batch, and on a loaded pool the leader never just waits.
  while (batch_next_ < batch_->size()) {
    size_t idx = batch_next_++;
    Request* r = (*batch_)[idx];
    pool_mu_.Unlock();
    r->result = r->apply();
    pool_mu_.Lock();
    if (--batch_pending_ == 0) pool_done_.NotifyAll();
  }
  while (batch_pending_ > 0) pool_done_.Wait(pool_mu_);
  batch_ = nullptr;
  pool_mu_.Unlock();
}

void CommitQueue::WorkerLoop() {
  pool_mu_.Lock();
  while (!pool_stop_) {
    if (batch_ == nullptr || batch_next_ >= batch_->size()) {
      pool_work_.Wait(pool_mu_);
      continue;
    }
    size_t idx = batch_next_++;
    Request* r = (*batch_)[idx];
    pool_mu_.Unlock();
    r->result = r->apply();
    pool_mu_.Lock();
    if (--batch_pending_ == 0) pool_done_.NotifyAll();
  }
  pool_mu_.Unlock();
}

size_t CommitQueue::Pending() const {
  MutexLock l(mu_);
  return queue_.size();
}

CommitQueue::Stats CommitQueue::stats() const {
  MutexLock l(mu_);
  return stats_;
}

}  // namespace cpdb::service
