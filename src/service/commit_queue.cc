#include "service/commit_queue.h"

#include <utility>
#include <vector>

namespace cpdb::service {

Status CommitQueue::Commit(std::function<Status()> apply) {
  Request req;
  req.apply = std::move(apply);

  MutexLock l(mu_);
  queue_.push_back(&req);
  if (leader_active_) {
    // Follow: a leader is combining. Wake when our cohort sealed, or when
    // the finishing leader promoted us to run the next one. (Explicit
    // predicate loop: the analysis cannot see lock state inside lambdas.)
    while (!req.done && !req.leader) wake_.Wait(mu_);
    if (req.done) return req.result;
  }
  leader_active_ = true;
  RunCohort();
  return req.result;
}

void CommitQueue::RunCohort() {
  // Acquire the exclusive grant BEFORE draining: every committer that
  // arrives while we wait out the active readers joins this cohort and
  // rides our fsync — the opportunistic-combining window.
  mu_.Unlock();
  latch_->LockExclusive();
  mu_.Lock();
  std::vector<Request*> cohort(queue_.begin(), queue_.end());
  queue_.clear();
  TestHooks hooks = hooks_;  // per-cohort snapshot; hooks_ stays under mu_
  mu_.Unlock();

  for (Request* r : cohort) {
    r->result = r->apply();
  }
  if (hooks.before_seal) hooks.before_seal(cohort.size());
  Status sealed = seal_(cohort.size());
  if (hooks.after_seal) hooks.after_seal(cohort.size());
  latch_->UnlockExclusive();

  mu_.Lock();
  stats_.commits += cohort.size();
  stats_.cohorts += 1;
  stats_.combined += cohort.size() - 1;
  if (cohort.size() > stats_.max_cohort) stats_.max_cohort = cohort.size();
  for (Request* r : cohort) {
    if (!sealed.ok() && r->result.ok()) r->result = sealed;
    r->done = true;
  }
  // One cohort per leader: pass the baton so a hot queue cannot pin one
  // committer into combining forever.
  if (!queue_.empty()) {
    queue_.front()->leader = true;
  } else {
    leader_active_ = false;
  }
  wake_.NotifyAll();
}

size_t CommitQueue::Pending() const {
  MutexLock l(mu_);
  return queue_.size();
}

CommitQueue::Stats CommitQueue::stats() const {
  MutexLock l(mu_);
  return stats_;
}

}  // namespace cpdb::service
