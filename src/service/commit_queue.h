#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "service/latch.h"
#include "tree/path.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace cpdb::service {

/// Leader/follower group commit — the PRISM-style opportunistic combiner
/// over the engine's exclusive latch.
///
/// Concurrent committers enqueue their transaction's apply closure and
/// block. The first arrival (or a promoted successor) becomes the
/// *leader*: it acquires the exclusive latch — while it waits for active
/// readers to drain, more committers pile onto the queue — then drains
/// everything queued as one *cohort*, runs each member's apply closure in
/// enqueue order (transaction numbers are minted inside the closures via
/// the engine's allocator, so tid order and apply order coincide by
/// construction), seals the whole cohort with ONE call to the engine's
/// seal function (Database::Sync + TargetDb::Sync: one WAL record, one
/// fsync), publishes the new committed version (SnapshotManager),
/// releases the latch, and wakes every follower with its own result —
/// each on its OWN condition variable, so a cohort's completion costs one
/// targeted wakeup per member instead of a thundering herd on a shared
/// CondVar. A leader serves exactly one cohort; if the queue refilled
/// meanwhile, the front waiter is promoted so no thread combines forever.
///
/// Disjoint-subtree parallel apply: a committer may declare its WRITESET
/// — the target-relative subtree roots its apply closure writes. When a
/// worker pool is enabled (EnableParallelApply) the leader partitions the
/// cohort into maximal runs of consecutive members with declared,
/// pairwise-disjoint writesets (no claim a prefix of another's) and runs
/// each such batch concurrently across the pool — under the SAME single
/// exclusive grant and the SAME single seal. Members without a writeset,
/// or overlapping ones, break the run and apply in order, so the
/// in-order semantics are the universal fallback. Disjoint transactions
/// commute, so any interleaving of a batch equals some serial order; the
/// engine's tid-order oracle tests hold verbatim.
///
/// Error semantics: each member keeps its own apply error (one failed
/// transaction does not poison its cohort-mates — their writes are
/// independent and still seal). A seal failure is reported to every
/// member whose apply succeeded: their writes did not become durable, and
/// the durability engine fail-stops (storage::Durability::Sync), so no
/// later cohort can leapfrog the gap.
///
/// Crash atomicity: the cohort's writes ride one WAL record, so recovery
/// sees all of them or none — a crash after the leader's fsync keeps the
/// whole cohort, a crash before loses the whole cohort (see
/// tests/service_test.cc's capture-and-reopen crash tests).
class CommitQueue {
 public:
  /// `seal` makes everything the cohort applied durable in one barrier;
  /// it receives the cohort size and runs under the exclusive latch.
  CommitQueue(SharedLatch* latch, std::function<Status(size_t)> seal)
      : latch_(latch), seal_(std::move(seal)) {}
  ~CommitQueue();

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  /// One committed transaction's walk through the pipeline, reported back
  /// to its committer. Stage boundaries are the leader's own timestamps:
  ///
  ///   queue_us  enqueue -> this cohort's leader drained the queue
  ///   apply_us  the cohort's apply phase (shared by every member — the
  ///             member blocks for the whole phase either way)
  ///   seal_us   the cohort's single durability barrier
  ///   wake_us   seal -> this member observed completion
  ///   total_us  enqueue -> done (what the committer's caller paid)
  struct Timeline {
    uint64_t cohort = 0;       ///< cohort sequence number (1-based)
    uint32_t cohort_size = 0;  ///< members sealed by the same barrier
    bool parallel = false;     ///< this member applied on the worker pool
    bool leader = false;       ///< this member led its cohort
    double queue_us = 0;
    double apply_us = 0;
    double seal_us = 0;
    double wake_us = 0;
    double total_us = 0;
  };

  /// Commits one transaction: enqueues `apply`, combines with whatever
  /// else is committing, and returns once this transaction is applied and
  /// sealed (or failed). `apply` runs under the exclusive latch, possibly
  /// on another committer's (or pool worker's) thread. `claims` is the
  /// transaction's writeset — the target-relative subtree roots its apply
  /// writes — or empty when unknown (always safe: empty claims pin the
  /// member to in-order apply). The caller must hold neither the latch
  /// nor a read grant (see SharedLatch's reentrancy rule). `timeline`,
  /// when non-null, receives this transaction's stage breakdown (sessions
  /// forward it into the engine's trace buffer).
  Status Commit(std::function<Status()> apply,
                std::vector<tree::Path> claims = {},
                Timeline* timeline = nullptr) CPDB_EXCLUDES(mu_, *latch_);

  /// Spins up `workers` pool threads for disjoint-subtree parallel apply.
  /// Call once, before committers start; 0 keeps the serial path. The
  /// leader participates, so `workers` counts the EXTRA appliers.
  void EnableParallelApply(size_t workers) CPDB_EXCLUDES(pool_mu_);

  /// After the cohort's applies, before its seal, with the exclusive
  /// latch held: the engine publishes the new committed version here.
  void set_publish(std::function<void()> publish) { publish_ = std::move(publish); }

  /// Invoked with the union of a parallel batch's claims before its
  /// members run concurrently; returning false demotes the batch to
  /// in-order apply (wrapper cannot support concurrent application).
  void set_prepare_parallel(
      std::function<bool(const std::vector<tree::Path>&)> prepare) {
    prepare_parallel_ = std::move(prepare);
  }

  /// Monotonic count of the engine's durability barriers (SyncShared
  /// calls). When set, RunCohort asserts the ONE-seal contract: exactly
  /// one barrier per cohort, parallel-applied or not — a member's apply
  /// closure sneaking its own Database::Sync past the group commit is a
  /// fail-stop bug, not a perf footnote.
  void set_sync_probe(std::function<uint64_t()> probe) {
    sync_probe_ = std::move(probe);
  }

  /// Stage-latency sinks, commit-weighted: each committed transaction
  /// records its own queue/apply/seal/wake/total durations, so a
  /// 16-member cohort counts 16 observations of the one seal it shared —
  /// percentiles then answer "what did a COMMIT experience", matching the
  /// benches' client-side latency. `cohort_size` and `parallel_batch` are
  /// cohort-weighted (one observation per cohort / per parallel run).
  /// Any pointer may be null. Set before committers start, like the
  /// publish/seal hooks: the fields are written once single-threaded.
  struct StageMetrics {
    obs::Histogram* queue_us = nullptr;
    obs::Histogram* apply_us = nullptr;
    obs::Histogram* seal_us = nullptr;
    obs::Histogram* wake_us = nullptr;
    obs::Histogram* total_us = nullptr;
    obs::Histogram* cohort_size = nullptr;
    obs::Histogram* parallel_batch = nullptr;  ///< members per parallel run
  };
  void set_metrics(const StageMetrics& m) { metrics_ = m; }

  /// Committers currently enqueued and not yet applied.
  size_t Pending() const CPDB_EXCLUDES(mu_);

  struct Stats {
    uint64_t commits = 0;   ///< transactions committed
    uint64_t cohorts = 0;   ///< exclusive grants (= seal calls)
    uint64_t combined = 0;  ///< commits that rode another leader's seal
    uint64_t max_cohort = 0;
    uint64_t parallel_cohorts = 0;  ///< disjoint batches applied in parallel
    uint64_t parallel_applies = 0;  ///< commits applied on the pool
  };
  Stats stats() const CPDB_EXCLUDES(mu_);

  /// Test-only crash injection around the seal (service_test's
  /// crash-during-group-commit coverage). Called on the leader thread,
  /// cohort size as argument, exclusive latch held. Install hooks before
  /// committers start: the leader snapshots them per cohort under mu_.
  struct TestHooks {
    std::function<void(size_t)> before_seal;
    std::function<void(size_t)> after_seal;
  };
  void set_test_hooks(TestHooks hooks) CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    hooks_ = std::move(hooks);
  }

 private:
  struct Request {
    std::function<Status()> apply;
    std::vector<tree::Path> claims;  ///< declared writeset; empty = unknown
    Status result;        ///< written by the leader, read after `done`
    bool done = false;    ///< guarded by mu_ (cross-thread handshake)
    bool leader = false;  ///< promoted: wake up and run the next cohort
    CondVar cv;           ///< this member's targeted wakeup (no herd)
    // Trace plumbing. `enqueue_us` is the committer's own stamp; the rest
    // are written by the leader before the done handshake (the mu_
    // release/acquire pair orders them for the member's post-wait reads).
    double enqueue_us = 0;
    double lead_us = 0;     ///< leader drained the queue (cohort formed)
    double applied_us = 0;  ///< cohort apply phase finished
    double sealed_us = 0;   ///< cohort seal returned
    uint64_t cohort_id = 0;
    uint32_t cohort_size = 0;
    bool parallel = false;  ///< this member rode the worker pool
  };

  /// Runs one cohort. Called with mu_ held and this thread as leader;
  /// returns with mu_ held, the cohort done, and leadership passed on (or
  /// released). Acquires and releases the exclusive latch internally.
  void RunCohort() CPDB_REQUIRES(mu_);

  /// Applies cohort members in order, upgrading maximal disjoint runs to
  /// the worker pool. Exclusive latch held; mu_ NOT held.
  void ApplyCohort(const std::vector<Request*>& cohort)
      CPDB_EXCLUDES(mu_, pool_mu_);

  /// Runs `batch` (>= 2 members, pairwise-disjoint claims) across the
  /// pool; the calling leader participates. Returns when every member
  /// has applied.
  void RunParallelBatch(const std::vector<Request*>& batch)
      CPDB_EXCLUDES(pool_mu_);

  void WorkerLoop() CPDB_EXCLUDES(pool_mu_);

  SharedLatch* latch_;
  std::function<Status(size_t)> seal_;
  std::function<void()> publish_;
  std::function<bool(const std::vector<tree::Path>&)> prepare_parallel_;
  std::function<uint64_t()> sync_probe_;
  StageMetrics metrics_;  ///< set once before committers start

  mutable Mutex mu_;
  std::deque<Request*> queue_ CPDB_GUARDED_BY(mu_);
  TestHooks hooks_ CPDB_GUARDED_BY(mu_);
  bool leader_active_ CPDB_GUARDED_BY(mu_) = false;
  Stats stats_ CPDB_GUARDED_BY(mu_);
  uint64_t cohort_seq_ CPDB_GUARDED_BY(mu_) = 0;

  // ----- Apply pool (disjoint-subtree parallel apply) ----------------------
  Mutex pool_mu_;
  CondVar pool_work_;  ///< batch posted (or shutdown)
  CondVar pool_done_;  ///< batch fully applied
  std::vector<std::thread> workers_;  ///< set once in EnableParallelApply
  const std::vector<Request*>* batch_ CPDB_GUARDED_BY(pool_mu_) = nullptr;
  size_t batch_next_ CPDB_GUARDED_BY(pool_mu_) = 0;
  size_t batch_pending_ CPDB_GUARDED_BY(pool_mu_) = 0;
  bool pool_stop_ CPDB_GUARDED_BY(pool_mu_) = false;
};

}  // namespace cpdb::service
