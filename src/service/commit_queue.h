#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "service/latch.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace cpdb::service {

/// Leader/follower group commit — the PRISM-style opportunistic combiner
/// over the engine's exclusive latch.
///
/// Concurrent committers enqueue their transaction's apply closure and
/// block. The first arrival (or a promoted successor) becomes the
/// *leader*: it acquires the exclusive latch — while it waits for active
/// readers to drain, more committers pile onto the queue — then drains
/// everything queued as one *cohort*, runs each member's apply closure in
/// enqueue order (transaction numbers are minted inside the closures via
/// the engine's allocator, so tid order and apply order coincide by
/// construction), seals the whole cohort with ONE call to the engine's
/// seal function (Database::Sync + TargetDb::Sync: one WAL record, one
/// fsync), releases the latch, and wakes every follower with its own
/// result. A leader serves exactly one cohort; if the queue refilled
/// meanwhile, the front waiter is promoted so no thread combines forever.
///
/// Error semantics: each member keeps its own apply error (one failed
/// transaction does not poison its cohort-mates — their writes are
/// independent and still seal). A seal failure is reported to every
/// member whose apply succeeded: their writes did not become durable, and
/// the durability engine fail-stops (storage::Durability::Sync), so no
/// later cohort can leapfrog the gap.
///
/// Crash atomicity: the cohort's writes ride one WAL record, so recovery
/// sees all of them or none — a crash after the leader's fsync keeps the
/// whole cohort, a crash before loses the whole cohort (see
/// tests/service_test.cc's capture-and-reopen crash tests).
class CommitQueue {
 public:
  /// `seal` makes everything the cohort applied durable in one barrier;
  /// it receives the cohort size and runs under the exclusive latch.
  CommitQueue(SharedLatch* latch, std::function<Status(size_t)> seal)
      : latch_(latch), seal_(std::move(seal)) {}

  /// Commits one transaction: enqueues `apply`, combines with whatever
  /// else is committing, and returns once this transaction is applied and
  /// sealed (or failed). `apply` runs under the exclusive latch, possibly
  /// on another committer's thread. The caller must hold neither the
  /// latch nor a read grant (see SharedLatch's reentrancy rule).
  Status Commit(std::function<Status()> apply) CPDB_EXCLUDES(mu_, *latch_);

  /// Committers currently enqueued and not yet applied.
  size_t Pending() const CPDB_EXCLUDES(mu_);

  struct Stats {
    uint64_t commits = 0;   ///< transactions committed
    uint64_t cohorts = 0;   ///< exclusive grants (= seal calls)
    uint64_t combined = 0;  ///< commits that rode another leader's seal
    uint64_t max_cohort = 0;
  };
  Stats stats() const CPDB_EXCLUDES(mu_);

  /// Test-only crash injection around the seal (service_test's
  /// crash-during-group-commit coverage). Called on the leader thread,
  /// cohort size as argument, exclusive latch held. Install hooks before
  /// committers start: the leader snapshots them per cohort under mu_.
  struct TestHooks {
    std::function<void(size_t)> before_seal;
    std::function<void(size_t)> after_seal;
  };
  void set_test_hooks(TestHooks hooks) CPDB_EXCLUDES(mu_) {
    MutexLock l(mu_);
    hooks_ = std::move(hooks);
  }

 private:
  struct Request {
    std::function<Status()> apply;
    Status result;        ///< written by the leader, read after `done`
    bool done = false;    ///< guarded by mu_ (cross-thread handshake)
    bool leader = false;  ///< promoted: wake up and run the next cohort
  };

  /// Runs one cohort. Called with mu_ held and this thread as leader;
  /// returns with mu_ held, the cohort done, and leadership passed on (or
  /// released). Acquires and releases the exclusive latch internally.
  void RunCohort() CPDB_REQUIRES(mu_);

  SharedLatch* latch_;
  std::function<Status(size_t)> seal_;

  mutable Mutex mu_;
  CondVar wake_;
  std::deque<Request*> queue_ CPDB_GUARDED_BY(mu_);
  TestHooks hooks_ CPDB_GUARDED_BY(mu_);
  bool leader_active_ CPDB_GUARDED_BY(mu_) = false;
  Stats stats_ CPDB_GUARDED_BY(mu_);
};

}  // namespace cpdb::service
