#include "service/session.h"

#include <utility>

namespace cpdb::service {

Session::~Session() {
  if (engine_ != nullptr) engine_->snapshots().Unpin(pin_);
}

Status Session::Apply(const update::Update& u) {
  if (per_op_) {
    // One op = one transaction (N/H): apply under the exclusive grant and
    // ride the cohort's single fsync.
    return CommitTraced([&] { return editor_->ApplyUpdate(u); }, {});
  }
  return editor_->ApplyUpdate(u);
}

Status Session::ApplyScript(const update::Script& script, size_t* applied) {
  if (per_op_) {
    // The whole staged batch (one tid per op, one WriteRecords, one
    // native ApplyBatch) is one commit unit.
    return CommitTraced([&] { return editor_->ApplyScript(script, applied); },
                        {});
  }
  return editor_->ApplyScript(script, applied);
}

Status Session::Commit() {
  if (per_op_) return editor_->Commit();  // store-level no-op, latch-free
  // Declare the staged writeset before enqueueing: disjoint cohort-mates
  // go to the apply pool together (empty claims = in-order apply).
  return CommitTraced([&] { return editor_->Commit(); },
                      editor_->StagedWriteClaims());
}

Status Session::CommitTraced(std::function<Status()> apply,
                             std::vector<tree::Path> claims) {
  // Render the claim set for the trace before the queue consumes it —
  // SLOWLOG shows a human the writeset, so strings beat live Paths.
  std::vector<std::string> claim_strs;
  claim_strs.reserve(claims.size());
  for (const tree::Path& p : claims) claim_strs.push_back(p.ToString());

  CommitQueue::Timeline tl;
  Status st = engine_->Commit(std::move(apply), std::move(claims), &tl);
  if (!st.ok()) return st;
  AdvanceReadWatermark();

  obs::CommitSpan span;
  span.tid = LastCommittedTid();
  span.cohort = tl.cohort;
  span.cohort_size = tl.cohort_size;
  span.parallel = tl.parallel;
  span.leader = tl.leader;
  span.queue_us = tl.queue_us;
  span.apply_us = tl.apply_us;
  span.seal_us = tl.seal_us;
  span.wake_us = tl.wake_us;
  span.total_us = tl.total_us;
  span.claims = std::move(claim_strs);

  if (trace_sink_ != nullptr && trace_sink_->active()) {
    // Link the commit into the request's trace: one child span per queue
    // stage, start times synthesized backwards from the stage durations
    // (the Timeline records durations, not wall-clock stamps). Anchor on
    // the parent span's start when it is in this collector, else on now
    // minus the total.
    double base;
    if (const obs::Span* parent = trace_sink_->Find(trace_parent_)) {
      base = parent->start_us;
    } else {
      base = obs::NowMicros() - tl.total_us;
    }
    const int64_t tid = span.tid;
    double at = base;
    const struct {
      const char* kind;
      double dur;
    } stages[] = {{"commit.queue", tl.queue_us},
                  {"commit.apply", tl.apply_us},
                  {"commit.seal", tl.seal_us},
                  {"commit.wake", tl.wake_us}};
    for (const auto& stage : stages) {
      trace_sink_->AppendTimed(stage.kind, trace_parent_, at, stage.dur, tid);
      at += stage.dur;
    }
  }

  engine_->trace().Record(std::move(span));
  return st;
}

void Session::AdvanceReadWatermark() {
  // The session just committed: its own records are younger than its
  // pinned snapshot, and hiding a curator's own committed work from their
  // queries would be absurd. Advance the provenance view's bound to the
  // new committed watermark (the pinned TREE stays as acquired — swapping
  // it is the pool's refresh, not the commit path).
  backend_view_.set_read_watermark(engine_->CommittedTid());
  // March the pin forward too. The universe's copy-on-write nodes are
  // owned by the universe itself, so the old pin's only effect was to
  // hold the version chain's GC back — a job for idle READERS at old
  // snapshots, not for a session that just advanced the committed state.
  SnapshotManager& snaps = engine_->snapshots();
  SnapshotManager::Pin fresh = snaps.PinLatest();
  if (fresh.seq != 0) {
    snaps.Unpin(pin_);
    pin_ = std::move(fresh);
  }
}

Status Session::Abort() { return editor_->Abort(); }

Result<std::unique_ptr<Session>> SessionPool::Acquire() {
  for (;;) {
    std::unique_ptr<Session> s;
    {
      MutexLock l(mu_);
      if (free_.empty()) break;
      s = std::move(free_.back());
      free_.pop_back();
    }
    // Pooled sessions hold no pin (idle inventory must never hold back
    // version GC), so even the fresh-session fast path re-pins on the
    // way out. When the pin lands exactly at the session's watermark the
    // tree is current and handed back untouched; a race past the
    // staleness check just falls into the refresh below.
    if (s->snapshot_tid_ == engine_->CommittedTid()) {
      SnapshotManager::Pin pin;
      if (EnsureLatestPinned(&pin)) {
        if (pin.tid == s->snapshot_tid_) {
          s->pin_ = std::move(pin);
          MutexLock l(mu_);
          ++reused_;
          return s;
        }
        engine_->snapshots().Unpin(pin);
      }
    }
    // Stale: committed transactions landed since this session was
    // pooled. Re-pin the committed version and swap the target subtree —
    // O(1), no scan — instead of tearing the session down. Runs outside
    // mu_: a lazy publish takes a read grant, and the pool must not stall
    // behind an in-flight cohort.
    if (Refresh(s.get())) {
      MutexLock l(mu_);
      ++reused_;
      ++refreshed_;
      return s;
    }
    // The chain could not serve (target without cheap snapshots, or a
    // transaction left staged). Drop; the destructor releases the pin.
  }
  return Build();
}

bool SessionPool::EnsureLatestPinned(SnapshotManager::Pin* pin) {
  SnapshotManager& snaps = engine_->snapshots();
  // Read the watermark BEFORE pinning: the chain only advances, so a pin
  // at least as new as `committed` is current — the reverse order would
  // misread a commit that lands in between as a lagging chain.
  int64_t committed = engine_->CommittedTid();
  *pin = snaps.PinLatest();
  if (pin->seq != 0 && pin->tid >= committed) return true;
  snaps.Unpin(*pin);
  if (!engine_->target()->CheapSnapshots()) return false;
  // Lazy publish: cohorts only advance the watermark (see
  // Engine::PublishSnapshot for why), so the first acquire at a new
  // watermark materializes the version — an O(1) copy-on-write clone for
  // cheap-snapshot targets — under a shared grant, so the tree and the
  // watermark come from the same committed state.
  auto guard = engine_->Read();
  committed = engine_->CommittedTid();
  auto t = engine_->target()->TreeFromDb();
  if (!t.ok()) return false;
  snaps.Publish(committed, std::move(*t));
  *pin = snaps.PinLatest();
  return pin->seq != 0;
}

bool SessionPool::Refresh(Session* s) {
  SnapshotManager& snaps = engine_->snapshots();
  SnapshotManager::Pin pin;
  if (!EnsureLatestPinned(&pin)) return false;
  Status st = s->editor_->ResetTargetSnapshot(pin.root->Clone());
  if (!st.ok()) {
    snaps.Unpin(pin);
    return false;
  }
  snaps.Unpin(s->pin_);
  s->pin_ = std::move(pin);
  s->snapshot_tid_ = s->pin_.tid;
  s->backend_view_.set_read_watermark(s->snapshot_tid_);
  snaps.NoteRefresh();
  return true;
}

Result<tree::Tree> SessionPool::AcquireSnapshot(Session* s) {
  SnapshotManager& snaps = engine_->snapshots();
  SnapshotManager::Pin pin;
  if (EnsureLatestPinned(&pin)) {
    // The chain serves (directly or via a lazy publish): a CoW clone of
    // the pinned root is O(fanout), not O(database).
    s->pin_ = std::move(pin);
    s->snapshot_tid_ = s->pin_.tid;
    return s->pin_.root->Clone();
  }

  // No cheap snapshots: materialize the committed state with a full scan,
  // under a shared grant so the tree and the watermark come from the same
  // committed state. The scan is counted (NodeCount is the modelled row
  // transfer); the warm-pool acceptance test asserts this counter stays
  // flat under write traffic. Still published: until the next commit,
  // other builds can pin it instead of re-scanning.
  auto guard = engine_->Read();
  int64_t tid = engine_->CommittedTid();
  CPDB_ASSIGN_OR_RETURN(tree::Tree t, engine_->target()->TreeFromDb());
  snaps.NoteRebuild(t.NodeCount());
  snaps.Publish(tid, t.Clone());
  SnapshotManager::Pin seeded = snaps.PinLatest();
  if (seeded.seq != 0 && seeded.tid == tid) {
    s->pin_ = std::move(seeded);
  } else {
    snaps.Unpin(seeded);
  }
  s->snapshot_tid_ = tid;
  return t;
}

Result<std::unique_ptr<Session>> SessionPool::Build() {
  // One builder at a time: a bootstrap materialization reads the shared
  // wrappers, and a relational target/source charges the shared database's
  // CostModel from TreeFromDb — safe against committers via the read
  // grant in AcquireSnapshot, and against other builders only by this
  // serialization (Release and Acquire stay on mu_ so they never block
  // behind a slow snapshot).
  MutexLock build_lock(build_mu_);
  std::unique_ptr<Session> s(new Session());
  s->engine_ = engine_;
  s->options_ = options_;
  s->per_op_ = options_.strategy == provenance::Strategy::kNaive ||
               options_.strategy == provenance::Strategy::kHierarchical;
  s->cost_.set_params(engine_->db()->cost().params());
  s->backend_view_ =
      provenance::ProvBackend::View(engine_->backend(), &s->cost_);

  CPDB_ASSIGN_OR_RETURN(tree::Tree snapshot, AcquireSnapshot(s.get()));
  // The relational half of the snapshot: provenance reads through this
  // session's view stop at the pinned watermark (ScanSpec::visible_col).
  s->backend_view_.set_read_watermark(s->snapshot_tid_);
  EditorOptions opts;
  opts.strategy = options_.strategy;
  opts.first_tid = s->snapshot_tid_ + 1;
  opts.record_txn_meta = options_.record_txn_meta;
  opts.user = options_.user;
  opts.tid_allocator = [engine = engine_] { return engine->NextTid(); };
  opts.defer_sync = true;  // the engine's cohort seal owns the barrier
  CPDB_ASSIGN_OR_RETURN(
      s->editor_,
      Editor::CreateWithSnapshot(engine_->target(), &s->backend_view_,
                                 std::move(snapshot), std::move(opts)));
  for (wrap::SourceDb* src : options_.sources) {
    CPDB_RETURN_IF_ERROR(s->editor_->MountSource(src));
  }
  MutexLock l(mu_);
  ++built_;
  return s;
}

void SessionPool::Release(std::unique_ptr<Session> session) {
  if (session == nullptr) return;
  if (session->editor_->PendingOps() > 0 ||
      session->editor_->store()->HasPending()) {
    (void)session->Abort();
  }
  engine_->cost_totals().Add(session->cost_.Snap());
  session->cost_.Reset();
  // A pooled session is not a live reader: drop its pin entirely so idle
  // inventory never holds back version GC — a pooled session that is
  // never re-acquired would otherwise pin its release-time version
  // forever. The tree stays valid regardless (the universe owns its
  // copy-on-write nodes); Acquire re-pins before handing the session
  // back out.
  engine_->snapshots().Unpin(session->pin_);
  session->pin_ = SnapshotManager::Pin{};
  MutexLock l(mu_);
  free_.push_back(std::move(session));
}

size_t SessionPool::built() const {
  MutexLock l(mu_);
  return built_;
}

size_t SessionPool::reused() const {
  MutexLock l(mu_);
  return reused_;
}

size_t SessionPool::refreshed() const {
  MutexLock l(mu_);
  return refreshed_;
}

}  // namespace cpdb::service
