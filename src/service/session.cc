#include "service/session.h"

namespace cpdb::service {

Status Session::Apply(const update::Update& u) {
  if (per_op_) {
    // One op = one transaction (N/H): apply under the exclusive grant and
    // ride the cohort's single fsync.
    return engine_->Commit([&] { return editor_->ApplyUpdate(u); });
  }
  return editor_->ApplyUpdate(u);
}

Status Session::ApplyScript(const update::Script& script, size_t* applied) {
  if (per_op_) {
    // The whole staged batch (one tid per op, one WriteRecords, one
    // native ApplyBatch) is one commit unit.
    return engine_->Commit(
        [&] { return editor_->ApplyScript(script, applied); });
  }
  return editor_->ApplyScript(script, applied);
}

Status Session::Commit() {
  if (per_op_) return editor_->Commit();  // store-level no-op, latch-free
  return engine_->Commit([&] { return editor_->Commit(); });
}

Status Session::Abort() { return editor_->Abort(); }

Result<std::unique_ptr<Session>> SessionPool::Acquire() {
  {
    MutexLock l(mu_);
    uint64_t now = engine_->latch().Epoch();
    while (!free_.empty()) {
      std::unique_ptr<Session> s = std::move(free_.back());
      free_.pop_back();
      if (s->base_epoch_ == now) {
        ++reused_;
        return s;
      }
      // Stale snapshot: committed transactions landed since this session
      // was pooled. Its cost was folded at Release; just drop it.
    }
  }
  return Build();
}

Result<std::unique_ptr<Session>> SessionPool::Build() {
  // One builder at a time: snapshotting reads the shared wrappers, and a
  // relational target/source charges the shared database's CostModel from
  // TreeFromDb — safe against committers via the read grant below, and
  // against other builders only by this serialization (Release and
  // Acquire stay on mu_ so they never block behind a slow snapshot).
  MutexLock build_lock(build_mu_);
  std::unique_ptr<Session> s(new Session());
  s->engine_ = engine_;
  s->options_ = options_;
  s->per_op_ = options_.strategy == provenance::Strategy::kNaive ||
               options_.strategy == provenance::Strategy::kHierarchical;
  s->cost_.set_params(engine_->db()->cost().params());
  s->backend_view_ =
      provenance::ProvBackend::View(engine_->backend(), &s->cost_);

  // Snapshot under a shared grant: the target's tree view and the
  // last-allocated tid must come from the same committed state.
  auto guard = engine_->Read();
  EditorOptions opts;
  opts.strategy = options_.strategy;
  opts.first_tid = engine_->LastAllocatedTid() + 1;
  opts.record_txn_meta = options_.record_txn_meta;
  opts.user = options_.user;
  opts.tid_allocator = [engine = engine_] { return engine->NextTid(); };
  opts.defer_sync = true;  // the engine's cohort seal owns the barrier
  CPDB_ASSIGN_OR_RETURN(
      s->editor_,
      Editor::Create(engine_->target(), &s->backend_view_, std::move(opts)));
  for (wrap::SourceDb* src : options_.sources) {
    CPDB_RETURN_IF_ERROR(s->editor_->MountSource(src));
  }
  s->base_epoch_ = engine_->latch().Epoch();
  MutexLock l(mu_);
  ++built_;
  return s;
}

void SessionPool::Release(std::unique_ptr<Session> session) {
  if (session == nullptr) return;
  if (session->editor_->PendingOps() > 0 ||
      session->editor_->store()->HasPending()) {
    (void)session->Abort();
  }
  engine_->cost_totals().Add(session->cost_.Snap());
  session->cost_.Reset();
  MutexLock l(mu_);
  free_.push_back(std::move(session));
}

size_t SessionPool::built() const {
  MutexLock l(mu_);
  return built_;
}

size_t SessionPool::reused() const {
  MutexLock l(mu_);
  return reused_;
}

}  // namespace cpdb::service
