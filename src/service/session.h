#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpdb/editor.h"
#include "service/engine.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::service {

/// Configuration shared by every session a pool hands out.
struct SessionOptions {
  provenance::Strategy strategy =
      provenance::Strategy::kHierarchicalTransactional;
  /// Read-only sources every session mounts (borrowed; outlive the pool).
  std::vector<wrap::SourceDb*> sources;
  bool record_txn_meta = false;
  std::string user = "curator";
};

/// One curator's session against a shared Engine: an Editor over a
/// pinned committed version of the target, wired into the engine's tid
/// allocator, group-commit queue, and per-session cost accounting.
///
/// Concurrency contract (README "Service layer"):
///
///  * Staging is private. For T/HT, Apply/ApplyScript only touch the
///    session's universe and in-memory provlist — no latch needed, any
///    number of sessions stage concurrently. Commit() ships the staged
///    transaction through the engine's CommitQueue, which applies it
///    under the exclusive latch and seals it with the cohort's one fsync.
///  * Per-op strategies commit per unit. For N/H every Apply (one
///    transaction) and every ApplyScript (one staged batch, one tid per
///    op) is a commit unit: it runs wholesale under the exclusive latch
///    via the CommitQueue. Commit() is the usual harmless no-op.
///  * Reads take a shared grant. Wrap every batch of queries/scans in
///    `auto g = session->ReadLock();` and drain cursors before releasing
///    it. Never commit while holding a grant.
///  * The snapshot is versioned, not copied. The universe's target
///    subtree is a copy-on-write clone of the SnapshotManager version the
///    session PINS at acquire (snapshot_tid()); other sessions' commits
///    never appear in it, and the pinned version stays readable — bit
///    identical — until the session releases the pin, no matter how far
///    the committed state advances. The session is *stale* once
///    snapshot_tid() < Engine::CommittedTid(); re-acquiring from the pool
///    refreshes it O(1) by re-pinning the newest version and swapping the
///    target subtree (no scan, no copy). Disjoint-subtree curation is
///    exact under this model; sessions racing updates to the SAME path
///    see first-committer-wins at the store level, not merged views.
///
/// All modelled charges (backend round trips, rows, local work) land on
/// the session's private CostModel — race-free by construction — and fold
/// into Engine::cost_totals() when the pool takes the session back.
class Session {
 public:
  ~Session();

  /// Stages (T/HT) or commits (N/H) one update.
  Status Apply(const update::Update& u);

  /// Stages (T/HT) or commits as one group-committed batch (N/H) a whole
  /// script. Same per-op semantics as Editor::ApplyScript.
  Status ApplyScript(const update::Script& script, size_t* applied = nullptr);

  /// Commits the staged transaction through the engine's group-commit
  /// queue (T/HT; blocks until the cohort's seal), declaring the staged
  /// writeset so disjoint cohort-mates can apply in parallel. No-op for
  /// N/H.
  Status Commit();

  /// Reverts the uncommitted transaction (T/HT; local, latch-free).
  Status Abort();

  /// Shared grant over the engine state for a batch of reads.
  SharedLatch::ReadGuard ReadLock() CPDB_ACQUIRE_SHARED(engine_->latch()) {
    return engine_->Read();
  }

  /// The session's query engine (hold a ReadLock while using it).
  query::QueryEngine* query() { return editor_->query(); }

  /// The session's handle on the shared provenance store; reads through
  /// it charge this session's CostModel (hold a ReadLock).
  provenance::ProvBackend* backend() { return &backend_view_; }

  /// The underlying editor (advanced use; the concurrency contract above
  /// still applies to every call made through it).
  Editor* editor() { return editor_.get(); }

  /// Tid of this session's last committed transaction.
  int64_t LastCommittedTid() const { return editor_->store()->LastCommittedTid(); }

  /// This session's private interaction costs so far.
  relstore::CostModel& cost() { return cost_; }

  /// Commit-ordered watermark the session's snapshot was opened at: the
  /// target subtree reflects exactly the transactions with tid <= this.
  /// Stale when Engine::CommittedTid() has moved past it. (Replaces the
  /// latch-epoch stamp of earlier revisions — see cpdb.h migration notes.)
  int64_t snapshot_tid() const { return snapshot_tid_; }

  Engine* engine() { return engine_; }

  /// Attaches a per-request span collector for the duration of one traced
  /// commit: CommitTraced appends the transaction's queue/apply/seal/wake
  /// stages as child spans under `parent_span`, so a committed write's
  /// trace shows its path through the group-commit queue. Pass nullptr to
  /// detach. Single-threaded, like the CostModel: set by the one thread
  /// driving the session, before the commit call, cleared after.
  void set_trace(obs::SpanCollector* sink, uint64_t parent_span) {
    trace_sink_ = sink;
    trace_parent_ = parent_span;
  }

 private:
  friend class SessionPool;
  Session() = default;

  /// After a successful commit: unhide the session's own records (and its
  /// cohort's watermark) from the provenance view.
  void AdvanceReadWatermark();

  /// The shared tail of every commit unit: ships `apply` through the
  /// engine's group-commit queue, advances the read watermark, and
  /// records the transaction's stage timeline (tid, cohort, claims) into
  /// the engine's trace buffer — where SLOWLOG and the slow-commit log
  /// read it back.
  Status CommitTraced(std::function<Status()> apply,
                      std::vector<tree::Path> claims);

  bool per_op_ = false;
  Engine* engine_ = nullptr;
  SessionOptions options_;
  relstore::CostModel cost_;
  provenance::ProvBackend backend_view_;
  std::unique_ptr<Editor> editor_;
  /// The pinned committed version backing the universe's target subtree.
  /// Held only while the session is checked out — the pool drops it on
  /// Release so idle inventory never holds back version GC. pin_.seq == 0
  /// while pooled, and when the target cannot publish versions (no cheap
  /// snapshots) and the session runs on a private materialization.
  SnapshotManager::Pin pin_;
  int64_t snapshot_tid_ = -1;
  obs::SpanCollector* trace_sink_ = nullptr;
  uint64_t trace_parent_ = 0;
};

/// Hands out Sessions against one Engine and takes them back.
///
/// Acquire() reuses a pooled session outright when its pinned version is
/// still the committed state; a stale pooled session is *refreshed* in
/// O(1) — re-pin the newest version, swap the editor's target subtree —
/// instead of being torn down. Build() (first acquires, cold pool) pins
/// the newest version too; only when the version chain cannot serve —
/// bootstrap, or a target without cheap snapshots — does it materialize
/// the target with a full scan, and that scan is counted
/// (SnapshotManager::Stats::snapshot_rebuilds). A warm pool under write
/// traffic therefore copies nothing and scans nothing. Release() folds
/// the session's CostModel into the engine's totals and pools the session
/// for reuse. Thread-safe; building is serialized on the pool's mutex.
class SessionPool {
 public:
  SessionPool(Engine* engine, SessionOptions options)
      : engine_(engine), options_(std::move(options)) {}

  /// A session over the current committed state.
  Result<std::unique_ptr<Session>> Acquire() CPDB_EXCLUDES(mu_, build_mu_);

  /// Returns a session to the pool. The session must have no staged
  /// transaction (Commit or Abort first); a pending one is aborted here,
  /// matching a curator closing their editor mid-edit.
  void Release(std::unique_ptr<Session> session) CPDB_EXCLUDES(mu_);

  size_t built() const CPDB_EXCLUDES(mu_);
  size_t reused() const CPDB_EXCLUDES(mu_);
  /// Stale pooled sessions refreshed O(1) (counted inside reused()).
  size_t refreshed() const CPDB_EXCLUDES(mu_);

 private:
  Result<std::unique_ptr<Session>> Build() CPDB_EXCLUDES(mu_, build_mu_);

  /// Pins a committed version for `s` and returns a CoW clone of it for
  /// the editor's universe; falls back to (and counts) a full
  /// materialization when the chain cannot serve. Sets s->pin_ /
  /// s->snapshot_tid_.
  Result<tree::Tree> AcquireSnapshot(Session* s) CPDB_EXCLUDES(mu_);

  /// Pins the version at the committed watermark, lazily publishing it
  /// (O(1), under a read grant) when the chain lags — cohorts only
  /// advance the watermark. False when only a full scan could serve
  /// (target without cheap snapshots and no current version).
  bool EnsureLatestPinned(SnapshotManager::Pin* pin);

  /// O(1) refresh of a stale pooled session: re-pin at the watermark,
  /// swap the target subtree. False when the chain cannot serve (caller
  /// drops the session and builds instead).
  bool Refresh(Session* s);

  Engine* engine_;
  SessionOptions options_;
  mutable Mutex mu_;  ///< freelist + counters
  /// Serializes Build (see session.cc); always taken before mu_.
  Mutex build_mu_ CPDB_ACQUIRED_BEFORE(mu_);
  std::vector<std::unique_ptr<Session>> free_ CPDB_GUARDED_BY(mu_);
  size_t built_ CPDB_GUARDED_BY(mu_) = 0;
  size_t reused_ CPDB_GUARDED_BY(mu_) = 0;
  size_t refreshed_ CPDB_GUARDED_BY(mu_) = 0;
};

}  // namespace cpdb::service
