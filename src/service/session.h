#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpdb/editor.h"
#include "service/engine.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cpdb::service {

/// Configuration shared by every session a pool hands out.
struct SessionOptions {
  provenance::Strategy strategy =
      provenance::Strategy::kHierarchicalTransactional;
  /// Read-only sources every session mounts (borrowed; outlive the pool).
  std::vector<wrap::SourceDb*> sources;
  bool record_txn_meta = false;
  std::string user = "curator";
};

/// One curator's session against a shared Engine: an Editor over a
/// private snapshot of the target, wired into the engine's tid allocator,
/// group-commit queue, and per-session cost accounting.
///
/// Concurrency contract (README "Service layer"):
///
///  * Staging is private. For T/HT, Apply/ApplyScript only touch the
///    session's universe and in-memory provlist — no latch needed, any
///    number of sessions stage concurrently. Commit() ships the staged
///    transaction through the engine's CommitQueue, which applies it
///    under the exclusive latch and seals it with the cohort's one fsync.
///  * Per-op strategies commit per unit. For N/H every Apply (one
///    transaction) and every ApplyScript (one staged batch, one tid per
///    op) is a commit unit: it runs wholesale under the exclusive latch
///    via the CommitQueue. Commit() is the usual harmless no-op.
///  * Reads take a shared grant. Wrap every batch of queries/scans in
///    `auto g = session->ReadLock();` and drain cursors before releasing
///    it. Never commit while holding a grant.
///  * The snapshot ages. The universe reflects the committed state as of
///    acquire (stamped with the latch epoch); other sessions' commits do
///    not appear in it. Release the session and re-acquire to refresh —
///    the pool rebuilds stale sessions. Disjoint-subtree curation (each
///    session editing its own region) is exact under this model; sessions
///    racing updates to the SAME path see first-committer-wins at the
///    store level, not merged views.
///
/// All modelled charges (backend round trips, rows, local work) land on
/// the session's private CostModel — race-free by construction — and fold
/// into Engine::cost_totals() when the pool takes the session back.
class Session {
 public:
  /// Stages (T/HT) or commits (N/H) one update.
  Status Apply(const update::Update& u);

  /// Stages (T/HT) or commits as one group-committed batch (N/H) a whole
  /// script. Same per-op semantics as Editor::ApplyScript.
  Status ApplyScript(const update::Script& script, size_t* applied = nullptr);

  /// Commits the staged transaction through the engine's group-commit
  /// queue (T/HT; blocks until the cohort's seal). No-op for N/H.
  Status Commit();

  /// Reverts the uncommitted transaction (T/HT; local, latch-free).
  Status Abort();

  /// Shared grant over the engine state for a batch of reads.
  SharedLatch::ReadGuard ReadLock() CPDB_ACQUIRE_SHARED(engine_->latch()) {
    return engine_->Read();
  }

  /// The session's query engine (hold a ReadLock while using it).
  query::QueryEngine* query() { return editor_->query(); }

  /// The session's handle on the shared provenance store; reads through
  /// it charge this session's CostModel (hold a ReadLock).
  provenance::ProvBackend* backend() { return &backend_view_; }

  /// The underlying editor (advanced use; the concurrency contract above
  /// still applies to every call made through it).
  Editor* editor() { return editor_.get(); }

  /// Tid of this session's last committed transaction.
  int64_t LastCommittedTid() const { return editor_->store()->LastCommittedTid(); }

  /// This session's private interaction costs so far.
  relstore::CostModel& cost() { return cost_; }

  /// Latch epoch the session's snapshot was taken at; stale when the
  /// engine's epoch has moved past it.
  uint64_t base_epoch() const { return base_epoch_; }

  Engine* engine() { return engine_; }

 private:
  friend class SessionPool;
  Session() = default;

  bool per_op_ = false;
  Engine* engine_ = nullptr;
  SessionOptions options_;
  relstore::CostModel cost_;
  provenance::ProvBackend backend_view_;
  std::unique_ptr<Editor> editor_;
  uint64_t base_epoch_ = 0;
};

/// Hands out Sessions against one Engine and takes them back.
///
/// Acquire() reuses a pooled session whose snapshot epoch is still
/// current, else builds a fresh one (snapshotting the target under a
/// shared grant). Release() folds the session's CostModel into the
/// engine's totals and pools the session for reuse. Thread-safe; building
/// is serialized on the pool's mutex.
class SessionPool {
 public:
  SessionPool(Engine* engine, SessionOptions options)
      : engine_(engine), options_(std::move(options)) {}

  /// A session over the current committed state.
  Result<std::unique_ptr<Session>> Acquire() CPDB_EXCLUDES(mu_, build_mu_);

  /// Returns a session to the pool. The session must have no staged
  /// transaction (Commit or Abort first); a pending one is aborted here,
  /// matching a curator closing their editor mid-edit.
  void Release(std::unique_ptr<Session> session) CPDB_EXCLUDES(mu_);

  size_t built() const CPDB_EXCLUDES(mu_);
  size_t reused() const CPDB_EXCLUDES(mu_);

 private:
  Result<std::unique_ptr<Session>> Build() CPDB_EXCLUDES(mu_, build_mu_);

  Engine* engine_;
  SessionOptions options_;
  mutable Mutex mu_;  ///< freelist + counters
  /// Serializes Build (see session.cc); always taken before mu_.
  Mutex build_mu_ CPDB_ACQUIRED_BEFORE(mu_);
  std::vector<std::unique_ptr<Session>> free_ CPDB_GUARDED_BY(mu_);
  size_t built_ CPDB_GUARDED_BY(mu_) = 0;
  size_t reused_ CPDB_GUARDED_BY(mu_) = 0;
};

}  // namespace cpdb::service
