#pragma once

/// Umbrella header: the CPDB public API.
///
/// CPDB is a from-scratch C++20 reproduction of
///   Buneman, Chapman, Cheney. "Provenance Management in Curated
///   Databases". SIGMOD 2006.
///
/// Typical usage (see examples/quickstart.cc):
///
///   relstore::Database prov_db("provdb");
///   provenance::ProvBackend backend(&prov_db);
///   wrap::TreeTargetDb target("T", std::move(initial_tree));
///   auto editor = cpdb::Editor::Create(&target, &backend).value();
///   wrap::TreeSourceDb s1("S1", std::move(source_tree));
///   editor->MountSource(&s1);
///   editor->CopyPaste(Path::MustParse("S1/a1/y"),
///                     Path::MustParse("T/c1/y"));
///   editor->Commit();
///   auto hist = editor->query()->GetHist(Path::MustParse("T/c1/y"));

#include "archive/archive.h"          // IWYU pragma: export
#include "cpdb/editor.h"              // IWYU pragma: export
#include "provenance/backend.h"       // IWYU pragma: export
#include "provenance/inference.h"     // IWYU pragma: export
#include "provenance/store.h"         // IWYU pragma: export
#include "query/approx.h"             // IWYU pragma: export
#include "query/own.h"                // IWYU pragma: export
#include "query/spec.h"               // IWYU pragma: export
#include "query/trace.h"              // IWYU pragma: export
#include "tree/serialize.h"           // IWYU pragma: export
#include "tree/tree.h"                // IWYU pragma: export
#include "tree/xml.h"                 // IWYU pragma: export
#include "update/bulk.h"              // IWYU pragma: export
#include "update/parser.h"            // IWYU pragma: export
#include "update/semantics.h"         // IWYU pragma: export
#include "workload/data_gen.h"        // IWYU pragma: export
#include "workload/update_gen.h"      // IWYU pragma: export
#include "wrap/relational_source.h"   // IWYU pragma: export
#include "wrap/relational_target.h"   // IWYU pragma: export
#include "wrap/source_db.h"           // IWYU pragma: export
#include "wrap/target_db.h"           // IWYU pragma: export
