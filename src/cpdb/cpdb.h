#pragma once

/// Umbrella header: the CPDB public API.
///
/// CPDB is a from-scratch C++20 reproduction of
///   Buneman, Chapman, Cheney. "Provenance Management in Curated
///   Databases". SIGMOD 2006.
///
/// Typical usage (see examples/quickstart.cc):
///
///   relstore::Database prov_db("provdb");
///   provenance::ProvBackend backend(&prov_db);
///   wrap::TreeTargetDb target("T", std::move(initial_tree));
///   auto editor = cpdb::Editor::Create(&target, &backend).value();
///   wrap::TreeSourceDb s1("S1", std::move(source_tree));
///   editor->MountSource(&s1);
///   editor->CopyPaste(Path::MustParse("S1/a1/y"),
///                     Path::MustParse("T/c1/y"));
///   editor->Commit();
///   auto hist = editor->query()->GetHist(Path::MustParse("T/c1/y"));
///
/// Provenance reads are cursor- and batch-oriented (provenance/backend.h):
///
///   provenance::ProvCursor scan = backend.ScanUnder(p);   // subtree range
///   std::vector<provenance::ProvRecord> batch;            // caller-owned
///   while (scan.Next(&batch, 512) > 0) { ...consume batch... }
///
/// Each fetch is one modelled round trip; a result that fits one batch
/// costs exactly one. Ordering guarantees: ScanAll/GetAll stream the
/// table key order (Tid, Loc); ScanForTid orders by Loc; the Loc-side
/// scans (ScanAtLoc, ScanUnder, ScanAtLocOrAncestors) order by
/// (Loc, Tid). Consistency: a cursor borrows a position inside the
/// store's indexes and is invalidated by any provenance write — drain
/// cursors before the next tracked operation (the editor is the only
/// writer, so reads between transactions are stable). Batched point
/// lookups go through ProvBackend::LookupMany(tid, locs), one round trip
/// for the whole batch.
///
/// Migration note: ProvStore's vector-returning read methods
/// (RecordsUnder, RecordsAtAncestors, RecordsForTid, AllRecords) were
/// removed with the cursor redesign; their one-shot equivalents live on
/// ProvBackend (GetUnder, GetAtLocOrAncestors, GetForTid, GetAll), each
/// costing exactly one round trip.
///
/// Writes are batched and group-committed, symmetric with the reads
/// (README "Write path"):
///
///   editor->ApplyScriptText(script);   // N/H: ONE WriteRecords +
///                                      // ONE target ApplyBatch flush
///   editor->Commit();                  // T/HT: same, per transaction
///
/// relstore::WriteBatch + Table::ApplyBatch is the storage statement
/// (validated up front, indexes fed one sorted run per batch via
/// BTree::BulkUpsert); wrap::TargetDb::ApplyBatch ships a committed
/// transaction's native writes in one modelled call; provenance::
/// ProvStore::TrackBatch group-commits a staged script with per-op
/// semantics (tids, records, and H's per-insert probe) unchanged.
///
/// Migration note (write path): TargetDb implementations may override
/// ApplyBatch to charge one call per transaction — the default delegates
/// to per-op ApplyNative, so existing wrappers compile and behave as
/// before, just without the batching win. ProvBackend::WriteRecords is
/// now atomic: a duplicate {Tid, Loc} rejects the whole batch instead of
/// leaving a partial insert prefix. Write round trips are counted on
/// CostModel's write-side counters (WriteCalls/WriteRows, also in
/// CostSnapshot), which ChargeWrite bumps alongside the totals.
///
/// Durability (README "Durability"; storage/):
///
///   auto db = relstore::Database::Open("curated", dir).value();
///   provenance::ProvBackend backend(db.get());     // adopts recovered
///   wrap::RelationalTargetDb target("T", db.get(), {"prot"});
///   EditorOptions opts;
///   opts.first_tid = backend.MaxTid() + 1;         // tids continue
///   auto editor = Editor::Create(&target, &backend, opts).value();
///   ...edit...; editor->Commit();   // ONE log record + ONE fsync
///   db->Checkpoint();               // snapshot + truncate the log
///   db->Close();                    // clean shutdown (final Sync)
///
/// Open(name, dir) recovers checkpoint + log tail before returning,
/// truncating any torn/corrupt tail to the last committed transaction;
/// Sync() is the group-commit barrier the editor drives once per
/// committed transaction (TargetDb::Sync is the target-side hook — a
/// no-op by default, Database::Sync for relational wrappers; when target
/// and provenance share one durable Database, both recover to the same
/// transaction). Migration note for in-memory callers: nothing changes —
/// a directly constructed Database has no log, Sync()/Close() are free
/// no-ops, Checkpoint() fails with FailedPrecondition, and the editor's
/// per-commit barrier costs one null check. ProvBackend's constructor
/// now ADOPTS existing Prov/TxnMeta tables (recovered databases) instead
/// of failing; fresh databases are created as before.
///
/// Concurrency (README "Service layer"; src/service/): N curator
/// sessions over ONE shared engine —
///
///   service::Engine engine(&backend, &target);  // tids seeded at attach
///   service::SessionOptions sopts;               // strategy, sources
///   service::SessionPool pool(&engine, sopts);
///   auto session = pool.Acquire().value();       // committed snapshot
///   session->Apply(...); session->Commit();      // group-committed
///   { auto g = session->ReadLock();              // shared grant
///     session->query()->GetMod(p); }             // reads run in parallel
///   pool.Release(std::move(session));            // folds session costs
///
/// Committed transactions apply under the engine's exclusive latch via
/// leader/follower group commit: concurrent committers form a cohort
/// that seals under ONE WAL record + ONE fsync (crash-atomic as a unit),
/// and every transaction number comes from the engine's atomic allocator
/// so sessions never mint the same tid. When the cohort's staged
/// writesets claim pairwise-disjoint target subtrees, the leader applies
/// them in parallel across Engine::EnableParallelApply's worker pool —
/// same single grant, same single fsync. Reads (queries, cursor scans)
/// run concurrently under shared grants; never commit while holding one.
///
/// Snapshots are versioned, not copied (MVCC-lite): the committed state
/// carries a commit-ordered tid watermark (Engine::CommittedTid), and a
/// session opens a consistent view at Session::snapshot_tid() by pinning
/// a copy-on-write version of the target at that watermark — O(1), no
/// scan — with provenance reads bounded at the same tid.
///
/// Migration note (epoch stamp -> tid watermark): sessions are no longer
/// stamped with the latch epoch. Staleness is a tid comparison —
/// snapshot_tid() < Engine::CommittedTid() — and a stale pooled session
/// is refreshed in place by re-pinning, not torn down and rebuilt, so
/// SessionPool::built() stays flat under churn. SharedLatch::Epoch()
/// still advances per exclusive release (the latch's own bookkeeping)
/// but no session-visible semantics hang off it anymore; code that
/// compared epochs to detect "committed state moved" should compare tid
/// watermarks instead.
///
/// Migration note (sessions vs standalone Editor): a directly created
/// Editor is unchanged — private sequential tids from first_tid, its own
/// per-commit fsync — and remains the right tool for single-session use.
/// Acquire sessions from a SessionPool whenever more than one session
/// shares a backend; the pool wires EditorOptions::tid_allocator and
/// ::defer_sync (both new, default-off) so the engine owns numbering and
/// the durability barrier. Never mix the two against one live backend:
/// a standalone editor's writes would bypass the engine's latch.
///
/// Network service (README "Network service"; src/net/): the service
/// layer on a socket. cpdb_serve fronts one Engine over TCP with
/// checksummed length-prefixed frames (net/frame.h, the WAL's framing
/// discipline), one pooled Session per connection, transaction-atomic
/// RETRY shedding under commit-queue overload, and a graceful
/// SIGTERM/DRAIN path (finish in-flight, checkpoint, exit 0; a restart
/// serves bit-identical state). net/client.h is the pipelining client
/// library; tools/cpdb_bench_client drives it (QD sweeps, zipf keys,
/// open-loop pacing, p50/p99/p999). Deliberately NOT exported here:
/// servers and clients include net/ headers directly; embedding callers
/// never pay for the socket layer.
///
/// The latching rules above are compiler-checked, not just documented:
/// util/thread_annotations.h wraps Clang's Thread Safety Analysis
/// attributes (CPDB_GUARDED_BY, CPDB_REQUIRES, ...; no-ops on GCC),
/// SharedLatch is a capability, and the service/storage internals build
/// clean under -Wthread-safety as errors (the `analyze` preset; README
/// "Static analysis").

#include "archive/archive.h"          // IWYU pragma: export
#include "cpdb/editor.h"              // IWYU pragma: export
#include "provenance/backend.h"       // IWYU pragma: export
#include "provenance/inference.h"     // IWYU pragma: export
#include "provenance/store.h"         // IWYU pragma: export
#include "query/approx.h"             // IWYU pragma: export
#include "query/own.h"                // IWYU pragma: export
#include "query/spec.h"               // IWYU pragma: export
#include "query/trace.h"              // IWYU pragma: export
#include "service/commit_queue.h"     // IWYU pragma: export
#include "service/engine.h"           // IWYU pragma: export
#include "service/latch.h"            // IWYU pragma: export
#include "service/session.h"          // IWYU pragma: export
#include "storage/durable.h"          // IWYU pragma: export
#include "storage/snapshot.h"         // IWYU pragma: export
#include "storage/wal.h"              // IWYU pragma: export
#include "tree/serialize.h"           // IWYU pragma: export
#include "tree/tree.h"                // IWYU pragma: export
#include "tree/xml.h"                 // IWYU pragma: export
#include "update/bulk.h"              // IWYU pragma: export
#include "update/parser.h"            // IWYU pragma: export
#include "update/semantics.h"         // IWYU pragma: export
#include "workload/data_gen.h"        // IWYU pragma: export
#include "workload/update_gen.h"      // IWYU pragma: export
#include "wrap/relational_source.h"   // IWYU pragma: export
#include "wrap/relational_target.h"   // IWYU pragma: export
#include "wrap/source_db.h"           // IWYU pragma: export
#include "wrap/target_db.h"           // IWYU pragma: export
