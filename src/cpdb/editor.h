#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "provenance/store.h"
#include "query/approx.h"
#include "query/trace.h"
#include "tree/tree.h"
#include "update/bulk.h"
#include "update/semantics.h"
#include "update/update.h"
#include "util/result.h"
#include "wrap/source_db.h"
#include "wrap/target_db.h"

namespace cpdb {

/// Configuration of a curation session.
struct EditorOptions {
  provenance::Strategy strategy =
      provenance::Strategy::kHierarchicalTransactional;
  /// First transaction number (the paper's Figure 5 starts at 121).
  int64_t first_tid = 1;
  /// Record every committed version in a VersionArchive (Section 5's
  /// "both provenance recording and archiving are necessary").
  bool enable_archive = false;
  size_t archive_checkpoint_every = 64;
  /// Store TxnMeta rows (user, commit seq) per committed transaction.
  /// Off by default: the evaluation's round-trip accounting excludes it.
  bool record_txn_meta = false;
  /// Attach an approximate store that receives one glob record per bulk
  /// update (Section 6 extension).
  bool enable_approx = false;
  std::string user = "curator";

  // ----- Service-layer hooks (src/service/) --------------------------------
  // Standalone editors leave both untouched; multi-session engines set
  // them so N editors can share one backend safely.

  /// When set, every transaction number comes from this callback instead
  /// of the store's private sequential counter (service sessions draw
  /// from the engine's atomic allocator, so concurrent sessions never
  /// mint the same tid). `first_tid` then only seeds LastCommittedTid's
  /// pre-first-commit value and should be the engine's last allocated tid
  /// plus one.
  provenance::TidAllocator tid_allocator;

  /// When true the editor skips its own per-transaction durability
  /// barrier: SyncDurable becomes a no-op and the owner of the flag — the
  /// service layer's group commit — seals whole cohorts of transactions
  /// with ONE Database::Sync. Never set this for a standalone editor over
  /// a durable database: its commits would only reach the disk at
  /// Checkpoint/Close.
  bool defer_sync = false;
};

/// The provenance-aware editor/browser at the centre of the paper's
/// architecture (Figure 2): the ONLY write path to the curated target
/// database, guaranteeing that the target and its provenance record stay
/// consistent ("it is essential that the target database and provenance
/// record are writable only via high-level interfaces that track
/// provenance", Section 1.3).
///
/// The editor maintains the authoritative *universe* tree whose top-level
/// edges are the mounted databases ({S1: ..., S2: ..., T: ...}); updates
/// may only touch the target subtree, copies may read any mounted source.
/// Depending on the strategy, operations auto-commit (N, H) or accumulate
/// until Commit() (T, HT); native target writes follow the same boundary,
/// matching the paper's observation that transactional operations need
/// "no interaction with the target database or provenance store".
class Editor {
 public:
  /// Builds a session around a target database and a provenance backend.
  static Result<std::unique_ptr<Editor>> Create(
      wrap::TargetDb* target, provenance::ProvBackend* backend,
      EditorOptions options = {});

  /// Service-layer variant: mounts the supplied committed snapshot of the
  /// target instead of calling target->TreeFromDb(). The session pool
  /// passes a clone of a pinned SnapshotManager version — O(1) by
  /// copy-on-write structural sharing — so building a session never scans
  /// the target database.
  static Result<std::unique_ptr<Editor>> CreateWithSnapshot(
      wrap::TargetDb* target, provenance::ProvBackend* backend,
      tree::Tree target_snapshot, EditorOptions options);

  /// Swaps the universe's target subtree for a newer committed snapshot
  /// — the O(1) refresh behind SessionPool reuse (no rebuild, no scan).
  /// Only legal between transactions; fails with FailedPrecondition when
  /// anything is staged.
  Status ResetTargetSnapshot(tree::Tree snapshot);

  /// The staged transaction's writeset: target-relative roots of every
  /// subtree its commit-time native replay writes (for T/HT, the child
  /// maps its inserts/deletes/pastes mutate). The commit queue batches
  /// transactions with pairwise-disjoint writesets onto the apply pool.
  /// Empty when any op cannot be rebased (never parallelized).
  std::vector<tree::Path> StagedWriteClaims() const;

  /// Mounts a read-only source database; must precede the first update.
  Status MountSource(wrap::SourceDb* source);

  // ----- User actions ------------------------------------------------------

  /// ins {label : value} into at (empty payload when value is nullopt).
  Status Insert(const tree::Path& at, const std::string& label,
                std::optional<tree::Value> value = std::nullopt);

  /// del label from at.
  Status Delete(const tree::Path& at, const std::string& label);

  /// copy src into dst (src anywhere in the universe, dst under T).
  Status CopyPaste(const tree::Path& src, const tree::Path& dst);

  /// Applies any atomic update (validated like the specific verbs).
  Status ApplyUpdate(const update::Update& u);

  /// Applies a whole script; stops at the first failure and returns the
  /// number of operations applied via `applied`.
  ///
  /// Batched write path: for the per-operation strategies (N, H) the
  /// script's effects are *staged* and flushed as one group commit — one
  /// TrackBatch (a single WriteRecords round trip; H's per-insert probes
  /// excepted) and one TargetDb::ApplyBatch (a single native round trip)
  /// — while per-op semantics (one tid per op, identical records) are
  /// preserved. A mid-script failure flushes the applied prefix, matching
  /// the per-op contract; a tracking failure in the flush itself unwinds
  /// the whole staged batch from the universe (nothing was written) and
  /// reports 0 applied, while a native-replay failure after a successful
  /// flush reports its error with `applied` ops committed. Sessions with
  /// the archive enabled fall back to per-op application (the archive
  /// needs each version's post-state). For T/HT the ops stage in the
  /// transaction as always and batch at Commit().
  Status ApplyScript(const update::Script& script, size_t* applied = nullptr);

  /// Parses and applies a script in the paper's concrete syntax
  /// (batched like ApplyScript).
  Status ApplyScriptText(const std::string& text);

  /// Expands and applies a bulk copy (batched like ApplyScript); records
  /// one approximate glob record if the approximate store is enabled.
  /// Returns the number of atomic copies performed.
  Result<size_t> BulkCopy(const update::BulkCopySpec& spec);

  /// Ends the current transaction (meaningful for T/HT; harmless no-op
  /// transaction boundary for N/H). A committed transaction's provenance
  /// flushes in one WriteRecords and its native target writes in one
  /// TargetDb::ApplyBatch call, whatever its length.
  Status Commit();

  /// Reverts all uncommitted operations (universe + provlist) atomically:
  /// nothing of the discarded transaction is observable in the target
  /// database or the provenance store afterwards (staged batches never
  /// touch either before their flush). Fails for per-operation
  /// strategies, which have nothing pending.
  Status Abort();

  // ----- Introspection ------------------------------------------------------

  const tree::Tree& universe() const { return universe_; }
  /// The target database's subtree, or nullptr before Create finishes.
  const tree::Tree* TargetView() const {
    return universe_.Find(target_root_);
  }
  const tree::Path& target_root() const { return target_root_; }

  provenance::ProvStore* store() { return store_.get(); }
  query::QueryEngine* query() { return query_.get(); }
  archive::VersionArchive* archive() { return archive_.get(); }
  query::ApproxProvStore* approx() { return approx_.get(); }
  wrap::TargetDb* target() { return target_; }

  /// Number of operations applied in the current (uncommitted) txn.
  size_t PendingOps() const { return txn_script_.size(); }

  /// Totals across the session.
  size_t TotalOps() const { return total_ops_; }

 private:
  Editor(wrap::TargetDb* target, EditorOptions options)
      : options_(std::move(options)), target_(target) {}

  bool PerOpStrategy() const {
    return options_.strategy == provenance::Strategy::kNaive ||
           options_.strategy == provenance::Strategy::kHierarchical;
  }

  /// Checks the target-only write restriction.
  Status ValidateUpdate(const update::Update& u) const;

  /// Appends the op-time paste payload for `u` to `out` (a clone of the
  /// current subtree at the destination for copies, nullopt otherwise).
  /// Must run right after the op is applied, while the universe still
  /// shows exactly what the op pasted.
  void StagePasted(const update::Update& u,
                   std::vector<std::optional<tree::Tree>>* out) const;

  /// Rebases `u` onto the target's root and attaches the paste payload
  /// (which must be the subtree as of the op's application, and outlive
  /// the returned value).
  Result<wrap::NativeOp> MakeNativeOp(const update::Update& u,
                                      const tree::Tree* pasted) const;

  /// Builds the native replay of a whole staged script (payloads borrowed
  /// from `pasted`, which must outlive the result).
  Result<std::vector<wrap::NativeOp>> BuildNativeOps(
      const update::Script& script,
      const std::vector<std::optional<tree::Tree>>& pasted) const;

  /// Durability barrier closing one committed transaction: ONE group
  /// commit (log append + fsync) on the provenance store's database and
  /// one on the target. Both are no-ops for in-memory stores, so the
  /// default sessions are untouched; when target and provenance share a
  /// durable Database the first Sync covers both and the second is free.
  Status SyncDurable();

  /// Runs the tail of an already-committed transaction (native replay,
  /// archive, meta), then ALWAYS runs the durability barrier — even when
  /// the tail fails, because the transaction is committed in the
  /// provenance store and must seal into its own log record, not fuse
  /// into a later transaction's. The tail's error wins; a sync failure
  /// surfaces only when the tail succeeded.
  Status FinishCommitted(const std::function<Status()>& tail);

  /// Pushes one update into the native target store (paths rebased).
  Status PushNative(const update::Update& u, const tree::Tree* pasted);

  /// Flushes the staged per-op-strategy batch: one TrackBatch, one native
  /// ApplyBatch. On a tracking failure the whole staged batch is unwound
  /// from the universe (nothing was written) and `flushed` is 0; once
  /// tracking succeeds the batch is committed (`flushed` = batch size)
  /// and a native-replay failure is reported without unwinding, like a
  /// failed commit replay. Resets the staging state.
  Status FlushBatch(size_t* flushed = nullptr);

  Status RecordMetaIfEnabled(int64_t tid, const std::string& note);

  EditorOptions options_;
  wrap::TargetDb* target_;
  tree::Path target_root_;
  tree::Tree universe_;
  std::map<std::string, wrap::SourceDb*> sources_;

  std::unique_ptr<provenance::ProvStore> store_;
  std::unique_ptr<query::QueryEngine> query_;
  std::unique_ptr<archive::VersionArchive> archive_;
  std::unique_ptr<query::ApproxProvStore> approx_;

  update::UndoLog undo_;
  update::Script txn_script_;
  /// Op-time snapshots of pasted subtrees, parallel to txn_script_
  /// (nullopt for non-copies). Needed because commit-time native replay
  /// must paste what the op pasted, not the end-of-transaction state.
  std::vector<std::optional<tree::Tree>> txn_pasted_;

  /// Script staging for the per-op strategies (N, H): while `batching_`,
  /// ApplyUpdate defers tracking and native pushes into these, and
  /// FlushBatch ships them as one group commit. Always empty outside
  /// ApplyScript/BulkCopy.
  bool batching_ = false;
  std::vector<provenance::TrackedOp> batch_ops_;
  update::Script batch_script_;
  std::vector<std::optional<tree::Tree>> batch_pasted_;

  size_t total_ops_ = 0;
  bool started_ = false;
};

}  // namespace cpdb
