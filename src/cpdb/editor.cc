#include "cpdb/editor.h"

#include <utility>

#include "update/parser.h"

namespace cpdb {

using provenance::Strategy;
using update::OpKind;
using update::Update;

Result<std::unique_ptr<Editor>> Editor::Create(
    wrap::TargetDb* target, provenance::ProvBackend* backend,
    EditorOptions options) {
  CPDB_ASSIGN_OR_RETURN(tree::Tree initial, target->TreeFromDb());
  return CreateWithSnapshot(target, backend, std::move(initial),
                            std::move(options));
}

Result<std::unique_ptr<Editor>> Editor::CreateWithSnapshot(
    wrap::TargetDb* target, provenance::ProvBackend* backend,
    tree::Tree target_snapshot, EditorOptions options) {
  std::unique_ptr<Editor> ed(new Editor(target, std::move(options)));
  ed->target_root_ = tree::Path({target->name()});
  CPDB_RETURN_IF_ERROR(
      ed->universe_.AddChild(target->name(), std::move(target_snapshot)));
  ed->store_ = provenance::MakeStore(ed->options_.strategy, backend,
                                     ed->options_.first_tid);
  if (ed->options_.tid_allocator) {
    ed->store_->set_tid_allocator(ed->options_.tid_allocator);
  }
  ed->query_ = std::make_unique<query::QueryEngine>(
      ed->store_.get(), ed->target_root_, &ed->universe_);
  if (ed->options_.enable_approx) {
    ed->approx_ = std::make_unique<query::ApproxProvStore>();
  }
  return ed;
}

Status Editor::ResetTargetSnapshot(tree::Tree snapshot) {
  if (!txn_script_.empty() || batching_ || store_->HasPending()) {
    return Status::FailedPrecondition(
        "cannot refresh the target snapshot with a transaction staged");
  }
  // O(1): unlink the old subtree, link the new one. The old nodes stay
  // alive exactly as long as some version (or another session) shares
  // them — copy-on-write reference counting is the deallocation policy.
  return universe_.ReplaceAt(target_root_, std::move(snapshot));
}

std::vector<tree::Path> Editor::StagedWriteClaims() const {
  std::vector<tree::Path> claims;
  claims.reserve(txn_script_.size());
  for (const Update& u : txn_script_) {
    // The node whose child map the native replay mutates: the insert/
    // delete target itself, the destination's parent for a paste
    // (TreeTargetDb::ApplyOne writes via PutChild on the parent).
    const tree::Path& p =
        u.kind == OpKind::kCopy ? u.target.Parent() : u.target;
    auto rel = p.RelativeTo(target_root_);
    if (!rel.ok()) return {};  // not rebasable: never parallelize
    claims.push_back(*std::move(rel));
  }
  // Normalize to a prefix-free set: drop duplicates and claims already
  // covered by an ancestor claim.
  std::vector<tree::Path> minimal;
  for (size_t i = 0; i < claims.size(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < claims.size() && !covered; ++j) {
      if (i == j) continue;
      if (claims[j] == claims[i]) {
        covered = j < i;  // keep the first occurrence only
      } else {
        covered = claims[j].IsPrefixOf(claims[i]);
      }
    }
    if (!covered) minimal.push_back(claims[i]);
  }
  return minimal;
}

Status Editor::MountSource(wrap::SourceDb* source) {
  if (started_) {
    return Status::FailedPrecondition(
        "sources must be mounted before the first update");
  }
  if (source->name() == target_->name()) {
    return Status::InvalidArgument("source label '" + source->name() +
                                   "' collides with the target");
  }
  if (sources_.count(source->name()) > 0) {
    return Status::AlreadyExists("source '" + source->name() +
                                 "' already mounted");
  }
  CPDB_ASSIGN_OR_RETURN(tree::Tree view, source->TreeFromDb());
  CPDB_RETURN_IF_ERROR(universe_.AddChild(source->name(), std::move(view)));
  sources_[source->name()] = source;
  return Status::OK();
}

Status Editor::ValidateUpdate(const Update& u) const {
  // "Insertions, copies, and deletes can only be performed in a subtree
  // of the target database T" (Section 2). Note this also rejects
  // deleting or overwriting the target root itself: a delete's target is
  // the *parent* of the removed edge, which for the root lies outside T.
  if (!target_root_.IsPrefixOf(u.target)) {
    return Status::InvalidArgument("updates must target '" +
                                   target_root_.ToString() + "', got '" +
                                   u.target.ToString() + "'");
  }
  if (u.kind == OpKind::kCopy && target_root_ == u.target) {
    return Status::InvalidArgument("cannot overwrite the target root");
  }
  return Status::OK();
}

void Editor::StagePasted(
    const Update& u, std::vector<std::optional<tree::Tree>>* out) const {
  if (u.kind == OpKind::kCopy) {
    const tree::Tree* pasted = universe_.Find(u.target);
    out->emplace_back(pasted == nullptr
                          ? std::optional<tree::Tree>()
                          : std::optional<tree::Tree>(pasted->Clone()));
  } else {
    out->emplace_back(std::nullopt);
  }
}

Result<std::vector<wrap::NativeOp>> Editor::BuildNativeOps(
    const update::Script& script,
    const std::vector<std::optional<tree::Tree>>& pasted) const {
  std::vector<wrap::NativeOp> native;
  native.reserve(script.size());
  for (size_t i = 0; i < script.size(); ++i) {
    const tree::Tree* payload =
        i < pasted.size() && pasted[i].has_value() ? &*pasted[i] : nullptr;
    CPDB_ASSIGN_OR_RETURN(wrap::NativeOp op,
                          MakeNativeOp(script[i], payload));
    native.push_back(std::move(op));
  }
  return native;
}

Result<wrap::NativeOp> Editor::MakeNativeOp(const Update& u,
                                            const tree::Tree* pasted) const {
  // Rebase universe-absolute paths to target-relative ones.
  wrap::NativeOp op;
  op.update = u;
  CPDB_ASSIGN_OR_RETURN(op.update.target, u.target.RelativeTo(target_root_));
  if (u.kind == OpKind::kCopy) {
    if (pasted == nullptr) {
      return Status::Internal("pasted subtree missing for native push");
    }
    op.update.source = tree::Path();  // native stores only receive the data
    op.pasted = pasted;
  }
  return op;
}

Status Editor::PushNative(const Update& u, const tree::Tree* pasted) {
  CPDB_ASSIGN_OR_RETURN(wrap::NativeOp op, MakeNativeOp(u, pasted));
  return target_->ApplyNative(op.update, op.pasted);
}

Status Editor::SyncDurable() {
  // Deferred mode: the service layer's group commit owns the barrier and
  // seals a whole cohort of transactions with one Sync.
  if (options_.defer_sync) return Status::OK();
  CPDB_RETURN_IF_ERROR(store_->backend()->db()->Sync());
  return target_->Sync();
}

Status Editor::FinishCommitted(const std::function<Status()>& tail) {
  Status rest = tail();
  Status synced = SyncDurable();
  if (!rest.ok()) return rest;
  return synced;
}

Status Editor::RecordMetaIfEnabled(int64_t tid, const std::string& note) {
  if (!options_.record_txn_meta) return Status::OK();
  provenance::TxnMeta meta;
  meta.tid = tid;
  meta.user = options_.user;
  meta.commit_seq = tid;
  meta.note = note;
  return store_->backend()->WriteTxnMeta(meta);
}

Status Editor::ApplyUpdate(const Update& u) {
  CPDB_RETURN_IF_ERROR(ValidateUpdate(u));
  if (!started_) {
    started_ = true;
    if (options_.enable_archive) {
      archive::VersionArchive::Options aopt;
      aopt.checkpoint_every = options_.archive_checkpoint_every;
      archive_ = std::make_unique<archive::VersionArchive>(
          options_.first_tid - 1, universe_.Clone(), aopt);
    }
  }

  update::ApplyEffect effect;
  CPDB_RETURN_IF_ERROR(undo_.ApplyTracked(&universe_, u, &effect));

  if (batching_) {
    // Per-op strategy inside ApplyScript/BulkCopy: stage the effect and
    // the native replay payload; FlushBatch ships them as one group
    // commit. The undo log keeps accumulating so a failed flush can
    // unwind the whole staged batch.
    StagePasted(u, &batch_pasted_);
    batch_script_.push_back(u);
    batch_ops_.push_back({u.kind, std::move(effect)});
    return Status::OK();
  }

  Status tracked;
  switch (u.kind) {
    case OpKind::kInsert:
      tracked = store_->TrackInsert(effect);
      break;
    case OpKind::kDelete:
      tracked = store_->TrackDelete(effect);
      break;
    case OpKind::kCopy:
      tracked = store_->TrackCopy(effect);
      break;
  }
  if (!tracked.ok()) {
    // Keep target and provenance consistent: roll the update back.
    Status revert = undo_.RevertAll(&universe_);
    return revert.ok() ? tracked : revert;
  }
  txn_script_.push_back(u);
  ++total_ops_;

  if (PerOpStrategy()) {
    // Per-operation transaction: push native and seal the version now
    // (one fsync per op — each op is its own transaction). The subtree
    // at the paste destination is still exactly what the op produced, so
    // the universe can serve as the paste payload.
    CPDB_RETURN_IF_ERROR(FinishCommitted([&]() -> Status {
      const tree::Tree* pasted =
          u.kind == OpKind::kCopy ? std::as_const(universe_).Find(u.target)
                                  : nullptr;
      CPDB_RETURN_IF_ERROR(PushNative(u, pasted));
      int64_t tid = store_->LastCommittedTid();
      if (archive_ != nullptr) {
        CPDB_RETURN_IF_ERROR(
            archive_->Record(tid, std::move(txn_script_), universe_));
      }
      CPDB_RETURN_IF_ERROR(RecordMetaIfEnabled(tid, u.ToString()));
      txn_script_.clear();
      undo_.Clear();
      return Status::OK();
    }));
  } else {
    // Deferred native push at Commit() needs the op-time paste payload.
    StagePasted(u, &txn_pasted_);
  }
  return Status::OK();
}

Status Editor::Insert(const tree::Path& at, const std::string& label,
                      std::optional<tree::Value> value) {
  return ApplyUpdate(Update::Insert(at, label, std::move(value)));
}

Status Editor::Delete(const tree::Path& at, const std::string& label) {
  return ApplyUpdate(Update::Delete(at, label));
}

Status Editor::CopyPaste(const tree::Path& src, const tree::Path& dst) {
  return ApplyUpdate(Update::Copy(src, dst));
}

Status Editor::FlushBatch(size_t* flushed) {
  if (flushed != nullptr) *flushed = 0;
  std::vector<provenance::TrackedOp> ops = std::move(batch_ops_);
  update::Script script = std::move(batch_script_);
  std::vector<std::optional<tree::Tree>> pasted = std::move(batch_pasted_);
  batch_ops_.clear();
  batch_script_.clear();
  batch_pasted_.clear();
  if (ops.empty()) return Status::OK();

  // Group commit: the whole staged batch reaches the provenance backend
  // in one WriteRecords (via TrackBatch) and the target in one native
  // ApplyBatch. Per-op tids/records are preserved by the store.
  std::vector<int64_t> tids;
  Status tracked = store_->TrackBatch(ops, &tids);
  if (!tracked.ok()) {
    // Nothing was written (TrackBatch is atomic on the backend); unwind
    // the staged updates so universe and stores stay consistent.
    Status revert = undo_.RevertAll(&universe_);
    return revert.ok() ? tracked : revert;
  }
  // The batch is committed in the provenance store: from here on it must
  // never be unwound from the universe, so retire the undo entries now —
  // a later single-op tracking failure would otherwise RevertAll straight
  // through this committed batch.
  undo_.Clear();
  total_ops_ += ops.size();
  if (flushed != nullptr) *flushed = ops.size();
  // A failure from here on is a native replay of already-committed
  // updates going wrong: like a failed commit replay, the native store
  // then needs a reload (universe and provenance remain consistent). The
  // whole group-committed batch rides one fsync — the durability win of
  // the staged write path.
  return FinishCommitted([&]() -> Status {
    CPDB_ASSIGN_OR_RETURN(std::vector<wrap::NativeOp> native,
                          BuildNativeOps(script, pasted));
    CPDB_RETURN_IF_ERROR(target_->ApplyBatch(native));
    if (options_.record_txn_meta) {
      for (size_t i = 0; i < script.size() && i < tids.size(); ++i) {
        CPDB_RETURN_IF_ERROR(
            RecordMetaIfEnabled(tids[i], script[i].ToString()));
      }
    }
    return Status::OK();
  });
}

Status Editor::ApplyScript(const update::Script& script, size_t* applied) {
  size_t n = 0;
  // The archive needs every version's post-state, which group commit does
  // not materialize per op; archived per-op sessions keep the per-op path.
  const bool batch = PerOpStrategy() && !options_.enable_archive;
  if (!batch) {
    for (const Update& u : script) {
      Status st = ApplyUpdate(u);
      if (!st.ok()) {
        if (applied != nullptr) *applied = n;
        return st;
      }
      ++n;
    }
    if (applied != nullptr) *applied = n;
    return Status::OK();
  }

  batching_ = true;
  Status op_status = Status::OK();
  for (const Update& u : script) {
    op_status = ApplyUpdate(u);
    if (!op_status.ok()) break;
    ++n;
  }
  batching_ = false;
  // Per-op transactions: a later op's failure does not unwind committed
  // predecessors, so the applied prefix still flushes. `flushed` is 0
  // only when tracking failed and the batch was unwound; a native-replay
  // failure reports its error with the ops still applied.
  size_t flushed = 0;
  Status flush_status = FlushBatch(&flushed);
  if (applied != nullptr) *applied = flushed < n ? flushed : n;
  if (!flush_status.ok()) return flush_status;
  return op_status;
}

Status Editor::ApplyScriptText(const std::string& text) {
  CPDB_ASSIGN_OR_RETURN(update::Script script, update::ParseScript(text));
  return ApplyScript(script);
}

Result<size_t> Editor::BulkCopy(const update::BulkCopySpec& spec) {
  CPDB_ASSIGN_OR_RETURN(update::Script script,
                        update::ExpandBulkCopy(universe_, spec));
  // Validate the destination restriction before touching anything.
  for (const Update& u : script) {
    CPDB_RETURN_IF_ERROR(ValidateUpdate(u));
  }
  CPDB_RETURN_IF_ERROR(ApplyScript(script));
  if (approx_ != nullptr) {
    query::ApproxRecord rec;
    rec.tid = store_->CurrentTid();
    rec.op = provenance::ProvOp::kCopy;
    rec.loc = spec.dst;
    rec.src = spec.src;
    approx_->Track(std::move(rec));
  }
  return script.size();
}

Status Editor::Commit() {
  update::Script script = std::move(txn_script_);
  txn_script_.clear();
  std::vector<std::optional<tree::Tree>> pasted = std::move(txn_pasted_);
  txn_pasted_.clear();
  CPDB_RETURN_IF_ERROR(store_->Commit());
  if (!PerOpStrategy()) {
    // The committed transaction's native writes ride one modelled client
    // call, matching the provenance store's one-WriteRecords commit, and
    // the whole transaction seals under one fsync whatever its length.
    CPDB_RETURN_IF_ERROR(FinishCommitted([&]() -> Status {
      CPDB_ASSIGN_OR_RETURN(std::vector<wrap::NativeOp> native,
                            BuildNativeOps(script, pasted));
      CPDB_RETURN_IF_ERROR(target_->ApplyBatch(native));
      int64_t tid = store_->LastCommittedTid();
      if (archive_ != nullptr && started_) {
        CPDB_RETURN_IF_ERROR(archive_->Record(tid, std::move(script),
                                              universe_));
      }
      CPDB_RETURN_IF_ERROR(RecordMetaIfEnabled(
          tid, std::to_string(script.size()) + " ops"));
      undo_.Clear();
      return Status::OK();
    }));
  }
  return Status::OK();
}

Status Editor::Abort() {
  if (PerOpStrategy()) {
    return Status::FailedPrecondition(
        "per-operation strategies auto-commit; nothing to abort");
  }
  store_->AbortPending();
  txn_script_.clear();
  txn_pasted_.clear();
  return undo_.RevertAll(&universe_);
}

}  // namespace cpdb
