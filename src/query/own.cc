#include "query/own.h"

namespace cpdb::query {

void OwnRegistry::Register(const std::string& root_label,
                           QueryEngine* engine) {
  engines_[root_label] = engine;
}

bool OwnRegistry::Has(const std::string& root_label) const {
  return engines_.count(root_label) > 0;
}

Result<std::vector<OwnLink>> OwnRegistry::OwnChain(const tree::Path& p) {
  std::vector<OwnLink> chain;
  last_truncated_ = false;
  tree::Path cur = p;
  // Bound the walk defensively: a provenance cycle across stores would
  // otherwise loop (possible only with inconsistent stores).
  for (size_t hops = 0; hops <= engines_.size() + 1; ++hops) {
    if (cur.IsRoot()) {
      last_truncated_ = true;
      return chain;
    }
    const std::string& db = cur.At(0);
    auto it = engines_.find(db);
    if (it == engines_.end()) {
      // Data came from a database that does not track/publish provenance;
      // the paper: "many queries only have incomplete answers".
      OwnLink link;
      link.database = db;
      link.path = cur;
      chain.push_back(std::move(link));
      last_truncated_ = true;
      return chain;
    }
    QueryEngine* engine = it->second;
    // The trace consumes streaming cursors underneath; bracket it with
    // cost snapshots so every link reports what its hops cost.
    const relstore::CostModel& cost =
        engine->store()->backend()->db()->cost();
    relstore::CostSnapshot before = cost.Snap();
    CPDB_ASSIGN_OR_RETURN(TraceResult trace, engine->TraceBack(cur));
    OwnLink link;
    link.database = db;
    link.path = cur;
    link.origin_tid = trace.origin_tid;
    link.round_trips = cost.Snap().calls - before.calls;
    for (const TraceStep& s : trace.steps) {
      if (s.op == provenance::ProvOp::kCopy) link.copy_tids.push_back(s.tid);
    }
    chain.push_back(std::move(link));
    if (!trace.external_src.has_value()) {
      return chain;  // origin found (or trail went cold) inside this db
    }
    cur = *trace.external_src;
  }
  last_truncated_ = true;
  return chain;
}

}  // namespace cpdb::query
