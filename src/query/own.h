#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "query/trace.h"

namespace cpdb::query {

/// One link of an ownership chain: the data lived in `database` at `path`
/// and was originally inserted there by `origin_tid` (if known) or copied
/// onward from `from` (if the chain continues).
struct OwnLink {
  std::string database;
  tree::Path path;
  std::optional<int64_t> origin_tid;
  std::vector<int64_t> copy_tids;  ///< copy transactions within this db
  /// Provenance-store round trips this database's trace cost (CostModel
  /// call-count delta around the cursor-backed TraceBack). Zero for
  /// untracked databases.
  size_t round_trips = 0;
};

/// Cross-database ownership queries (the paper's Own, Section 2.2:
/// "What is the history of 'ownership' of a piece of data? ... only makes
/// sense if several databases track provenance").
///
/// Each participating database registers its QueryEngine under its
/// universe label (the first segment of its paths). OwnChain follows a
/// location's provenance within one database and, when the trace exits to
/// an external source whose root is registered, continues inside that
/// database — yielding the sequence of databases that contained previous
/// copies of the node.
class OwnRegistry {
 public:
  /// Registers `engine` as the provenance tracker of the database rooted
  /// at `root_label` (e.g. "T", "S1").
  void Register(const std::string& root_label, QueryEngine* engine);

  bool Has(const std::string& root_label) const;

  /// The ownership chain of the data at `p` (whose first segment selects
  /// the starting database), newest holder first. The chain ends when a
  /// database reports a local insert, or when it exits to an unregistered
  /// (untracked) source — in which case the final link carries neither an
  /// origin nor further hops and `truncated` below tells the caller why.
  Result<std::vector<OwnLink>> OwnChain(const tree::Path& p);

  /// True if the last computed chain stopped at an untracked database.
  bool last_chain_truncated() const { return last_truncated_; }

 private:
  std::map<std::string, QueryEngine*> engines_;
  bool last_truncated_ = false;
};

}  // namespace cpdb::query
