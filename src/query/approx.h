#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "provenance/prov_record.h"
#include "tree/glob.h"

namespace cpdb::query {

/// Three-valued answer of an approximate provenance query: with glob
/// records we "can only say that some data may (or cannot) have come from
/// a given source location" (paper Section 6).
enum class MayAnswer {
  kNo,     ///< no approximate record could cover the pair
  kMaybe,  ///< covered by a wildcard record
  kYes,    ///< covered by an exact (wildcard-free) record
};

const char* MayAnswerName(MayAnswer a);

/// One approximate provenance record, e.g.
/// Prov(t, C, T/a/*/b, S/a/*/b): transaction t may have copied data from
/// source paths matching the src glob to target paths matching loc.
struct ApproxRecord {
  int64_t tid = 0;
  provenance::ProvOp op = provenance::ProvOp::kCopy;
  tree::PathGlob loc;
  tree::PathGlob src;

  std::string ToString() const;
};

/// Store for approximate provenance of bulk updates (Section 6).
///
/// A bulk update touching thousands of locations stores one glob record
/// whose size is proportional to the *statement*, not the data touched;
/// queries over it are sound but incomplete (may/may-not semantics).
class ApproxProvStore {
 public:
  void Track(ApproxRecord record) { records_.push_back(std::move(record)); }

  /// Records that may describe a change at `loc` (any transaction).
  std::vector<ApproxRecord> MayAffect(const tree::Path& loc) const;

  /// Could the data at `loc` have come from `src` in transaction `tid`?
  MayAnswer MayComeFrom(int64_t tid, const tree::Path& loc,
                        const tree::Path& src) const;

  /// Could *any* transaction have put data at `loc` from somewhere
  /// matching `src_glob`?
  MayAnswer MayComeFromAnywhere(const tree::Path& loc,
                                const tree::PathGlob& src_glob) const;

  size_t RecordCount() const { return records_.size(); }

  /// Approximate storage footprint (bytes of glob text), to contrast with
  /// full provenance storage in the bulk-update ablation bench.
  size_t ApproxBytes() const;

 private:
  std::vector<ApproxRecord> records_;
};

}  // namespace cpdb::query
