#include "query/trace.h"

#include <algorithm>
#include <set>

namespace cpdb::query {

using provenance::ProvOp;
using provenance::ProvRecord;

Result<std::optional<ProvRecord>> QueryEngine::NewestApplicable(
    const tree::Path& loc, int64_t t_max) {
  std::vector<ProvRecord> candidates;
  if (store_->IsHierarchical()) {
    // One combined statement: records at loc or any ancestor. An ancestor
    // record governs loc only through the closest-ancestor inference, so
    // at equal tids the deepest location wins.
    CPDB_ASSIGN_OR_RETURN(candidates,
                          store_->backend()->GetAtLocOrAncestors(loc));
  } else {
    CPDB_ASSIGN_OR_RETURN(candidates, store_->backend()->GetAtLoc(loc));
  }
  const ProvRecord* best = nullptr;
  for (const ProvRecord& r : candidates) {
    if (r.tid > t_max) continue;
    if (!r.loc.IsPrefixOf(loc)) continue;  // ancestors only (incl. self)
    if (best == nullptr || r.tid > best->tid ||
        (r.tid == best->tid && best->loc.Depth() < r.loc.Depth())) {
      best = &r;
    }
  }
  if (best == nullptr) return std::optional<ProvRecord>();
  if (best->loc == loc) return std::optional<ProvRecord>(*best);
  // Closest-ancestor inference, rebased onto loc.
  switch (best->op) {
    case ProvOp::kCopy:
      return std::optional<ProvRecord>(ProvRecord::Copy(
          best->tid, loc, loc.Rebase(best->loc, best->src)));
    case ProvOp::kInsert:
      return std::optional<ProvRecord>(ProvRecord::Insert(best->tid, loc));
    case ProvOp::kDelete:
      return std::optional<ProvRecord>(ProvRecord::Delete(best->tid, loc));
  }
  return Status::Internal("unknown provenance op");
}

Result<TraceResult> QueryEngine::TraceBack(const tree::Path& p) {
  TraceResult out;
  tree::Path cur = p;
  int64_t t = store_->LastCommittedTid();
  while (t >= store_->FirstTid()) {
    CPDB_ASSIGN_OR_RETURN(auto rec, NewestApplicable(cur, t));
    if (!rec.has_value()) break;  // unchanged all the way back
    switch (rec->op) {
      case ProvOp::kCopy: {
        out.steps.push_back({rec->tid, ProvOp::kCopy, cur, rec->src});
        if (!target_root_.IsPrefixOf(rec->src)) {
          // The chain leaves the tracked database.
          out.external_src = rec->src;
          out.external_tid = rec->tid;
          return out;
        }
        cur = rec->src;
        t = rec->tid - 1;
        break;
      }
      case ProvOp::kInsert: {
        out.steps.push_back({rec->tid, ProvOp::kInsert, cur, tree::Path()});
        out.origin_tid = rec->tid;
        return out;
      }
      case ProvOp::kDelete: {
        // A D record governing the traced location means it was recreated
        // later without provenance — possible only if tracking was
        // bypassed. Stop; the data's origin is unknown.
        out.steps.push_back({rec->tid, ProvOp::kDelete, cur, tree::Path()});
        return out;
      }
    }
  }
  return out;
}

Result<std::optional<int64_t>> QueryEngine::GetSrc(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(TraceResult trace, TraceBack(p));
  return trace.origin_tid;
}

Result<std::vector<int64_t>> QueryEngine::GetHist(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(TraceResult trace, TraceBack(p));
  std::vector<int64_t> out;
  for (const TraceStep& s : trace.steps) {
    if (s.op == ProvOp::kCopy) out.push_back(s.tid);
  }
  return out;
}

Result<std::vector<int64_t>> QueryEngine::GetMod(
    const tree::Path& p, const provenance::VersionFn& versions) {
  std::set<int64_t> tids;

  // Records at or under p: every strategy stores the subtree root of each
  // touched region explicitly, and the naive strategies store every
  // touched node, so one descendant scan covers all "modifications whose
  // root lies in p's subtree".
  CPDB_ASSIGN_OR_RETURN(auto under, store_->RecordsUnder(p));
  std::set<tree::Path> locs;
  for (const ProvRecord& r : under) {
    tids.insert(r.tid);
    locs.insert(r.loc);
  }

  // Per-descendant processing (Section 4.2: getMod "must process all the
  // descendants of a node"): the engine fetches each descendant
  // location's record history to assemble per-location modification
  // lists. Hierarchical stores must also cover current descendants that
  // carry no records of their own; their modification evidence lives at
  // ancestors and is collected below, so only the subtree roots present
  // in the store are re-queried here.
  for (const tree::Path& loc : locs) {
    CPDB_ASSIGN_OR_RETURN(auto at, store_->backend()->GetAtLoc(loc));
    for (const ProvRecord& r : at) tids.insert(r.tid);
  }

  if (store_->IsHierarchical()) {
    // Modifications recorded at an ancestor a of p (subtree copy, insert,
    // or delete at a) touch p's subtree without leaving records under p.
    // One point query per ancestor level.
    CPDB_ASSIGN_OR_RETURN(auto above, store_->RecordsAtAncestors(p));
    for (const ProvRecord& r : above) {
      if (versions != nullptr) {
        // Exact check: did the operation's subtree reach p? For I/C the
        // affected subtree is the post-state at r.loc; for D the
        // pre-state. p was touched iff it existed in that version.
        const tree::Tree* v =
            versions(r.op == ProvOp::kDelete ? r.tid - 1 : r.tid);
        if (v == nullptr || v->Find(p) == nullptr) continue;
      }
      tids.insert(r.tid);
    }
  }
  return std::vector<int64_t>(tids.begin(), tids.end());
}

}  // namespace cpdb::query
