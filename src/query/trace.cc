#include "query/trace.h"

#include <algorithm>
#include <set>

namespace cpdb::query {

using provenance::ProvOp;
using provenance::ProvRecord;

Result<std::optional<ProvRecord>> QueryEngine::NewestApplicable(
    const tree::Path& loc, int64_t t_max) {
  // One streaming statement: records at loc (flat strategies) or at loc
  // and its ancestors (hierarchical — an ancestor record governs loc only
  // through the closest-ancestor inference, so at equal tids the deepest
  // location wins). The best candidate is tracked while the cursor
  // streams; nothing is materialized.
  const uint64_t span =
      tracer_ != nullptr
          ? tracer_->Open("query.loc_scan", tracer_parent_, loc.ToString())
          : 0;
  provenance::ProvCursor cursor =
      store_->IsHierarchical()
          ? store_->backend()->ScanAtLocOrAncestors(loc,
                                                    /*include_self=*/true)
          : store_->backend()->ScanAtLoc(loc);
  std::optional<ProvRecord> best;
  ProvRecord r;
  uint64_t rows = 0;
  while (cursor.Next(&r)) {
    ++rows;
    if (r.tid > t_max) continue;
    if (!r.loc.IsPrefixOf(loc)) continue;  // ancestors only (incl. self)
    if (!best.has_value() || r.tid > best->tid ||
        (r.tid == best->tid && best->loc.Depth() < r.loc.Depth())) {
      best = std::move(r);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->CloseWithCost(span, rows, cursor.RoundTrips(), 0);
  }
  CPDB_RETURN_IF_ERROR(cursor.status());
  if (!best.has_value()) return std::optional<ProvRecord>();
  if (best->loc == loc) return best;
  // Closest-ancestor inference, rebased onto loc.
  switch (best->op) {
    case ProvOp::kCopy:
      return std::optional<ProvRecord>(ProvRecord::Copy(
          best->tid, loc, loc.Rebase(best->loc, best->src)));
    case ProvOp::kInsert:
      return std::optional<ProvRecord>(ProvRecord::Insert(best->tid, loc));
    case ProvOp::kDelete:
      return std::optional<ProvRecord>(ProvRecord::Delete(best->tid, loc));
  }
  return Status::Internal("unknown provenance op");
}

Result<TraceResult> QueryEngine::TraceBack(const tree::Path& p) {
  TraceResult out;
  tree::Path cur = p;
  int64_t t = store_->LastCommittedTid();
  while (t >= store_->FirstTid()) {
    CPDB_ASSIGN_OR_RETURN(auto rec, NewestApplicable(cur, t));
    if (!rec.has_value()) break;  // unchanged all the way back
    switch (rec->op) {
      case ProvOp::kCopy: {
        out.steps.push_back({rec->tid, ProvOp::kCopy, cur, rec->src});
        if (!target_root_.IsPrefixOf(rec->src)) {
          // The chain leaves the tracked database.
          out.external_src = rec->src;
          out.external_tid = rec->tid;
          return out;
        }
        cur = rec->src;
        t = rec->tid - 1;
        break;
      }
      case ProvOp::kInsert: {
        out.steps.push_back({rec->tid, ProvOp::kInsert, cur, tree::Path()});
        out.origin_tid = rec->tid;
        return out;
      }
      case ProvOp::kDelete: {
        // A D record governing the traced location means it was recreated
        // later without provenance — possible only if tracking was
        // bypassed. Stop; the data's origin is unknown.
        out.steps.push_back({rec->tid, ProvOp::kDelete, cur, tree::Path()});
        return out;
      }
    }
  }
  return out;
}

Result<std::optional<int64_t>> QueryEngine::GetSrc(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(TraceResult trace, TraceBack(p));
  return trace.origin_tid;
}

Result<std::vector<int64_t>> QueryEngine::GetHist(const tree::Path& p) {
  CPDB_ASSIGN_OR_RETURN(TraceResult trace, TraceBack(p));
  std::vector<int64_t> out;
  for (const TraceStep& s : trace.steps) {
    if (s.op == ProvOp::kCopy) out.push_back(s.tid);
  }
  return out;
}

Result<std::vector<int64_t>> QueryEngine::GetMod(
    const tree::Path& p, const provenance::VersionFn& versions) {
  std::set<int64_t> tids;

  // ONE subtree range scan covers every record at or under p: each
  // strategy stores the subtree root of every touched region explicitly
  // (the naive strategies store every touched node), so the streamed
  // range is the complete per-descendant evidence. The pre-cursor path
  // re-queried each descendant location found here individually — the
  // paper's "must process all the descendants of a node" cost (Section
  // 4.2), one round trip per descendant; the leaf-chain scan delivers
  // the same rows in ceil(rows / batch) trips.
  const uint64_t scan_span =
      tracer_ != nullptr
          ? tracer_->Open("query.subtree_scan", tracer_parent_, p.ToString())
          : 0;
  provenance::ProvCursor under = store_->backend()->ScanUnder(p);
  ProvRecord r;
  uint64_t scan_rows = 0;
  while (under.Next(&r)) {
    ++scan_rows;
    tids.insert(r.tid);
  }
  if (tracer_ != nullptr) {
    tracer_->CloseWithCost(scan_span, scan_rows, under.RoundTrips(), 0);
  }
  CPDB_RETURN_IF_ERROR(under.status());

  if (store_->IsHierarchical()) {
    // Modifications recorded at an ancestor a of p (subtree copy, insert,
    // or delete at a) touch p's subtree without leaving records under p.
    // The whole ancestor chain is one batched statement (shallowest
    // first) instead of one point query per level.
    const uint64_t anc_span =
        tracer_ != nullptr
            ? tracer_->Open("query.ancestor_batch", tracer_parent_,
                            p.ToString())
            : 0;
    provenance::ProvCursor above =
        store_->backend()->ScanAtLocOrAncestors(p, /*include_self=*/false);
    uint64_t anc_rows = 0;
    while (above.Next(&r)) {
      ++anc_rows;
      if (versions != nullptr) {
        // Exact check: did the operation's subtree reach p? For I/C the
        // affected subtree is the post-state at r.loc; for D the
        // pre-state. p was touched iff it existed in that version.
        const tree::Tree* v =
            versions(r.op == ProvOp::kDelete ? r.tid - 1 : r.tid);
        if (v == nullptr || v->Find(p) == nullptr) continue;
      }
      tids.insert(r.tid);
    }
    if (tracer_ != nullptr) {
      tracer_->CloseWithCost(anc_span, anc_rows, above.RoundTrips(), 0);
    }
    CPDB_RETURN_IF_ERROR(above.status());
  }
  return std::vector<int64_t>(tids.begin(), tids.end());
}

}  // namespace cpdb::query
