#include "query/approx.h"

namespace cpdb::query {

const char* MayAnswerName(MayAnswer a) {
  switch (a) {
    case MayAnswer::kNo:
      return "no";
    case MayAnswer::kMaybe:
      return "maybe";
    case MayAnswer::kYes:
      return "yes";
  }
  return "?";
}

std::string ApproxRecord::ToString() const {
  std::string out = std::to_string(tid);
  out += ' ';
  out += provenance::ProvOpChar(op);
  out += ' ';
  out += loc.ToString();
  out += ' ';
  out += op == provenance::ProvOp::kCopy ? src.ToString() : "⊥";
  return out;
}

std::vector<ApproxRecord> ApproxProvStore::MayAffect(
    const tree::Path& loc) const {
  std::vector<ApproxRecord> out;
  for (const ApproxRecord& r : records_) {
    if (r.loc.Matches(loc)) out.push_back(r);
  }
  return out;
}

MayAnswer ApproxProvStore::MayComeFrom(int64_t tid, const tree::Path& loc,
                                       const tree::Path& src) const {
  MayAnswer best = MayAnswer::kNo;
  for (const ApproxRecord& r : records_) {
    if (r.tid != tid || r.op != provenance::ProvOp::kCopy) continue;
    // The loc and src globs bind their wildcards jointly: T/a/*/b from
    // S/a/*/b relates T/a/x/b only to S/a/x/b. Check binding consistency
    // when arities match; otherwise fall back to independent matching.
    auto loc_bind = r.loc.Capture(loc);
    auto src_bind = r.src.Capture(src);
    if (!loc_bind.has_value() || !src_bind.has_value()) continue;
    bool consistent = loc_bind->size() != src_bind->size() ||
                      *loc_bind == *src_bind;
    if (!consistent) continue;
    if (!r.loc.HasWildcards() && !r.src.HasWildcards()) {
      return MayAnswer::kYes;
    }
    best = MayAnswer::kMaybe;
  }
  return best;
}

MayAnswer ApproxProvStore::MayComeFromAnywhere(
    const tree::Path& loc, const tree::PathGlob& src_glob) const {
  MayAnswer best = MayAnswer::kNo;
  for (const ApproxRecord& r : records_) {
    if (r.op != provenance::ProvOp::kCopy) continue;
    if (!r.loc.Matches(loc)) continue;
    // Does r's source glob overlap src_glob? Conservative: subsumption in
    // either direction counts as overlap; otherwise skip.
    if (!r.src.SubsumedBy(src_glob) && !src_glob.SubsumedBy(r.src)) {
      continue;
    }
    if (!r.loc.HasWildcards() && !r.src.HasWildcards()) {
      return MayAnswer::kYes;
    }
    best = MayAnswer::kMaybe;
  }
  return best;
}

size_t ApproxProvStore::ApproxBytes() const {
  size_t n = 0;
  for (const ApproxRecord& r : records_) {
    n += r.loc.ToString().size() + r.src.ToString().size() + 16;
  }
  return n;
}

}  // namespace cpdb::query
