#pragma once

#include <optional>
#include <vector>

#include "obs/trace.h"
#include "provenance/inference.h"
#include "provenance/store.h"
#include "tree/path.h"
#include "util/result.h"

namespace cpdb::query {

/// One step in a provenance trace: during transaction `tid`, the data now
/// under scrutiny sat at `loc` and came from `src` (for copies) or was
/// created/deleted there (for I/D).
struct TraceStep {
  int64_t tid = 0;
  provenance::ProvOp op = provenance::ProvOp::kInsert;
  tree::Path loc;
  tree::Path src;
};

/// Result of tracing a location backwards through all transactions — the
/// reflexive-transitive closure Trace of the paper's From relation
/// (Section 2.2), computed by walking tids from tnow down to the first.
struct TraceResult {
  /// Copy hops and the final insert (if reached), newest first.
  std::vector<TraceStep> steps;
  /// Transaction that inserted the data, if its origin is inside the
  /// tracked database.
  std::optional<int64_t> origin_tid;
  /// Where the chain left the tracked database (data copied from an
  /// external source such as S1), if it did.
  std::optional<tree::Path> external_src;
  /// Transaction in which the external copy happened.
  int64_t external_tid = 0;
};

/// Executes the paper's provenance queries against one store.
///
/// `target_root` is the top-level label of the curated (target) database
/// within the universe, e.g. "T": provenance chains are followed while
/// they stay under it and reported as external when they leave.
class QueryEngine {
 public:
  /// `universe` (optional) lets GetMod enumerate current descendants for
  /// hierarchical stores ("each query must process all the descendants of
  /// a node, including ones not listed in the provenance store").
  QueryEngine(provenance::ProvStore* store, tree::Path target_root,
              const tree::Tree* universe = nullptr)
      : store_(store),
        target_root_(std::move(target_root)),
        universe_(universe) {}

  /// Full backwards walk from the data currently at `p`.
  ///
  /// Implementation follows the paper's stored procedures (Section 3.3):
  /// per chain location one streaming store statement (a ProvCursor)
  /// fetches that location's records across all transactions — for
  /// hierarchical stores a combined location-plus-ancestors scan — and
  /// the walk follows the newest applicable record backwards. Cost is
  /// proportional to the number of copy hops, not the number of
  /// transactions.
  Result<TraceResult> TraceBack(const tree::Path& p);

  /// Src(p): the transaction that first created (inserted) the data at p,
  /// if it originated inside this database (Section 2.2: "the Src query
  /// cannot tell us anything about data that was copied from elsewhere").
  Result<std::optional<int64_t>> GetSrc(const tree::Path& p);

  /// Hist(p): all transactions that copied the data now at p, newest
  /// first.
  Result<std::vector<int64_t>> GetHist(const tree::Path& p);

  /// Mod(p): all transactions that created or modified data in the
  /// subtree under p (including p). Round-trip budget after the cursor
  /// redesign: ONE subtree range scan off the leaf chain (ceil(rows /
  /// batch) trips) plus, for hierarchical stores, ONE batched
  /// ancestor-chain statement — O(depth + 1) backend round trips in
  /// total, where the per-descendant path the paper measures (and this
  /// engine used to take) paid one trip per descendant location, O(n).
  /// The extra ancestor statement is still the cause of the hierarchical
  /// getMod penalty in Figure 13, just batched. When `versions` is
  /// provided, ancestor records are checked against the version trees for
  /// exact answers; without it the result may over-approximate
  /// (may-semantics), which is also what a store-only implementation can
  /// honestly deliver.
  Result<std::vector<int64_t>> GetMod(
      const tree::Path& p,
      const provenance::VersionFn& versions = nullptr);

  provenance::ProvStore* store() { return store_; }
  const tree::Path& target_root() const { return target_root_; }

  /// Attaches a per-request span collector for the duration of one traced
  /// query: each backend statement the engine issues (the subtree scan,
  /// the batched ancestor statement, TraceBack's per-location scans)
  /// opens a child span under `parent_span` with its row and round-trip
  /// counts. Pass nullptr to detach. Not thread-safe — a QueryEngine is
  /// session-private and a session runs on one thread at a time, so the
  /// seam follows the same single-threaded contract as the CostModel.
  void set_tracer(obs::SpanCollector* tracer, uint64_t parent_span) {
    tracer_ = tracer;
    tracer_parent_ = parent_span;
  }

 private:
  /// Effective record governing `loc` at the largest tid <= `t_max`:
  /// the newest explicit record at loc, or (hierarchical stores) the
  /// newest closest-ancestor record, rebased onto loc.
  Result<std::optional<provenance::ProvRecord>> NewestApplicable(
      const tree::Path& loc, int64_t t_max);

  provenance::ProvStore* store_;
  tree::Path target_root_;
  const tree::Tree* universe_;
  obs::SpanCollector* tracer_ = nullptr;
  uint64_t tracer_parent_ = 0;
};

}  // namespace cpdb::query
