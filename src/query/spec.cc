#include "query/spec.h"

#include "datalog/parser.h"

namespace cpdb::query {

using provenance::ProvOp;
using provenance::ProvRecord;

const char* SpecRules() {
  return R"(
% ----- Full provenance as a view of hierarchical provenance (S2.1.3) ----
HProvAny(T, P) :- HProv(T, Op, P, Q).
% The derived child must lack explicit provenance (closest ancestor wins).
Infer(T, P) :- NodeV(T, P), !HProvAny(T, P).
Infer(T, P) :- PrevTxn(T, S), NodeV(S, P), !HProvAny(T, P).

Prov(T, Op, P, Q) :- HProv(T, Op, P, Q).
Prov(T, "C", PA, QA) :- Prov(T, "C", P, Q), ChildEdgeV(T, P, A, PA),
                        PrevTxn(T, S), ChildEdgeV(S, Q, A, QA),
                        Infer(T, PA).
Prov(T, "I", PA, "⊥") :- Prov(T, "I", P, "⊥"), ChildEdgeV(T, P, A, PA),
                         Infer(T, PA).
Prov(T, "D", PA, "⊥") :- Prov(T, "D", P, "⊥"), PrevTxn(T, S),
                         ChildEdgeV(S, P, A, PA), Infer(T, PA).

% ----- Convenience views (S2.2) -----------------------------------------
ProvAny(T, P) :- Prov(T, Op, P, Q).
Unch(T, P) :- NodeV(T, P), !ProvAny(T, P).
Ins(T, P) :- Prov(T, "I", P, Q).
Del(T, P) :- Prov(T, "D", P, Q).
Copy(T, P, Q) :- Prov(T, "C", P, Q).

From(T, P, Q) :- Copy(T, P, Q).
From(T, P, P) :- Unch(T, P).

% ----- Trace: reflexive-transitive closure of From ----------------------
Trace(P, T, P, T) :- NodeV(T, P).
Trace(P, T, Q, S) :- From(T, P, Q), PrevTxn(T, S).
Trace(P, T, Q, U) :- Trace(P, T, R, S), Trace(R, S, Q, U).

% ----- User queries ------------------------------------------------------
SrcQ(P, U) :- Now(T), Trace(P, T, Q, U), Ins(U, Q).
HistQ(P, U) :- Now(T), Trace(P, T, Q, U), Copy(U, Q, R).
ModQ(P, U) :- Now(T), PrefixNow(P, QQ), Trace(QQ, T, R, U), ProvAny(U, R).
)";
}

Result<datalog::Evaluator> BuildSpec(const std::vector<ProvRecord>& records,
                                     int64_t first_tid, int64_t last_tid,
                                     const provenance::VersionFn& versions) {
  datalog::Evaluator eval;

  // Provenance record facts.
  for (const ProvRecord& r : records) {
    eval.AddFact("HProv",
                 {std::to_string(r.tid), std::string(1, ProvOpChar(r.op)),
                  r.loc.ToString(),
                  r.op == ProvOp::kCopy ? r.src.ToString() : "⊥"});
  }

  // Version facts. Version first_tid-1 is the initial state.
  std::vector<tree::Path> now_paths;
  for (int64_t t = first_tid - 1; t <= last_tid; ++t) {
    const tree::Tree* v = versions(t);
    if (v == nullptr) {
      return Status::InvalidArgument("missing version " + std::to_string(t));
    }
    std::string ts = std::to_string(t);
    v->Visit([&](const tree::Path& p, const tree::Tree& node) {
      if (!p.IsRoot()) {
        eval.AddFact("NodeV", {ts, p.ToString()});
      }
      for (const auto& [label, child] : node.children()) {
        (void)child;
        eval.AddFact("ChildEdgeV",
                     {ts, p.ToString(), label, p.Child(label).ToString()});
      }
    });
    if (t > first_tid - 1) {
      eval.AddFact("PrevTxn", {ts, std::to_string(t - 1)});
    }
    if (t == last_tid) {
      v->Visit([&](const tree::Path& p, const tree::Tree&) {
        if (!p.IsRoot()) now_paths.push_back(p);
      });
    }
  }
  eval.AddFact("Now", {std::to_string(last_tid)});

  // PrefixNow(p, q): p is a (non-strict) prefix of q, over paths present
  // in the final version (the domain ModQ ranges over).
  for (const tree::Path& p : now_paths) {
    for (const tree::Path& q : now_paths) {
      if (p.IsPrefixOf(q)) {
        eval.AddFact("PrefixNow", {p.ToString(), q.ToString()});
      }
    }
  }

  CPDB_ASSIGN_OR_RETURN(auto rules, datalog::ParseProgram(SpecRules()));
  for (auto& rule : rules) {
    CPDB_RETURN_IF_ERROR(eval.AddRule(std::move(rule)));
  }
  return eval;
}

}  // namespace cpdb::query
