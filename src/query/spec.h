#pragma once

#include <vector>

#include "datalog/evaluator.h"
#include "provenance/inference.h"
#include "provenance/prov_record.h"
#include "tree/path.h"
#include "util/result.h"

namespace cpdb::query {

/// Builds a datalog Evaluator loaded with the paper's provenance views —
/// the *specification* against which the optimized implementations in
/// this module are cross-checked.
///
/// Base facts installed from the inputs:
///   HProv(t, op, p, src)       one per stored provenance record
///   NodeV(t, p)                p exists in the universe after txn t
///   ChildEdgeV(t, p, a, p/a)   edge a under p in version t
///   PrevTxn(t, t-1), Now(tnow)
///
/// Rules installed (Sections 2.1.3 and 2.2, with the Infer side condition
/// applied to the derived child — see provenance/inference.h):
///   Prov      the full provenance view over HProv
///   Unch/Ins/Del/Copy/From     the convenience views
///   Trace     reflexive-transitive closure of From
///   SrcQ/HistQ/ModQ            the user queries
///
/// Bottom is the constant "⊥"; tids are decimal string constants. Sizes
/// are exponential in nothing but the data, yet Trace is quadratic in
/// (nodes x versions) — intended for specification-sized inputs (tests).
Result<datalog::Evaluator> BuildSpec(
    const std::vector<provenance::ProvRecord>& records, int64_t first_tid,
    int64_t last_tid, const provenance::VersionFn& versions);

/// The rule text used by BuildSpec (exposed for documentation and tests).
const char* SpecRules();

}  // namespace cpdb::query
