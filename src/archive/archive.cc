#include "archive/archive.h"

#include <cstdint>

#include "update/semantics.h"

namespace cpdb::archive {

VersionArchive::VersionArchive(int64_t base_version, tree::Tree initial,
                               Options options)
    : options_(options),
      base_version_(base_version),
      last_version_(base_version) {
  if (options_.checkpoint_every == 0) options_.checkpoint_every = 1;
  checkpoints_.emplace(base_version, std::move(initial));
}

Status VersionArchive::Record(int64_t tid, update::Script script,
                              const tree::Tree& post) {
  if (tid != last_version_ + 1) {
    return Status::InvalidArgument(
        "non-consecutive version " + std::to_string(tid) + " after " +
        std::to_string(last_version_));
  }
  scripts_.emplace(tid, std::move(script));
  last_version_ = tid;
  if (static_cast<size_t>(tid - base_version_) % options_.checkpoint_every ==
      0) {
    checkpoints_.emplace(tid, post.Clone());
  }
  return Status::OK();
}

Result<tree::Tree> VersionArchive::GetVersion(int64_t tid) const {
  if (tid < base_version_ || tid > last_version_) {
    return Status::NotFound("version " + std::to_string(tid) +
                            " is outside [" + std::to_string(base_version_) +
                            ", " + std::to_string(last_version_) + "]");
  }
  // Nearest checkpoint at or before tid.
  auto it = checkpoints_.upper_bound(tid);
  --it;  // safe: base_version_ is always present
  tree::Tree t = it->second.Clone();
  for (int64_t v = it->first + 1; v <= tid; ++v) {
    auto sit = scripts_.find(v);
    if (sit == scripts_.end()) {
      return Status::Internal("missing script for version " +
                              std::to_string(v));
    }
    CPDB_RETURN_IF_ERROR(update::ApplySequence(&t, sit->second));
  }
  return t;
}

Result<const update::Script*> VersionArchive::GetScript(int64_t tid) const {
  auto it = scripts_.find(tid);
  if (it == scripts_.end()) {
    return Status::NotFound("no script for version " + std::to_string(tid));
  }
  return &it->second;
}

provenance::VersionFn VersionArchive::MakeVersionFn() const {
  return [this](int64_t tid) -> const tree::Tree* {
    for (int i = 0; i < 2; ++i) {
      if (memo_->version[i] == tid) return &memo_->tree[i];
    }
    auto v = GetVersion(tid);
    if (!v.ok()) return nullptr;
    int slot = memo_->next_slot;
    memo_->next_slot = 1 - slot;
    memo_->version[slot] = tid;
    memo_->tree[slot] = std::move(v).value();
    return &memo_->tree[slot];
  };
}

}  // namespace cpdb::archive
