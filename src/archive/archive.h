#pragma once

#include <map>
#include <memory>
#include <vector>

#include "provenance/inference.h"
#include "tree/tree.h"
#include "update/update.h"
#include "util/result.h"

namespace cpdb::archive {

/// Checkpointed version archive of the curated database.
///
/// The paper (Section 5) argues that archiving and provenance are
/// complementary: the archive preserves *what* each version contained,
/// provenance preserves *how* it changed. This archive stores the update
/// script of each transaction plus periodic full snapshots, reconstructing
/// any version by replaying scripts forward from the nearest checkpoint —
/// the delta-based design of Buneman et al.'s "Archiving scientific data"
/// that the paper builds on.
///
/// Version numbering matches provenance tids: version t is the state
/// *after* transaction t; `base_version` (= first tid - 1) is the initial
/// state.
class VersionArchive {
 public:
  struct Options {
    /// A full snapshot is stored every this many versions (plus the base).
    size_t checkpoint_every = 64;
  };

  /// Starts the archive with the initial database state.
  VersionArchive(int64_t base_version, tree::Tree initial, Options options);
  VersionArchive(int64_t base_version, tree::Tree initial)
      : VersionArchive(base_version, std::move(initial), Options{}) {}

  /// Records that transaction `tid` applied `script` (must be called with
  /// consecutive tids). `post` is the universe after the transaction and
  /// is snapshotted at checkpoint boundaries.
  Status Record(int64_t tid, update::Script script, const tree::Tree& post);

  /// Reconstructs the universe as of (the end of) version `tid`.
  Result<tree::Tree> GetVersion(int64_t tid) const;

  /// The update script of one transaction.
  Result<const update::Script*> GetScript(int64_t tid) const;

  int64_t base_version() const { return base_version_; }
  int64_t last_version() const { return last_version_; }

  /// Number of full snapshots currently held.
  size_t CheckpointCount() const { return checkpoints_.size(); }

  /// A VersionFn (see provenance/inference.h) backed by this archive with
  /// a one-version memo, suited to the sequential access pattern of trace
  /// walks. The returned callable keeps state in the archive adapter and
  /// must not outlive it.
  provenance::VersionFn MakeVersionFn() const;

 private:
  Options options_;
  int64_t base_version_;
  int64_t last_version_;
  std::map<int64_t, tree::Tree> checkpoints_;
  std::map<int64_t, update::Script> scripts_;

  // Two-slot memo: expansion and trace walks need the pre- and post-state
  // of one transaction alive simultaneously.
  struct Memo {
    int64_t version[2] = {INT64_MIN, INT64_MIN};
    tree::Tree tree[2];
    int next_slot = 0;
  };
  mutable std::shared_ptr<Memo> memo_ = std::make_shared<Memo>();
};

}  // namespace cpdb::archive
