#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/result.h"
#include "util/status.h"

namespace cpdb::datalog {

/// Bottom-up datalog engine with stratified negation, evaluated
/// semi-naively (delta iteration) within each stratum.
///
/// This is the executable form of the paper's recursive provenance views
/// (Section 2.1.3's HProv-to-Prov expansion and Section 2.2's
/// From/Trace/Src/Hist/Mod). The optimized hand-written implementations in
/// cpdb::query are cross-checked against this engine by property tests —
/// the datalog text *is* the specification.
class Evaluator {
 public:
  /// Declares a base (EDB) fact.
  void AddFact(const std::string& pred, Tuple tuple);

  /// Adds a rule. Facts (empty body) may also be added this way.
  /// Fails on unsafe rules: every head variable and every variable in a
  /// negated atom must occur in some positive body atom.
  Status AddRule(Rule rule);

  /// Runs to fixpoint. Fails if the program is not stratifiable
  /// (negation through a recursive cycle).
  Status Evaluate();

  /// Tuples of a predicate after Evaluate(); empty set if unknown.
  const std::set<Tuple>& Get(const std::string& pred) const;

  /// True if the ground tuple is derivable (call after Evaluate()).
  bool Holds(const std::string& pred, const Tuple& tuple) const;

  /// Number of derived + base tuples across all predicates.
  size_t TotalTuples() const;

 private:
  Status CheckSafety(const Rule& rule) const;
  Result<std::vector<std::vector<std::string>>> Stratify() const;

  /// Evaluates `rule` with atom `delta_idx` (or -1 for "no delta
  /// restriction") drawing from `delta` instead of the full relation;
  /// inserts derived head tuples into `out`.
  void EvalRule(const Rule& rule, int delta_idx,
                const std::map<std::string, std::set<Tuple>>& delta,
                std::set<Tuple>* out) const;

  void MatchFrom(const Rule& rule, size_t atom_idx, int delta_idx,
                 const std::map<std::string, std::set<Tuple>>& delta,
                 std::map<std::string, std::string>* env,
                 std::set<Tuple>* out) const;

  std::map<std::string, std::set<Tuple>> relations_;
  std::vector<Rule> rules_;
  std::set<Tuple> empty_;
};

}  // namespace cpdb::datalog
