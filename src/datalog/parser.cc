#include "datalog/parser.h"

#include <cctype>

namespace cpdb::datalog {

namespace {

class Cursor {
 public:
  explicit Cursor(const std::string& text) : s_(text) {}

  void SkipSpace() {
    for (;;) {
      while (pos_ < s_.size() &&
             std::isspace(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      if (pos_ < s_.size() && s_[pos_] == '%') {
        while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeStr(const std::string& kw) {
    SkipSpace();
    if (s_.compare(pos_, kw.size(), kw) == 0) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("datalog parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  Result<Term> ParseTerm() {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == '"') {
      ++pos_;
      std::string out;
      while (pos_ < s_.size() && s_[pos_] != '"') {
        if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
        out.push_back(s_[pos_++]);
      }
      if (pos_ >= s_.size()) return Err("unterminated string constant");
      ++pos_;
      return Term::Const(out);
    }
    std::string word = Word();
    if (word.empty()) return Err("expected term");
    bool is_var = std::isupper(static_cast<unsigned char>(word[0])) ||
                  word[0] == '_';
    return is_var ? Term::Var(word) : Term::Const(word);
  }

  Result<Atom> ParseAtom() {
    Atom atom;
    SkipSpace();
    if (Consume('!')) atom.negated = true;
    atom.pred = Word();
    if (atom.pred.empty()) return Err("expected predicate name");
    if (!Consume('(')) return Err("expected '(' after predicate");
    if (!Consume(')')) {
      for (;;) {
        auto t = ParseTerm();
        if (!t.ok()) return t.status();
        atom.args.push_back(std::move(t).value());
        if (Consume(')')) break;
        if (!Consume(',')) return Err("expected ',' or ')'");
      }
    }
    return atom;
  }

  Result<Rule> ParseRuleBody() {
    Rule rule;
    auto head = ParseAtom();
    if (!head.ok()) return head.status();
    if (head->negated) return Err("negated head");
    rule.head = std::move(head).value();
    if (ConsumeStr(":-")) {
      for (;;) {
        auto atom = ParseAtom();
        if (!atom.ok()) return atom.status();
        rule.body.push_back(std::move(atom).value());
        if (!Consume(',')) break;
      }
    }
    if (!Consume('.')) return Err("expected '.' ending rule");
    return rule;
  }

 private:
  std::string Word() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '\'') {
        ++pos_;
      } else {
        break;
      }
    }
    return s_.substr(start, pos_ - start);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Rule>> ParseProgram(const std::string& text) {
  Cursor cur(text);
  std::vector<Rule> rules;
  while (!cur.AtEnd()) {
    auto rule = cur.ParseRuleBody();
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  return rules;
}

Result<Rule> ParseRule(const std::string& text) {
  Cursor cur(text);
  auto rule = cur.ParseRuleBody();
  if (!rule.ok()) return rule.status();
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing text after rule");
  }
  return rule;
}

}  // namespace cpdb::datalog
