#include "datalog/evaluator.h"

#include <algorithm>

namespace cpdb::datalog {

void Evaluator::AddFact(const std::string& pred, Tuple tuple) {
  relations_[pred].insert(std::move(tuple));
}

Status Evaluator::CheckSafety(const Rule& rule) const {
  std::set<std::string> positive_vars;
  for (const Atom& a : rule.body) {
    if (a.negated) continue;
    for (const Term& t : a.args) {
      if (t.is_var) positive_vars.insert(t.text);
    }
  }
  for (const Term& t : rule.head.args) {
    if (t.is_var && positive_vars.count(t.text) == 0) {
      return Status::InvalidArgument("unsafe rule (unbound head var " +
                                     t.text + "): " + rule.ToString());
    }
  }
  for (const Atom& a : rule.body) {
    if (!a.negated) continue;
    for (const Term& t : a.args) {
      if (t.is_var && positive_vars.count(t.text) == 0) {
        return Status::InvalidArgument(
            "unsafe rule (unbound var in negation " + t.text + "): " +
            rule.ToString());
      }
    }
  }
  return Status::OK();
}

Status Evaluator::AddRule(Rule rule) {
  if (rule.body.empty()) {
    Tuple t;
    for (const Term& term : rule.head.args) {
      if (term.is_var) {
        return Status::InvalidArgument("fact with variable: " +
                                       rule.ToString());
      }
      t.push_back(term.text);
    }
    AddFact(rule.head.pred, std::move(t));
    return Status::OK();
  }
  CPDB_RETURN_IF_ERROR(CheckSafety(rule));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> Evaluator::Stratify() const {
  // Collect predicates with dependency edges: head <- body (weight 0 for
  // positive, 1 for negated). A program is stratifiable iff no cycle has a
  // negative edge. We compute strata by iterating the longest-negative-
  // path style relaxation; divergence (> #preds rounds) means a negative
  // cycle.
  std::set<std::string> preds;
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    preds.insert(name);
  }
  for (const Rule& r : rules_) {
    preds.insert(r.head.pred);
    for (const Atom& a : r.body) preds.insert(a.pred);
  }
  std::map<std::string, int> stratum;
  for (const auto& p : preds) stratum[p] = 0;

  size_t n = preds.size();
  bool changed = true;
  for (size_t round = 0; changed; ++round) {
    if (round > n + 1) {
      return Status::InvalidArgument(
          "program is not stratifiable (negation in a cycle)");
    }
    changed = false;
    for (const Rule& r : rules_) {
      int& h = stratum[r.head.pred];
      for (const Atom& a : r.body) {
        int need = stratum[a.pred] + (a.negated ? 1 : 0);
        if (h < need) {
          h = need;
          changed = true;
        }
      }
    }
  }
  int max_stratum = 0;
  for (const auto& [p, s] : stratum) {
    (void)p;
    max_stratum = std::max(max_stratum, s);
  }
  std::vector<std::vector<std::string>> strata(
      static_cast<size_t>(max_stratum) + 1);
  for (const auto& [p, s] : stratum) {
    strata[static_cast<size_t>(s)].push_back(p);
  }
  return strata;
}

void Evaluator::MatchFrom(const Rule& rule, size_t atom_idx, int delta_idx,
                          const std::map<std::string, std::set<Tuple>>& delta,
                          std::map<std::string, std::string>* env,
                          std::set<Tuple>* out) const {
  if (atom_idx == rule.body.size()) {
    Tuple t;
    t.reserve(rule.head.args.size());
    for (const Term& term : rule.head.args) {
      t.push_back(term.is_var ? (*env)[term.text] : term.text);
    }
    out->insert(std::move(t));
    return;
  }
  const Atom& atom = rule.body[atom_idx];

  auto lookup_rel = [&](const std::string& pred) -> const std::set<Tuple>& {
    auto it = relations_.find(pred);
    return it == relations_.end() ? empty_ : it->second;
  };

  if (atom.negated) {
    // All variables are bound (safety); check for absence.
    Tuple t;
    t.reserve(atom.args.size());
    for (const Term& term : atom.args) {
      t.push_back(term.is_var ? (*env)[term.text] : term.text);
    }
    if (lookup_rel(atom.pred).count(t) == 0) {
      MatchFrom(rule, atom_idx + 1, delta_idx, delta, env, out);
    }
    return;
  }

  const std::set<Tuple>* rel;
  if (static_cast<int>(atom_idx) == delta_idx) {
    auto it = delta.find(atom.pred);
    rel = it == delta.end() ? &empty_ : &it->second;
  } else {
    rel = &lookup_rel(atom.pred);
  }

  for (const Tuple& t : *rel) {
    if (t.size() != atom.args.size()) continue;
    // Unify, recording which vars we newly bound.
    std::vector<std::string> bound_here;
    bool ok = true;
    for (size_t i = 0; i < t.size(); ++i) {
      const Term& term = atom.args[i];
      if (!term.is_var) {
        if (term.text != t[i]) {
          ok = false;
          break;
        }
        continue;
      }
      auto it = env->find(term.text);
      if (it == env->end()) {
        (*env)[term.text] = t[i];
        bound_here.push_back(term.text);
      } else if (it->second != t[i]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      MatchFrom(rule, atom_idx + 1, delta_idx, delta, env, out);
    }
    for (const auto& v : bound_here) env->erase(v);
  }
}

void Evaluator::EvalRule(const Rule& rule, int delta_idx,
                         const std::map<std::string, std::set<Tuple>>& delta,
                         std::set<Tuple>* out) const {
  std::map<std::string, std::string> env;
  MatchFrom(rule, 0, delta_idx, delta, &env, out);
}

Status Evaluator::Evaluate() {
  CPDB_ASSIGN_OR_RETURN(auto strata, Stratify());

  for (const auto& stratum_preds : strata) {
    std::set<std::string> in_stratum(stratum_preds.begin(),
                                     stratum_preds.end());
    std::vector<const Rule*> stratum_rules;
    for (const Rule& r : rules_) {
      if (in_stratum.count(r.head.pred) > 0) stratum_rules.push_back(&r);
    }
    if (stratum_rules.empty()) continue;

    // Initial round: full evaluation of each rule.
    std::map<std::string, std::set<Tuple>> delta;
    for (const Rule* r : stratum_rules) {
      std::set<Tuple> derived;
      EvalRule(*r, -1, {}, &derived);
      for (const Tuple& t : derived) {
        if (relations_[r->head.pred].insert(t).second) {
          delta[r->head.pred].insert(t);
        }
      }
    }

    // Semi-naive iteration: re-evaluate only with one recursive atom
    // restricted to the previous round's delta.
    while (!delta.empty()) {
      std::map<std::string, std::set<Tuple>> next_delta;
      for (const Rule* r : stratum_rules) {
        for (size_t i = 0; i < r->body.size(); ++i) {
          const Atom& a = r->body[i];
          if (a.negated) continue;
          if (in_stratum.count(a.pred) == 0) continue;
          if (delta.find(a.pred) == delta.end()) continue;
          std::set<Tuple> derived;
          EvalRule(*r, static_cast<int>(i), delta, &derived);
          for (const Tuple& t : derived) {
            if (relations_[r->head.pred].insert(t).second) {
              next_delta[r->head.pred].insert(t);
            }
          }
        }
      }
      delta = std::move(next_delta);
    }
  }
  return Status::OK();
}

const std::set<Tuple>& Evaluator::Get(const std::string& pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? empty_ : it->second;
}

bool Evaluator::Holds(const std::string& pred, const Tuple& tuple) const {
  return Get(pred).count(tuple) > 0;
}

size_t Evaluator::TotalTuples() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) {
    (void)pred;
    n += rel.size();
  }
  return n;
}

}  // namespace cpdb::datalog
