#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cpdb::datalog {

/// A term is a variable (uppercase-initial identifier) or a constant
/// (anything else; quoted strings allow arbitrary constants).
struct Term {
  bool is_var = false;
  std::string text;

  static Term Var(std::string name) { return Term{true, std::move(name)}; }
  static Term Const(std::string value) {
    return Term{false, std::move(value)};
  }

  bool operator==(const Term& o) const {
    return is_var == o.is_var && text == o.text;
  }
  std::string ToString() const;
};

/// A literal: possibly-negated predicate applied to terms.
struct Atom {
  std::string pred;
  std::vector<Term> args;
  bool negated = false;

  std::string ToString() const;
};

/// head :- body. An empty body makes the rule a fact (all args must then
/// be constants).
struct Rule {
  Atom head;
  std::vector<Atom> body;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Rule& r);

/// A ground tuple in a relation.
using Tuple = std::vector<std::string>;

std::string TupleToString(const Tuple& t);

}  // namespace cpdb::datalog
