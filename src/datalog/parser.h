#pragma once

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/result.h"

namespace cpdb::datalog {

/// Parses datalog program text:
///
///   Prov(T, Op, P, Q) :- HProv(T, Op, P, Q).
///   Infer(T, P) :- Node(T, P), !HProvAny(T, P).
///   Edge("a", "b").
///
/// Identifiers beginning with an uppercase letter are variables; quoted
/// strings and other identifiers (including numbers) are constants.
/// '!' marks negation. '%' starts a line comment.
Result<std::vector<Rule>> ParseProgram(const std::string& text);

/// Parses a single rule or fact (without trailing text).
Result<Rule> ParseRule(const std::string& text);

}  // namespace cpdb::datalog
