#include "datalog/ast.h"

#include <sstream>

namespace cpdb::datalog {

std::string Term::ToString() const {
  if (is_var) return text;
  return "\"" + text + "\"";
}

std::string Atom::ToString() const {
  std::ostringstream os;
  if (negated) os << "!";
  os << pred << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << args[i].ToString();
  }
  os << ")";
  return os.str();
}

std::string Rule::ToString() const {
  std::ostringstream os;
  os << head.ToString();
  if (!body.empty()) {
    os << " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) os << ", ";
      os << body[i].ToString();
    }
  }
  os << ".";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rule& r) {
  return os << r.ToString();
}

std::string TupleToString(const Tuple& t) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) os << ", ";
    os << t[i];
  }
  os << ")";
  return os.str();
}

}  // namespace cpdb::datalog
