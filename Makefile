# Convenience wrapper around the CMake presets (see CMakePresets.json).
#
#   make            — release build (benches get -O2 -DNDEBUG; test
#                     binaries keep assertions armed)
#   make test       — full suite via ctest
#   make unit       — ctest -L unit only
#   make integration— ctest -L integration only
#   make asan       — Debug + ASan/UBSan build and suite
#   make bench      — run the figure benches (release build)
#   make clean      — drop all build trees

JOBS ?= $(shell nproc)

.PHONY: all build test unit integration asan bench clean

all: build

build:
	cmake --preset release
	cmake --build --preset release -j $(JOBS)

test: build
	ctest --preset release -j $(JOBS)

unit: build
	ctest --preset unit -j $(JOBS)

integration: build
	ctest --preset integration -j $(JOBS)

asan:
	cmake --preset asan
	cmake --build --preset asan -j $(JOBS)
	ctest --preset asan -j $(JOBS)

bench: build
	./build/bench_fig7_storage3500
	./build/bench_fig8_storage14000
	./build/bench_fig9_optime
	./build/bench_fig10_overhead
	./build/bench_fig11_deletion
	./build/bench_fig12_txnlen
	./build/bench_fig13_querytime

clean:
	rm -rf build build-dev build-asan
