// Figure 13: time to answer the getSrc, getMod, and getHist provenance
// queries at the end of a 14,000-real run, for each storage method, on
// random locations. As in the paper, the provenance relation is queried
// WITHOUT indexes ("these query times represent worst-case behavior"):
// every store query is charged as a full table scan, so smaller tables
// answer faster.
//
// Expected shape (paper Section 4.2): getHist <= getSrc <= getMod; T
// ~2.5x faster than N across queries; H slightly faster than N for
// getSrc/getHist but ~20% slower for getMod (one extra ancestor probe
// per level); HT matches T on getSrc/getHist, and only modestly beats N
// on getMod.

#include <cstdio>
#include <set>
#include <string>
#include <utility>

#include "harness.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 14000));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.pattern = workload::Pattern::kReal;
  base.target_entries = 3000;
  base.source_entries = 6000;
  base.use_indexes = flags.GetBool("use-indexes", false);
  size_t n_queries = static_cast<size_t>(flags.GetInt("queries", 50));

  JsonReport report("fig13_querytime");
  report.config()
      .Set("steps", base.steps)
      .Set("txn_len", base.txn_len)
      .Set("pattern", "real")
      .Set("queries", n_queries)
      .Set("use_indexes", base.use_indexes);

  PrintHeader("Figure 13", "provenance query time after 14000-real (ms)");
  std::printf("steps=%zu queries=%zu indexes=%s\n\n", base.steps, n_queries,
              base.use_indexes ? "on" : "off (paper's worst case)");

  std::printf("%-8s %12s %12s %12s %10s | %9s %12s\n", "method", "getSrc",
              "getMod", "getHist", "rows", "mod-RTs", "mod-RTs(old)");
  for (auto strat : kAllStrategies) {
    RunConfig cfg = base;
    cfg.strategy = strat;
    RunStats st = RunWorkload(cfg);

    // Random probe locations from the final target tree.
    Rng rng(7);
    std::vector<tree::Path> locs;
    const tree::Tree* target = st.editor->TargetView();
    std::vector<tree::Path> all;
    target->Visit([&](const tree::Path& rel, const tree::Tree&) {
      if (!rel.IsRoot()) all.push_back(tree::Path({std::string("T")}).Concat(rel));
    });
    for (size_t i = 0; i < n_queries && !all.empty(); ++i) {
      locs.push_back(all[rng.NextIndex(all.size())]);
    }

    // Returns {avg ms per query, avg round trips per query}.
    auto measure = [&](auto&& fn) {
      relstore::CostSnapshot before = st.prov_db->cost().Snap();
      for (const tree::Path& p : locs) fn(p);
      relstore::CostSnapshot after = st.prov_db->cost().Snap();
      double n = static_cast<double>(locs.size());
      return std::pair<double, double>(
          (after.micros - before.micros) / 1000.0 / n,
          static_cast<double>(after.calls - before.calls) / n);
    };
    query::QueryEngine* q = st.editor->query();
    auto [src_ms, src_rt] = measure([&](const tree::Path& p) {
      (void)q->GetSrc(p);
    });
    auto [mod_ms, mod_rt] = measure([&](const tree::Path& p) {
      (void)q->GetMod(p);
    });
    auto [hist_ms, hist_rt] = measure([&](const tree::Path& p) {
      (void)q->GetHist(p);
    });

    // What the pre-redesign (per-descendant) read path would have paid
    // for the same getMod workload: one GetUnder, one GetAtLoc per
    // distinct location found under p, and (hierarchical strategies) one
    // point query per ancestor level — O(n) round trips where the cursor
    // path issues O(depth + 1).
    provenance::ProvBackend* backend = st.editor->store()->backend();
    bool hierarchical = st.editor->store()->IsHierarchical();
    double legacy_mod_rt = 0;
    for (const tree::Path& p : locs) {
      std::set<std::string> distinct;
      provenance::ProvCursor under = backend->ScanUnder(p);
      provenance::ProvRecord rec;
      while (under.Next(&rec)) distinct.insert(rec.loc.ToString());
      size_t trips = 1 + distinct.size();
      if (hierarchical) {
        for (tree::Path a = p; a.Depth() > 2; a = a.Parent()) ++trips;
      }
      legacy_mod_rt += static_cast<double>(trips);
    }
    legacy_mod_rt /= static_cast<double>(locs.size());

    std::printf("%-8s %12.3f %12.3f %12.3f %10zu | %9.1f %12.1f\n",
                provenance::StrategyShortName(strat), src_ms, mod_ms,
                hist_ms, st.prov_rows, mod_rt, legacy_mod_rt);
    report.AddRow()
        .Set("method", provenance::StrategyShortName(strat))
        .Set("ops", st.applied)
        .Set("getsrc_ms", src_ms)
        .Set("getmod_ms", mod_ms)
        .Set("gethist_ms", hist_ms)
        .Set("getsrc_round_trips", src_rt)
        .Set("getmod_round_trips", mod_rt)
        .Set("getmod_round_trips_legacy", legacy_mod_rt)
        .Set("gethist_round_trips", hist_rt)
        .Set("prov_rows", st.prov_rows)
        .Set("prov_bytes", st.prov_bytes)
        .Set("workload_round_trips", st.prov_round_trips)
        .Set("real_ms", st.real_ms);
  }
  std::printf(
      "\nShape check vs paper: T fastest (~2.5x over N, its table is\n"
      "~25-35%% of N's); H beats N on getSrc/getHist but loses on getMod;\n"
      "HT == T on getSrc/getHist. mod-RTs is the measured getMod\n"
      "round-trip count on the cursor read path; mod-RTs(old) is what the\n"
      "pre-redesign per-descendant path would have issued for the same\n"
      "workload (lower is better; the gap is the redesign's win).\n");
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
