// Figure 13: time to answer the getSrc, getMod, and getHist provenance
// queries at the end of a 14,000-real run, for each storage method, on
// random locations. As in the paper, the provenance relation is queried
// WITHOUT indexes ("these query times represent worst-case behavior"):
// every store query is charged as a full table scan, so smaller tables
// answer faster.
//
// Expected shape (paper Section 4.2): getHist <= getSrc <= getMod; T
// ~2.5x faster than N across queries; H slightly faster than N for
// getSrc/getHist but ~20% slower for getMod (one extra ancestor probe
// per level); HT matches T on getSrc/getHist, and only modestly beats N
// on getMod.

#include <cstdio>

#include "harness.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 14000));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.pattern = workload::Pattern::kReal;
  base.target_entries = 3000;
  base.source_entries = 6000;
  base.use_indexes = flags.GetBool("use-indexes", false);
  size_t n_queries = static_cast<size_t>(flags.GetInt("queries", 50));

  PrintHeader("Figure 13", "provenance query time after 14000-real (ms)");
  std::printf("steps=%zu queries=%zu indexes=%s\n\n", base.steps, n_queries,
              base.use_indexes ? "on" : "off (paper's worst case)");

  std::printf("%-8s %12s %12s %12s %10s\n", "method", "getSrc", "getMod",
              "getHist", "rows");
  for (auto strat : kAllStrategies) {
    RunConfig cfg = base;
    cfg.strategy = strat;
    RunStats st = RunWorkload(cfg);

    // Random probe locations from the final target tree.
    Rng rng(7);
    std::vector<tree::Path> locs;
    const tree::Tree* target = st.editor->TargetView();
    std::vector<tree::Path> all;
    target->Visit([&](const tree::Path& rel, const tree::Tree&) {
      if (!rel.IsRoot()) all.push_back(tree::Path({std::string("T")}).Concat(rel));
    });
    for (size_t i = 0; i < n_queries && !all.empty(); ++i) {
      locs.push_back(all[rng.NextIndex(all.size())]);
    }

    auto measure = [&](auto&& fn) {
      double before = st.prov_db->cost().ElapsedMicros();
      for (const tree::Path& p : locs) fn(p);
      double us = st.prov_db->cost().ElapsedMicros() - before;
      return us / 1000.0 / static_cast<double>(locs.size());
    };
    query::QueryEngine* q = st.editor->query();
    double src_ms = measure([&](const tree::Path& p) {
      (void)q->GetSrc(p);
    });
    double mod_ms = measure([&](const tree::Path& p) {
      (void)q->GetMod(p);
    });
    double hist_ms = measure([&](const tree::Path& p) {
      (void)q->GetHist(p);
    });
    std::printf("%-8s %12.3f %12.3f %12.3f %10zu\n",
                provenance::StrategyShortName(strat), src_ms, mod_ms,
                hist_ms, st.prov_rows);
  }
  std::printf(
      "\nShape check vs paper: T fastest (~2.5x over N, its table is\n"
      "~25-35%% of N's); H beats N on getSrc/getHist but loses on getMod;\n"
      "HT == T on getSrc/getHist.\n");
  return 0;
}
