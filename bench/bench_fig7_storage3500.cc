// Figure 7: number of entries in the provenance store after update
// patterns of length 3500 (Table 2's add / copy / delete / ac-mix / mix),
// for each storage method N, H, T, HT. Commit every 5 operations.
//
// Expected shape (paper Section 4.2): adds and deletes are handled
// essentially the same by all methods; copies stress the system — N and T
// store four records per size-4 copy where H and HT store one; HT is the
// most storage-efficient overall.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 3500));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  JsonReport report("fig7_storage");
  report.config()
      .Set("steps", base.steps)
      .Set("txn_len", base.txn_len)
      .Set("seed", static_cast<int64_t>(base.seed));

  PrintHeader("Figure 7", "provenance records after 3500-step updates");
  std::printf("steps=%zu txn_len=%zu seed=%llu\n\n", base.steps,
              base.txn_len, static_cast<unsigned long long>(base.seed));

  const workload::Pattern patterns[] = {
      workload::Pattern::kAdd, workload::Pattern::kCopy,
      workload::Pattern::kDelete, workload::Pattern::kAcMix,
      workload::Pattern::kMix};

  std::printf("%-8s", "rows");
  for (auto p : patterns) std::printf("%10s", workload::PatternName(p));
  std::printf("\n");
  for (auto strat : kAllStrategies) {
    std::printf("%-8s", provenance::StrategyShortName(strat));
    for (auto pattern : patterns) {
      RunConfig cfg = base;
      cfg.strategy = strat;
      cfg.pattern = pattern;
      RunStats st = RunWorkload(cfg);
      std::printf("%10zu", st.prov_rows);
      report.AddRow()
          .Set("method", provenance::StrategyShortName(strat))
          .Set("pattern", workload::PatternName(pattern))
          .Set("ops", st.applied)
          .Set("prov_rows", st.prov_rows)
          .Set("prov_bytes", st.prov_bytes)
          .Set("round_trips", st.prov_round_trips)
          .Set("rows_moved", st.prov_rows_moved)
          .Set("write_round_trips", st.prov_write_trips)
          .Set("write_rows", st.prov_write_rows)
          .Set("real_ms", st.real_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check vs paper: N/T ~4 rows per copy, H/HT ~1; N==H on the\n"
      "pure-add pattern; HT lowest on mixes.\n");
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
