// Figure 9: average time for target-database processing ("Dataset
// Update") and for add / delete / copy / commit interactions with the
// provenance store, during a 14,000-step mix run.
//
// Expected shape (paper Section 4.2): dataset update dominates; naive
// per-op provenance costs are a modest fraction of it; transactional
// adds/copies are essentially instantaneous with commits costing ~25% of
// a per-op dataset update every txn_len ops; hierarchical copies are
// cheap but inserts pay an extra existence-probe round trip; HT per-op
// costs stay tiny.
//
// Batched write path: for T/HT the committed transaction's native target
// writes ride ONE ApplyBatch round trip per commit instead of one per
// op, so their dataset-update average sits well below N/H's per-op
// figure — the write-side analogue of the paper's "reduced number of
// round-trips" win. The JSON report carries the measured write round
// trips/rows for both stores so the reduction can be differenced.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 14000));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.pattern = workload::Pattern::kMix;
  base.target_entries = 3000;
  base.source_entries = 6000;
  // --durable=<dir>: run the provenance store durably (WAL group commit,
  // one fsync per transaction) rooted at <dir>, wiped per run. The log
  // bytes and fsync counters then land in the JSON so logging overhead
  // can be differenced against the default in-memory numbers, which are
  // untouched by this mode.
  const std::string durable_dir = flags.GetString("durable", "");
  base.durable_dir = durable_dir;

  JsonReport report("fig9_optime");
  report.config()
      .Set("steps", base.steps)
      .Set("txn_len", base.txn_len)
      .Set("pattern", "mix")
      .Set("durable", !durable_dir.empty());

  PrintHeader("Figure 9",
              "avg simulated time per operation, 14000-mix (us)");
  std::printf("steps=%zu txn_len=%zu durable=%s\n\n", base.steps,
              base.txn_len, durable_dir.empty() ? "no" : "yes");

  std::printf("%-8s %12s %10s %10s %10s %10s\n", "method", "dataset-upd",
              "add-prov", "del-prov", "copy-prov", "commit");
  for (auto strat : kAllStrategies) {
    RunConfig cfg = base;
    cfg.strategy = strat;
    RunStats st = RunWorkload(cfg);
    std::printf("%-8s %12.1f %10.2f %10.2f %10.2f %10.2f\n",
                provenance::StrategyShortName(strat), st.dataset_avg_us,
                st.add_prov.Avg(), st.del_prov.Avg(), st.copy_prov.Avg(),
                st.commit_prov.Avg());
    if (!durable_dir.empty() && st.applied > 0) {
      std::printf("         durability: %zu fsyncs (%.2f/op), %zu log "
                  "bytes (%.1f B/op)\n",
                  st.prov_fsyncs,
                  static_cast<double>(st.prov_fsyncs) / st.applied,
                  st.prov_log_bytes,
                  static_cast<double>(st.prov_log_bytes) / st.applied);
    }
    report.AddRow()
        .Set("method", provenance::StrategyShortName(strat))
        .Set("ops", st.applied)
        .Set("dataset_avg_us", st.dataset_avg_us)
        .Set("add_prov_us", st.add_prov.Avg())
        .Set("del_prov_us", st.del_prov.Avg())
        .Set("copy_prov_us", st.copy_prov.Avg())
        .Set("commit_us", st.commit_prov.Avg())
        .Set("prov_wall_us", st.prov_us)
        .Set("round_trips", st.prov_round_trips)
        .Set("rows_moved", st.prov_rows_moved)
        .Set("write_round_trips", st.prov_write_trips)
        .Set("write_rows", st.prov_write_rows)
        .Set("target_write_round_trips", st.target_write_trips)
        .Set("target_write_rows", st.target_write_rows)
        .Set("prov_bytes", st.prov_bytes)
        .Set("fsyncs", st.prov_fsyncs)
        .Set("log_bytes", st.prov_log_bytes)
        .Set("fsyncs_per_op",
             st.applied == 0
                 ? 0.0
                 : static_cast<double>(st.prov_fsyncs) / st.applied)
        .Set("log_bytes_per_op",
             st.applied == 0
                 ? 0.0
                 : static_cast<double>(st.prov_log_bytes) / st.applied)
        .Set("real_ms", st.real_ms);
  }
  std::printf(
      "\nShape check vs paper: T per-op ~0 with a commit ~25%% of a per-op\n"
      "dataset update; H copies cheaper than N but inserts dearer (probe);\n"
      "HT per-op costs small. T/HT dataset-upd is amortized over batched\n"
      "commit-time native writes (one ApplyBatch round trip per commit),\n"
      "so it sits below N/H's per-op figure.\n");
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
