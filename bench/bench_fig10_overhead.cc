// Figure 10: provenance-tracking overhead per operation type, as a
// percentage of the time to perform each basic (target database)
// operation, on the 14,000-mix workload.
//
// Expected shape (paper Section 4.2): all naive overheads below ~30%;
// hierarchical copies much cheaper but inserts costlier than naive
// (existence probe); transactional near zero per op; HT at most ~6%.
//
// The denominator is the *per-op* dataset-update time — one native round
// trip carrying the run's average rows per op — reconstructed from the
// cost parameters rather than taken from the measured average, because
// since the batched write path T/HT's measured target time is amortized
// over one ApplyBatch per commit (fig9) and would inflate their
// percentages against the paper's per-op baseline.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 14000));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.pattern = workload::Pattern::kMix;
  base.target_entries = 3000;
  base.source_entries = 6000;

  JsonReport report("fig10_overhead");
  report.config()
      .Set("steps", base.steps)
      .Set("txn_len", base.txn_len)
      .Set("pattern", "mix");

  PrintHeader("Figure 10", "provenance overhead per op type (%)");
  std::printf("steps=%zu txn_len=%zu (overhead = prov time / dataset time)\n\n",
              base.steps, base.txn_len);

  std::printf("%-8s %10s %10s %10s\n", "method", "add", "delete", "copy");
  for (auto strat : kAllStrategies) {
    RunConfig cfg = base;
    cfg.strategy = strat;
    RunStats st = RunWorkload(cfg);
    // Per-op dataset-update baseline (see header comment).
    relstore::CostParams tp = wrap::TreeTargetDb::DefaultTargetCost();
    double rows_per_op =
        st.applied == 0 ? 1.0
                        : static_cast<double>(st.target_write_rows) /
                              static_cast<double>(st.applied);
    double base_us = tp.roundtrip_us + tp.per_row_us * rows_per_op;
    if (base_us <= 0) base_us = 1;
    std::printf("%-8s %9.1f%% %9.1f%% %9.1f%%\n",
                provenance::StrategyShortName(strat),
                100.0 * st.add_prov.Avg() / base_us,
                100.0 * st.del_prov.Avg() / base_us,
                100.0 * st.copy_prov.Avg() / base_us);
    report.AddRow()
        .Set("method", provenance::StrategyShortName(strat))
        .Set("ops", st.applied)
        .Set("add_overhead_pct", 100.0 * st.add_prov.Avg() / base_us)
        .Set("del_overhead_pct", 100.0 * st.del_prov.Avg() / base_us)
        .Set("copy_overhead_pct", 100.0 * st.copy_prov.Avg() / base_us)
        .Set("prov_wall_us", st.prov_us)
        .Set("round_trips", st.prov_round_trips)
        .Set("rows_moved", st.prov_rows_moved)
        .Set("write_round_trips", st.prov_write_trips)
        .Set("write_rows", st.prov_write_rows)
        .Set("target_write_round_trips", st.target_write_trips)
        .Set("target_write_rows", st.target_write_rows)
        .Set("prov_bytes", st.prov_bytes)
        .Set("real_ms", st.real_ms);
  }
  std::printf(
      "\nShape check vs paper: N <= ~30%% everywhere; H add > N add but\n"
      "H copy < N copy; T ~0%%; HT <= ~6%%.\n");
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
