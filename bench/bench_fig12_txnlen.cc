// Figure 12: effect of transaction length on provenance processing time —
// the 3500-real update with the hierarchical-transactional method at
// transaction lengths 7, 100, 500, 1000.
//
// Expected shape (paper Section 4.2): per-op times are ~flat in
// transaction length; commit time grows ~linearly with it; the amortized
// time per operation (commit cost spread over the transaction's ops)
// stays about constant.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 3500));
  base.pattern = workload::Pattern::kReal;
  base.strategy = provenance::Strategy::kHierarchicalTransactional;
  base.target_entries = 1500;
  base.source_entries = 3000;

  JsonReport report("fig12_txnlen");
  report.config().Set("steps", base.steps).Set("pattern", "real").Set(
      "method", "HT");

  PrintHeader("Figure 12",
              "transaction length vs processing time (HT, 3500-real, us)");
  std::printf("steps=%zu\n\n", base.steps);

  std::printf("%-10s %10s %10s %10s %12s %12s | %9s %12s\n", "txn-len",
              "add", "delete", "copy", "commit", "amortized", "write-RTs",
              "write-RTs(old)");
  for (size_t txn_len : {size_t{7}, size_t{100}, size_t{500}, size_t{1000}}) {
    RunConfig cfg = base;
    cfg.txn_len = txn_len;
    RunStats st = RunWorkload(cfg);
    double amortized =
        st.applied == 0
            ? 0
            : (st.add_prov.total_us + st.del_prov.total_us +
               st.copy_prov.total_us + st.commit_prov.total_us) /
                  static_cast<double>(st.applied);
    // What the pre-refactor write path would have paid for this run: the
    // provenance side already group-committed (one WriteRecords per
    // non-empty commit — unchanged), but every committed op used to reach
    // the target as its own ApplyNative round trip, where the batched
    // path issues one target ApplyBatch per commit. Mirrors fig13's
    // measured-vs-legacy read comparison, on the write side.
    size_t write_rts = st.prov_write_trips + st.target_write_trips;
    size_t write_rts_legacy = st.prov_write_trips + st.applied;
    std::printf("%-10zu %10.2f %10.2f %10.2f %12.1f %12.2f | %9zu %12zu\n",
                txn_len, st.add_prov.Avg(), st.del_prov.Avg(),
                st.copy_prov.Avg(), st.commit_prov.Avg(), amortized,
                write_rts, write_rts_legacy);
    report.AddRow()
        .Set("txn_len", txn_len)
        .Set("ops", st.applied)
        .Set("add_us", st.add_prov.Avg())
        .Set("del_us", st.del_prov.Avg())
        .Set("copy_us", st.copy_prov.Avg())
        .Set("commit_us", st.commit_prov.Avg())
        .Set("amortized_us", amortized)
        .Set("prov_wall_us", st.prov_us)
        .Set("round_trips", st.prov_round_trips)
        .Set("rows_moved", st.prov_rows_moved)
        .Set("write_round_trips", st.prov_write_trips)
        .Set("write_rows", st.prov_write_rows)
        .Set("target_write_round_trips", st.target_write_trips)
        .Set("target_write_rows", st.target_write_rows)
        .Set("write_round_trips_total", write_rts)
        .Set("write_round_trips_legacy", write_rts_legacy)
        .Set("prov_bytes", st.prov_bytes)
        .Set("real_ms", st.real_ms);
  }
  std::printf(
      "\nShape check vs paper: per-op times flat; commit grows ~linearly\n"
      "with transaction length; amortized per-op time ~constant.\n"
      "write-RTs is the measured write round-trip count on the batched\n"
      "path (provenance + target); write-RTs(old) is what the\n"
      "pre-refactor per-op native push would have issued for the same\n"
      "run (lower is better; the gap is the write batching win).\n");
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
