// Figure 8: number of provenance records and physical table size after
// 14,000-step mix and real update patterns for each method (commit every
// 5 operations). The paper annotates each bar with the physical size of
// the MySQL table (10.5 MB naive-mix down to 1.5 MB for HT).
//
// Expected shape: N > T > H > HT on mix; on real (copy-heavy with
// adds/deletes inside the copied subtree) the hierarchical methods save
// the most.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 14000));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  base.target_entries = 3000;
  base.source_entries = 6000;

  JsonReport report("fig8_storage");
  report.config()
      .Set("steps", base.steps)
      .Set("txn_len", base.txn_len)
      .Set("seed", static_cast<int64_t>(base.seed));

  PrintHeader("Figure 8",
              "provenance records + physical size, 14000-step runs");
  std::printf("steps=%zu txn_len=%zu\n\n", base.steps, base.txn_len);

  const workload::Pattern patterns[] = {workload::Pattern::kMix,
                                        workload::Pattern::kReal};

  std::printf("%-8s %12s %12s %12s %12s\n", "method", "mix rows",
              "mix MB", "real rows", "real MB");
  for (auto strat : kAllStrategies) {
    std::printf("%-8s", provenance::StrategyShortName(strat));
    for (auto pattern : patterns) {
      RunConfig cfg = base;
      cfg.strategy = strat;
      cfg.pattern = pattern;
      RunStats st = RunWorkload(cfg);
      std::printf(" %12zu %12.2f", st.prov_rows,
                  st.prov_bytes / (1024.0 * 1024.0));
      report.AddRow()
          .Set("method", provenance::StrategyShortName(strat))
          .Set("pattern", workload::PatternName(pattern))
          .Set("ops", st.applied)
          .Set("prov_rows", st.prov_rows)
          .Set("prov_bytes", st.prov_bytes)
          .Set("round_trips", st.prov_round_trips)
          .Set("rows_moved", st.prov_rows_moved)
          .Set("write_round_trips", st.prov_write_trips)
          .Set("write_rows", st.prov_write_rows)
          .Set("real_ms", st.real_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check vs paper: mix ordering N > T > H > HT in rows and MB;\n"
      "T stores ~25-35%% of N's records on mix.\n");
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
