// Figure 8: number of provenance records and physical table size after
// 14,000-step mix and real update patterns for each method (commit every
// 5 operations). The paper annotates each bar with the physical size of
// the MySQL table (10.5 MB naive-mix down to 1.5 MB for HT).
//
// Expected shape: N > T > H > HT on mix; on real (copy-heavy with
// adds/deletes inside the copied subtree) the hierarchical methods save
// the most.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 14000));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  base.target_entries = 3000;
  base.source_entries = 6000;

  PrintHeader("Figure 8",
              "provenance records + physical size, 14000-step runs");
  std::printf("steps=%zu txn_len=%zu\n\n", base.steps, base.txn_len);

  std::printf("%-8s %12s %12s %12s %12s\n", "method", "mix rows",
              "mix MB", "real rows", "real MB");
  for (auto strat : kAllStrategies) {
    RunConfig mix = base;
    mix.strategy = strat;
    mix.pattern = workload::Pattern::kMix;
    RunStats sm = RunWorkload(mix);

    RunConfig real = base;
    real.strategy = strat;
    real.pattern = workload::Pattern::kReal;
    RunStats sr = RunWorkload(real);

    std::printf("%-8s %12zu %12.2f %12zu %12.2f\n",
                provenance::StrategyShortName(strat), sm.prov_rows,
                sm.prov_bytes / (1024.0 * 1024.0), sr.prov_rows,
                sr.prov_bytes / (1024.0 * 1024.0));
  }
  std::printf(
      "\nShape check vs paper: mix ordering N > T > H > HT in rows and MB;\n"
      "T stores ~25-35%% of N's records on mix.\n");
  return 0;
}
