// Ablation benchmarks for the design choices called out in DESIGN.md:
//
//  A. Provenance-store indexing: the paper measured queries without
//     indexes ("worst-case behavior"); how much do the {Tid,Loc}/Loc/Tid
//     indexes buy?
//  B. HT commit-time redundancy elimination (Section 3.2.4): the paper
//     judged it "not worthwhile"; measure rows saved vs commit cost on a
//     copy-within-copy workload engineered to create redundancy.
//  C. Bulk updates: full provenance rows vs one approximate glob record
//     (Section 6) as the bulk statement grows.

#include <cstdio>

#include "harness.h"
#include "provenance/txn_store.h"

using namespace cpdb;
using namespace cpdb::bench;

namespace {

void AblationIndexes(JsonReport* report) {
  std::printf("--- A. query cost: indexed vs unindexed provenance store ---\n");
  std::printf("%-8s %14s %14s %10s\n", "method", "getSrc(idx) ms",
              "getSrc(scan) ms", "speedup");
  for (auto strat : kAllStrategies) {
    double times[2];
    for (int use_idx = 0; use_idx < 2; ++use_idx) {
      RunConfig cfg;
      cfg.strategy = strat;
      cfg.pattern = workload::Pattern::kReal;
      cfg.steps = 4000;
      cfg.use_indexes = use_idx == 1;
      RunStats st = RunWorkload(cfg);
      const tree::Tree* target = st.editor->TargetView();
      std::vector<tree::Path> locs;
      target->Visit([&](const tree::Path& rel, const tree::Tree&) {
        if (!rel.IsRoot() && locs.size() < 40) {
          locs.push_back(tree::Path({std::string("T")}).Concat(rel));
        }
      });
      double before = st.prov_db->cost().ElapsedMicros();
      for (const auto& p : locs) (void)st.editor->query()->GetSrc(p);
      times[use_idx] = (st.prov_db->cost().ElapsedMicros() - before) /
                       1000.0 / static_cast<double>(locs.size());
    }
    std::printf("%-8s %14.3f %14.3f %9.1fx\n",
                provenance::StrategyShortName(strat), times[1], times[0],
                times[0] / (times[1] > 0 ? times[1] : 1));
    report->AddRow()
        .Set("section", "indexes")
        .Set("strategy", provenance::StrategyShortName(strat))
        .Set("getsrc_indexed_ms", times[1])
        .Set("getsrc_scan_ms", times[0]);
  }
  std::printf("\n");
}

void AblationDedupe(JsonReport* report) {
  std::printf("--- B. HT commit-time redundancy elimination ---\n");
  std::printf("(copy a whole entry, then re-copy one of its children from "
              "the same source: the child record is inferable)\n");
  for (bool dedupe : {false, true}) {
    relstore::Database prov_db("provdb");
    provenance::ProvBackend backend(&prov_db);
    provenance::TxnStoreOptions topts;
    topts.hierarchical = true;
    topts.dedupe_on_commit = dedupe;
    provenance::TxnStore store(&backend, topts);

    tree::Tree universe;
    (void)universe.AddChild("S", workload::GenOrganelleLike(2000, 3));
    (void)universe.AddChild("T", tree::Tree());
    Stopwatch wall;
    for (int i = 0; i < 2000; ++i) {
      std::string entry = "o" + std::to_string(1 + i % 2000);
      update::Update copy_all = update::Update::Copy(
          tree::Path::MustParse("S/" + entry),
          tree::Path::MustParse("T/c" + std::to_string(i)));
      update::ApplyEffect e1;
      (void)update::Apply(&universe, copy_all, &e1);
      (void)store.TrackCopy(e1);
      // Redundant: re-copy the aligned child from the same source.
      update::Update copy_child = update::Update::Copy(
          tree::Path::MustParse("S/" + entry + "/protein"),
          tree::Path::MustParse("T/c" + std::to_string(i) + "/protein"));
      update::ApplyEffect e2;
      (void)update::Apply(&universe, copy_child, &e2);
      (void)store.TrackCopy(e2);
      if (i % 5 == 4) (void)store.Commit();
    }
    (void)store.Commit();
    double real_ms = wall.ElapsedMillis();
    std::printf("dedupe=%-5s rows=%6zu physical=%7.1fKB real=%6.1fms\n",
                dedupe ? "on" : "off", store.RecordCount(),
                store.PhysicalBytes() / 1024.0, real_ms);
    report->AddRow()
        .Set("section", "dedupe")
        .Set("dedupe", dedupe)
        .Set("rows", store.RecordCount())
        .Set("physical_bytes", store.PhysicalBytes())
        .Set("real_ms", real_ms);
  }
  std::printf("(the paper ships with dedupe off: redundancy is unusual in "
              "real curation)\n\n");
}

void AblationBulk(JsonReport* report) {
  std::printf("--- C. bulk updates: full provenance vs approximate globs ---\n");
  std::printf("%-12s %14s %16s %16s\n", "bulk size", "full rows",
              "full bytes", "approx bytes");
  for (size_t entries : {size_t{100}, size_t{1000}, size_t{5000}}) {
    relstore::Database prov_db("provdb");
    provenance::ProvBackend backend(&prov_db);
    wrap::TreeTargetDb target("T", tree::Tree());
    wrap::TreeSourceDb source(
        "S1", workload::GenOrganelleLike(entries, 4));
    EditorOptions opts;
    opts.strategy = provenance::Strategy::kTransactional;
    opts.enable_approx = true;
    auto editor = Editor::Create(&target, &backend, opts);
    if (!editor.ok()) return;
    if (!(*editor)->MountSource(&source).ok()) return;
    update::BulkCopySpec spec;
    spec.src = tree::PathGlob::MustParse("S1/*");
    spec.dst = tree::PathGlob::MustParse("T/*");
    auto n = (*editor)->BulkCopy(spec);
    if (!n.ok()) return;
    (void)(*editor)->Commit();
    std::printf("%-12zu %14zu %16zu %16zu\n", entries,
                (*editor)->store()->RecordCount(),
                (*editor)->store()->PhysicalBytes(),
                (*editor)->approx()->ApproxBytes());
    report->AddRow()
        .Set("section", "bulk")
        .Set("entries", entries)
        .Set("full_rows", (*editor)->store()->RecordCount())
        .Set("full_bytes", (*editor)->store()->PhysicalBytes())
        .Set("approx_bytes", (*editor)->approx()->ApproxBytes());
  }
  std::printf("(approximate storage is proportional to the statement, not "
              "the data touched)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  PrintHeader("Ablations", "design-choice studies beyond the paper's figures");
  JsonReport report("ablation");
  report.config().Set("steps", size_t{4000});
  AblationIndexes(&report);
  AblationDedupe(&report);
  AblationBulk(&report);
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
