#pragma once

// Shared driver for the figure benchmarks: runs a random curation
// workload (Table 1's configurations) against one provenance strategy and
// reports storage and simulated-time statistics.
//
// Times are *simulated* client/server interaction costs (see
// relstore::CostParams): the paper's CPDB measured wall-clock time
// dominated by JDBC/SOAP round trips, which an in-process reproduction
// cannot exhibit. The cost model charges each modelled round trip and
// each transferred row; magnitudes are scaled down ~1000x (450 ms per
// Timber update -> 450 us), so *ratios* — the content of Figures 9-13 —
// are comparable while absolute numbers are not.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include <unistd.h>

#include "cpdb/cpdb.h"
#include "util/flags.h"
#include "util/sim_clock.h"

namespace cpdb::bench {

// ----- Machine-readable output ---------------------------------------------
//
// Every figure bench accepts `--json=<path>` and, when it is set, writes
// one JSON document
//
//   {"bench": "<name>", "config": {...}, "rows": [{...}, ...]}
//
// with per-row counters (ops, simulated wall time, modelled round trips,
// bytes) so BENCH_*.json perf-trajectory tracking can diff runs across
// PRs. Keys are stable; values are JSON numbers or strings. Every report
// also carries three provenance-of-the-measurement fields — "git_sha"
// (env CPDB_GIT_SHA, "unknown" otherwise), "utc_timestamp", and "run_id"
// (env CPDB_RUN_ID, "local" otherwise) — so a checked-in BENCH_*.json
// says which commit and which run produced it (tools/bench/record.sh
// sets both env vars). Since the
// batched write path, the op-time benches (fig9/fig10/fig12) additionally
// report measured write round trips and write rows (the CostModel's
// write-side counters) for the provenance store and the target database,
// so write batching can be differenced across runs the same way fig13
// differences read round trips.

// ----- Percentiles ---------------------------------------------------------

/// The percentile set every bench reports. One definition so
/// bench_concurrent and cpdb_bench_client (and anything after them) agree
/// on what "p999" means and no rig drops a quantile the others report.
struct Percentiles {
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};

/// Nearest-rank percentile of an ALREADY SORTED sample vector.
inline double PercentileOf(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(sorted.size() - 1, idx)];
}

/// Sorts `samples` in place and returns p50/p99/p999.
inline Percentiles ComputePercentiles(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  Percentiles p;
  p.p50 = PercentileOf(*samples, 0.50);
  p.p99 = PercentileOf(*samples, 0.99);
  p.p999 = PercentileOf(*samples, 0.999);
  return p;
}

// ----- Scratch directories -------------------------------------------------

/// RAII temp directory for benches that open a durable store: created
/// under $TMPDIR (mkdtemp, so concurrent runs never collide), removed —
/// WAL, checkpoint and all — when the object dies. Exists because the
/// durable benches used to default their WAL directory into the CWD and
/// leave it behind, littering the repo checkout after every run.
class ScratchDir {
 public:
  /// `tag` shows up in the directory name for post-mortem debuggability.
  explicit ScratchDir(const std::string& tag) {
    std::error_code ec;
    std::filesystem::path base = std::filesystem::temp_directory_path(ec);
    if (ec) base = ".";
    std::string tmpl = (base / ("cpdb-" + tag + "-XXXXXX")).string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) {
      path_ = buf.data();
    } else {
      // Still give the caller a usable (if non-unique) path; the bench
      // wipes it before opening anyway.
      path_ = tmpl.substr(0, tmpl.size() - 7) + "fallback";
    }
  }
  ~ScratchDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Insertion-ordered string->value map rendered as one JSON object.
class JsonDict {
 public:
  JsonDict& Set(const std::string& key, const std::string& v) {
    items_.emplace_back(key, "\"" + JsonEscape(v) + "\"");
    return *this;
  }
  JsonDict& Set(const std::string& key, const char* v) {
    return Set(key, std::string(v));
  }
  JsonDict& Set(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    items_.emplace_back(key, buf);
    return *this;
  }
  JsonDict& Set(const std::string& key, size_t v) {
    items_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonDict& Set(const std::string& key, int64_t v) {
    items_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonDict& Set(const std::string& key, int v) {
    return Set(key, static_cast<int64_t>(v));
  }
  JsonDict& Set(const std::string& key, bool v) {
    items_.emplace_back(key, v ? "true" : "false");
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(items_[i].first) + "\":" + items_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

/// One bench's report: a config dict plus one dict per measured row.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  JsonDict& config() { return config_; }
  JsonDict& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Where/when this report was produced, as a JSON fragment
  /// `"git_sha":...,"utc_timestamp":...,"run_id":...`. git_sha and
  /// run_id come from the environment (record.sh exports them); the
  /// timestamp is computed here so even ad-hoc local runs are datable.
  static std::string MetaFragment() {
    const char* sha = std::getenv("CPDB_GIT_SHA");
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    char stamp[32] = "unknown";
    if (gmtime_r(&now, &utc) != nullptr) {
      std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
    }
    const char* run = std::getenv("CPDB_RUN_ID");
    JsonDict meta;
    meta.Set("git_sha", sha != nullptr && *sha != '\0' ? sha : "unknown")
        .Set("utc_timestamp", stamp)
        .Set("run_id", run != nullptr && *run != '\0' ? run : "local");
    std::string obj = meta.ToString();  // "{...}" -> strip the braces
    return obj.substr(1, obj.size() - 2);
  }

  std::string ToString() const {
    std::string out = "{\"bench\":\"" + JsonEscape(bench_) + "\"";
    out += "," + MetaFragment();
    out += ",\"config\":" + config_.ToString();
    out += ",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",";
      out += rows_[i].ToString();
    }
    out += "]}\n";
    return out;
  }

  /// Writes the report to `path`; a no-op (returning true) when `path` is
  /// empty, so benches can call it unconditionally.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string body = ToString();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("\nJSON report written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_;
  JsonDict config_;
  std::vector<JsonDict> rows_;
};

struct RunConfig {
  provenance::Strategy strategy = provenance::Strategy::kNaive;
  workload::Pattern pattern = workload::Pattern::kMix;
  workload::DeletePolicy delete_policy = workload::DeletePolicy::kRandom;
  bool include_deletes = true;
  size_t steps = 3500;
  size_t txn_len = 5;  ///< commit every N ops (paper default)
  uint64_t seed = 42;
  size_t target_entries = 1500;  ///< MiMI-like entries in T
  size_t source_entries = 3000;  ///< OrganelleDB-like entries in S1
  bool use_indexes = true;       ///< provenance-store indexing
  /// When non-empty, the provenance Database opens DURABLY in this
  /// directory (wiped first so runs are comparable): one WAL group commit
  /// + fsync per transaction, reported via the fsync/log-bytes counters.
  /// Empty (the default) keeps the in-memory store and its exact PR 3
  /// numbers.
  std::string durable_dir;
};

struct OpTiming {
  double total_us = 0;
  size_t count = 0;
  double Avg() const { return count == 0 ? 0.0 : total_us / count; }
};

struct RunStats {
  size_t applied = 0;
  size_t adds = 0, deletes = 0, copies = 0, commits = 0;
  size_t prov_rows = 0;
  size_t prov_bytes = 0;
  size_t prov_round_trips = 0;  ///< modelled provenance-store round trips
  size_t prov_rows_moved = 0;   ///< rows transferred over those round trips
  size_t prov_write_trips = 0;  ///< write-side subset (WriteRecords etc.)
  size_t prov_write_rows = 0;   ///< rows carried by those write trips
  size_t target_write_trips = 0;  ///< target ApplyNative/ApplyBatch calls
  size_t target_write_rows = 0;   ///< rows/nodes carried by target writes
  size_t prov_fsyncs = 0;     ///< durable mode: fsync barriers issued
  size_t prov_log_bytes = 0;  ///< durable mode: bytes appended to the WAL
  double target_us = 0;   ///< simulated target-database interaction
  double prov_us = 0;     ///< simulated provenance-store interaction
  OpTiming add_prov, del_prov, copy_prov, commit_prov;
  double dataset_avg_us = 0;  ///< avg target time per operation
  double real_ms = 0;         ///< actual CPU time of the run

  /// Session kept alive so callers can run queries afterwards.
  std::unique_ptr<relstore::Database> prov_db;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::TreeTargetDb> target;
  std::unique_ptr<wrap::TreeSourceDb> source;
  std::unique_ptr<Editor> editor;
};

inline RunStats RunWorkload(const RunConfig& cfg) {
  RunStats st;
  Stopwatch wall;
  if (cfg.durable_dir.empty()) {
    st.prov_db = std::make_unique<relstore::Database>("provdb");
  } else {
    std::error_code ec;
    std::filesystem::remove_all(cfg.durable_dir, ec);
    auto opened = relstore::Database::Open("provdb", cfg.durable_dir);
    if (!opened.ok()) {
      // Fail loudly: a zeroed RunStats would print as plausible
      // "zero durability overhead" numbers and exit 0.
      std::fprintf(stderr, "durable open: %s\n",
                   opened.status().ToString().c_str());
      std::exit(2);
    }
    st.prov_db = std::move(opened).value();
  }
  st.backend = std::make_unique<provenance::ProvBackend>(st.prov_db.get(),
                                                         cfg.use_indexes);
  st.target = std::make_unique<wrap::TreeTargetDb>(
      "T", workload::GenMimiLike(cfg.target_entries, cfg.seed * 31 + 1));
  st.source = std::make_unique<wrap::TreeSourceDb>(
      "S1", workload::GenOrganelleLike(cfg.source_entries,
                                       cfg.seed * 31 + 2));
  EditorOptions opts;
  opts.strategy = cfg.strategy;
  opts.enable_archive = false;  // the paper's runs do not archive
  auto editor = Editor::Create(st.target.get(), st.backend.get(), opts);
  if (!editor.ok()) {
    std::fprintf(stderr, "editor: %s\n",
                 editor.status().ToString().c_str());
    return st;
  }
  st.editor = std::move(editor).value();
  if (!st.editor->MountSource(st.source.get()).ok()) return st;

  workload::GenOptions gen_opts;
  gen_opts.pattern = cfg.pattern;
  gen_opts.delete_policy = cfg.delete_policy;
  gen_opts.include_deletes = cfg.include_deletes;
  gen_opts.seed = cfg.seed;
  workload::UpdateGenerator gen(&st.editor->universe(), gen_opts);

  auto prov_cost = [&] { return st.prov_db->cost().ElapsedMicros(); };
  auto tgt_cost = [&] { return st.target->cost().ElapsedMicros(); };

  for (size_t i = 0; i < cfg.steps; ++i) {
    bool skipped = false;
    auto u = gen.Next(&skipped);
    if (!u.has_value()) {
      if (skipped) continue;
      break;
    }
    double p0 = prov_cost();
    Status applied = st.editor->ApplyUpdate(*u);
    if (!applied.ok()) continue;
    double dp = prov_cost() - p0;

    update::ApplyEffect effect;
    OpTiming* slot = nullptr;
    switch (u->kind) {
      case update::OpKind::kInsert:
        effect.inserted.push_back(u->AffectedPath());
        slot = &st.add_prov;
        break;
      case update::OpKind::kDelete:
        slot = &st.del_prov;
        break;
      case update::OpKind::kCopy: {
        const tree::Tree* pasted = st.editor->universe().Find(u->target);
        if (pasted != nullptr) {
          pasted->Visit([&](const tree::Path& rel, const tree::Tree&) {
            effect.copied.emplace_back(u->target.Concat(rel),
                                       u->source.Concat(rel));
          });
        }
        slot = &st.copy_prov;
        break;
      }
    }
    slot->total_us += dp;
    slot->count += 1;
    gen.OnApplied(*u, effect);
    ++st.applied;

    if (cfg.txn_len > 0 && st.applied % cfg.txn_len == 0) {
      double c0 = prov_cost();
      if (st.editor->Commit().ok()) {
        st.commit_prov.total_us += prov_cost() - c0;
        st.commit_prov.count += 1;
        ++st.commits;
      }
    }
  }
  double c0 = prov_cost();
  if (st.editor->Commit().ok() && st.editor->store()->RecordCount() > 0) {
    double dc = prov_cost() - c0;
    if (dc > 0) {
      st.commit_prov.total_us += dc;
      st.commit_prov.count += 1;
      ++st.commits;
    }
  }

  st.adds = gen.adds();
  st.deletes = gen.deletes();
  st.copies = gen.copies();
  st.prov_rows = st.editor->store()->RecordCount();
  st.prov_bytes = st.editor->store()->PhysicalBytes();
  st.prov_round_trips = st.prov_db->cost().Calls();
  st.prov_rows_moved = st.prov_db->cost().RowsMoved();
  st.prov_write_trips = st.prov_db->cost().WriteCalls();
  st.prov_write_rows = st.prov_db->cost().WriteRows();
  st.prov_fsyncs = st.prov_db->cost().Fsyncs();
  st.prov_log_bytes = st.prov_db->cost().LogBytes();
  st.target_write_trips = st.target->cost().WriteCalls();
  st.target_write_rows = st.target->cost().WriteRows();
  st.prov_us = prov_cost();
  st.target_us = tgt_cost();
  st.dataset_avg_us = st.applied == 0 ? 0 : st.target_us / st.applied;
  st.real_ms = wall.ElapsedMillis();
  return st;
}

constexpr provenance::Strategy kAllStrategies[] = {
    provenance::Strategy::kNaive, provenance::Strategy::kHierarchical,
    provenance::Strategy::kTransactional,
    provenance::Strategy::kHierarchicalTransactional};

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("Reproduction of Buneman/Chapman/Cheney, SIGMOD 2006.\n");
  std::printf("Times are simulated round-trip costs (see bench/harness.h);\n");
  std::printf("compare ratios with the paper, not absolute values.\n");
  std::printf("=============================================================\n");
}

}  // namespace cpdb::bench
