// Figure 11: effect of deletion patterns (Table 3) on provenance storage.
// For each method, two bars per deletion pattern: "(ac)" — only the adds
// and copies of the 14,000-mix run are performed — and "(acd)" — the
// deletes run too.
//
// Expected shape (paper Section 4.2): for N and H, deletion only *adds*
// records; for T some patterns (del-add, del-mix) remove records because
// data inserted and deleted in the same transaction leaves no trace; HT
// is the most stable and smallest throughout.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using namespace cpdb::bench;
  Flags flags(argc, argv);
  RunConfig base;
  base.steps = static_cast<size_t>(flags.GetInt("steps", 14000));
  base.txn_len = static_cast<size_t>(flags.GetInt("txn-len", 5));
  base.pattern = workload::Pattern::kMix;
  base.target_entries = 3000;
  base.source_entries = 6000;

  JsonReport report("fig11_deletion");
  report.config()
      .Set("steps", base.steps)
      .Set("txn_len", base.txn_len)
      .Set("pattern", "mix");

  PrintHeader("Figure 11", "effect of deletion patterns on storage (rows)");
  std::printf("steps=%zu txn_len=%zu\n\n", base.steps, base.txn_len);

  const workload::DeletePolicy policies[] = {
      workload::DeletePolicy::kRandom, workload::DeletePolicy::kAdded,
      workload::DeletePolicy::kMix, workload::DeletePolicy::kCopied,
      workload::DeletePolicy::kReal};

  std::printf("%-10s", "method");
  for (auto p : policies) std::printf("%12s", workload::DeletePolicyName(p));
  std::printf("\n");
  for (auto strat : kAllStrategies) {
    for (bool with_deletes : {false, true}) {
      std::printf("%-4s %-5s", provenance::StrategyShortName(strat),
                  with_deletes ? "(acd)" : "(ac)");
      for (auto policy : policies) {
        RunConfig cfg = base;
        cfg.strategy = strat;
        cfg.delete_policy = policy;
        cfg.include_deletes = with_deletes;
        RunStats st = RunWorkload(cfg);
        std::printf("%12zu", st.prov_rows);
        report.AddRow()
            .Set("method", provenance::StrategyShortName(strat))
            .Set("deletes", with_deletes)
            .Set("policy", workload::DeletePolicyName(policy))
            .Set("ops", st.applied)
            .Set("prov_rows", st.prov_rows)
            .Set("prov_bytes", st.prov_bytes)
            .Set("round_trips", st.prov_round_trips)
            .Set("rows_moved", st.prov_rows_moved)
            .Set("prov_wall_us", st.prov_us)
            .Set("real_ms", st.real_ms);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check vs paper: N/H rows grow (ac)->(acd); T shrinks under\n"
      "del-add/del-mix (same-txn insert+delete cancels); HT smallest and\n"
      "most stable.\n");
  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
