// Micro-benchmarks (google-benchmark) for the substrate layers: tree
// operations, update application, B+tree and table throughput, datalog
// evaluation, and provenance tracking throughput per strategy.

#include <benchmark/benchmark.h>

#include "cpdb/cpdb.h"
#include "datalog/parser.h"

namespace {

using namespace cpdb;

void BM_TreeFind(benchmark::State& state) {
  tree::Tree t = workload::GenMimiLike(static_cast<size_t>(state.range(0)),
                                       1);
  tree::Path p = tree::Path::MustParse("prot1/interactions/i1/partner");
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Find(p));
  }
}
BENCHMARK(BM_TreeFind)->Arg(100)->Arg(1000);

void BM_TreeClone(benchmark::State& state) {
  tree::Tree t = workload::GenMimiLike(static_cast<size_t>(state.range(0)),
                                       1);
  for (auto _ : state) {
    tree::Tree c = t.Clone();
    benchmark::DoNotOptimize(&c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.NodeCount()));
}
BENCHMARK(BM_TreeClone)->Arg(100)->Arg(1000);

void BM_ApplyCopy(benchmark::State& state) {
  tree::Tree universe;
  (void)universe.AddChild("T", workload::GenMimiLike(100, 1));
  (void)universe.AddChild("S1", workload::GenOrganelleLike(100, 2));
  size_t i = 0;
  for (auto _ : state) {
    update::Update u = update::Update::Copy(
        tree::Path::MustParse("S1/o" + std::to_string(1 + i % 100)),
        tree::Path::MustParse("T/c" + std::to_string(i)));
    ++i;
    update::ApplyEffect effect;
    benchmark::DoNotOptimize(update::Apply(&universe, u, &effect));
  }
}
BENCHMARK(BM_ApplyCopy);

void BM_BTreeInsert(benchmark::State& state) {
  size_t i = 0;
  relstore::BTree bt;
  for (auto _ : state) {
    bt.Insert({relstore::Datum(static_cast<int64_t>(i++))},
              relstore::Rid{0, 0});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<relstore::Row, relstore::Rid>> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.emplace_back(
        relstore::Row{relstore::Datum(static_cast<int64_t>(i))},
        relstore::Rid{static_cast<uint32_t>(i / 64),
                      static_cast<uint16_t>(i % 64)});
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto batch = items;  // BulkLoad consumes its argument
    auto bt = std::make_unique<relstore::BTree>();
    state.ResumeTiming();
    bt->BulkLoad(std::move(batch));
    benchmark::DoNotOptimize(bt->size());
    state.PauseTiming();
    bt.reset();  // teardown untimed
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_TableBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::make_unique<relstore::Database>("bulkdb");
    state.ResumeTiming();
    auto filled = workload::FillOrganelleRelational(db.get(), n, /*seed=*/1);
    if (!filled.ok()) {
      state.SkipWithError(filled.status().ToString().c_str());
      break;
    }
    state.PauseTiming();
    db.reset();  // teardown of n rows + indexes stays untimed
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TableBulkLoad)->Arg(3000)->Arg(14000);

void BM_TableInsertIndexed(benchmark::State& state) {
  relstore::Schema schema({{"Tid", relstore::ColumnType::kInt64, false},
                           {"Op", relstore::ColumnType::kString, false},
                           {"Loc", relstore::ColumnType::kString, false},
                           {"Src", relstore::ColumnType::kString, true}});
  relstore::Table table("Prov", schema);
  (void)table.CreateIndex("pk", {0, 2}, relstore::IndexKind::kBTree, true);
  (void)table.CreateIndex("loc", {2}, relstore::IndexKind::kBTree);
  (void)table.CreateIndex("tid", {0}, relstore::IndexKind::kHash);
  int64_t i = 0;
  for (auto _ : state) {
    (void)table.Insert({relstore::Datum(i), relstore::Datum("C"),
                        relstore::Datum("T/n" + std::to_string(i)),
                        relstore::Datum("S/x")});
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TableInsertIndexed);

void BM_DatalogTransitiveClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    datalog::Evaluator eval;
    for (int i = 0; i < n; ++i) {
      eval.AddFact("Edge", {"v" + std::to_string(i),
                            "v" + std::to_string(i + 1)});
    }
    auto rules = datalog::ParseProgram(
        "Path(X, Y) :- Edge(X, Y)."
        "Path(X, Z) :- Path(X, Y), Edge(Y, Z).");
    for (auto& r : rules.value()) (void)eval.AddRule(std::move(r));
    (void)eval.Evaluate();
    benchmark::DoNotOptimize(eval.Get("Path").size());
  }
}
BENCHMARK(BM_DatalogTransitiveClosure)->Arg(20)->Arg(60);

void TrackingThroughput(benchmark::State& state,
                        provenance::Strategy strategy) {
  for (auto _ : state) {
    state.PauseTiming();
    relstore::Database prov_db("provdb");
    provenance::ProvBackend backend(&prov_db);
    wrap::TreeTargetDb target("T", workload::GenMimiLike(200, 1));
    wrap::TreeSourceDb source("S1", workload::GenOrganelleLike(400, 2));
    EditorOptions opts;
    opts.strategy = strategy;
    auto editor = Editor::Create(&target, &backend, opts);
    (void)(*editor)->MountSource(&source);
    workload::GenOptions gen_opts;
    gen_opts.pattern = workload::Pattern::kMix;
    workload::UpdateGenerator gen(&(*editor)->universe(), gen_opts);
    state.ResumeTiming();

    for (int i = 0; i < 500; ++i) {
      auto u = gen.Next();
      if (!u.has_value()) break;
      if (!(*editor)->ApplyUpdate(*u).ok()) continue;
      update::ApplyEffect effect;
      if (u->kind == update::OpKind::kInsert) {
        effect.inserted.push_back(u->AffectedPath());
      } else if (u->kind == update::OpKind::kCopy) {
        const tree::Tree* pasted = (*editor)->universe().Find(u->target);
        if (pasted != nullptr) {
          pasted->Visit([&](const tree::Path& rel, const tree::Tree&) {
            effect.copied.emplace_back(u->target.Concat(rel),
                                       u->source.Concat(rel));
          });
        }
      }
      gen.OnApplied(*u, effect);
      if (i % 5 == 4) (void)(*editor)->Commit();
    }
    (void)(*editor)->Commit();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 500);
}

void BM_TrackNaive(benchmark::State& state) {
  TrackingThroughput(state, provenance::Strategy::kNaive);
}
void BM_TrackHT(benchmark::State& state) {
  TrackingThroughput(state,
                     provenance::Strategy::kHierarchicalTransactional);
}
BENCHMARK(BM_TrackNaive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrackHT)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
