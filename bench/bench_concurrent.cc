// Closed-loop multi-session driver for the service layer: N curator
// threads run transactions against ONE shared engine (src/service/),
// sweeping thread count x transaction length.
//
// What to look at:
//  * fsyncs_per_commit — the group-commit combining factor. At one
//    thread every commit pays its own fsync (ratio 1.0); with concurrent
//    committers the leader seals whole cohorts under one fsync and the
//    ratio drops below 1 (the PRISM-style opportunistic-combining win).
//  * commits_per_sec / ops_per_sec — real wall-clock throughput of the
//    closed loop (these are NOT simulated costs; the modelled round-trip
//    counters are reported alongside from the engine's cost aggregate).
//  * p50/p99_commit_us — real commit latency, including the queue wait
//    and the cohort's shared fsync.
//
// Runs durably by default because fsync combining is the point. The WAL
// lives in a mkdtemp scratch directory removed on exit (--durable=auto);
// --durable=DIR pins a directory (left behind for inspection), and
// --durable= (empty) measures the in-memory engine, where fsyncs are
// structurally zero.
//
// Each row also carries the engine's own stage-latency breakdown (queue
// wait, cohort apply, seal, wake; WAL fsync; exclusive-latch wait) read
// from the obs metrics registry, so BENCH_concurrent.json shows WHERE
// commit time went, not just how much there was.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cpdb/cpdb.h"
#include "harness.h"
#include "obs/metrics.h"
#include "workload/zipf.h"

namespace {

using namespace cpdb;
using namespace cpdb::bench;
using tree::Path;
using update::Script;
using update::Update;

std::vector<size_t> ParseSizeList(const std::string& text,
                                  std::vector<size_t> def) {
  std::vector<size_t> out;
  std::string cur;
  for (char c : text + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::stoul(cur));
      cur.clear();
    } else if (c >= '0' && c <= '9') {
      cur += c;
    }
  }
  return out.empty() ? def : out;
}

provenance::Strategy ParseStrategy(const std::string& s) {
  if (s == "N") return provenance::Strategy::kNaive;
  if (s == "H") return provenance::Strategy::kHierarchical;
  if (s == "T") return provenance::Strategy::kTransactional;
  return provenance::Strategy::kHierarchicalTransactional;
}

bool PerOp(provenance::Strategy s) {
  return s == provenance::Strategy::kNaive ||
         s == provenance::Strategy::kHierarchical;
}

/// Transaction `txn` of thread `thread`: exactly `txn_len` update
/// operations inside the thread's own subtree T/t<thread> (disjoint
/// across threads — the curator model the service layer is exact for).
Script MakeTxn(size_t thread, size_t txn, size_t txn_len) {
  std::string root = "t" + std::to_string(thread);
  Path base = Path::MustParse("T").Child(root);
  Script script;
  if (txn == 0) {
    script.push_back(Update::Insert(Path::MustParse("T"), root));
    if (script.size() == txn_len) return script;
  }
  std::string n = "n" + std::to_string(txn);
  script.push_back(Update::Insert(base, n));
  while (script.size() < txn_len) {
    script.push_back(Update::Insert(
        base.Child(n), "f" + std::to_string(script.size()),
        tree::Value(static_cast<int64_t>(txn * 1000 + script.size()))));
  }
  return script;
}

/// How a transaction picks the node it edits. kSeq is the historical
/// default — txn i always creates the fresh node n<i> — and stays
/// byte-identical so the CI fsync/commit pins keep meaning the same
/// thing. kUniform/kZipf edit a bounded key space of --keys nodes per
/// thread, with kZipf concentrating edits on hot ranks (--theta): the
/// curator hot-record pattern the network load rig also models.
enum class KeyDist { kSeq, kUniform, kZipf };

/// Skewed variant of MakeTxn: the edited node is n<key> (possibly
/// revisited). Field labels carry the txn number so revisiting a hot
/// node adds fresh fields instead of colliding with an earlier insert.
Script MakeSkewedTxn(size_t thread, size_t txn, size_t txn_len, uint64_t key,
                     std::unordered_set<uint64_t>* created) {
  std::string root = "t" + std::to_string(thread);
  Path base = Path::MustParse("T").Child(root);
  Script script;
  if (txn == 0) {
    script.push_back(Update::Insert(Path::MustParse("T"), root));
    if (script.size() == txn_len) return script;
  }
  std::string n = "n" + std::to_string(key);
  if (created->insert(key).second) {
    script.push_back(Update::Insert(base, n));
    if (script.size() == txn_len) return script;
  }
  size_t k = 0;
  while (script.size() < txn_len) {
    script.push_back(Update::Insert(
        base.Child(n), "f" + std::to_string(txn) + "_" + std::to_string(k++),
        tree::Value(static_cast<int64_t>(txn * 1000 + script.size()))));
  }
  return script;
}

struct RunResult {
  size_t commits = 0;
  size_t ops = 0;
  double wall_ms = 0;
  size_t fsyncs = 0;
  size_t log_bytes = 0;
  service::CommitQueue::Stats queue;
  service::SnapshotManager::Stats snaps;  ///< version-chain counters
  size_t sessions_built = 0;
  size_t sessions_refreshed = 0;
  relstore::CostSnapshot cost;  ///< engine aggregate over all sessions
  Percentiles commit_us;        ///< client-observed commit latency
  /// Engine-side stage breakdown (obs registry; per-run histograms).
  obs::Histogram::Snapshot stage_queue, stage_apply, stage_seal, stage_wake;
  obs::Histogram::Snapshot wal_fsync, latch_excl;
};

RunResult RunOnce(provenance::Strategy strategy, size_t threads,
                  size_t txn_len, size_t txns_per_thread,
                  const std::string& durable_dir, KeyDist dist, double theta,
                  uint64_t keys, size_t apply_workers) {
  RunResult res;
  std::unique_ptr<relstore::Database> db;
  if (durable_dir.empty()) {
    db = std::make_unique<relstore::Database>("provdb");
  } else {
    std::error_code ec;
    std::filesystem::remove_all(durable_dir, ec);
    auto opened = relstore::Database::Open("provdb", durable_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "durable open: %s\n",
                   opened.status().ToString().c_str());
      std::exit(2);
    }
    db = std::move(opened).value();
  }
  provenance::ProvBackend backend(db.get());
  wrap::TreeTargetDb target("T", workload::GenMimiLike(200, 7));
  service::Engine engine(&backend, &target);
  if (apply_workers > 0) engine.EnableParallelApply(apply_workers);
  service::SessionOptions opts;
  opts.strategy = strategy;
  service::SessionPool pool(&engine, opts);

  size_t fsyncs0 = db->cost().Fsyncs();
  size_t log0 = db->cost().LogBytes();

  std::vector<std::vector<double>> latencies(threads);
  Stopwatch wall;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto acquired = pool.Acquire();
      if (!acquired.ok()) {
        std::fprintf(stderr, "acquire: %s\n",
                     acquired.status().ToString().c_str());
        std::exit(2);
      }
      std::unique_ptr<service::Session> session = std::move(*acquired);
      latencies[t].reserve(txns_per_thread);
      // theta=0 degenerates to uniform, so one sampler covers both
      // non-sequential distributions. Seeded per thread: reproducible,
      // but threads do not march over identical rank sequences.
      workload::ZipfGenerator sampler(
          keys, dist == KeyDist::kZipf ? theta : 0.0, 0x5EEDu + t);
      std::unordered_set<uint64_t> created;
      for (size_t i = 0; i < txns_per_thread; ++i) {
        Script script =
            dist == KeyDist::kSeq
                ? MakeTxn(t, i, txn_len)
                : MakeSkewedTxn(t, i, txn_len, sampler.NextScrambled(),
                                &created);
        Status st;
        Stopwatch commit_clock;
        if (PerOp(strategy)) {
          // The staged script IS the group-committed unit for N/H.
          st = session->ApplyScript(script);
        } else {
          st = session->ApplyScript(script);
          if (st.ok()) {
            commit_clock.Restart();
            st = session->Commit();
          }
        }
        if (!st.ok()) {
          std::fprintf(stderr, "txn: %s\n", st.ToString().c_str());
          std::exit(2);
        }
        latencies[t].push_back(commit_clock.ElapsedMicros());
      }
      pool.Release(std::move(session));
    });
  }
  for (auto& th : workers) th.join();
  res.wall_ms = wall.ElapsedMillis();

  res.commits = threads * txns_per_thread;
  res.ops = res.commits * txn_len;
  res.fsyncs = db->cost().Fsyncs() - fsyncs0;
  res.log_bytes = db->cost().LogBytes() - log0;
  res.queue = engine.commit_queue().stats();
  res.snaps = engine.snapshot_stats();
  res.sessions_built = pool.built();
  res.sessions_refreshed = pool.refreshed();
  res.cost = engine.cost_totals().Snap();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  res.commit_us = ComputePercentiles(&all);

  // Engine-side stage breakdown. The histograms are per-run objects (one
  // registry per engine), so plain Snap() is already run-scoped.
  auto stage = [&](const char* labels) {
    return engine.metrics()
        .GetHistogram("cpdb_commit_stage_us", "", labels)
        ->Snap();
  };
  res.stage_queue = stage("stage=\"queue\"");
  res.stage_apply = stage("stage=\"apply\"");
  res.stage_seal = stage("stage=\"seal\"");
  res.stage_wake = stage("stage=\"wake\"");
  res.wal_fsync = engine.metrics().GetHistogram("cpdb_wal_fsync_us", "")->Snap();
  res.latch_excl =
      engine.metrics().GetHistogram("cpdb_latch_excl_wait_us", "")->Snap();

  Status closed = db->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "close: %s\n", closed.ToString().c_str());
    std::exit(2);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::vector<size_t> thread_counts =
      ParseSizeList(flags.GetString("threads", "1,2,4,8"), {1, 2, 4, 8});
  std::vector<size_t> txn_lens =
      ParseSizeList(flags.GetString("txn-lens", "2,8"), {2, 8});
  size_t txns = static_cast<size_t>(flags.GetInt("txns", 100));
  provenance::Strategy strategy =
      ParseStrategy(flags.GetString("strategy", "HT"));
  std::string durable_dir = flags.GetString("durable", "auto");
  // "auto" (the default) keeps the WAL out of the checkout: a mkdtemp
  // scratch dir that the RAII handle removes on exit, litter-free even
  // when a sweep aborts mid-run.
  std::unique_ptr<ScratchDir> scratch;
  if (durable_dir == "auto") {
    scratch = std::make_unique<ScratchDir>("bench-concurrent");
    durable_dir = scratch->path() + "/wal";
  }
  std::string dist_name = flags.GetString("dist", "seq");
  KeyDist dist;
  if (dist_name == "seq") {
    dist = KeyDist::kSeq;
  } else if (dist_name == "uniform") {
    dist = KeyDist::kUniform;
  } else if (dist_name == "zipf") {
    dist = KeyDist::kZipf;
  } else {
    std::fprintf(stderr, "--dist must be seq, uniform, or zipf\n");
    return 2;
  }
  double theta = flags.GetDouble("theta", 0.99);
  uint64_t keys =
      static_cast<uint64_t>(std::max<int64_t>(1, flags.GetInt("keys", 1000)));
  // Default 2: the disjoint-subtree apply pool is the shipped service
  // configuration (threads' T/t<i> writesets are disjoint, so cohorts
  // batch onto the pool); --apply-workers=0 measures the serial path.
  size_t apply_workers = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt("apply-workers", 2)));

  JsonReport report("concurrent");
  report.config()
      .Set("strategy", provenance::StrategyShortName(strategy))
      .Set("txns_per_thread", txns)
      .Set("durable", !durable_dir.empty());
  if (apply_workers > 0) report.config().Set("apply_workers", apply_workers);
  // The default (seq) config and rows stay byte-compatible with every
  // earlier BENCH_concurrent.json; the distribution knobs only appear
  // when they are in play.
  if (dist != KeyDist::kSeq) {
    report.config().Set("dist", dist_name).Set("keys", keys);
    if (dist == KeyDist::kZipf) report.config().Set("theta", theta);
  }

  PrintHeader("Service layer",
              "multi-session group commit (closed loop, real time)");
  std::printf("strategy=%s txns/thread=%zu durable=%s\n",
              provenance::StrategyShortName(strategy), txns,
              durable_dir.empty() ? "no" : durable_dir.c_str());
  if (dist != KeyDist::kSeq) {
    std::printf("dist=%s keys=%llu%s\n", dist_name.c_str(),
                static_cast<unsigned long long>(keys),
                dist == KeyDist::kZipf
                    ? (" theta=" + std::to_string(theta)).c_str()
                    : "");
  }
  std::printf("\n");
  std::printf("%-8s %-8s %9s %10s %8s %10s %9s %10s %10s %10s\n", "threads",
              "txn-len", "commits", "commits/s", "fsyncs", "fsync/cmt",
              "maxcohort", "p50(us)", "p99(us)", "p999(us)");

  for (size_t threads : thread_counts) {
    for (size_t txn_len : txn_lens) {
      RunResult r = RunOnce(strategy, threads, txn_len, txns, durable_dir,
                            dist, theta, keys, apply_workers);
      double commits_per_sec =
          r.wall_ms <= 0 ? 0 : r.commits / (r.wall_ms / 1000.0);
      double fsyncs_per_commit =
          r.commits == 0 ? 0 : static_cast<double>(r.fsyncs) / r.commits;
      std::printf(
          "%-8zu %-8zu %9zu %10.0f %8zu %10.3f %9zu %10.1f %10.1f %10.1f\n",
          threads, txn_len, r.commits, commits_per_sec, r.fsyncs,
          fsyncs_per_commit, static_cast<size_t>(r.queue.max_cohort),
          r.commit_us.p50, r.commit_us.p99, r.commit_us.p999);
      JsonDict& row = report.AddRow();
      row.Set("threads", threads)
          .Set("txn_len", txn_len)
          .Set("commits", r.commits)
          .Set("ops", r.ops)
          .Set("wall_ms", r.wall_ms)
          .Set("commits_per_sec", commits_per_sec)
          .Set("ops_per_sec",
               r.wall_ms <= 0 ? 0.0 : r.ops / (r.wall_ms / 1000.0))
          .Set("fsyncs", r.fsyncs)
          .Set("fsyncs_per_commit", fsyncs_per_commit)
          .Set("log_bytes", r.log_bytes)
          .Set("cohorts", static_cast<size_t>(r.queue.cohorts))
          .Set("combined_commits", static_cast<size_t>(r.queue.combined))
          .Set("max_cohort", static_cast<size_t>(r.queue.max_cohort))
          .Set("p50_commit_us", r.commit_us.p50)
          .Set("p99_commit_us", r.commit_us.p99)
          .Set("p999_commit_us", r.commit_us.p999)
          .Set("round_trips", r.cost.calls)
          .Set("rows_moved", r.cost.rows)
          .Set("write_round_trips", r.cost.write_calls)
          .Set("write_rows", r.cost.write_rows)
          .Set("parallel_cohorts", static_cast<size_t>(r.queue.parallel_cohorts))
          .Set("parallel_applies", static_cast<size_t>(r.queue.parallel_applies))
          .Set("versions_live", r.snaps.versions_live)
          .Set("versions_gced", static_cast<size_t>(r.snaps.versions_gced))
          .Set("snapshot_rebuilds",
               static_cast<size_t>(r.snaps.snapshot_rebuilds))
          .Set("snapshot_rebuild_rows",
               static_cast<size_t>(r.snaps.snapshot_rebuild_rows))
          .Set("snapshot_refreshes",
               static_cast<size_t>(r.snaps.snapshot_refreshes))
          .Set("sessions_built", r.sessions_built)
          .Set("sessions_refreshed", r.sessions_refreshed);
      // Engine-side stage breakdown (obs registry histograms): where the
      // p99 above was spent. Bucketed percentiles (~2x resolution).
      auto stage_cols = [&](const char* prefix,
                            const obs::Histogram::Snapshot& s) {
        row.Set(std::string(prefix) + "_p50_us", s.Percentile(0.50))
            .Set(std::string(prefix) + "_p99_us", s.Percentile(0.99))
            .Set(std::string(prefix) + "_mean_us", s.MeanMicros());
      };
      stage_cols("stage_queue", r.stage_queue);
      stage_cols("stage_apply", r.stage_apply);
      stage_cols("stage_seal", r.stage_seal);
      stage_cols("stage_wake", r.stage_wake);
      stage_cols("wal_fsync", r.wal_fsync);
      stage_cols("latch_excl_wait", r.latch_excl);
    }
  }

  report.WriteTo(flags.GetString("json", ""));
  return 0;
}
