// Insert-then-drain probe for the relstore B+tree: N monotonic keys go
// in, invariants are checked, all N are erased again, invariants are
// re-checked. This is the workload that corrupted the pre-rebalance tree
// (dangling leaf-chain pointers at n=4000, an effectively unbounded hang
// at 20k); it doubles as the release-build acceptance gate (1M keys in
// well under 5s) and, under the asan preset, as the memory-safety probe.
//
// Flags: --n=<keys> (default 1000000), --mode=forward|reverse|random,
//        --bulk (build via BulkLoad instead of per-key Insert),
//        --seed=<seed> (random mode shuffle),
//        --json=<path> (machine-readable report, harness schema).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "harness.h"
#include "relstore/btree.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/sim_clock.h"

int main(int argc, char** argv) {
  using namespace cpdb;
  using relstore::BTree;
  using relstore::Datum;
  using relstore::Rid;
  using relstore::Row;

  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000000));
  const std::string mode = flags.GetString("mode", "forward");
  const bool bulk = flags.GetBool("bulk", false);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "");

  std::vector<int64_t> erase_order(n);
  std::iota(erase_order.begin(), erase_order.end(), 0);
  if (mode == "reverse") {
    std::reverse(erase_order.begin(), erase_order.end());
  } else if (mode == "random") {
    Rng rng(seed);
    rng.Shuffle(&erase_order);
  } else if (mode != "forward") {
    std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
    return 1;
  }

  BTree bt;
  Stopwatch insert_sw;
  if (bulk) {
    std::vector<std::pair<Row, Rid>> items;
    items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      items.emplace_back(Row{Datum(static_cast<int64_t>(i))}, Rid{0, 0});
    }
    bt.BulkLoad(std::move(items));
  } else {
    for (size_t i = 0; i < n; ++i) {
      bt.Insert({Datum(static_cast<int64_t>(i))}, Rid{0, 0});
    }
  }
  double insert_ms = insert_sw.ElapsedMillis();
  if (bt.size() != n) {
    std::fprintf(stderr, "size after load: %zu != %zu\n", bt.size(), n);
    return 1;
  }
  bt.CheckInvariants();

  Stopwatch drain_sw;
  for (size_t i = 0; i < n; ++i) {
    if (!bt.Erase({Datum(erase_order[i])}, Rid{0, 0})) {
      std::fprintf(stderr, "erase miss at step %zu (key %lld)\n", i,
                   static_cast<long long>(erase_order[i]));
      return 1;
    }
  }
  double drain_ms = drain_sw.ElapsedMillis();
  if (!bt.empty()) {
    std::fprintf(stderr, "tree not empty after drain: %zu\n", bt.size());
    return 1;
  }
  bt.CheckInvariants();

  std::printf("btree drain probe: n=%zu mode=%s %s\n", n, mode.c_str(),
              bulk ? "bulk-load" : "insert");
  std::printf("  load  %10.1f ms  (%.0f keys/s)\n", insert_ms,
              insert_ms > 0 ? 1000.0 * n / insert_ms : 0.0);
  std::printf("  drain %10.1f ms  (%.0f keys/s)\n", drain_ms,
              drain_ms > 0 ? 1000.0 * n / drain_ms : 0.0);
  std::printf("  invariants OK before and after drain\n");

  bench::JsonReport report("btree_drain");
  report.config()
      .Set("n", n)
      .Set("mode", mode)
      .Set("bulk", bulk)
      .Set("seed", static_cast<int64_t>(seed));
  report.AddRow()
      .Set("load_ms", insert_ms)
      .Set("drain_ms", drain_ms)
      .Set("load_keys_per_s", insert_ms > 0 ? 1000.0 * n / insert_ms : 0.0)
      .Set("drain_keys_per_s", drain_ms > 0 ? 1000.0 * n / drain_ms : 0.0);
  if (!report.WriteTo(json_path)) return 1;
  return 0;
}
