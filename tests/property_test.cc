// Property-based tests over random update workloads (parameterized on
// seed and pattern): the paper's storage bounds (Sections 2.1.2-2.1.4),
// the expansion equivalence of hierarchical provenance, and
// cross-strategy agreement of the provenance queries.

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvRecord;
using provenance::Strategy;
using testutil::MakeFigureSession;
using workload::GenOptions;
using workload::Pattern;

struct RunResult {
  std::unique_ptr<testutil::Session> session;
  size_t applied = 0;
};

RunResult RunPattern(Strategy strategy, Pattern pattern, uint64_t seed,
                     size_t steps, size_t txn_len) {
  RunResult out;
  out.session = MakeFigureSession(strategy, /*first_tid=*/1,
                                  /*enable_archive=*/true);
  EXPECT_NE(out.session, nullptr);
  GenOptions gen;
  gen.pattern = pattern;
  gen.seed = seed;
  gen.source_label = "S1";
  out.applied =
      testutil::RunRandomWorkload(out.session.get(), gen, steps, txn_len);
  return out;
}

using SeedPattern = std::tuple<uint64_t, Pattern>;

class RandomWorkloadTest : public ::testing::TestWithParam<SeedPattern> {};

TEST_P(RandomWorkloadTest, AllStrategiesProduceSameFinalTree) {
  auto [seed, pattern] = GetParam();
  const tree::Tree* reference = nullptr;
  tree::Tree ref_clone;
  for (Strategy strat :
       {Strategy::kNaive, Strategy::kTransactional, Strategy::kHierarchical,
        Strategy::kHierarchicalTransactional}) {
    auto run = RunPattern(strat, pattern, seed, 120, 5);
    ASSERT_GT(run.applied, 0u);
    const tree::Tree* t = run.session->editor->TargetView();
    ASSERT_NE(t, nullptr);
    if (reference == nullptr) {
      ref_clone = t->Clone();
      reference = &ref_clone;
    } else {
      EXPECT_TRUE(t->Equals(*reference)) << provenance::StrategyName(strat);
    }
    // And the native target mirrors the universe.
    EXPECT_TRUE(run.session->target->content().Equals(*t));
  }
}

TEST_P(RandomWorkloadTest, StorageBoundsHold) {
  auto [seed, pattern] = GetParam();
  auto n = RunPattern(Strategy::kNaive, pattern, seed, 150, 5);
  auto t = RunPattern(Strategy::kTransactional, pattern, seed, 150, 5);
  auto h = RunPattern(Strategy::kHierarchical, pattern, seed, 150, 5);
  auto ht = RunPattern(Strategy::kHierarchicalTransactional, pattern, seed,
                       150, 5);
  size_t rows_n = n.session->editor->store()->RecordCount();
  size_t rows_t = t.session->editor->store()->RecordCount();
  size_t rows_h = h.session->editor->store()->RecordCount();
  size_t rows_ht = ht.session->editor->store()->RecordCount();

  // |HProv| <= |U| ("an update sequence U can be described by a
  // hierarchical provenance table with |U| entries").
  EXPECT_LE(rows_h, h.applied);
  // Transactional stores at most the naive row count (net effects only).
  EXPECT_LE(rows_t, rows_n);
  // HT is bounded by both H and T ("bounded above by both |U| and
  // i + d + c").
  EXPECT_LE(rows_ht, rows_t);
  EXPECT_LE(rows_ht, rows_h + 1);  // +1 slack: txn grouping of deletes
  // Hierarchical never stores more than naive.
  EXPECT_LE(rows_h, rows_n);
}

TEST_P(RandomWorkloadTest, HierarchicalExpandsToNaive) {
  // The inference rules recover exactly the naive table from the
  // hierarchical one (per-op transactions), on any workload.
  auto [seed, pattern] = GetParam();
  auto n = RunPattern(Strategy::kNaive, pattern, seed, 100, 5);
  auto h = RunPattern(Strategy::kHierarchical, pattern, seed, 100, 5);
  ASSERT_EQ(n.applied, h.applied);

  auto naive_records = n.session->editor->store()->backend()->GetAll();
  auto hier_records = h.session->editor->store()->backend()->GetAll();
  ASSERT_TRUE(naive_records.ok());
  ASSERT_TRUE(hier_records.ok());

  auto versions = h.session->editor->archive()->MakeVersionFn();
  auto expanded = provenance::ExpandToFull(hier_records.value(), versions);
  ASSERT_TRUE(expanded.ok()) << expanded.status();

  auto want = naive_records.value();
  std::sort(want.begin(), want.end());
  ASSERT_EQ(expanded->size(), want.size())
      << "hier rows " << hier_records->size();
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ((*expanded)[i], want[i]) << "row " << i;
  }
}

TEST_P(RandomWorkloadTest, LookupAgreesAcrossPerOpStrategies) {
  // The effective (inferred) provenance that H reports for every node and
  // transaction equals N's explicit records.
  auto [seed, pattern] = GetParam();
  auto n = RunPattern(Strategy::kNaive, pattern, seed, 80, 5);
  auto h = RunPattern(Strategy::kHierarchical, pattern, seed, 80, 5);
  ASSERT_EQ(n.applied, h.applied);

  auto* ns = n.session->editor->store();
  auto* hs = h.session->editor->store();
  const tree::Tree* target = n.session->editor->TargetView();
  ASSERT_NE(target, nullptr);

  std::vector<tree::Path> probes;
  target->Visit([&](const tree::Path& rel, const tree::Tree&) {
    if (probes.size() < 40) {
      probes.push_back(tree::Path({std::string("T")}).Concat(rel));
    }
  });
  auto versions = h.session->editor->archive()->MakeVersionFn();
  for (const tree::Path& p : probes) {
    for (int64_t tid = ns->FirstTid(); tid <= ns->LastCommittedTid();
         tid += 7) {  // sample transactions
      // Inference is only defined for locations that exist in the
      // transaction's output version (store-only lookups over-approximate
      // elsewhere — combinations that backward traces never visit).
      const tree::Tree* post = versions(tid);
      ASSERT_NE(post, nullptr);
      if (post->Find(p) == nullptr) continue;
      auto rn = ns->Lookup(tid, p);
      auto rh = hs->Lookup(tid, p);
      ASSERT_TRUE(rn.ok());
      ASSERT_TRUE(rh.ok());
      ASSERT_EQ(rn->has_value(), rh->has_value())
          << p.ToString() << " tid " << tid;
      if (rn->has_value()) {
        EXPECT_EQ(**rn, **rh) << p.ToString() << " tid " << tid;
      }
    }
  }
}

TEST_P(RandomWorkloadTest, TraceAgreesAcrossAllStrategies) {
  auto [seed, pattern] = GetParam();
  // Per-op pair (N, H) must agree exactly; transactional pair (T, HT)
  // must agree exactly with each other.
  auto n = RunPattern(Strategy::kNaive, pattern, seed, 80, 5);
  auto h = RunPattern(Strategy::kHierarchical, pattern, seed, 80, 5);
  auto t = RunPattern(Strategy::kTransactional, pattern, seed, 80, 5);
  auto ht = RunPattern(Strategy::kHierarchicalTransactional, pattern, seed,
                       80, 5);
  const tree::Tree* target = n.session->editor->TargetView();
  ASSERT_NE(target, nullptr);
  std::vector<tree::Path> probes;
  target->Visit([&](const tree::Path& rel, const tree::Tree&) {
    if (!rel.IsRoot() && probes.size() < 30) {
      probes.push_back(tree::Path({std::string("T")}).Concat(rel));
    }
  });
  for (const tree::Path& p : probes) {
    auto tn = n.session->editor->query()->TraceBack(p);
    auto th = h.session->editor->query()->TraceBack(p);
    ASSERT_TRUE(tn.ok());
    ASSERT_TRUE(th.ok());
    EXPECT_EQ(tn->origin_tid, th->origin_tid) << p.ToString();
    EXPECT_EQ(tn->external_src.has_value(), th->external_src.has_value());
    if (tn->external_src.has_value() && th->external_src.has_value()) {
      EXPECT_EQ(*tn->external_src, *th->external_src) << p.ToString();
    }

    auto tt = t.session->editor->query()->TraceBack(p);
    auto tht = ht.session->editor->query()->TraceBack(p);
    ASSERT_TRUE(tt.ok());
    ASSERT_TRUE(tht.ok());
    EXPECT_EQ(tt->origin_tid, tht->origin_tid) << p.ToString();
    if (tt->external_src.has_value() && tht->external_src.has_value()) {
      EXPECT_EQ(*tt->external_src, *tht->external_src) << p.ToString();
    }
    // Cross-granularity: the external source (if any) must agree between
    // per-op and transactional tracking too — the same data flowed.
    if (tn->external_src.has_value() && tt->external_src.has_value()) {
      EXPECT_EQ(*tn->external_src, *tt->external_src) << p.ToString();
    }
  }
}

TEST_P(RandomWorkloadTest, ArchiveReconstructsEveryVersion) {
  auto [seed, pattern] = GetParam();
  auto run = RunPattern(Strategy::kNaive, pattern, seed, 60, 5);
  auto* arch = run.session->editor->archive();
  ASSERT_NE(arch, nullptr);
  // The last version equals the live universe.
  auto last = arch->GetVersion(arch->last_version());
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(last->Equals(run.session->editor->universe()));
  // Spot-check intermediate versions parse and are monotone in existence
  // of the target root.
  for (int64_t v = arch->base_version(); v <= arch->last_version();
       v += 13) {
    auto tree = arch->GetVersion(v);
    ASSERT_TRUE(tree.ok()) << v;
    EXPECT_NE(tree->Find(tree::Path::MustParse("T")), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPatterns, RandomWorkloadTest,
    ::testing::Combine(::testing::Values(7u, 99u, 2024u),
                       ::testing::Values(Pattern::kMix, Pattern::kReal,
                                         Pattern::kAcMix)),
    [](const ::testing::TestParamInfo<SeedPattern>& param_info) {
      std::string name =
          std::string("seed") + std::to_string(std::get<0>(param_info.param)) +
          "_" + workload::PatternName(std::get<1>(param_info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// Naive provenance retains the exact update script (Section 2.1.1: "the
// exact update operation ... can be recovered from the provenance table").
TEST(RecoverabilityTest, NaiveRecordsRecoverScriptShape) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());
  auto records = s->editor->store()->backend()->GetAll();
  ASSERT_TRUE(records.ok());

  // Reconstruct per-tid ops: the root record of each tid gives the op.
  std::map<int64_t, std::vector<ProvRecord>> by_tid;
  for (const auto& r : records.value()) by_tid[r.tid].push_back(r);
  auto script = update::ParseScript(testutil::Figure3ScriptText());
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(by_tid.size(), script->size());
  size_t i = 0;
  for (const auto& [tid, recs] : by_tid) {
    (void)tid;
    const update::Update& u = (*script)[i++];
    // The minimal (shallowest) loc of the tid is the operation's root.
    const ProvRecord* root = &recs[0];
    for (const auto& r : recs) {
      if (r.loc.Depth() < root->loc.Depth()) root = &r;
    }
    EXPECT_EQ(root->loc, u.AffectedPath());
    switch (u.kind) {
      case update::OpKind::kInsert:
        EXPECT_EQ(root->op, provenance::ProvOp::kInsert);
        break;
      case update::OpKind::kDelete:
        EXPECT_EQ(root->op, provenance::ProvOp::kDelete);
        break;
      case update::OpKind::kCopy:
        EXPECT_EQ(root->op, provenance::ProvOp::kCopy);
        EXPECT_EQ(root->src, u.source);
        break;
    }
  }
}

}  // namespace
}  // namespace cpdb
