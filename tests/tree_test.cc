#include "tree/tree.h"

#include <gtest/gtest.h>

#include "tree/serialize.h"
#include "tree/value.h"

namespace cpdb::tree {
namespace {

Tree T(const std::string& literal) {
  auto r = ParseTree(literal);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_EQ(Value(int64_t{3}).AsInt(), 3);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, RoundTripViaString) {
  for (const Value& v :
       {Value(), Value(int64_t{42}), Value(2.5), Value("hello")}) {
    EXPECT_EQ(Value::FromString(v.ToString()), v);
  }
}

TEST(ValueTest, Ordering) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{2}));
}

TEST(TreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.IsEmpty());
  EXPECT_FALSE(t.HasValue());
  EXPECT_FALSE(t.HasChildren());
  EXPECT_EQ(t.NodeCount(), 1u);
  EXPECT_EQ(t.ToString(), "{}");
}

TEST(TreeTest, LeafValue) {
  Tree t(Value(int64_t{7}));
  EXPECT_TRUE(t.HasValue());
  EXPECT_EQ(t.value().AsInt(), 7);
  EXPECT_FALSE(t.IsEmpty());
}

TEST(TreeTest, AddChildRejectsDuplicates) {
  Tree t;
  EXPECT_TRUE(t.AddChild("a", Tree()).ok());
  Status st = t.AddChild("a", Tree());
  EXPECT_TRUE(st.IsAlreadyExists());
}

TEST(TreeTest, AddChildRejectsValueLeaf) {
  Tree t(Value(int64_t{1}));
  EXPECT_FALSE(t.AddChild("a", Tree()).ok());
}

TEST(TreeTest, SetValueRejectsInternalNode) {
  Tree t;
  ASSERT_TRUE(t.AddChild("a", Tree()).ok());
  EXPECT_FALSE(t.SetValue(Value(int64_t{1})).ok());
}

TEST(TreeTest, RemoveChild) {
  Tree t = T("{a: 1, b: 2}");
  EXPECT_TRUE(t.RemoveChild("a").ok());
  EXPECT_EQ(t.GetChild("a"), nullptr);
  EXPECT_TRUE(t.RemoveChild("a").IsNotFound());
}

TEST(TreeTest, FindByPath) {
  Tree t = T("{a: {b: {c: 5}}}");
  const Tree* node = t.Find(Path::MustParse("a/b/c"));
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->value().AsInt(), 5);
  EXPECT_EQ(t.Find(Path::MustParse("a/x")), nullptr);
  EXPECT_EQ(t.Find(Path()), &t);
}

TEST(TreeTest, InsertAtAndDeleteAt) {
  Tree t = T("{a: {}}");
  EXPECT_TRUE(t.InsertAt(Path::MustParse("a"), "b",
                         Tree(Value(int64_t{1}))).ok());
  EXPECT_TRUE(t.Contains(Path::MustParse("a/b")));
  EXPECT_TRUE(t.InsertAt(Path::MustParse("zz"), "b", Tree()).IsNotFound());
  EXPECT_TRUE(t.DeleteAt(Path::MustParse("a"), "b").ok());
  EXPECT_FALSE(t.Contains(Path::MustParse("a/b")));
}

TEST(TreeTest, ReplaceAtCreatesOrReplaces) {
  Tree t = T("{a: {b: 1}}");
  // Replace existing.
  EXPECT_TRUE(t.ReplaceAt(Path::MustParse("a/b"),
                          Tree(Value(int64_t{9}))).ok());
  EXPECT_EQ(t.Find(Path::MustParse("a/b"))->value().AsInt(), 9);
  // Create fresh edge (as in Figure 3's operation (7)).
  EXPECT_TRUE(t.ReplaceAt(Path::MustParse("a/c"),
                          Tree(Value(int64_t{2}))).ok());
  EXPECT_EQ(t.Find(Path::MustParse("a/c"))->value().AsInt(), 2);
  // Parent must exist.
  EXPECT_TRUE(t.ReplaceAt(Path::MustParse("zz/c"), Tree()).IsNotFound());
}

TEST(TreeTest, CloneIsDeep) {
  Tree t = T("{a: {b: 1}}");
  Tree c = t.Clone();
  ASSERT_TRUE(c.Equals(t));
  ASSERT_TRUE(c.DeleteAt(Path::MustParse("a"), "b").ok());
  EXPECT_TRUE(t.Contains(Path::MustParse("a/b")));  // original untouched
  EXPECT_FALSE(c.Equals(t));
}

TEST(TreeTest, NodeCountAndDescendants) {
  Tree t = T("{a: {x: 1, y: 2, z: 3}}");  // the size-4 copy unit + root
  EXPECT_EQ(t.NodeCount(), 5u);
  EXPECT_EQ(t.GetChild("a")->NodeCount(), 4u);
  EXPECT_EQ(t.GetChild("a")->DescendantCount(), 3u);
}

TEST(TreeTest, EqualsIsStructuralAndValueSensitive) {
  EXPECT_TRUE(T("{a: 1, b: {c: 2}}").Equals(T("{b: {c: 2}, a: 1}")));
  EXPECT_FALSE(T("{a: 1}").Equals(T("{a: 2}")));
  EXPECT_FALSE(T("{a: 1}").Equals(T("{a: 1, b: 2}")));
  EXPECT_FALSE(T("{a: {}}").Equals(T("{a: 1}")));
}

TEST(TreeTest, HashAgreesWithEquals) {
  Tree a = T("{a: 1, b: {c: 2}}");
  Tree b = T("{b: {c: 2}, a: 1}");
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), T("{a: 1, b: {c: 3}}").Hash());
}

TEST(TreeTest, VisitIsPreorder) {
  Tree t = T("{a: {b: 1}, c: 2}");
  std::vector<std::string> seen;
  t.Visit([&](const Path& p, const Tree&) { seen.push_back(p.ToString()); });
  EXPECT_EQ(seen, (std::vector<std::string>{"", "a", "a/b", "c"}));
}

TEST(TreeTest, AllPathsAndLeafPaths) {
  Tree t = T("{a: {b: 1}, c: {}}");
  EXPECT_EQ(t.AllPaths().size(), 4u);  // root, a, a/b, c
  auto leaves = t.LeafPaths();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0].ToString(), "a/b");
  EXPECT_EQ(leaves[1].ToString(), "c");
}

TEST(TreeTest, TakeChildMovesSubtree) {
  Tree t = T("{a: {b: 1}}");
  auto taken = t.TakeChild("a");
  ASSERT_TRUE(taken.ok());
  EXPECT_TRUE(taken->Contains(Path::MustParse("b")));
  EXPECT_FALSE(t.HasChildren());
  EXPECT_TRUE(t.TakeChild("a").status().IsNotFound());
}

TEST(TreeTest, ToStringRoundTrip) {
  for (const char* lit :
       {"{}", "{a: 1}", "{a: {b: {c: \"x y\"}}, d: null}",
        "{c1: {x: 1, y: 2}, c5: {x: 9, y: 7}}"}) {
    Tree t = T(lit);
    Tree again = T(t.ToString());
    EXPECT_TRUE(t.Equals(again)) << lit << " -> " << t.ToString();
  }
}

TEST(TreeTest, ByteSizeGrowsWithContent) {
  EXPECT_LT(T("{a: 1}").ByteSize(), T("{a: 1, b: {c: 2, d: 3}}").ByteSize());
}

// ----- Copy-on-write structural sharing ------------------------------------

TEST(TreeCowTest, CloneSharesStructure) {
  Tree t = T("{a: {x: 1, y: 2}, b: {z: 3}}");
  Tree c = t.Clone();
  // Physically shared: same child nodes, not copies.
  EXPECT_TRUE(t.SharesAllChildrenWith(c));
  EXPECT_EQ(t.children().at("a").get(), c.children().at("a").get());
  EXPECT_TRUE(t.Equals(c));
}

TEST(TreeCowTest, MutationPrivatizesOnlyThePath) {
  Tree t = T("{a: {x: 1, y: 2}, b: {z: 3}}");
  Tree c = t.Clone();
  // Mutating the clone must not be visible through the original...
  ASSERT_TRUE(c.InsertAt(Path({"a"}), "w", Tree(Value(int64_t{9}))).ok());
  EXPECT_FALSE(t.Contains(Path({"a", "w"})));
  EXPECT_TRUE(c.Contains(Path({"a", "w"})));
  // ...and untouched siblings stay physically shared.
  EXPECT_NE(t.children().at("a").get(), c.children().at("a").get());
  EXPECT_EQ(t.children().at("b").get(), c.children().at("b").get());
}

TEST(TreeCowTest, MutatingOriginalLeavesCloneIntact) {
  Tree t = T("{a: {x: 1}}");
  Tree c = t.Clone();
  ASSERT_TRUE(t.DeleteAt(Path({"a"}), "x").ok());
  EXPECT_FALSE(t.Contains(Path({"a", "x"})));
  EXPECT_TRUE(c.Contains(Path({"a", "x"})));
  EXPECT_EQ(c.Find(Path({"a", "x"}))->value().AsInt(), 1);
}

TEST(TreeCowTest, TakeChildOnSharedNodeCopies) {
  Tree t = T("{a: {x: 1, y: 2}}");
  Tree c = t.Clone();
  auto taken = t.TakeChild("a");
  ASSERT_TRUE(taken.ok());
  EXPECT_TRUE(taken->Contains(Path({"x"})));
  // The clone still sees the full subtree.
  EXPECT_TRUE(c.Contains(Path({"a", "y"})));
  EXPECT_EQ(c.Find(Path({"a", "y"}))->value().AsInt(), 2);
}

TEST(TreeCowTest, ConstLookupsDoNotPrivatize) {
  Tree t = T("{a: {x: 1}}");
  Tree c = t.Clone();
  const Tree& tc = t;
  ASSERT_NE(tc.Find(Path({"a", "x"})), nullptr);
  ASSERT_NE(tc.GetChild("a"), nullptr);
  // Reads through the const interface must leave sharing intact.
  EXPECT_EQ(t.children().at("a").get(), c.children().at("a").get());
}

TEST(TreeCowTest, MutableFindPrivatizesThePath) {
  Tree t = T("{a: {b: {x: 1}}}");
  Tree c = t.Clone();
  Tree* node = t.Find(Path({"a", "b"}));
  ASSERT_NE(node, nullptr);
  ASSERT_TRUE(node->AddChild("y", Tree(Value(int64_t{2}))).ok());
  EXPECT_TRUE(t.Contains(Path({"a", "b", "y"})));
  EXPECT_FALSE(c.Contains(Path({"a", "b", "y"})));
}

TEST(TreeCowTest, DeepCloneChainStaysIsolated) {
  // Chain of clones: each generation mutates its own copy; all others
  // keep their exact state (the service layer's snapshot pattern).
  Tree base = T("{T: {}}");
  std::vector<Tree> generations;
  for (int i = 0; i < 8; ++i) {
    generations.push_back(base.Clone());
    ASSERT_TRUE(base.InsertAt(Path({"T"}), "n" + std::to_string(i),
                              Tree(Value(int64_t{i})))
                    .ok());
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(generations[static_cast<size_t>(i)].Find(Path({"T"}))
                  ->ChildCount(),
              static_cast<size_t>(i));
  }
  EXPECT_EQ(base.Find(Path({"T"}))->ChildCount(), 8u);
}

}  // namespace
}  // namespace cpdb::tree
