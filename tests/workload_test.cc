#include "workload/update_gen.h"

#include <gtest/gtest.h>

#include "workload/data_gen.h"

namespace cpdb::workload {
namespace {

TEST(DataGenTest, MimiLikeShape) {
  tree::Tree t = GenMimiLike(50, 1);
  EXPECT_EQ(t.ChildCount(), 50u);
  const tree::Tree* entry = t.GetChild("prot1");
  ASSERT_NE(entry, nullptr);
  EXPECT_NE(entry->GetChild("name"), nullptr);
  EXPECT_NE(entry->GetChild("interactions"), nullptr);
}

TEST(DataGenTest, OrganelleLikeIsSizeFourSubtrees) {
  // "The copies were all of subtrees of size four (a parent with three
  // children)" — every source entry must have exactly that shape.
  tree::Tree t = GenOrganelleLike(100, 2);
  EXPECT_EQ(t.ChildCount(), 100u);
  for (const auto& [label, entry] : t.children()) {
    (void)label;
    EXPECT_EQ(entry->NodeCount(), 4u);
    EXPECT_EQ(entry->ChildCount(), 3u);
    for (const auto& [f, child] : entry->children()) {
      (void)f;
      EXPECT_FALSE(child->HasChildren());
    }
  }
}

TEST(DataGenTest, DeterministicAcrossCalls) {
  EXPECT_TRUE(GenMimiLike(20, 7).Equals(GenMimiLike(20, 7)));
  EXPECT_FALSE(GenMimiLike(20, 7).Equals(GenMimiLike(20, 8)));
}

TEST(DataGenTest, RelationalOrganelleMatchesTreeShape) {
  relstore::Database db("src");
  auto table = FillOrganelleRelational(&db, 30, 3);
  ASSERT_TRUE(table.ok());
  auto t = db.GetTable(table.value());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->RowCount(), 30u);
  EXPECT_EQ((*t)->schema().NumColumns(), 4u);  // id + 3 fields
}

TEST(PatternNamesTest, RoundTrip) {
  for (Pattern p : {Pattern::kAdd, Pattern::kDelete, Pattern::kCopy,
                    Pattern::kAcMix, Pattern::kMix, Pattern::kReal}) {
    auto back = PatternFromName(PatternName(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(PatternFromName("bogus").ok());
  for (DeletePolicy p :
       {DeletePolicy::kRandom, DeletePolicy::kAdded, DeletePolicy::kCopied,
        DeletePolicy::kMix, DeletePolicy::kReal}) {
    auto back = DeletePolicyFromName(DeletePolicyName(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, p);
  }
}

class GeneratorPatternTest : public ::testing::TestWithParam<Pattern> {};

TEST_P(GeneratorPatternTest, GeneratedOpsAlwaysApply) {
  // Every generated operation must be valid against the live tree.
  tree::Tree universe;
  ASSERT_TRUE(universe.AddChild("T", GenMimiLike(30, 4)).ok());
  ASSERT_TRUE(universe.AddChild("S1", GenOrganelleLike(60, 5)).ok());
  GenOptions opts;
  opts.pattern = GetParam();
  opts.seed = 9;
  UpdateGenerator gen(&universe, opts);
  size_t applied = 0;
  for (int i = 0; i < 400; ++i) {
    auto u = gen.Next();
    if (!u.has_value()) break;
    update::ApplyEffect effect;
    Status st = update::Apply(&universe, *u, &effect);
    ASSERT_TRUE(st.ok()) << u->ToString() << ": " << st;
    gen.OnApplied(*u, effect);
    ++applied;
  }
  EXPECT_GT(applied, 350u);
  EXPECT_EQ(applied, gen.adds() + gen.deletes() + gen.copies());
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, GeneratorPatternTest,
    ::testing::Values(Pattern::kAdd, Pattern::kDelete, Pattern::kCopy,
                      Pattern::kAcMix, Pattern::kMix, Pattern::kReal),
    [](const ::testing::TestParamInfo<Pattern>& param_info) {
      std::string n = PatternName(param_info.param);
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

TEST(GeneratorTest, MixProportionsRoughlyEqual) {
  tree::Tree universe;
  ASSERT_TRUE(universe.AddChild("T", GenMimiLike(50, 4)).ok());
  ASSERT_TRUE(universe.AddChild("S1", GenOrganelleLike(100, 5)).ok());
  GenOptions opts;
  opts.pattern = Pattern::kMix;
  opts.seed = 10;
  UpdateGenerator gen(&universe, opts);
  for (int i = 0; i < 900; ++i) {
    auto u = gen.Next();
    ASSERT_TRUE(u.has_value());
    update::ApplyEffect effect;
    ASSERT_TRUE(update::Apply(&universe, *u, &effect).ok());
    gen.OnApplied(*u, effect);
  }
  EXPECT_NEAR(static_cast<double>(gen.adds()), 300, 70);
  EXPECT_NEAR(static_cast<double>(gen.deletes()), 300, 70);
  EXPECT_NEAR(static_cast<double>(gen.copies()), 300, 70);
}

TEST(GeneratorTest, RealPatternCycles) {
  // 1 copy : 3 deletes : 3 adds per 7-op cycle.
  tree::Tree universe;
  ASSERT_TRUE(universe.AddChild("T", GenMimiLike(10, 4)).ok());
  ASSERT_TRUE(universe.AddChild("S1", GenOrganelleLike(50, 5)).ok());
  GenOptions opts;
  opts.pattern = Pattern::kReal;
  opts.seed = 11;
  UpdateGenerator gen(&universe, opts);
  for (int i = 0; i < 700; ++i) {
    auto u = gen.Next();
    ASSERT_TRUE(u.has_value());
    update::ApplyEffect effect;
    ASSERT_TRUE(update::Apply(&universe, *u, &effect).ok());
    gen.OnApplied(*u, effect);
  }
  EXPECT_EQ(gen.copies(), 100u);
  EXPECT_EQ(gen.deletes(), 300u);
  EXPECT_EQ(gen.adds(), 300u);
}

TEST(GeneratorTest, SkippedDeletesInAcRuns) {
  tree::Tree universe;
  ASSERT_TRUE(universe.AddChild("T", GenMimiLike(30, 4)).ok());
  ASSERT_TRUE(universe.AddChild("S1", GenOrganelleLike(60, 5)).ok());
  GenOptions opts;
  opts.pattern = Pattern::kMix;
  opts.include_deletes = false;
  opts.seed = 12;
  UpdateGenerator gen(&universe, opts);
  size_t ops = 0, skips = 0;
  for (int i = 0; i < 300; ++i) {
    bool skipped = false;
    auto u = gen.Next(&skipped);
    if (skipped) {
      ++skips;
      continue;
    }
    ASSERT_TRUE(u.has_value());
    update::ApplyEffect effect;
    ASSERT_TRUE(update::Apply(&universe, *u, &effect).ok());
    gen.OnApplied(*u, effect);
    ++ops;
  }
  EXPECT_EQ(gen.deletes(), 0u);
  EXPECT_GT(skips, 60u);  // ~1/3 of slots
  EXPECT_EQ(ops + skips, 300u);
}

}  // namespace
}  // namespace cpdb::workload
