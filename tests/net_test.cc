// The network service (src/net/): framing, protocol coding, and the TCP
// server over service::Engine — exercised over REAL sockets.
//
// The robustness contract under test (mirrors tests/durability_test.cc's
// corruption style, but through the wire): a torn, oversized, or
// bit-flipped frame yields ONE typed error response followed by
// connection close — never a crash, never a partially applied message,
// and never damage to other connections. On top of that: pipelined
// request ordering, admission-control RETRY that sheds whole
// transactions atomically, and the graceful-drain + reopen round trip
// recovering bit-identical state through the socket.

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/frame.h"
#include "net/metrics_http.h"
#include "net/protocol.h"
#include "net/server.h"
#include "provenance/store.h"
#include "relstore/cost_model.h"
#include "service/commit_queue.h"
#include "service/session.h"
#include "storage/durable.h"
#include "test_util.h"
#include "util/crc32.h"
#include "util/mutex.h"

namespace cpdb {
namespace {

using net::Client;
using net::FrameReader;
using net::Request;
using net::RespCode;
using net::Response;
using net::Server;
using net::ServerOptions;
using service::Engine;
using service::SessionPool;
using testutil::TempDir;
using tree::Path;
using tree::Value;
using update::Update;

// ----- Frame unit tests ------------------------------------------------------

std::string Framed(const std::string& payload) {
  std::string out;
  net::EncodeFrame(payload, &out);
  return out;
}

TEST(FrameTest, RoundTripsPayloads) {
  for (const std::string payload :
       {std::string(), std::string("x"), std::string(1000, 'q'),
        std::string("\x00\xff\x7f", 3)}) {
    FrameReader reader;
    std::string wire = Framed(payload);
    reader.Append(wire.data(), wire.size());
    std::string got;
    ASSERT_EQ(reader.Next(&got), FrameReader::Event::kFrame);
    EXPECT_EQ(got, payload);
    EXPECT_EQ(reader.Next(&got), FrameReader::Event::kNeedMore);
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(FrameTest, ReassemblesTornDelivery) {
  // Feed a pipelined pair of frames one byte at a time: every prefix is a
  // legal torn read and must parse to exactly the two payloads.
  std::string wire = Framed("first payload") + Framed("second");
  FrameReader reader;
  std::vector<std::string> got;
  std::string payload;
  for (char c : wire) {
    reader.Append(&c, 1);
    while (reader.Next(&payload) == FrameReader::Event::kFrame) {
      got.push_back(payload);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first payload");
  EXPECT_EQ(got[1], "second");
}

TEST(FrameTest, BitFlipFailsCrcAndPoisons) {
  std::string wire = Framed("the payload under test");
  wire[wire.size() - 3] ^= 0x20;  // flip one payload bit
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(reader.Next(&payload), FrameReader::Event::kBadCrc);
  // Terminal: even appending a pristine frame cannot revive the stream.
  std::string good = Framed("good");
  reader.Append(good.data(), good.size());
  EXPECT_EQ(reader.Next(&payload), FrameReader::Event::kBadCrc);
}

TEST(FrameTest, OversizedLengthRejectedWithoutAllocating) {
  std::string wire;
  PutVarint64(&wire, net::kMaxFramePayload + 1);
  wire += std::string(4, '\0');
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(reader.Next(&payload), FrameReader::Event::kTooLarge);
}

TEST(FrameTest, GarbageVarintIsMalformed) {
  std::string wire(kMaxVarint64Bytes + 2, '\xff');
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(reader.Next(&payload), FrameReader::Event::kMalformed);
}

// ----- Protocol unit tests ---------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  std::vector<Request> reqs = {
      Request::Ping(),
      Request::Apply(Update::Insert(Path::MustParse("T/data"), "k1")),
      Request::Apply(Update::Insert(Path::MustParse("T/data/k1"), "f1",
                                    Value("hello"))),
      Request::Apply(Update::Insert(Path::MustParse("T/data/k1"), "f2",
                                    Value(static_cast<int64_t>(-42)))),
      Request::Apply(Update::Delete(Path::MustParse("T/data"), "k1")),
      Request::Apply(Update::Copy(Path::MustParse("S1/a"),
                                  Path::MustParse("T/data/b"))),
      Request::Commit(),
      Request::Abort(),
      Request::GetMod(Path::MustParse("T/data/k1")),
      Request::TraceBack(Path::MustParse("T")),
      Request::Get(Path::MustParse("T/data")),
      Request::Stats(),
      Request::Checkpoint(),
      Request::Drain(),
  };
  for (const Request& req : reqs) {
    std::string wire;
    net::EncodeRequest(req, &wire);
    auto back = net::DecodeRequest(wire);
    ASSERT_TRUE(back.ok()) << net::ReqTypeName(req.type);
    EXPECT_EQ(back->type, req.type);
    EXPECT_EQ(back->update, req.update) << net::ReqTypeName(req.type);
    EXPECT_EQ(back->path.ToString(), req.path.ToString());
  }
}

TEST(ProtocolTest, ResponseRoundTrip) {
  for (const Response& resp :
       {Response::Ok(), Response::Ok("body text"),
        Response::Error("it broke"), Response::Retry("busy"),
        Response::Draining("bye")}) {
    std::string wire;
    net::EncodeResponse(resp, &wire);
    auto back = net::DecodeResponse(wire);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->code, resp.code);
    EXPECT_EQ(back->body, resp.body);
  }
}

TEST(ProtocolTest, DecodersAreStrict) {
  std::string wire;
  net::EncodeRequest(Request::GetMod(Path::MustParse("T/x")), &wire);
  EXPECT_FALSE(net::DecodeRequest(wire + "x").ok());  // trailing byte
  EXPECT_FALSE(net::DecodeRequest(wire.substr(0, wire.size() - 1)).ok());
  EXPECT_FALSE(net::DecodeRequest("").ok());
  EXPECT_FALSE(net::DecodeRequest("\x7f").ok());  // unknown type tag

  std::string resp;
  net::EncodeResponse(Response::Ok("abc"), &resp);
  EXPECT_FALSE(net::DecodeResponse(resp + "y").ok());
  EXPECT_FALSE(net::DecodeResponse("\x09").ok());  // out-of-range code
}

TEST(ProtocolTest, TraceContextRoundTrip) {
  // The 0x80 tag bit carries an optional trace context on ANY verb.
  for (Request req :
       {Request::GetMod(Path::MustParse("T/data/k1")), Request::Commit(),
        Request::Apply(Update::Insert(Path::MustParse("T/data"), "k")),
        Request::Explain(net::ReqType::kGet, Path::MustParse("T/data"))}) {
    req.trace = obs::TraceContext{0x1234abcdULL, 77, true};
    std::string wire;
    net::EncodeRequest(req, &wire);
    auto back = net::DecodeRequest(wire);
    ASSERT_TRUE(back.ok()) << net::ReqTypeName(req.type);
    EXPECT_EQ(back->type, req.type);
    EXPECT_EQ(back->trace.trace_id, req.trace.trace_id);
    EXPECT_EQ(back->trace.parent_span_id, req.trace.parent_span_id);
    EXPECT_EQ(back->trace.sampled, req.trace.sampled);
    EXPECT_EQ(back->path.ToString(), req.path.ToString());
  }
  // An untraced request decodes with an invalid (absent) context and
  // costs zero extra wire bytes.
  std::string bare, traced;
  Request req = Request::GetMod(Path::MustParse("T/x"));
  net::EncodeRequest(req, &bare);
  req.trace = obs::TraceContext{9, 0, false};
  net::EncodeRequest(req, &traced);
  EXPECT_GT(traced.size(), bare.size());
  auto back = net::DecodeRequest(bare);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->trace.valid());
}

TEST(ProtocolTest, TraceContextDecoderIsStrict) {
  Request req = Request::GetMod(Path::MustParse("T/x"));
  req.trace = obs::TraceContext{42, 7, true};
  std::string wire;
  net::EncodeRequest(req, &wire);
  auto ok = net::DecodeRequest(wire);
  ASSERT_TRUE(ok.ok());

  // Trace tag bit set but the context truncated away entirely. (The
  // flagged tag is a two-byte varint: 0x85 0x01 for GETMOD|0x80.)
  EXPECT_FALSE(net::DecodeRequest(wire.substr(0, 2)).ok());
  // Zero trace id means "absent" everywhere else; on the wire it is a
  // contradiction (the tag bit promised a context) and must fail.
  std::string zero_id = wire;
  ASSERT_EQ(zero_id[2], 42);  // single-byte varint trace_id after the tag
  zero_id[2] = 0;
  EXPECT_FALSE(net::DecodeRequest(zero_id).ok());
  // The sampled flag is one byte, 0 or 1 — anything else is malformed.
  std::string bad_flag = wire;
  ASSERT_EQ(bad_flag[4], 1);  // sampled byte follows the two id varints
  bad_flag[4] = 2;
  EXPECT_FALSE(net::DecodeRequest(bad_flag).ok());
}

TEST(ProtocolTest, ExplainRoundTripAndVerbValidation) {
  for (net::ReqType verb : {net::ReqType::kGetMod, net::ReqType::kTraceBack,
                            net::ReqType::kGet}) {
    std::string wire;
    net::EncodeRequest(Request::Explain(verb, Path::MustParse("T/data/k1")),
                       &wire);
    auto back = net::DecodeRequest(wire);
    ASSERT_TRUE(back.ok()) << net::ReqTypeName(verb);
    EXPECT_EQ(back->type, net::ReqType::kExplain);
    EXPECT_EQ(back->explain_verb, verb);
    EXPECT_EQ(back->path.ToString(), "T/data/k1");
  }
  // EXPLAIN only explains the query verbs: COMMIT (or worse, EXPLAIN
  // itself) as the inner verb is rejected at decode time.
  for (net::ReqType verb : {net::ReqType::kCommit, net::ReqType::kExplain,
                            net::ReqType::kStats}) {
    std::string wire;
    net::EncodeRequest(Request::Explain(verb, Path::MustParse("T/x")), &wire);
    EXPECT_FALSE(net::DecodeRequest(wire).ok()) << net::ReqTypeName(verb);
  }
}

TEST(ProtocolTest, TidsDeltaCoding) {
  for (const std::vector<int64_t>& tids :
       {std::vector<int64_t>{}, std::vector<int64_t>{7},
        std::vector<int64_t>{1, 2, 3, 100, 10000, 10001}}) {
    std::string wire;
    net::EncodeTids(tids, &wire);
    auto back = net::DecodeTids(wire);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, tids);
  }
  EXPECT_FALSE(net::DecodeTids("\x05").ok());  // count without payload
}

// ----- End-to-end over real sockets ------------------------------------------

/// A live server over one (in-memory or durable) store with the same
/// "data" table cpdb_serve fronts.
struct NetRig {
  explicit NetRig(const std::string& dir = "", ServerOptions opts = {},
                  service::SessionOptions sopts = {}) {
    if (dir.empty()) {
      db = std::make_unique<relstore::Database>("curated");
    } else {
      auto opened = relstore::Database::Open("curated", dir);
      EXPECT_TRUE(opened.ok()) << opened.status().ToString();
      db = std::move(opened).value();
    }
    if (!db->GetTable("data").ok()) {
      relstore::Schema schema(
          {{"id", relstore::ColumnType::kString, false},
           {"f1", relstore::ColumnType::kString, true},
           {"f2", relstore::ColumnType::kString, true}});
      EXPECT_TRUE(db->CreateTable("data", schema).ok());
    }
    backend = std::make_unique<provenance::ProvBackend>(db.get());
    target = std::make_unique<wrap::RelationalTargetDb>(
        "T", db.get(), std::vector<std::string>{"data"});
    engine = std::make_unique<Engine>(backend.get(), target.get());
    pool = std::make_unique<SessionPool>(engine.get(), sopts);
    server = std::make_unique<Server>(engine.get(), pool.get(), opts);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  ~NetRig() {
    if (server != nullptr) server->Stop();
    server.reset();
    pool.reset();
    engine.reset();
    target.reset();
    backend.reset();
    if (db != nullptr) EXPECT_TRUE(db->Close().ok());
  }

  int port() const { return server->port(); }

  std::unique_ptr<relstore::Database> db;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::RelationalTargetDb> target;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<SessionPool> pool;
  std::unique_ptr<Server> server;
};

/// Raw TCP connect for the fault-injection tests (all actual byte
/// movement still goes through net/frame.h helpers).
int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

TEST(NetServerTest, PingApplyCommitQuery) {
  NetRig rig;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  Path table = Path::MustParse("T/data");
  ASSERT_TRUE(client.Apply(Update::Insert(table, "k1")).ok());
  ASSERT_TRUE(
      client.Apply(Update::Insert(table.Child("k1"), "f1", Value("v1"))).ok());
  ASSERT_TRUE(client.Commit().ok());

  auto tids = client.GetMod(table.Child("k1"));
  ASSERT_TRUE(tids.ok()) << tids.status().ToString();
  EXPECT_EQ(*tids, std::vector<int64_t>{1});

  auto got = client.Get(table.Child("k1"));
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got->find("v1"), std::string::npos);

  auto trace = client.TraceBack(table.Child("k1").Child("f1"));
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->find("tid=1"), std::string::npos);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"last_tid\":1"), std::string::npos) << *stats;
  // The MVCC surface is visible to operators: the committed watermark,
  // the version chain, and the parallel-apply counters all ride STATS.
  EXPECT_NE(stats->find("\"committed_tid\":1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"versions_live\":"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"parallel_cohorts\":"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"snapshot_rebuilds\":"), std::string::npos)
      << *stats;

  // A fresh connection (fresh snapshot) sees the committed row rendered
  // EXACTLY like the committing session did: GET's canonical rendering
  // hides the NULL columns a relational snapshot materializes, so the
  // two forms agree byte-for-byte (what digest comparison relies on).
  Client other;
  ASSERT_TRUE(other.Connect("127.0.0.1", rig.port()).ok());
  auto got2 = other.Get(table.Child("k1"));
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, *got);
}

TEST(NetServerTest, AbortDiscardsStagedTransaction) {
  NetRig rig;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  Path table = Path::MustParse("T/data");
  ASSERT_TRUE(client.Apply(Update::Insert(table, "doomed")).ok());
  ASSERT_TRUE(client.Abort().ok());
  ASSERT_TRUE(client.Apply(Update::Insert(table, "kept")).ok());
  ASSERT_TRUE(client.Commit().ok());
  auto got = client.Get(table);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->find("doomed"), std::string::npos) << *got;
  EXPECT_NE(got->find("kept"), std::string::npos);
}

TEST(NetServerTest, PipelinedResponsesArriveInOrder) {
  NetRig rig;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  Path table = Path::MustParse("T/data");
  // One burst: create two rows in one transaction, then read both back —
  // 5 requests on the wire before the first Recv.
  ASSERT_TRUE(client.Send(Request::Apply(Update::Insert(table, "a"))).ok());
  ASSERT_TRUE(client.Send(Request::Apply(Update::Insert(table, "b"))).ok());
  ASSERT_TRUE(client.Send(Request::Commit()).ok());
  ASSERT_TRUE(client.Send(Request::Get(table.Child("a"))).ok());
  ASSERT_TRUE(client.Send(Request::Get(table.Child("z"))).ok());
  for (int i = 0; i < 3; ++i) {
    auto resp = client.Recv();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, RespCode::kOk) << i << ": " << resp->body;
  }
  auto got_a = client.Recv();
  ASSERT_TRUE(got_a.ok());
  EXPECT_EQ(got_a->code, RespCode::kOk);
  EXPECT_NE(got_a->body, "<absent>");
  auto got_z = client.Recv();
  ASSERT_TRUE(got_z.ok());
  EXPECT_EQ(got_z->body, "<absent>");  // order held: the z-read is last
}

// ----- Robustness: protocol violations over the wire -------------------------

/// Sends `bytes` raw, expects one typed error response and then EOF, and
/// proves the server survived by committing over a fresh connection.
void ExpectErrorThenClose(NetRig* rig, const std::string& bytes) {
  int fd = RawConnect(rig->port());
  ASSERT_TRUE(net::WriteRaw(fd, bytes).ok());
  FrameReader reader;
  std::string payload;
  Status st = net::ReadFrame(fd, &reader, &payload);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto resp = net::DecodeResponse(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, RespCode::kError);
  // ...and nothing after it: the server closed the connection.
  EXPECT_TRUE(net::ReadFrame(fd, &reader, &payload).IsUnavailable());
  ::close(fd);

  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", rig->port()).ok());
  EXPECT_TRUE(probe.Ping().ok());
}

TEST(NetRobustnessTest, GarbageBytesGetTypedErrorAndClose) {
  NetRig rig;
  ExpectErrorThenClose(&rig, std::string(64, '\xff'));
  EXPECT_GE(rig.server->stats().bad_frames, 1u);
}

TEST(NetRobustnessTest, OversizedFrameGetsTypedErrorAndClose) {
  NetRig rig;
  std::string wire;
  PutVarint64(&wire, net::kMaxFramePayload + 1);
  wire += std::string(8, 'x');
  ExpectErrorThenClose(&rig, wire);
}

TEST(NetRobustnessTest, BitFlippedFrameGetsTypedErrorAndClose) {
  NetRig rig;
  std::string req;
  net::EncodeRequest(Request::Ping(), &req);
  std::string wire = Framed(req);
  wire[wire.size() - 1] ^= 0x01;
  ExpectErrorThenClose(&rig, wire);
}

TEST(NetRobustnessTest, UndecodableRequestGetsErrorAndClose) {
  // Perfectly framed, meaningless payload: decoder (not framing) rejects.
  NetRig rig;
  ExpectErrorThenClose(&rig, Framed("\x7f not a request"));
  EXPECT_GE(rig.server->stats().bad_requests, 1u);
}

TEST(NetRobustnessTest, ViolationMidPipelineNeverPartiallyApplies) {
  // A valid APPLY staged on the connection, then garbage before the
  // COMMIT: the APPLY's OK must arrive first (pipeline order), then the
  // typed error, then close — and the staged transaction must be gone
  // (the lease-return aborts it), never half-committed.
  NetRig rig;
  Path table = Path::MustParse("T/data");
  int fd = RawConnect(rig.port());
  std::string apply;
  net::EncodeRequest(Request::Apply(Update::Insert(table, "torn")), &apply);
  ASSERT_TRUE(net::WriteRaw(fd, Framed(apply) + std::string(64, '\xff')).ok());
  FrameReader reader;
  std::string payload;
  ASSERT_TRUE(net::ReadFrame(fd, &reader, &payload).ok());
  auto first = net::DecodeResponse(payload);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, RespCode::kOk);  // the APPLY itself
  ASSERT_TRUE(net::ReadFrame(fd, &reader, &payload).ok());
  auto second = net::DecodeResponse(payload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->code, RespCode::kError);
  EXPECT_TRUE(net::ReadFrame(fd, &reader, &payload).IsUnavailable());
  ::close(fd);

  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", rig.port()).ok());
  auto got = probe.Get(table);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->find("torn"), std::string::npos) << *got;
  auto tids = probe.GetMod(table);
  ASSERT_TRUE(tids.ok());
  EXPECT_TRUE(tids->empty());
}

TEST(NetRobustnessTest, TornFrameThenEofJustCloses) {
  NetRig rig;
  std::string req;
  net::EncodeRequest(Request::Ping(), &req);
  std::string wire = Framed(req);
  int fd = RawConnect(rig.port());
  ASSERT_TRUE(net::WriteRaw(fd, wire.substr(0, wire.size() / 2)).ok());
  ::close(fd);  // EOF with half a frame buffered: no response owed
  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", rig.port()).ok());
  EXPECT_TRUE(probe.Ping().ok());
}

// ----- Admission control -----------------------------------------------------

TEST(NetServerTest, OverloadShedsWholeTransactionsWithRetry) {
  ServerOptions opts;
  opts.max_queue_depth = 0;  // any waiting committer triggers shedding
  NetRig rig("", opts);
  Path table = Path::MustParse("T/data");

  Client a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(c.Connect("127.0.0.1", rig.port()).ok());

  // Lease A's and B's sessions BEFORE stalling the leader: building a
  // session snapshots under a shared latch grant, which would park the
  // worker behind the stalled exclusive holder and keep B's COMMIT from
  // ever reaching the queue. (C stays sessionless on purpose — shedding
  // must answer before acquisition.)
  for (Client* warm : {&a, &b}) {
    ASSERT_TRUE(warm->Apply(Update::Insert(table, "warm")).ok());
    ASSERT_TRUE(warm->Abort().ok());
  }

  // Stall the group-commit leader inside the seal so followers pile up.
  Mutex mu;
  CondVar cv;
  bool release = false;
  service::CommitQueue::TestHooks hooks;
  hooks.before_seal = [&](size_t) {
    MutexLock l(mu);
    while (!release) cv.Wait(mu);
  };
  rig.engine->commit_queue().set_test_hooks(hooks);
  // Whatever happens below (including an early ASSERT), the leader must
  // be released before the rig's destructor drains, or teardown hangs.
  struct Releaser {
    Mutex* mu;
    CondVar* cv;
    bool* release;
    ~Releaser() {
      MutexLock l(*mu);
      *release = true;
      cv->NotifyAll();
    }
  } releaser{&mu, &cv, &release};

  // A: commits and becomes the (stalled) leader.
  ASSERT_TRUE(a.Send(Request::Apply(Update::Insert(table, "a1"))).ok());
  ASSERT_TRUE(a.Send(Request::Commit()).ok());
  // B: enqueues behind the stalled leader -> queue depth 1.
  ASSERT_TRUE(b.Send(Request::Apply(Update::Insert(table, "b1"))).ok());
  ASSERT_TRUE(b.Send(Request::Commit()).ok());
  for (int i = 0; i < 500 && rig.engine->CommitQueueDepth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(rig.engine->CommitQueueDepth(), 0u);

  // C: every request of the incoming transaction is shed with RETRY —
  // the first APPLY decides, the rest follow (transaction-atomic).
  ASSERT_TRUE(c.Send(Request::Apply(Update::Insert(table, "c1"))).ok());
  ASSERT_TRUE(
      c.Send(Request::Apply(Update::Insert(table.Child("c1"), "f1",
                                           Value("v"))))
          .ok());
  ASSERT_TRUE(c.Send(Request::Commit()).ok());
  for (int i = 0; i < 3; ++i) {
    auto resp = c.Recv();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, RespCode::kRetry) << i << ": " << resp->body;
  }

  {
    MutexLock l(mu);
    release = true;
    cv.NotifyAll();
  }
  for (Client* stalled : {&a, &b}) {
    for (int i = 0; i < 2; ++i) {
      auto resp = stalled->Recv();
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->code, RespCode::kOk) << resp->body;
    }
  }
  rig.engine->commit_queue().set_test_hooks({});
  EXPECT_GE(rig.server->stats().retries, 3u);

  // The shed transaction left no trace; the next one on C commits fine.
  ASSERT_TRUE(c.Apply(Update::Insert(table, "c2")).ok());
  ASSERT_TRUE(c.Commit().ok());
  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", rig.port()).ok());
  auto got = probe.Get(table);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->find("c1"), std::string::npos) << *got;
  EXPECT_NE(got->find("c2"), std::string::npos);
  EXPECT_NE(got->find("a1"), std::string::npos);
  EXPECT_NE(got->find("b1"), std::string::npos);
}

// ----- Graceful drain + reopen -----------------------------------------------

std::string DigestVia(Client* client) {
  std::string out;
  auto tids = client->GetMod(Path::MustParse("T"));
  EXPECT_TRUE(tids.ok());
  for (int64_t t : *tids) out += std::to_string(t) + ",";
  out += "\n";
  for (const char* key : {"k1", "k2", "k3"}) {
    Path row = Path::MustParse("T/data").Child(key);
    auto got = client->Get(row);
    EXPECT_TRUE(got.ok());
    out += *got + "\n";
    auto mods = client->GetMod(row);
    EXPECT_TRUE(mods.ok());
    for (int64_t t : *mods) out += std::to_string(t) + ",";
    out += "\n";
    auto trace = client->TraceBack(row);
    EXPECT_TRUE(trace.ok());
    out += *trace + "\n";
  }
  return out;
}

TEST(NetServerTest, DrainRecoversBitIdenticalStateThroughTheSocket) {
  TempDir dir("net_drain");
  std::string digest_before;
  {
    NetRig rig(dir.path());
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
    Path table = Path::MustParse("T/data");
    for (const char* key : {"k1", "k2", "k3"}) {
      ASSERT_TRUE(client.Apply(Update::Insert(table, key)).ok());
      ASSERT_TRUE(
          client.Apply(Update::Insert(table.Child(key), "f1",
                                      Value(std::string("val-") + key)))
              .ok());
      ASSERT_TRUE(client.Commit().ok());
    }
    // Mutate k2 in a later transaction so the provenance is layered.
    ASSERT_TRUE(
        client.Apply(Update::Delete(Path::MustParse("T/data/k2"), "f1")).ok());
    ASSERT_TRUE(
        client.Apply(Update::Insert(Path::MustParse("T/data/k2"), "f2",
                                    Value("rewritten")))
            .ok());
    ASSERT_TRUE(client.Commit().ok());

    digest_before = DigestVia(&client);

    // DRAIN over the wire (the SIGTERM path calls the same BeginDrain).
    ASSERT_TRUE(client.Drain().ok());
    rig.server->Wait();
    // The drain finished in-flight work, flushed, and checkpointed.
    EXPECT_GT(rig.db->durability()->stats().checkpoints, 0u);
  }
  {
    NetRig rig(dir.path());
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
    EXPECT_EQ(DigestVia(&client), digest_before);
    // And the reopened engine keeps numbering where the drained one
    // stopped: a new commit gets a fresh tid, visible via GetMod.
    ASSERT_TRUE(
        client.Apply(Update::Insert(Path::MustParse("T/data"), "k4")).ok());
    ASSERT_TRUE(client.Commit().ok());
    auto tids = client.GetMod(Path::MustParse("T"));
    ASSERT_TRUE(tids.ok());
    EXPECT_EQ(tids->back(), 5);
  }
}

// ----- Observability over the wire -------------------------------------------

TEST(NetObservabilityTest, MetricsVerbServesPrometheusExposition) {
  NetRig rig;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  Path table = Path::MustParse("T/data");
  ASSERT_TRUE(client.Apply(Update::Insert(table, "m1")).ok());
  ASSERT_TRUE(client.Commit().ok());

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& m = *metrics;
  // The acceptance surface: commit pipeline, cohort distribution, latch
  // waits, snapshot gauges, and per-verb request latency all expose as
  // properly typed series.
  EXPECT_NE(m.find("# TYPE cpdb_commits_total counter\n"), std::string::npos)
      << m;
  EXPECT_NE(m.find("cpdb_commits_total 1\n"), std::string::npos);
  EXPECT_NE(m.find("# TYPE cpdb_commit_stage_us histogram\n"),
            std::string::npos);
  EXPECT_NE(m.find("cpdb_commit_stage_us_count{stage=\"total\"} 1\n"),
            std::string::npos)
      << m;
  EXPECT_NE(m.find("cpdb_commit_cohort_size_count 1\n"), std::string::npos);
  EXPECT_NE(m.find("# TYPE cpdb_latch_excl_wait_us histogram\n"),
            std::string::npos);
  EXPECT_NE(m.find("# TYPE cpdb_versions_live gauge\n"), std::string::npos);
  EXPECT_NE(m.find("cpdb_request_us_bucket{verb=\"COMMIT\",le=\"+Inf\"} 1\n"),
            std::string::npos)
      << m;
  EXPECT_NE(m.find("cpdb_requests_total"), std::string::npos);
  // In-memory rig: the durability series must be ABSENT, not zero.
  EXPECT_EQ(m.find("cpdb_fsyncs_total"), std::string::npos);
  EXPECT_NE(m.find("cpdb_durable 0\n"), std::string::npos);

  // STATS renders from the same registry: a counter visible in the
  // exposition appears under its JSON name with the same value.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"commits\":1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"commit_total_us_count\":1"), std::string::npos)
      << *stats;
}

TEST(NetObservabilityTest, DurableServerExposesWalSeries) {
  TempDir dir("net_metrics_wal");
  NetRig rig(dir.path());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(
      client.Apply(Update::Insert(Path::MustParse("T/data"), "w1")).ok());
  ASSERT_TRUE(client.Commit().ok());

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("# TYPE cpdb_wal_fsync_us histogram\n"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("cpdb_durable 1\n"), std::string::npos);
  // One commit at one thread = exactly one seal = one fsync series point.
  EXPECT_NE(metrics->find("cpdb_fsyncs_total"), std::string::npos);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"fsyncs\":"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"wal_fsync_us_count\":"), std::string::npos);
}

TEST(NetObservabilityTest, SlowCommitLandsInSlowLog) {
  NetRig rig;
  rig.engine->SetSlowCommitThresholdUs(1000);  // 1ms
  service::CommitQueue::TestHooks hooks;
  hooks.before_seal = [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  rig.engine->commit_queue().set_test_hooks(hooks);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(
      client.Apply(Update::Insert(Path::MustParse("T/data"), "slow")).ok());
  ASSERT_TRUE(client.Commit().ok());

  auto slowlog = client.SlowLog();
  ASSERT_TRUE(slowlog.ok()) << slowlog.status().ToString();
  EXPECT_NE(slowlog->find("\"slow_recorded\":1"), std::string::npos)
      << *slowlog;
  EXPECT_NE(slowlog->find("\"tid\":1"), std::string::npos);
  EXPECT_NE(slowlog->find("\"seal_us\":"), std::string::npos);
  // Claims are target-relative (the conflict-check granularity): the
  // write under T/data claims the "data" subtree.
  EXPECT_NE(slowlog->find("\"claims\":[\"data\"]"), std::string::npos)
      << *slowlog;
  // The slow-commit counter rides the metrics surface too.
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("cpdb_slow_commits_total 1\n"), std::string::npos)
      << *metrics;
}

TEST(NetObservabilityTest, HttpMetricsEndpointAnswersScrapers) {
  NetRig rig;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(
      client.Apply(Update::Insert(Path::MustParse("T/data"), "h1")).ok());
  ASSERT_TRUE(client.Commit().ok());

  net::MetricsHttpServer http(&rig.engine->metrics(), "127.0.0.1", 0);
  ASSERT_TRUE(http.Start().ok());
  ASSERT_GT(http.port(), 0);

  auto http_get = [&](const std::string& request) {
    int fd = RawConnect(http.port());
    EXPECT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof buf)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return response;
  };

  std::string ok = http_get("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(ok.find("cpdb_commits_total 1\n"), std::string::npos) << ok;
  EXPECT_NE(ok.find("# TYPE cpdb_commit_stage_us histogram"),
            std::string::npos);

  std::string miss = http_get("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(miss.find("404"), std::string::npos) << miss;
  std::string post = http_get("POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;

  http.Stop();
  // Stop() is idempotent and the port is released for reuse.
  http.Stop();
}

// ----- End-to-end request tracing --------------------------------------------

/// Extracts the integer value of `field` (e.g. "\"rows\":") from the
/// first span object of `kind` inside a TRACES/EXPLAIN JSON dump.
/// Returns -1 when the kind or field is missing.
int64_t SpanField(const std::string& json, const std::string& kind,
                  const std::string& field) {
  size_t at = json.find("\"kind\":\"" + kind + "\"");
  if (at == std::string::npos) return -1;
  at = json.find(field, at);
  if (at == std::string::npos) return -1;
  return std::strtoll(json.c_str() + at + field.size(), nullptr, 10);
}

TEST(NetTracingTest, SampledGetModProducesFullTraceTree) {
  NetRig rig;
  Path table = Path::MustParse("T/data");
  Client writer;
  ASSERT_TRUE(writer.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(writer.Apply(Update::Insert(table, "k1")).ok());
  ASSERT_TRUE(
      writer.Apply(Update::Insert(table.Child("k1"), "f1", Value("v"))).ok());
  ASSERT_TRUE(writer.Commit().ok());

  // A FRESH connection so the traced request also pays (and records)
  // session acquisition: the trace shows server -> session -> query.
  Client traced;
  ASSERT_TRUE(traced.Connect("127.0.0.1", rig.port()).ok());
  traced.set_trace_sampling(1, /*seed=*/42);
  auto tids = traced.GetMod(table.Child("k1"));
  ASSERT_TRUE(tids.ok()) << tids.status().ToString();
  ASSERT_NE(traced.last_trace_id(), 0u);
  EXPECT_GE(rig.engine->spans().recorded(), 1u);

  auto traces = traced.Traces();
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  // The whole tree hangs under the client's trace id...
  EXPECT_NE(traces->find("\"trace_id\":" +
                         std::to_string(traced.last_trace_id())),
            std::string::npos)
      << *traces;
  // ...with the server root and every stage the request went through.
  for (const char* kind :
       {"server.GETMOD", "session.acquire", "session.latch_wait",
        "query.execute"}) {
    EXPECT_NE(traces->find(std::string("\"kind\":\"") + kind + "\""),
              std::string::npos)
        << kind << " missing in " << *traces;
  }
  // The query span is cost-attributed from the session CostModel: the
  // provenance scan fetched at least one row over at least one call.
  EXPECT_GE(SpanField(*traces, "query.execute", "\"rows\":"), 1);
  EXPECT_GE(SpanField(*traces, "query.execute", "\"round_trips\":"), 1);
  // The trace counter rides the metrics surface.
  auto metrics = traced.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("cpdb_traces_recorded_total"), std::string::npos);
}

TEST(NetTracingTest, UnsampledRequestsRecordNothing) {
  NetRig rig;
  Path table = Path::MustParse("T/data");
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(client.Apply(Update::Insert(table, "k1")).ok());
  ASSERT_TRUE(client.Commit().ok());
  ASSERT_TRUE(client.GetMod(table.Child("k1")).ok());
  ASSERT_TRUE(client.Get(table).ok());

  // No sampling armed, no slow threshold: the span store never sees a
  // single span (the null-tracer fast path).
  EXPECT_EQ(client.last_trace_id(), 0u);
  EXPECT_EQ(rig.engine->spans().recorded(), 0u);
  EXPECT_EQ(rig.engine->spans().slow_recorded(), 0u);
  auto traces = client.Traces();
  ASSERT_TRUE(traces.ok());
  EXPECT_NE(traces->find("\"recorded\":0"), std::string::npos) << *traces;
  EXPECT_NE(traces->find("\"traces\":[]"), std::string::npos) << *traces;
}

TEST(NetTracingTest, ExplainMatchesSessionCostModelAcrossStrategies) {
  const provenance::Strategy kStrategies[] = {
      provenance::Strategy::kNaive, provenance::Strategy::kHierarchical,
      provenance::Strategy::kTransactional,
      provenance::Strategy::kHierarchicalTransactional};
  for (provenance::Strategy strategy : kStrategies) {
    SCOPED_TRACE(provenance::StrategyShortName(strategy));
    service::SessionOptions sopts;
    sopts.strategy = strategy;
    NetRig rig("", {}, sopts);
    Path table = Path::MustParse("T/data");
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
    ASSERT_TRUE(client.Apply(Update::Insert(table, "k1")).ok());
    ASSERT_TRUE(
        client.Apply(Update::Insert(table.Child("k1"), "f1", Value("v")))
            .ok());
    ASSERT_TRUE(client.Commit().ok());

    // Measure the SAME query against the SAME committed state through an
    // independent session's CostModel — the EXPLAIN counters must agree.
    uint64_t want_rows = 0, want_calls = 0;
    {
      auto acquired = rig.pool->Acquire();
      ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
      std::unique_ptr<service::Session> s = std::move(*acquired);
      auto guard = s->ReadLock();
      relstore::CostSnapshot before = s->cost().Snap();
      auto mods = s->query()->GetMod(table.Child("k1"));
      ASSERT_TRUE(mods.ok()) << mods.status().ToString();
      relstore::CostSnapshot after = s->cost().Snap();
      want_rows = after.rows - before.rows;
      want_calls = after.calls - before.calls;
    }
    ASSERT_GE(want_calls, 1u);  // the comparison must not be vacuous

    auto explained = client.Explain(net::ReqType::kGetMod, table.Child("k1"));
    ASSERT_TRUE(explained.ok()) << explained.status().ToString();
    EXPECT_NE(explained->find("\"kind\":\"server.EXPLAIN\""),
              std::string::npos)
        << *explained;
    EXPECT_NE(explained->find("\"detail\":\"GETMOD\""), std::string::npos);
    EXPECT_EQ(SpanField(*explained, "query.execute", "\"rows\":"),
              static_cast<int64_t>(want_rows))
        << *explained;
    EXPECT_EQ(SpanField(*explained, "query.execute", "\"round_trips\":"),
              static_cast<int64_t>(want_calls))
        << *explained;
  }
}

TEST(NetTracingTest, SlowQueryLandsInSlowRing) {
  NetRig rig;
  // Sub-microsecond threshold: every query is an offender. The capture
  // must work WITHOUT client-side sampling — that is the whole point of
  // the server-side slow watch.
  rig.engine->SetSlowQueryThresholdUs(0.001);
  Path table = Path::MustParse("T/data");
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(client.Apply(Update::Insert(table, "s1")).ok());
  ASSERT_TRUE(client.Commit().ok());
  ASSERT_TRUE(client.GetMod(table.Child("s1")).ok());

  EXPECT_GE(rig.engine->spans().slow_recorded(), 1u);
  // Slow-only capture: nothing was sampled, so the recent rings (and the
  // sampled-trace counter) stay empty.
  EXPECT_EQ(rig.engine->spans().recorded(), 0u);
  auto traces = client.Traces();
  ASSERT_TRUE(traces.ok());
  EXPECT_NE(traces->find("\"slow_threshold_us\":"), std::string::npos);
  size_t slow_at = traces->find("\"slow\":[{");
  ASSERT_NE(slow_at, std::string::npos) << *traces;
  EXPECT_NE(traces->find("\"kind\":\"server.GETMOD\"", slow_at),
            std::string::npos)
      << *traces;
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("cpdb_slow_queries_total"), std::string::npos);
}

TEST(NetTracingTest, SampledCommitLinksQueueStageSpans) {
  NetRig rig;
  Path table = Path::MustParse("T/data");
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  client.set_trace_sampling(1, /*seed=*/7);
  ASSERT_TRUE(client.Apply(Update::Insert(table, "c1")).ok());
  ASSERT_TRUE(client.Commit().ok());
  ASSERT_NE(client.last_trace_id(), 0u);

  auto traces = client.Traces();
  ASSERT_TRUE(traces.ok());
  // The commit trace carries its path through the group-commit pipeline:
  // the session re-bases the queue's stage timeline into the trace.
  for (const char* kind :
       {"server.COMMIT", "commit.execute", "commit.queue", "commit.apply",
        "commit.seal", "commit.wake"}) {
    EXPECT_NE(traces->find(std::string("\"kind\":\"") + kind + "\""),
              std::string::npos)
        << kind << " missing in " << *traces;
  }
  // Stage spans carry the committed tid for SLOWLOG cross-reference.
  EXPECT_EQ(SpanField(*traces, "commit.queue", "\"tid\":"), 1);
}

// ----- Client retry/backoff --------------------------------------------------

TEST(NetRetryTest, BackoffIsCappedJitteredAndDeterministic) {
  net::RetryPolicy policy;
  policy.base_backoff_ms = 2;
  policy.max_backoff_ms = 250;
  policy.jitter_seed = 99;
  for (size_t attempt = 1; attempt <= 12; ++attempt) {
    uint64_t base = policy.base_backoff_ms;
    for (size_t i = 1; i < attempt && base < policy.max_backoff_ms; ++i) {
      base *= 2;
    }
    if (base > policy.max_backoff_ms) base = policy.max_backoff_ms;
    const uint64_t ms = net::RetryBackoffMs(policy, attempt, /*salt=*/5);
    // Within +/-25% of the capped exponential...
    EXPECT_GE(ms, base - base / 4) << "attempt " << attempt;
    EXPECT_LE(ms, base + base / 4) << "attempt " << attempt;
    // ...and reproducible: the jitter is a hash, not a clock.
    EXPECT_EQ(ms, net::RetryBackoffMs(policy, attempt, 5));
  }
  // Different connections (seeds) must not back off in lockstep forever.
  net::RetryPolicy other = policy;
  other.jitter_seed = 100;
  bool differs = false;
  for (size_t attempt = 5; attempt <= 12 && !differs; ++attempt) {
    differs = net::RetryBackoffMs(other, attempt, 5) !=
              net::RetryBackoffMs(policy, attempt, 5);
  }
  EXPECT_TRUE(differs);
}

TEST(NetRetryTest, CallRetryingGivesUpAfterMaxAttemptsOnShed) {
  ServerOptions opts;
  opts.max_queue_depth = 0;  // any waiting committer triggers shedding
  NetRig rig("", opts);
  Path table = Path::MustParse("T/data");

  Client a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(c.Connect("127.0.0.1", rig.port()).ok());
  // Lease A's and B's sessions before stalling the leader (building one
  // later would park the worker behind the stalled exclusive holder).
  for (Client* warm : {&a, &b}) {
    ASSERT_TRUE(warm->Apply(Update::Insert(table, "warm")).ok());
    ASSERT_TRUE(warm->Abort().ok());
  }

  Mutex mu;
  CondVar cv;
  bool release = false;
  service::CommitQueue::TestHooks hooks;
  hooks.before_seal = [&](size_t) {
    MutexLock l(mu);
    while (!release) cv.Wait(mu);
  };
  rig.engine->commit_queue().set_test_hooks(hooks);
  struct Releaser {
    Mutex* mu;
    CondVar* cv;
    bool* release;
    ~Releaser() {
      MutexLock l(*mu);
      *release = true;
      cv->NotifyAll();
    }
  } releaser{&mu, &cv, &release};

  // A commits and stalls as the leader; B enqueues behind it, keeping
  // the queue over its (zero) bound for as long as we hold the stall, so
  // C's transaction is shed on every attempt — CallRetrying must bound
  // the loop and return the RETRY.
  ASSERT_TRUE(a.Send(Request::Apply(Update::Insert(table, "a1"))).ok());
  ASSERT_TRUE(a.Send(Request::Commit()).ok());
  ASSERT_TRUE(b.Send(Request::Apply(Update::Insert(table, "b1"))).ok());
  ASSERT_TRUE(b.Send(Request::Commit()).ok());
  for (int i = 0; i < 500 && rig.engine->CommitQueueDepth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(rig.engine->CommitQueueDepth(), 0u);

  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  size_t retries = 0;
  auto resp = c.CallRetrying(Request::Apply(Update::Insert(table, "c1")),
                             policy, &retries);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, RespCode::kRetry) << resp->body;
  EXPECT_EQ(retries, policy.max_attempts - 1);

  {
    MutexLock l(mu);
    release = true;
    cv.NotifyAll();
  }
  for (Client* stalled : {&a, &b}) {
    for (int i = 0; i < 2; ++i) {
      auto done = stalled->Recv();
      ASSERT_TRUE(done.ok());
      EXPECT_EQ(done->code, RespCode::kOk) << done->body;
    }
  }
  rig.engine->commit_queue().set_test_hooks({});

  // The shed transaction is gone transaction-atomically: after COMMIT
  // clears the shed state, C retries the WHOLE pipeline and lands it —
  // the retry unit the load driver uses.
  auto commit = c.Call(Request::Commit());
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->code, RespCode::kRetry);  // the shed txn's COMMIT
  ASSERT_TRUE(c.Apply(Update::Insert(table, "c1")).ok());
  ASSERT_TRUE(c.Commit().ok());
  auto got = c.Get(table.Child("c1"));
  ASSERT_TRUE(got.ok());
}

TEST(NetRetryTest, CallRetryingReconnectsAcrossServerRestart) {
  Client client;
  int port;
  {
    auto rig = std::make_unique<NetRig>();
    port = rig->port();
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    ASSERT_TRUE(client.Ping().ok());
  }  // server (and the client's transport) torn down here

  ServerOptions opts;
  opts.port = port;  // SO_REUSEADDR: the revived server takes the port
  NetRig revived("", opts);
  net::RetryPolicy policy;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  size_t retries = 0;
  auto resp = client.CallRetrying(Request::Ping(), policy, &retries);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, RespCode::kOk);
  EXPECT_GE(retries, 1u);
  // The re-dialed transport is fully usable, not just for the ping.
  ASSERT_TRUE(
      client.Apply(Update::Insert(Path::MustParse("T/data"), "r1")).ok());
  ASSERT_TRUE(client.Commit().ok());
}

TEST(NetServerTest, DrainingServerRejectsNewWork) {
  NetRig rig;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  rig.server->BeginDrain();
  rig.server->Wait();
  // The drained server closed its listener and every connection.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", rig.port()).ok() &&
               late.Ping().ok());
}

}  // namespace
}  // namespace cpdb
