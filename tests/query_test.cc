// Provenance queries (Section 2.2) on the paper's worked example, for all
// four storage strategies — answers must agree across strategies.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::Strategy;
using testutil::MakeFigureSession;
using tree::Path;

constexpr Strategy kAll[] = {Strategy::kNaive, Strategy::kTransactional,
                             Strategy::kHierarchical,
                             Strategy::kHierarchicalTransactional};

std::unique_ptr<testutil::Session> RunFigure3Session(Strategy strategy) {
  auto s = MakeFigureSession(strategy);
  EXPECT_NE(s, nullptr);
  Status st = s->editor->ApplyScriptText(testutil::Figure3ScriptText());
  EXPECT_TRUE(st.ok()) << st;
  st = s->editor->Commit();
  EXPECT_TRUE(st.ok()) << st;
  return s;
}

TEST(QueryTest, GetSrcFindsLocalInsert) {
  for (Strategy strat : kAll) {
    auto s = RunFigure3Session(strat);
    // T/c4/y was inserted by operation (10).
    auto src = s->editor->query()->GetSrc(Path::MustParse("T/c4/y"));
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(src->has_value()) << provenance::StrategyName(strat);
    // Per-op strategies: tid 130; transactional: the single txn 121.
    int64_t expect = (strat == Strategy::kNaive ||
                      strat == Strategy::kHierarchical)
                         ? 130
                         : 121;
    EXPECT_EQ(**src, expect) << provenance::StrategyName(strat);
  }
}

TEST(QueryTest, GetSrcIsUnknownForExternalData) {
  // "the Src query cannot tell us anything about data that was copied
  // from elsewhere" — T/c2 came from S1/a2.
  for (Strategy strat : kAll) {
    auto s = RunFigure3Session(strat);
    auto trace = s->editor->query()->TraceBack(Path::MustParse("T/c2"));
    ASSERT_TRUE(trace.ok());
    EXPECT_FALSE(trace->origin_tid.has_value());
    ASSERT_TRUE(trace->external_src.has_value());
    EXPECT_EQ(trace->external_src->ToString(), "S1/a2");
  }
}

TEST(QueryTest, GetHistListsCopyTransactions) {
  for (Strategy strat : kAll) {
    auto s = RunFigure3Session(strat);
    auto hist = s->editor->query()->GetHist(Path::MustParse("T/c2/y"));
    ASSERT_TRUE(hist.ok());
    ASSERT_EQ(hist->size(), 1u) << provenance::StrategyName(strat);
    int64_t expect = (strat == Strategy::kNaive ||
                      strat == Strategy::kHierarchical)
                         ? 126
                         : 121;
    EXPECT_EQ((*hist)[0], expect);
  }
}

TEST(QueryTest, HierarchicalInfersChildProvenance) {
  // T/c3/x has no explicit record in the hierarchical store; its
  // provenance is inferred from C T/c3 <- S1/a3 (closest ancestor).
  auto s = RunFigure3Session(Strategy::kHierarchical);
  auto trace = s->editor->query()->TraceBack(Path::MustParse("T/c3/x"));
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->external_src.has_value());
  EXPECT_EQ(trace->external_src->ToString(), "S1/a3/x");
  EXPECT_EQ(trace->external_tid, 127);
}

TEST(QueryTest, ExplicitChildOverridesAncestor) {
  // T/c2/y was copied from S2/b3/y AFTER T/c2 came from S1/a2; the
  // closest-ancestor rule must not misattribute it to S1/a2/y.
  for (Strategy strat : {Strategy::kHierarchical,
                         Strategy::kHierarchicalTransactional}) {
    auto s = RunFigure3Session(strat);
    auto trace = s->editor->query()->TraceBack(Path::MustParse("T/c2/y"));
    ASSERT_TRUE(trace.ok());
    ASSERT_TRUE(trace->external_src.has_value());
    EXPECT_EQ(trace->external_src->ToString(), "S2/b3/y")
        << provenance::StrategyName(strat);
  }
}

TEST(QueryTest, GetModPerOpStrategies) {
  // Transactions modifying the subtree under T/c2: ops (3)..(6).
  for (Strategy strat : {Strategy::kNaive, Strategy::kHierarchical}) {
    auto s = RunFigure3Session(strat);
    auto versions = s->editor->archive()->MakeVersionFn();
    auto mod = s->editor->query()->GetMod(Path::MustParse("T/c2"), versions);
    ASSERT_TRUE(mod.ok());
    EXPECT_EQ(*mod, (std::vector<int64_t>{123, 124, 125, 126}))
        << provenance::StrategyName(strat);
  }
}

TEST(QueryTest, GetModWholeTargetSeesAllTransactions) {
  for (Strategy strat : {Strategy::kNaive, Strategy::kHierarchical}) {
    auto s = RunFigure3Session(strat);
    auto versions = s->editor->archive()->MakeVersionFn();
    auto mod = s->editor->query()->GetMod(Path::MustParse("T"), versions);
    ASSERT_TRUE(mod.ok());
    EXPECT_EQ(mod->size(), 10u) << provenance::StrategyName(strat);
    EXPECT_EQ(mod->front(), 121);
    EXPECT_EQ(mod->back(), 130);
  }
}

TEST(QueryTest, GetModAgreesBetweenNaiveAndHierarchical) {
  auto sn = RunFigure3Session(Strategy::kNaive);
  auto sh = RunFigure3Session(Strategy::kHierarchical);
  auto vn = sn->editor->archive()->MakeVersionFn();
  auto vh = sh->editor->archive()->MakeVersionFn();
  for (const char* loc : {"T", "T/c1", "T/c1/y", "T/c2", "T/c2/x", "T/c2/y",
                          "T/c3", "T/c3/x", "T/c4", "T/c4/y", "T/c5"}) {
    auto mn = sn->editor->query()->GetMod(Path::MustParse(loc), vn);
    auto mh = sh->editor->query()->GetMod(Path::MustParse(loc), vh);
    ASSERT_TRUE(mn.ok());
    ASSERT_TRUE(mh.ok());
    EXPECT_EQ(*mn, *mh) << loc;
  }
}

TEST(QueryTest, UnchangedDataTracesToOldestVersion) {
  // T/c1/x was never touched: no origin, no external source, no steps.
  auto s = RunFigure3Session(Strategy::kNaive);
  auto trace = s->editor->query()->TraceBack(Path::MustParse("T/c1/x"));
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->steps.empty());
  EXPECT_FALSE(trace->origin_tid.has_value());
  EXPECT_FALSE(trace->external_src.has_value());
}

TEST(QueryTest, MultiHopTraceWithinTarget) {
  // Extend the session: copy T/c3 (which came from S1/a3) to T/c6, then
  // trace T/c6/x back through both hops.
  auto s = RunFigure3Session(Strategy::kNaive);
  ASSERT_TRUE(s->editor
                  ->CopyPaste(Path::MustParse("T/c3"),
                              Path::MustParse("T/c6"))
                  .ok());
  ASSERT_TRUE(s->editor->Commit().ok());
  auto trace = s->editor->query()->TraceBack(Path::MustParse("T/c6/x"));
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->external_src.has_value());
  EXPECT_EQ(trace->external_src->ToString(), "S1/a3/x");
  // Two copy hops: T/c6/x <- T/c3/x (tid 131) <- S1/a3/x (tid 127).
  ASSERT_EQ(trace->steps.size(), 2u);
  EXPECT_EQ(trace->steps[0].tid, 131);
  EXPECT_EQ(trace->steps[0].src.ToString(), "T/c3/x");
  EXPECT_EQ(trace->steps[1].tid, 127);
}

TEST(QueryTest, GetModRoundTripsAreDepthBoundNotDescendantBound) {
  // Acceptance check for the cursor redesign: getMod on a hierarchical
  // store is ONE subtree scan plus ONE batched ancestor statement —
  // O(depth + 1) backend round trips — where the per-descendant path paid
  // one trip per descendant location.
  for (Strategy strat : {Strategy::kHierarchical,
                         Strategy::kHierarchicalTransactional}) {
    auto s = RunFigure3Session(strat);
    for (const char* loc : {"T", "T/c2", "T/c2/y", "T/c3/x"}) {
      tree::Path p = Path::MustParse(loc);
      relstore::CostSnapshot before = s->prov_db->cost().Snap();
      auto mod = s->editor->query()->GetMod(p);
      relstore::CostSnapshot after = s->prov_db->cost().Snap();
      ASSERT_TRUE(mod.ok());
      // All of Figure 3's records fit one batch: the subtree scan is one
      // trip and the ancestor batch (present only at depth > 2) one more.
      size_t ancestor_trips = p.Depth() > 2 ? 1u : 0u;
      EXPECT_EQ(after.calls - before.calls, 1u + ancestor_trips)
          << provenance::StrategyName(strat) << " " << loc;
    }
  }
  // Flat strategies never pay the ancestor statement at all.
  auto s = RunFigure3Session(Strategy::kNaive);
  relstore::CostSnapshot before = s->prov_db->cost().Snap();
  ASSERT_TRUE(s->editor->query()->GetMod(Path::MustParse("T")).ok());
  EXPECT_EQ(s->prov_db->cost().Snap().calls - before.calls, 1u);
}

TEST(QueryTest, QueriesChargeTheCostModel) {
  auto s = RunFigure3Session(Strategy::kNaive);
  double before = s->prov_db->cost().ElapsedMicros();
  ASSERT_TRUE(s->editor->query()->GetSrc(Path::MustParse("T/c4/y")).ok());
  EXPECT_GT(s->prov_db->cost().ElapsedMicros(), before);
}

TEST(QueryTest, UnindexedQueriesCostMoreThanIndexed) {
  auto indexed = RunFigure3Session(Strategy::kNaive);
  auto scans = RunFigure3Session(Strategy::kNaive);
  scans->backend->set_use_indexes(false);
  double i0 = indexed->prov_db->cost().ElapsedMicros();
  double s0 = scans->prov_db->cost().ElapsedMicros();
  ASSERT_TRUE(
      indexed->editor->query()->GetMod(Path::MustParse("T/c2")).ok());
  ASSERT_TRUE(scans->editor->query()->GetMod(Path::MustParse("T/c2")).ok());
  double di = indexed->prov_db->cost().ElapsedMicros() - i0;
  double ds = scans->prov_db->cost().ElapsedMicros() - s0;
  EXPECT_GT(ds, di);
}

}  // namespace
}  // namespace cpdb
