// MUST COMPILE cleanly under -Wthread-safety -Werror=thread-safety:
// the canonical patterns — MutexLock over guarded fields, explicit
// while-loop condition waits, and RAII latch grants returned by value.

#include "service/latch.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Queue {
  cpdb::Mutex mu;
  cpdb::CondVar nonempty;
  int depth CPDB_GUARDED_BY(mu) = 0;

  void Push() {
    cpdb::MutexLock l(mu);
    ++depth;
    nonempty.NotifyOne();
  }

  void Pop() {
    cpdb::MutexLock l(mu);
    // Condition re-checked in an explicit loop: the analysis sees the
    // guarded read, unlike a predicate lambda handed to a wait().
    while (depth == 0) nonempty.Wait(mu);
    --depth;
  }
};

int ReadUnderGrant(cpdb::service::SharedLatch& latch, const int& shared) {
  cpdb::service::SharedLatch::ReadGuard g(latch);
  return shared;
}

void WriteUnderGrant(cpdb::service::SharedLatch& latch, int& shared) {
  cpdb::service::SharedLatch::WriteGuard g(latch);
  shared = 1;
}

}  // namespace

void Use(cpdb::service::SharedLatch& latch) {
  Queue q;
  q.Push();
  q.Pop();
  int x = 0;
  WriteUnderGrant(latch, x);
  (void)ReadUnderGrant(latch, x);
}
