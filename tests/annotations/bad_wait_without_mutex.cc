// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety:
// waits on a CondVar without holding the mutex it is specified over
// (CondVar::Wait REQUIRES the mutex; calling it unlocked is UB in the
// underlying std::condition_variable too).
// expect-diagnostic: requires

#include "util/mutex.h"

void WaitUnlocked(cpdb::Mutex& mu, cpdb::CondVar& cv) {
  cv.Wait(mu);  // error: requires holding mu
}
