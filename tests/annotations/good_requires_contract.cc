// MUST COMPILE cleanly under -Wthread-safety -Werror=thread-safety:
// REQUIRES propagates the caller's lock into a helper, the pattern
// CommitQueue::RunCohort uses (the public entry locks, the private
// helper states its precondition instead of re-locking).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Stats {
 public:
  void Record(int v) CPDB_EXCLUDES(mu_) {
    cpdb::MutexLock l(mu_);
    RecordLocked(v);
  }

  int Total() const CPDB_EXCLUDES(mu_) {
    cpdb::MutexLock l(mu_);
    return total_;
  }

 private:
  void RecordLocked(int v) CPDB_REQUIRES(mu_) { total_ += v; }

  mutable cpdb::Mutex mu_;
  int total_ CPDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int Use() {
  Stats s;
  s.Record(3);
  return s.Total();
}
