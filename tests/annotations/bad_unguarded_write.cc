// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety:
// writes a CPDB_GUARDED_BY field without holding its mutex.
// expect-diagnostic: guarded_by

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  cpdb::Mutex mu;
  int n CPDB_GUARDED_BY(mu) = 0;

  void Bump() { ++n; }  // error: requires mu
};

}  // namespace

void Use() {
  Counter c;
  c.Bump();
}
