// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety:
// releases the exclusive grant without holding it — the double-unlock
// shape that would let a second committer into the cohort's critical
// section.
// expect-diagnostic: releasing

#include "service/latch.h"

void StrayUnlock(cpdb::service::SharedLatch& latch) {
  latch.UnlockExclusive();  // error: releasing a capability not held
}
