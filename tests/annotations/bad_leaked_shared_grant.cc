// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety:
// acquires a shared grant on the engine latch and returns without
// releasing it — the leaked-reader bug that starves every committer
// (the latch is writer-preferring, so one leaked grant wedges commits).
// expect-diagnostic: still held

#include "service/latch.h"

void LeakReader(cpdb::service::SharedLatch& latch) {
  latch.LockShared();
  // error: latch is still held at the end of the function
}
