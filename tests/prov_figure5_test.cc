// Golden tests: running the paper's Figure 3 update operation must
// reproduce the provenance tables of Figure 5(a)-(d) exactly, and the
// final target tree of Figure 4.

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvRecord;
using provenance::Strategy;
using testutil::MakeFigureSession;
using testutil::Rec;

std::vector<ProvRecord> RunFigure3(Strategy strategy, bool one_txn) {
  auto s = MakeFigureSession(strategy);
  EXPECT_NE(s, nullptr);
  Status st = s->editor->ApplyScriptText(testutil::Figure3ScriptText());
  EXPECT_TRUE(st.ok()) << st;
  if (one_txn) {
    st = s->editor->Commit();
    EXPECT_TRUE(st.ok()) << st;
  }
  auto records = s->editor->store()->backend()->GetAll();
  EXPECT_TRUE(records.ok());
  auto out = std::move(records).value();
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectTable(const std::vector<ProvRecord>& actual,
                 std::vector<ProvRecord> expected) {
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(actual.size(), expected.size())
      << "actual table:\n"
      << provenance::RecordsToTable(actual);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i])
        << "row " << i << ": got " << actual[i].ToString() << ", want "
        << expected[i].ToString();
  }
}

TEST(Figure5, NaiveTableA) {
  // Figure 5(a): one transaction per operation, one record per node.
  auto actual = RunFigure3(Strategy::kNaive, /*one_txn=*/false);
  ExpectTable(actual, {
      Rec(121, 'D', "T/c5"),
      Rec(121, 'D', "T/c5/x"),
      Rec(121, 'D', "T/c5/y"),
      Rec(122, 'C', "T/c1/y", "S1/a1/y"),
      Rec(123, 'I', "T/c2"),
      Rec(124, 'C', "T/c2", "S1/a2"),
      Rec(124, 'C', "T/c2/x", "S1/a2/x"),
      Rec(125, 'I', "T/c2/y"),
      Rec(126, 'C', "T/c2/y", "S2/b3/y"),
      Rec(127, 'C', "T/c3", "S1/a3"),
      Rec(127, 'C', "T/c3/x", "S1/a3/x"),
      Rec(127, 'C', "T/c3/y", "S1/a3/y"),
      Rec(128, 'I', "T/c4"),
      Rec(129, 'C', "T/c4", "S2/b2"),
      Rec(129, 'C', "T/c4/x", "S2/b2/x"),
      Rec(130, 'I', "T/c4/y"),
  });
}

TEST(Figure5, TransactionalTableB) {
  // Figure 5(b): the entire update as one transaction; only net changes.
  auto actual = RunFigure3(Strategy::kTransactional, /*one_txn=*/true);
  ExpectTable(actual, {
      Rec(121, 'D', "T/c5"),
      Rec(121, 'D', "T/c5/x"),
      Rec(121, 'D', "T/c5/y"),
      Rec(121, 'C', "T/c1/y", "S1/a1/y"),
      Rec(121, 'C', "T/c2", "S1/a2"),
      Rec(121, 'C', "T/c2/x", "S1/a2/x"),
      Rec(121, 'C', "T/c2/y", "S2/b3/y"),
      Rec(121, 'C', "T/c3", "S1/a3"),
      Rec(121, 'C', "T/c3/x", "S1/a3/x"),
      Rec(121, 'C', "T/c3/y", "S1/a3/y"),
      Rec(121, 'C', "T/c4", "S2/b2"),
      Rec(121, 'C', "T/c4/x", "S2/b2/x"),
      Rec(121, 'I', "T/c4/y"),
  });
}

TEST(Figure5, HierarchicalTableC) {
  // Figure 5(c): one record per operation; children inferred.
  auto actual = RunFigure3(Strategy::kHierarchical, /*one_txn=*/false);
  ExpectTable(actual, {
      Rec(121, 'D', "T/c5"),
      Rec(122, 'C', "T/c1/y", "S1/a1/y"),
      Rec(123, 'I', "T/c2"),
      Rec(124, 'C', "T/c2", "S1/a2"),
      Rec(125, 'I', "T/c2/y"),
      Rec(126, 'C', "T/c2/y", "S2/b3/y"),
      Rec(127, 'C', "T/c3", "S1/a3"),
      Rec(128, 'I', "T/c4"),
      Rec(129, 'C', "T/c4", "S2/b2"),
      Rec(130, 'I', "T/c4/y"),
  });
}

TEST(Figure5, HierarchicalTransactionalTableD) {
  // Figure 5(d): hierarchical + net effect; 7 records.
  auto actual =
      RunFigure3(Strategy::kHierarchicalTransactional, /*one_txn=*/true);
  ExpectTable(actual, {
      Rec(121, 'D', "T/c5"),
      Rec(121, 'C', "T/c1/y", "S1/a1/y"),
      Rec(121, 'C', "T/c2", "S1/a2"),
      Rec(121, 'C', "T/c2/y", "S2/b3/y"),
      Rec(121, 'C', "T/c3", "S1/a3"),
      Rec(121, 'C', "T/c4", "S2/b2"),
      Rec(121, 'I', "T/c4/y"),
  });
}

TEST(Figure4, FinalTargetTree) {
  // Executing Figure 3 yields the T' of Figure 4: c5 gone, c1/y updated,
  // c2/c3/c4 assembled from the sources.
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());

  auto expected = tree::ParseTree(
      "{c1: {x: 1, y: 3},"
      " c2: {x: 3, y: 5},"
      " c3: {x: 7, y: 6},"
      " c4: {x: 4, y: 12}}");
  ASSERT_TRUE(expected.ok());
  const tree::Tree* t_final = s->editor->TargetView();
  ASSERT_NE(t_final, nullptr);
  EXPECT_TRUE(t_final->Equals(expected.value()))
      << "got " << t_final->ToString();
}

TEST(Figure4, NativeTargetStaysInSync) {
  // The native Timber-substitute must mirror the universe after each
  // per-op commit (N) and after the commit (HT).
  for (Strategy strat : {Strategy::kNaive,
                         Strategy::kHierarchicalTransactional}) {
    auto s = MakeFigureSession(strat);
    ASSERT_NE(s, nullptr);
    ASSERT_TRUE(
        s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());
    ASSERT_TRUE(s->editor->Commit().ok());
    EXPECT_TRUE(s->target->content().Equals(*s->editor->TargetView()))
        << "strategy " << provenance::StrategyName(strat);
  }
}

TEST(Figure5, StorageCountsMatchPaperDiscussion) {
  // "the reduced table is about 25% smaller than Prov" — 10 vs 16 rows
  // hierarchical vs naive on this example; HT stores i + d + C = 7.
  auto n = RunFigure3(Strategy::kNaive, false);
  auto h = RunFigure3(Strategy::kHierarchical, false);
  auto t = RunFigure3(Strategy::kTransactional, true);
  auto ht = RunFigure3(Strategy::kHierarchicalTransactional, true);
  EXPECT_EQ(n.size(), 16u);
  EXPECT_EQ(h.size(), 10u);
  EXPECT_EQ(t.size(), 13u);
  EXPECT_EQ(ht.size(), 7u);
}

TEST(Figure5, HierarchicalExpandsToNaive) {
  // Expanding Figure 5(c) through the inference rules yields exactly
  // Figure 5(a) (Section 2.1.3's recursive view).
  auto s = MakeFigureSession(Strategy::kHierarchical);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());
  auto hier = s->editor->store()->backend()->GetAll();
  ASSERT_TRUE(hier.ok());
  auto versions = s->editor->archive()->MakeVersionFn();
  auto expanded = provenance::ExpandToFull(hier.value(), versions);
  ASSERT_TRUE(expanded.ok()) << expanded.status();

  auto naive = RunFigure3(Strategy::kNaive, false);
  ExpectTable(expanded.value(), naive);
}

}  // namespace
}  // namespace cpdb
