#pragma once

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>

#include "cpdb/cpdb.h"

namespace cpdb::testutil {

/// Self-cleaning scratch directory for durability/recovery tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("cpdb_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The source and target trees of the paper's Figure 4 (leaf values are
/// chosen to be pairwise distinguishable; the provenance tables of
/// Figure 5 depend only on the shape, which is reproduced exactly:
/// a2 and b2 have a single child x; a1, a3, b1, b3 have children x, y;
/// T starts with c1{x,y} and c5{x,y}).
inline tree::Tree Figure4Universe() {
  auto parsed = tree::ParseTree(
      "{S1: {a1: {x: 1, y: 3}, a2: {x: 3}, a3: {x: 7, y: 6}},"
      " S2: {b1: {x: 1, y: 2}, b2: {x: 4}, b3: {x: 2, y: 5}},"
      " T:  {c1: {x: 1, y: 2}, c5: {x: 9, y: 7}}}");
  return std::move(parsed).value();
}

inline tree::Tree Figure4SourceS1() {
  tree::Tree u = Figure4Universe();
  auto child = u.TakeChild("S1");
  return std::move(child).value();
}

inline tree::Tree Figure4SourceS2() {
  tree::Tree u = Figure4Universe();
  auto child = u.TakeChild("S2");
  return std::move(child).value();
}

inline tree::Tree Figure4TargetT() {
  tree::Tree u = Figure4Universe();
  auto child = u.TakeChild("T");
  return std::move(child).value();
}

/// The update operation of the paper's Figure 3, verbatim.
inline const char* Figure3ScriptText() {
  return "(1) delete c5 from T;\n"
         "(2) copy S1/a1/y into T/c1/y;\n"
         "(3) insert {c2 : {}} into T;\n"
         "(4) copy S1/a2 into T/c2;\n"
         "(5) insert {y : {}} into T/c2;\n"
         "(6) copy S2/b3/y into T/c2/y;\n"
         "(7) copy S1/a3 into T/c3;\n"
         "(8) insert {c4 : {}} into T;\n"
         "(9) copy S2/b2 into T/c4;\n"
         "(10) insert {y : 12} into T/c4;\n";
}

/// A full editing session with owned substrates.
struct Session {
  std::unique_ptr<relstore::Database> prov_db;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::TreeTargetDb> target;
  std::unique_ptr<wrap::TreeSourceDb> s1;
  std::unique_ptr<wrap::TreeSourceDb> s2;
  std::unique_ptr<Editor> editor;
};

/// Builds a session over the Figure 4 data with the given strategy.
/// Transaction numbering starts at 121 as in Figure 5.
inline std::unique_ptr<Session> MakeFigureSession(
    provenance::Strategy strategy, int64_t first_tid = 121,
    bool enable_archive = true) {
  auto s = std::make_unique<Session>();
  s->prov_db = std::make_unique<relstore::Database>("provdb");
  s->backend = std::make_unique<provenance::ProvBackend>(s->prov_db.get());
  s->target = std::make_unique<wrap::TreeTargetDb>("T", Figure4TargetT());
  s->s1 = std::make_unique<wrap::TreeSourceDb>("S1", Figure4SourceS1());
  s->s2 = std::make_unique<wrap::TreeSourceDb>("S2", Figure4SourceS2());
  EditorOptions opts;
  opts.strategy = strategy;
  opts.first_tid = first_tid;
  opts.enable_archive = enable_archive;
  auto editor = Editor::Create(s->target.get(), s->backend.get(), opts);
  s->editor = std::move(editor).value();
  auto st = s->editor->MountSource(s->s1.get());
  if (!st.ok()) return nullptr;
  st = s->editor->MountSource(s->s2.get());
  if (!st.ok()) return nullptr;
  return s;
}

/// Shorthand provenance record constructor for expected tables.
inline provenance::ProvRecord Rec(int64_t tid, char op,
                                  const std::string& loc,
                                  const std::string& src = "") {
  provenance::ProvRecord r;
  r.tid = tid;
  r.op = *provenance::ProvOpFromChar(op);
  r.loc = tree::Path::MustParse(loc);
  if (!src.empty()) r.src = tree::Path::MustParse(src);
  return r;
}

/// Runs `steps` operations of a random workload through the session's
/// editor, committing every `txn_len` operations. Returns the number of
/// operations actually applied.
inline size_t RunRandomWorkload(Session* s, workload::GenOptions gen_opts,
                                size_t steps, size_t txn_len) {
  workload::UpdateGenerator gen(&s->editor->universe(), gen_opts);
  size_t applied = 0;
  for (size_t i = 0; i < steps; ++i) {
    bool skipped = false;
    auto u = gen.Next(&skipped);
    if (!u.has_value()) {
      if (skipped) continue;
      break;
    }
    update::ApplyEffect effect;
    // Re-derive the effect by asking the editor to apply; the editor does
    // its own tracking, so we recompute the effect for the generator from
    // a pre-application dry run of Apply on a probe of the tree state.
    Status st = s->editor->ApplyUpdate(*u);
    if (!st.ok()) continue;
    // Reconstruct a minimal effect for pool maintenance.
    if (u->kind == update::OpKind::kInsert) {
      effect.inserted.push_back(u->AffectedPath());
    } else if (u->kind == update::OpKind::kCopy) {
      const tree::Tree* pasted = s->editor->universe().Find(u->target);
      if (pasted != nullptr) {
        pasted->Visit([&](const tree::Path& rel, const tree::Tree&) {
          effect.copied.emplace_back(u->target.Concat(rel),
                                     u->source.Concat(rel));
        });
      }
    }
    gen.OnApplied(*u, effect);
    ++applied;
    if (txn_len > 0 && applied % txn_len == 0) {
      (void)s->editor->Commit();
    }
  }
  (void)s->editor->Commit();
  return applied;
}

}  // namespace cpdb::testutil
