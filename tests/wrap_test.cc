#include <gtest/gtest.h>

#include "cpdb/cpdb.h"

namespace cpdb::wrap {
namespace {

using relstore::ColumnType;
using relstore::Datum;
using tree::Path;

relstore::Database MakeSourceDb() {
  relstore::Database db("organelledb");
  auto table = workload::FillOrganelleRelational(&db, 5, 3);
  EXPECT_TRUE(table.ok());
  return db;
}

TEST(TreeSourceDbTest, CopyNodeExportsSubtree) {
  auto content = tree::ParseTree("{a1: {x: 1, y: {z: 2}}}");
  TreeSourceDb src("S1", std::move(content).value());
  auto nodes = src.CopyNode(Path::MustParse("a1"));
  ASSERT_TRUE(nodes.ok());
  // Preorder, root first: a1, a1/x, a1/y, a1/y/z.
  ASSERT_EQ(nodes->size(), 4u);
  EXPECT_EQ((*nodes)[0].path.ToString(), "a1");
  EXPECT_FALSE((*nodes)[0].value.has_value());
  EXPECT_EQ((*nodes)[1].path.ToString(), "a1/x");
  EXPECT_EQ((*nodes)[1].value->AsInt(), 1);
  EXPECT_EQ((*nodes)[3].path.ToString(), "a1/y/z");
  // A leaf yields a single-element list (Figure 6).
  auto leaf = src.CopyNode(Path::MustParse("a1/x"));
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->size(), 1u);
  EXPECT_TRUE(src.CopyNode(Path::MustParse("zz")).status().IsNotFound());
}

TEST(RelationalSourceDbTest, KeyedViewUsesFourLevelPaths) {
  relstore::Database db = MakeSourceDb();
  RelationalSourceDb src("S1", &db, {"organelle"});
  auto view = src.TreeFromDb();
  ASSERT_TRUE(view.ok());
  // DB/R/tid/F addressing: organelle table, tuple o1, field organelle.
  const tree::Tree* field =
      view->Find(Path::MustParse("organelle/o1/organelle"));
  ASSERT_NE(field, nullptr);
  EXPECT_TRUE(field->HasValue());
  // All five tuples exposed, each with three non-key fields.
  const tree::Tree* rel = view->Find(Path::MustParse("organelle"));
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->ChildCount(), 5u);
  EXPECT_EQ(rel->GetChild("o1")->ChildCount(), 3u);
}

TEST(RelationalSourceDbTest, ChargesCostPerCall) {
  relstore::Database db = MakeSourceDb();
  RelationalSourceDb src("S1", &db, {"organelle"});
  double before = db.cost().ElapsedMicros();
  ASSERT_TRUE(src.TreeFromDb().ok());
  EXPECT_GT(db.cost().ElapsedMicros(), before);
}

TEST(RelationalTargetDbTest, AtomicUpdatesMapToRowOperations) {
  relstore::Database db("targetdb");
  relstore::Schema schema({{"id", ColumnType::kString, false},
                           {"name", ColumnType::kString, true},
                           {"loc", ColumnType::kString, true}});
  ASSERT_TRUE(db.CreateTable("prot", schema).ok());
  RelationalTargetDb target("T", &db, {"prot"});

  // ins {p1 : {}} into prot  -> fresh tuple.
  ASSERT_TRUE(target
                  .ApplyNative(update::Update::Insert(
                                   Path::MustParse("prot"), "p1"),
                               nullptr)
                  .ok());
  // ins {name : "ABC1"} into prot/p1 -> set the NULL field.
  ASSERT_TRUE(target
                  .ApplyNative(update::Update::Insert(
                                   Path::MustParse("prot/p1"), "name",
                                   tree::Value("ABC1")),
                               nullptr)
                  .ok());
  // Setting it again must fail (duplicate edge in tree terms).
  EXPECT_TRUE(target
                  .ApplyNative(update::Update::Insert(
                                   Path::MustParse("prot/p1"), "name",
                                   tree::Value("X")),
                               nullptr)
                  .IsAlreadyExists());
  // copy into prot/p1/loc -> field update from a pasted leaf.
  tree::Tree leaf{tree::Value("membrane")};
  ASSERT_TRUE(target
                  .ApplyNative(update::Update::Copy(
                                   Path(), Path::MustParse("prot/p1/loc")),
                               &leaf)
                  .ok());
  // Read back through the tree view.
  auto view = target.TreeFromDb();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->Find(Path::MustParse("prot/p1/name"))->value().AsString(),
            "ABC1");
  EXPECT_EQ(view->Find(Path::MustParse("prot/p1/loc"))->value().AsString(),
            "membrane");
  // del name from prot/p1 -> NULLed field disappears from the view? No:
  // NULL fields render as null leaves; the tuple keeps its arity.
  ASSERT_TRUE(target
                  .ApplyNative(update::Update::Delete(
                                   Path::MustParse("prot/p1"), "name"),
                               nullptr)
                  .ok());
  view = target.TreeFromDb();
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(
      view->Find(Path::MustParse("prot/p1/name"))->value().is_null());
  // del p1 from prot -> tuple gone.
  ASSERT_TRUE(target
                  .ApplyNative(update::Update::Delete(
                                   Path::MustParse("prot"), "p1"),
                               nullptr)
                  .ok());
  view = target.TreeFromDb();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->Find(Path::MustParse("prot/p1")), nullptr);
}

TEST(RelationalTargetDbTest, WholeTupleUpsertFromPaste) {
  relstore::Database db("targetdb");
  relstore::Schema schema({{"id", ColumnType::kString, false},
                           {"name", ColumnType::kString, true},
                           {"loc", ColumnType::kString, true}});
  ASSERT_TRUE(db.CreateTable("prot", schema).ok());
  RelationalTargetDb target("T", &db, {"prot"});

  auto tuple = tree::ParseTree("{name: CRP, loc: plasma}");
  ASSERT_TRUE(target
                  .ApplyNative(update::Update::Copy(
                                   Path(), Path::MustParse("prot/p7")),
                               &tuple.value())
                  .ok());
  auto view = target.TreeFromDb();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->Find(Path::MustParse("prot/p7/name"))->value().AsString(),
            "CRP");
}

TEST(RelationalTargetDbTest, SchemaMismatchesAreRejected) {
  relstore::Database db("targetdb");
  relstore::Schema schema({{"id", ColumnType::kString, false},
                           {"name", ColumnType::kString, true}});
  ASSERT_TRUE(db.CreateTable("prot", schema).ok());
  RelationalTargetDb target("T", &db, {"prot"});
  // Unknown table.
  EXPECT_FALSE(target
                   .ApplyNative(update::Update::Insert(
                                    Path::MustParse("genes"), "g1"),
                                nullptr)
                   .ok());
  // Too-deep nesting.
  EXPECT_FALSE(target
                   .ApplyNative(update::Update::Insert(
                                    Path::MustParse("prot/p1/name"), "sub"),
                                nullptr)
                   .ok());
  // Unknown column.
  ASSERT_TRUE(target
                  .ApplyNative(update::Update::Insert(
                                   Path::MustParse("prot"), "p1"),
                               nullptr)
                  .ok());
  EXPECT_FALSE(target
                   .ApplyNative(update::Update::Insert(
                                    Path::MustParse("prot/p1"), "color",
                                    tree::Value("red")),
                                nullptr)
                   .ok());
}

TEST(EndToEndTest, RelationalSourceFeedsTreeTarget) {
  // The paper's actual deployment shape: relational source (OrganelleDB
  // on MySQL) wrapped as a tree, native-tree target (MiMI on Timber).
  relstore::Database source_db = MakeSourceDb();
  RelationalSourceDb source("S1", &source_db, {"organelle"});
  TreeTargetDb target("T", tree::Tree());
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);

  auto editor = Editor::Create(&target, &backend, EditorOptions{});
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE((*editor)->MountSource(&source).ok());
  ASSERT_TRUE((*editor)
                  ->CopyPaste(Path::MustParse("S1/organelle/o2"),
                              Path::MustParse("T/entry1"))
                  .ok());
  ASSERT_TRUE((*editor)->Commit().ok());
  EXPECT_TRUE(
      (*editor)->universe().Contains(Path::MustParse("T/entry1/protein")));
  auto trace =
      (*editor)->query()->TraceBack(Path::MustParse("T/entry1/protein"));
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->external_src.has_value());
  EXPECT_EQ(trace->external_src->ToString(), "S1/organelle/o2/protein");
}

}  // namespace
}  // namespace cpdb::wrap
