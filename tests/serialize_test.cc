#include <gtest/gtest.h>

#include "tree/diff.h"
#include "tree/serialize.h"
#include "tree/xml.h"

namespace cpdb::tree {
namespace {

Tree T(const std::string& lit) {
  auto r = ParseTree(lit);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(SerializeTest, ParseErrors) {
  EXPECT_FALSE(ParseTree("{a: }").ok());
  EXPECT_FALSE(ParseTree("{a: 1").ok());
  EXPECT_FALSE(ParseTree("{a 1}").ok());
  EXPECT_FALSE(ParseTree("{a: 1} trailing").ok());
  EXPECT_FALSE(ParseTree("{a: 1, a: 2}").ok());  // duplicate edge
}

TEST(SerializeTest, QuotedStringsAndEscapes) {
  Tree t = T(R"({msg: "hello \"world\""})");
  EXPECT_EQ(t.Find(Path::MustParse("msg"))->value().AsString(),
            "hello \"world\"");
}

TEST(SerializeTest, PrettyOutputIsIndented) {
  std::string pretty = ToPretty(T("{a: {b: 1}, c: 2}"));
  EXPECT_NE(pretty.find("a\n"), std::string::npos);
  EXPECT_NE(pretty.find("  b = 1"), std::string::npos);
  EXPECT_NE(pretty.find("c = 2"), std::string::npos);
}

TEST(XmlTest, RoundTrip) {
  Tree t = T("{entry: {name: ABC1, weight: 112}, note: \"a & b <c>\"}");
  std::string xml = ToXml(t, "db");
  auto back = FromXml(xml);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->Equals(t)) << xml;
}

TEST(XmlTest, EscapingSpecialCharacters) {
  EXPECT_EQ(XmlEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  Tree t = T("{v: \"x<y&z\"}");
  auto back = FromXml(ToXml(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Find(Path::MustParse("v"))->value().AsString(), "x<y&z");
}

TEST(XmlTest, RepeatedSiblingTagsGetKeyedLabels) {
  // Keyed-XML convention: repeated tags become Citation, Citation{2}, ...
  auto t = FromXml(
      "<db><Citation>a</Citation><Citation>b</Citation>"
      "<Citation>c</Citation></db>");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->Find(Path::MustParse("Citation"))->value().AsString(), "a");
  EXPECT_EQ(t->Find(Path::MustParse("Citation{2}"))->value().AsString(),
            "b");
  EXPECT_EQ(t->Find(Path::MustParse("Citation{3}"))->value().AsString(),
            "c");
}

TEST(XmlTest, PrologCommentsAttributesSelfClosing) {
  auto t = FromXml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- a comment -->\n"
      "<db attr=\"ignored\"><a/><b>1</b><!-- inner --></db>");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_TRUE(t->Find(Path::MustParse("a"))->IsEmpty());
  EXPECT_EQ(t->Find(Path::MustParse("b"))->value().AsInt(), 1);
}

TEST(XmlTest, MalformedInputRejected) {
  EXPECT_FALSE(FromXml("<a><b></a></b>").ok());
  EXPECT_FALSE(FromXml("<a>").ok());
  EXPECT_FALSE(FromXml("no xml at all").ok());
}

TEST(DiffTest, DetectsAddRemoveChange) {
  Tree before = T("{a: 1, b: {x: 2}, c: 3}");
  Tree after = T("{a: 9, b: {y: 4}, d: 5}");
  auto diff = DiffTrees(before, after);
  auto stats = SummarizeDiff(diff);
  // a changed; b/x removed; b/y added; c removed; d added.
  EXPECT_EQ(stats.changed, 1u);
  EXPECT_EQ(stats.removed, 2u);
  EXPECT_EQ(stats.added, 2u);
  // Deterministic order and printable.
  std::ostringstream os;
  for (const auto& e : diff) os << e << "\n";
  EXPECT_NE(os.str().find("~ a : 1 -> 9"), std::string::npos);
}

TEST(DiffTest, IdenticalTreesProduceEmptyDiff) {
  Tree t = T("{a: {b: 1}}");
  EXPECT_TRUE(DiffTrees(t, t.Clone()).empty());
}

TEST(DiffTest, SubtreeAdditionListsEveryNode) {
  Tree before = T("{}");
  Tree after = T("{a: {x: 1, y: 2}}");
  auto diff = DiffTrees(before, after);
  ASSERT_EQ(diff.size(), 3u);  // a, a/x, a/y
  EXPECT_EQ(diff[0].path.ToString(), "a");
  EXPECT_EQ(diff[1].path.ToString(), "a/x");
}

TEST(DiffTest, ValuePresenceChanges) {
  // Leaf gaining / losing a value counts as a change.
  Tree before = T("{a: {}}");
  Tree after = T("{a: 5}");
  auto diff = DiffTrees(before, after);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].kind, DiffEntry::Kind::kValueChanged);
}

}  // namespace
}  // namespace cpdb::tree
