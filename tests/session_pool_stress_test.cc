// TSan stress for SessionPool's reuse-vs-rebuild path: threads acquire,
// commit (advancing the latch epoch so every pooled snapshot goes
// stale), read under a shared grant, and release — racing the pool's
// freelist, the serialized Build path, and the engine's epoch stamp all
// at once. Under the `tsan` preset (label: concurrency) this is the
// data-race probe for the annotated pool internals; in a plain build it
// still checks the pool's conservation law: every Acquire is counted as
// exactly one reuse or one build.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace cpdb {
namespace {

using service::Engine;
using service::SessionPool;
using tree::Path;
using update::Update;

TEST(SessionPoolStressTest, ReuseVsRebuildUnderChurn) {
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);
  service::SessionOptions opts;
  opts.strategy = provenance::Strategy::kHierarchicalTransactional;
  SessionPool pool(&engine, opts);

  constexpr int kThreads = 8;
  constexpr int kRounds = 30;
  // gtest assertions are not thread-safe; workers count failures and the
  // main thread asserts once after the join.
  std::atomic<size_t> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        auto session = pool.Acquire();
        if (!session.ok()) {
          ++failures;
          continue;
        }
        if ((t + r) % 3 == 0) {
          // Writer round: one committed insert. The commit advances the
          // epoch, so every session parked in the pool is now stale and
          // the next Acquire on any thread takes the rebuild path.
          std::string name =
              "t" + std::to_string(t) + "_r" + std::to_string(r);
          if (!(*session)->Apply(Update::Insert(Path::MustParse("T"), name))
                   .ok() ||
              !(*session)->Commit().ok()) {
            ++failures;
          }
        } else {
          // Reader round: a batch of queries under one shared grant,
          // drained before the grant drops (the session contract).
          auto g = (*session)->ReadLock();
          auto rows = (*session)->backend()->GetUnder(Path::MustParse("T"));
          if (!rows.ok()) ++failures;
        }
        pool.Release(std::move(*session));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0u);
  // Conservation: every Acquire was exactly one reuse or one build.
  EXPECT_EQ(pool.built() + pool.reused(),
            static_cast<size_t>(kThreads) * kRounds);
  EXPECT_GE(pool.built(), 1u);
  // The committed inserts all landed in the shared state.
  auto final_session = pool.Acquire();
  ASSERT_TRUE(final_session.ok());
  size_t committed_children = 0;
  {
    auto g = (*final_session)->ReadLock();
    const tree::Tree* t_root =
        (*final_session)->editor()->universe().Find(Path::MustParse("T"));
    ASSERT_NE(t_root, nullptr);
    for (const auto& child : t_root->children()) {
      if (child.first.rfind("t", 0) == 0) ++committed_children;
    }
  }
  size_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      if ((t + r) % 3 == 0) ++expected;
    }
  }
  EXPECT_EQ(committed_children, expected);
  pool.Release(std::move(*final_session));
}

}  // namespace
}  // namespace cpdb
