#!/usr/bin/env python3
"""Negative-compilation harness for the thread-safety annotations.

Compiles every snippet under tests/annotations/ with Clang's
-Wthread-safety promoted to an error:

  * bad_*.cc  MUST fail, and the diagnostic must be a thread-safety one
    (each snippet names an expected fragment in an
    `// expect-diagnostic:` line);
  * good_*.cc MUST compile cleanly — guarding against annotations so
    strict the sanctioned patterns stop building.

This is what keeps util/thread_annotations.h honest: on GCC the macros
are no-ops, so only this harness (and CI's `analyze` job) proves the
attributes still reject the misuse they are there to reject.

Exit codes: 0 all snippets behave, 1 mismatch, 77 skipped (no clang++
on PATH — ctest maps 77 to SKIPPED via SKIP_RETURN_CODE).
"""

import pathlib
import re
import shutil
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
SNIPPETS = ROOT / "tests" / "annotations"
SKIP = 77


def find_clang():
    for name in ("clang++", "clang++-20", "clang++-19", "clang++-18",
                 "clang++-17", "clang++-16", "clang++-15", "clang++-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_snippet(clang, path):
    cmd = [
        clang, "-std=c++17", "-fsyntax-only",
        "-I", str(ROOT / "src"),
        "-Wthread-safety", "-Werror=thread-safety",
        str(path),
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def expected_fragment(path):
    m = re.search(r"//\s*expect-diagnostic:\s*(.+)", path.read_text())
    return m.group(1).strip() if m else None


def main():
    clang = find_clang()
    if clang is None:
        print("SKIP: no clang++ on PATH; thread-safety analysis "
              "requires Clang")
        return SKIP

    snippets = sorted(SNIPPETS.glob("*.cc"))
    if not snippets:
        print(f"no snippets under {SNIPPETS}", file=sys.stderr)
        return 1

    failures = []
    for path in snippets:
        rc, stderr = compile_snippet(clang, path)
        name = path.name
        if name.startswith("bad_"):
            if rc == 0:
                failures.append(f"{name}: compiled, but must be rejected")
                continue
            if "thread-safety" not in stderr and "-Wthread-safety" not in stderr:
                failures.append(
                    f"{name}: rejected, but not by the thread-safety "
                    f"analysis:\n{stderr}")
                continue
            frag = expected_fragment(path)
            if frag and frag not in stderr:
                failures.append(
                    f"{name}: expected diagnostic fragment {frag!r} "
                    f"not found in:\n{stderr}")
                continue
            print(f"ok (rejected as it must be): {name}")
        else:
            if rc != 0:
                failures.append(
                    f"{name}: must compile cleanly, but failed:\n{stderr}")
                continue
            print(f"ok (compiles cleanly): {name}")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print(f"all {len(snippets)} annotation snippets behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
