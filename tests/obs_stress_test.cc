// Concurrency stress for the metrics primitives (runs under the `tsan`
// preset via the `concurrency` label): many threads hammer one
// histogram/counter/gauge and the trace ring while a scraper thread
// renders the registry in a loop. The assertions are conservation laws —
// every recorded sample must be visible in the final snapshot — and the
// real check is ThreadSanitizer finding no race in the relaxed-atomic
// record paths or the render path.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cpdb::obs {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kPerThread = 20000;

TEST(ObsStressTest, ConcurrentRecordsAllLand) {
  Registry reg;
  Counter* counter = reg.GetCounter("cpdb_ops_total", "h", "", "ops");
  Gauge* gauge = reg.GetGauge("cpdb_level", "h", "", "level");
  Histogram* hist = reg.GetHistogram("cpdb_lat_us", "h", "", "lat_us");

  std::atomic<bool> stop{false};
  // Scraper: renders both surfaces concurrently with the writers. The
  // renders must be internally consistent enough to not crash or tear;
  // values are statistical by contract.
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string p = reg.RenderPrometheus();
      std::string j = reg.RenderJson();
      EXPECT_NE(p.find("cpdb_ops_total"), std::string::npos);
      EXPECT_NE(j.find("\"ops\":"), std::string::npos);
    }
  });

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter->Inc();
        gauge->Add(t % 2 == 0 ? 1 : -1);
        hist->Record(static_cast<double>((t * kPerThread + i) % 4096));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(gauge->Value(), 0);  // equal +1/-1 thread counts
  Histogram::Snapshot s = hist->Snap();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(ObsStressTest, ConcurrentRegistrationIsIdempotent) {
  Registry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        seen[t] = reg.GetCounter("cpdb_same_total", "h", "", "same");
        seen[t]->Inc();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), kThreads * 500u);
}

TEST(ObsStressTest, TraceRingUnderConcurrentRecordAndRead) {
  TraceBuffer buf(64, 16);
  buf.SetSlowThresholdUs(1e9);  // nothing qualifies: no stderr noise
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<CommitSpan> recent = buf.Recent(32);
      for (const CommitSpan& s : recent) EXPECT_GE(s.tid, 0);
      (void)buf.SlowLogJson(8);
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < 5000; ++i) {
        CommitSpan span;
        span.tid = static_cast<int64_t>(t * 5000 + i);
        span.total_us = 25.0;
        span.claims = {"T/t" + std::to_string(t)};
        buf.Record(std::move(span));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(buf.recorded(), 4u * 5000u);
  EXPECT_EQ(buf.slow_recorded(), 0u);
}

}  // namespace
}  // namespace cpdb::obs
