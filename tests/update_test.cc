#include "update/semantics.h"

#include <gtest/gtest.h>

#include "tree/serialize.h"
#include "update/parser.h"
#include "update/update.h"

namespace cpdb::update {
namespace {

tree::Tree T(const std::string& literal) {
  auto r = tree::ParseTree(literal);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

tree::Path P(const std::string& s) { return tree::Path::MustParse(s); }

// ----- Semantics of the three atomic operations ---------------------------

TEST(SemanticsTest, InsertEmptyTree) {
  tree::Tree u = T("{T: {}}");
  ApplyEffect effect;
  ASSERT_TRUE(Apply(&u, Update::Insert(P("T"), "c2"), &effect).ok());
  EXPECT_TRUE(u.Contains(P("T/c2")));
  EXPECT_TRUE(u.Find(P("T/c2"))->IsEmpty());
  ASSERT_EQ(effect.inserted.size(), 1u);
  EXPECT_EQ(effect.inserted[0], P("T/c2"));
}

TEST(SemanticsTest, InsertValue) {
  tree::Tree u = T("{T: {c4: {}}}");
  ASSERT_TRUE(
      Apply(&u, Update::Insert(P("T/c4"), "y", tree::Value(int64_t{12})))
          .ok());
  EXPECT_EQ(u.Find(P("T/c4/y"))->value().AsInt(), 12);
}

TEST(SemanticsTest, InsertFailsOnMissingPath) {
  tree::Tree u = T("{T: {}}");
  Status st = Apply(&u, Update::Insert(P("T/zz"), "a"));
  EXPECT_TRUE(st.IsNotFound());
}

TEST(SemanticsTest, InsertFailsOnDuplicateEdge) {
  // "t ] t' fails if there are any shared edge names" (Section 2).
  tree::Tree u = T("{T: {a: 1}}");
  Status st = Apply(&u, Update::Insert(P("T"), "a"));
  EXPECT_TRUE(st.IsAlreadyExists());
  EXPECT_EQ(u.Find(P("T/a"))->value().AsInt(), 1);  // unchanged
}

TEST(SemanticsTest, DeleteRemovesSubtree) {
  tree::Tree u = T("{T: {c5: {x: 9, y: 7}}}");
  ApplyEffect effect;
  ASSERT_TRUE(Apply(&u, Update::Delete(P("T"), "c5"), &effect).ok());
  EXPECT_FALSE(u.Contains(P("T/c5")));
  // Effect lists the whole removed subtree in preorder, root first.
  ASSERT_EQ(effect.deleted.size(), 3u);
  EXPECT_EQ(effect.deleted[0], P("T/c5"));
  EXPECT_EQ(effect.deleted[1], P("T/c5/x"));
  EXPECT_EQ(effect.deleted[2], P("T/c5/y"));
}

TEST(SemanticsTest, DeleteFailsIfEdgeAbsent) {
  tree::Tree u = T("{T: {}}");
  EXPECT_TRUE(Apply(&u, Update::Delete(P("T"), "zz")).IsNotFound());
}

TEST(SemanticsTest, CopyIntoFreshEdge) {
  tree::Tree u = T("{S1: {a3: {x: 7, y: 6}}, T: {}}");
  ApplyEffect effect;
  ASSERT_TRUE(Apply(&u, Update::Copy(P("S1/a3"), P("T/c3")), &effect).ok());
  EXPECT_TRUE(u.Find(P("T/c3"))->Equals(*u.Find(P("S1/a3"))));
  EXPECT_FALSE(effect.overwrote);
  ASSERT_EQ(effect.copied.size(), 3u);
  EXPECT_EQ(effect.copied[0].first, P("T/c3"));
  EXPECT_EQ(effect.copied[0].second, P("S1/a3"));
  EXPECT_EQ(effect.copied[1].first, P("T/c3/x"));
  EXPECT_EQ(effect.copied[2].second, P("S1/a3/y"));
}

TEST(SemanticsTest, CopyOverwritesExistingSubtree) {
  tree::Tree u = T("{S1: {a1: {y: 3}}, T: {c1: {y: 2, z: 1}}}");
  ApplyEffect effect;
  ASSERT_TRUE(Apply(&u, Update::Copy(P("S1/a1"), P("T/c1")), &effect).ok());
  EXPECT_TRUE(effect.overwrote);
  // The old subtree {c1, c1/y, c1/z} is reported for provlist pruning.
  ASSERT_EQ(effect.overwritten.size(), 3u);
  EXPECT_EQ(effect.overwritten[0], P("T/c1"));
  // The destination is now exactly the source (z is gone).
  EXPECT_FALSE(u.Contains(P("T/c1/z")));
  EXPECT_EQ(u.Find(P("T/c1/y"))->value().AsInt(), 3);
}

TEST(SemanticsTest, CopyIsDeep) {
  tree::Tree u = T("{S1: {a: {x: 1}}, T: {}}");
  ASSERT_TRUE(Apply(&u, Update::Copy(P("S1/a"), P("T/b"))).ok());
  // Mutating the copy must not affect the source.
  ASSERT_TRUE(u.Find(P("T/b"))->RemoveChild("x").ok());
  EXPECT_TRUE(u.Contains(P("S1/a/x")));
}

TEST(SemanticsTest, SelfCopyWithinTarget) {
  tree::Tree u = T("{T: {a: {x: 1}, b: {}}}");
  ASSERT_TRUE(Apply(&u, Update::Copy(P("T/a"), P("T/b"))).ok());
  EXPECT_EQ(u.Find(P("T/b/x"))->value().AsInt(), 1);
}

TEST(SemanticsTest, CopyIntoOwnDescendant) {
  // copy T/a into T/a/b must clone first (t.q evaluated before t[p:=...]).
  tree::Tree u = T("{T: {a: {b: {}}}}");
  ASSERT_TRUE(Apply(&u, Update::Copy(P("T/a"), P("T/a/b"))).ok());
  EXPECT_TRUE(u.Contains(P("T/a/b/b")));
  EXPECT_FALSE(u.Contains(P("T/a/b/b/b")));  // not infinite
}

TEST(SemanticsTest, CopyFailsOnMissingSource) {
  tree::Tree u = T("{T: {}}");
  EXPECT_TRUE(Apply(&u, Update::Copy(P("S1/zz"), P("T/a"))).IsNotFound());
}

TEST(SemanticsTest, CopyFailsOnMissingDestinationParent) {
  tree::Tree u = T("{S1: {a: 1}, T: {}}");
  EXPECT_TRUE(
      Apply(&u, Update::Copy(P("S1/a"), P("T/zz/deep"))).IsNotFound());
}

TEST(SemanticsTest, SequenceComposition) {
  // [[U; U']] = [[U']] o [[U]].
  tree::Tree u1 = T("{T: {}}");
  Script script = {Update::Insert(P("T"), "a"),
                   Update::Insert(P("T/a"), "b", tree::Value(int64_t{1}))};
  ASSERT_TRUE(ApplySequence(&u1, script).ok());

  tree::Tree u2 = T("{T: {}}");
  ASSERT_TRUE(Apply(&u2, script[0]).ok());
  ASSERT_TRUE(Apply(&u2, script[1]).ok());
  EXPECT_TRUE(u1.Equals(u2));
}

TEST(SemanticsTest, SequenceStopsAtFirstFailure) {
  tree::Tree u = T("{T: {}}");
  Script script = {Update::Insert(P("T"), "a"),
                   Update::Delete(P("T"), "zz"),  // fails
                   Update::Insert(P("T"), "b")};
  size_t failed_at = 0;
  Status st = ApplySequence(&u, script, &failed_at);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(failed_at, 1u);
  EXPECT_TRUE(u.Contains(P("T/a")));   // first op applied
  EXPECT_FALSE(u.Contains(P("T/b")));  // third never ran
}

TEST(SemanticsTest, ApplyAtomicallyRollsBack) {
  tree::Tree u = T("{T: {c: 1}}");
  tree::Tree before = u.Clone();
  Script script = {Update::Insert(P("T"), "a"),
                   Update::Delete(P("T"), "c"),
                   Update::Delete(P("T"), "zz")};  // fails
  Status st = ApplyAtomically(&u, script);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(u.Equals(before));
}

// ----- Undo log -----------------------------------------------------------

TEST(UndoLogTest, RevertsInsertDeleteCopy) {
  tree::Tree u = T("{S: {a: {x: 5}}, T: {c: {y: 1}}}");
  tree::Tree before = u.Clone();
  UndoLog undo;
  ASSERT_TRUE(undo.ApplyTracked(&u, Update::Insert(P("T"), "n")).ok());
  ASSERT_TRUE(undo.ApplyTracked(&u, Update::Delete(P("T/c"), "y")).ok());
  ASSERT_TRUE(undo.ApplyTracked(&u, Update::Copy(P("S/a"), P("T/c"))).ok());
  ASSERT_TRUE(undo.ApplyTracked(&u, Update::Copy(P("S/a"), P("T/f"))).ok());
  EXPECT_FALSE(u.Equals(before));
  ASSERT_TRUE(undo.RevertAll(&u).ok());
  EXPECT_TRUE(u.Equals(before));
  EXPECT_TRUE(undo.empty());
}

TEST(UndoLogTest, FailedOpLeavesLogUnchanged) {
  tree::Tree u = T("{T: {}}");
  UndoLog undo;
  EXPECT_FALSE(undo.ApplyTracked(&u, Update::Delete(P("T"), "zz")).ok());
  EXPECT_TRUE(undo.empty());
}

// ----- Textual rendering / parsing ----------------------------------------

TEST(UpdateTest, ToStringMatchesPaperSyntax) {
  EXPECT_EQ(Update::Insert(P("T"), "c2").ToString(),
            "insert {c2 : {}} into T");
  EXPECT_EQ(
      Update::Insert(P("T/c4"), "y", tree::Value(int64_t{12})).ToString(),
      "insert {y : 12} into T/c4");
  EXPECT_EQ(Update::Delete(P("T"), "c5").ToString(), "delete c5 from T");
  EXPECT_EQ(Update::Copy(P("S1/a1/y"), P("T/c1/y")).ToString(),
            "copy S1/a1/y into T/c1/y");
}

TEST(ParserTest, ParsesAllVerbForms) {
  auto u1 = ParseUpdate("insert {c2 : {}} into T");
  ASSERT_TRUE(u1.ok());
  EXPECT_EQ(*u1, Update::Insert(P("T"), "c2"));

  auto u2 = ParseUpdate("ins {y : 12} into T/c4");
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(*u2, Update::Insert(P("T/c4"), "y", tree::Value(int64_t{12})));

  auto u3 = ParseUpdate("del c5 from T");
  ASSERT_TRUE(u3.ok());
  EXPECT_EQ(*u3, Update::Delete(P("T"), "c5"));

  auto u4 = ParseUpdate("copy S1/a1/y into T/c1/y");
  ASSERT_TRUE(u4.ok());
  EXPECT_EQ(*u4, Update::Copy(P("S1/a1/y"), P("T/c1/y")));
}

TEST(ParserTest, StringPayload) {
  auto u = ParseUpdate("insert {name : \"ABC1 transporter\"} into T/p");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->value->AsString(), "ABC1 transporter");
}

TEST(ParserTest, NumberedAndTerminatedLines) {
  auto u = ParseUpdate("(7) copy S1/a3 into T/c3;");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, Update::Copy(P("S1/a3"), P("T/c3")));
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseUpdate("frobnicate T").ok());
  EXPECT_FALSE(ParseUpdate("insert c2 into T").ok());
  EXPECT_FALSE(ParseUpdate("copy into T").ok());
  EXPECT_FALSE(ParseUpdate("").ok());
}

TEST(ParserTest, ScriptRoundTrip) {
  const char* text =
      "(1) delete c5 from T;\n"
      "(2) copy S1/a1/y into T/c1/y;\n"
      "# a comment\n"
      "(3) insert {c2 : {}} into T;\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->size(), 3u);
  auto again = ParseScript(ScriptToString(script.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*script, *again);
}

TEST(ParserTest, SemicolonSeparatedOnOneLine) {
  auto script = ParseScript("ins {a : {}} into T; ins {b : 1} into T/a");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 2u);
}

}  // namespace
}  // namespace cpdb::update
