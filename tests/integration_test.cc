// End-to-end integration: relational source -> wrapper -> editor with
// archiving -> provenance queries -> XML export -> archive replay, plus
// failure injection along the way.

#include <gtest/gtest.h>

#include "cpdb/cpdb.h"

namespace cpdb {
namespace {

using tree::Path;

TEST(IntegrationTest, FullCurationPipeline) {
  // A relational OrganelleDB-like source...
  relstore::Database source_db("organelledb");
  auto table = workload::FillOrganelleRelational(&source_db, 40, 21);
  ASSERT_TRUE(table.ok());
  wrap::RelationalSourceDb source("S1", &source_db, {table.value()});

  // ...a tree target with existing curated content...
  wrap::TreeTargetDb target("T", workload::GenMimiLike(10, 22));
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);

  EditorOptions opts;
  opts.strategy = provenance::Strategy::kHierarchicalTransactional;
  opts.enable_archive = true;
  opts.archive_checkpoint_every = 3;
  opts.record_txn_meta = true;
  opts.user = "integration";
  auto editor = Editor::Create(&target, &backend, opts);
  ASSERT_TRUE(editor.ok());
  Editor& ed = **editor;
  ASSERT_TRUE(ed.MountSource(&source).ok());

  // Curate across several transactions.
  ASSERT_TRUE(ed.CopyPaste(Path::MustParse("S1/organelle/o5"),
                           Path::MustParse("T/imported5"))
                  .ok());
  ASSERT_TRUE(ed.Insert(Path::MustParse("T/imported5"), "curated",
                        tree::Value("yes"))
                  .ok());
  ASSERT_TRUE(ed.Commit().ok());

  ASSERT_TRUE(ed.CopyPaste(Path::MustParse("T/imported5"),
                           Path::MustParse("T/copy_of_5"))
                  .ok());
  ASSERT_TRUE(ed.Commit().ok());

  // Failure injection: a bad op mid-transaction, then abort.
  ASSERT_TRUE(ed.Insert(Path::MustParse("T"), "scratch").ok());
  EXPECT_FALSE(ed.Insert(Path::MustParse("T"), "scratch").ok());  // dup
  ASSERT_TRUE(ed.Abort().ok());
  EXPECT_FALSE(ed.universe().Contains(Path::MustParse("T/scratch")));

  // Queries: the two-hop chain T/copy_of_5 <- T/imported5 <- S1.
  auto trace =
      ed.query()->TraceBack(Path::MustParse("T/copy_of_5/protein"));
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->external_src.has_value());
  EXPECT_EQ(trace->external_src->ToString(),
            "S1/organelle/o5/protein");
  ASSERT_EQ(trace->steps.size(), 2u);
  EXPECT_EQ(trace->steps[0].tid, 2);
  EXPECT_EQ(trace->steps[1].tid, 1);

  // The locally-added annotation traces to a local insert, and the copy
  // of it in copy_of_5 still ends at that insert.
  auto src = ed.query()->GetSrc(Path::MustParse("T/copy_of_5/curated"));
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(src->has_value());
  EXPECT_EQ(**src, 1);

  // Archive: version 0 (pre-curation) lacks the import; version 2 has
  // both; replay equals the live tree.
  auto* arch = ed.archive();
  ASSERT_NE(arch, nullptr);
  auto v0 = arch->GetVersion(0);
  ASSERT_TRUE(v0.ok());
  EXPECT_FALSE(v0->Contains(Path::MustParse("T/imported5")));
  auto v2 = arch->GetVersion(2);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(v2->Equals(ed.universe()));

  // XML round trip of the curated database.
  std::string xml = tree::ToXml(*ed.TargetView(), "MyDB");
  auto back = tree::FromXml(xml);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(*ed.TargetView()));

  // TxnMeta was recorded for each commit with the session user.
  auto meta_table = prov_db.GetTable(provenance::ProvBackend::kMetaTable);
  ASSERT_TRUE(meta_table.ok());
  EXPECT_EQ((*meta_table)->RowCount(), 2u);
  (*meta_table)->Scan([](const relstore::Rid&, const relstore::Row& row) {
    EXPECT_EQ(row[1].AsString(), "integration");
    return true;
  });
}

TEST(IntegrationTest, RelationalTargetEndToEnd) {
  // Curating INTO a relational database: tree source, table target.
  relstore::Database target_db("mydb");
  relstore::Schema schema({{"id", relstore::ColumnType::kString, false},
                           {"protein", relstore::ColumnType::kString, true},
                           {"organelle", relstore::ColumnType::kString,
                            true},
                           {"species", relstore::ColumnType::kString,
                            true}});
  ASSERT_TRUE(target_db.CreateTable("catalog", schema).ok());
  wrap::RelationalTargetDb target("T", &target_db, {"catalog"});

  wrap::TreeSourceDb source("S1", workload::GenOrganelleLike(10, 23));
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);
  EditorOptions opts;
  opts.strategy = provenance::Strategy::kNaive;
  auto editor = Editor::Create(&target, &backend, opts);
  ASSERT_TRUE(editor.ok());
  Editor& ed = **editor;
  ASSERT_TRUE(ed.MountSource(&source).ok());

  // Paste a whole source entry as a tuple of the catalog relation.
  ASSERT_TRUE(ed.CopyPaste(Path::MustParse("S1/o3"),
                           Path::MustParse("T/catalog/r1"))
                  .ok());
  // The native relational store now holds the row.
  auto t = target_db.GetTable("catalog");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->RowCount(), 1u);

  // Field-level curation: fix the species.
  ASSERT_TRUE(ed.Delete(Path::MustParse("T/catalog/r1"), "species").ok());
  ASSERT_TRUE(ed.Insert(Path::MustParse("T/catalog/r1"), "species",
                        tree::Value("H.sapiens"))
                  .ok());

  // Provenance knows the row came from the source and the fix was local.
  auto hist = ed.query()->GetHist(Path::MustParse("T/catalog/r1/protein"));
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->size(), 1u);
  auto src = ed.query()->GetSrc(Path::MustParse("T/catalog/r1/species"));
  ASSERT_TRUE(src.ok());
  EXPECT_TRUE(src->has_value());
}

TEST(IntegrationTest, TraceSurvivesSourceChange) {
  // The motivating scenario: the source changes after the copy; the
  // provenance record still names the version-time location.
  auto s1_content = tree::ParseTree("{p: {v: 1}}");
  wrap::TreeSourceDb s1("S1", std::move(s1_content).value());
  wrap::TreeTargetDb target("T", tree::Tree());
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);
  auto editor = Editor::Create(&target, &backend, EditorOptions{});
  ASSERT_TRUE(editor.ok());
  Editor& ed = **editor;
  ASSERT_TRUE(ed.MountSource(&s1).ok());
  ASSERT_TRUE(
      ed.CopyPaste(Path::MustParse("S1/p"), Path::MustParse("T/e")).ok());
  ASSERT_TRUE(ed.Commit().ok());

  // "the databases from which the data was copied have changed" — the
  // mounted view is a snapshot, and the provenance link remains valid
  // regardless of what happens to the live source afterwards.
  auto trace = ed.query()->TraceBack(Path::MustParse("T/e/v"));
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->external_src.has_value());
  EXPECT_EQ(trace->external_src->ToString(), "S1/p/v");
}

}  // namespace
}  // namespace cpdb
