// The multi-database Own query (Section 2.2).

#include <gtest/gtest.h>

#include "cpdb/cpdb.h"

namespace cpdb {
namespace {

using tree::Path;

struct Db {
  std::unique_ptr<relstore::Database> prov;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::TreeTargetDb> target;
  std::unique_ptr<Editor> editor;
  std::vector<std::unique_ptr<wrap::TreeSourceDb>> sources;
};

std::unique_ptr<Db> MakeDb(const std::string& label) {
  auto db = std::make_unique<Db>();
  db->prov = std::make_unique<relstore::Database>(label + "_prov");
  db->backend = std::make_unique<provenance::ProvBackend>(db->prov.get());
  db->target = std::make_unique<wrap::TreeTargetDb>(label, tree::Tree());
  EditorOptions opts;
  opts.strategy = provenance::Strategy::kNaive;
  auto ed = Editor::Create(db->target.get(), db->backend.get(), opts);
  EXPECT_TRUE(ed.ok());
  db->editor = std::move(ed).value();
  return db;
}

void Mount(Db* db, const std::string& label, tree::Tree content) {
  db->sources.push_back(
      std::make_unique<wrap::TreeSourceDb>(label, std::move(content)));
  ASSERT_TRUE(db->editor->MountSource(db->sources.back().get()).ok());
}

TEST(OwnTest, ChainAcrossTwoTrackingDatabases) {
  // S (untracked) -> M (tracked) -> T (tracked).
  auto m = MakeDb("M");
  {
    auto s_content = tree::ParseTree("{p: {v: 1}}");
    Mount(m.get(), "S", std::move(s_content).value());
  }
  ASSERT_TRUE(
      m->editor->CopyPaste(Path::MustParse("S/p"), Path::MustParse("M/e"))
          .ok());

  auto t = MakeDb("T");
  Mount(t.get(), "M", m->editor->TargetView()->Clone());
  ASSERT_TRUE(
      t->editor->CopyPaste(Path::MustParse("M/e"), Path::MustParse("T/f"))
          .ok());

  query::OwnRegistry registry;
  registry.Register("T", t->editor->query());
  registry.Register("M", m->editor->query());

  auto chain = registry.OwnChain(Path::MustParse("T/f/v"));
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 3u);
  EXPECT_EQ((*chain)[0].database, "T");
  EXPECT_EQ((*chain)[1].database, "M");
  EXPECT_EQ((*chain)[2].database, "S");
  // The chain is truncated at S, which tracks no provenance.
  EXPECT_TRUE(registry.last_chain_truncated());
  EXPECT_FALSE((*chain)[2].origin_tid.has_value());
}

TEST(OwnTest, ChainEndsAtLocalInsert) {
  auto m = MakeDb("M");
  {
    auto none = tree::ParseTree("{}");
    Mount(m.get(), "S", std::move(none).value());
  }
  ASSERT_TRUE(m->editor
                  ->Insert(Path::MustParse("M"), "e",
                           tree::Value(int64_t{42}))
                  .ok());

  auto t = MakeDb("T");
  Mount(t.get(), "M", m->editor->TargetView()->Clone());
  ASSERT_TRUE(
      t->editor->CopyPaste(Path::MustParse("M/e"), Path::MustParse("T/f"))
          .ok());

  query::OwnRegistry registry;
  registry.Register("T", t->editor->query());
  registry.Register("M", m->editor->query());
  auto chain = registry.OwnChain(Path::MustParse("T/f"));
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 2u);
  EXPECT_FALSE(registry.last_chain_truncated());
  ASSERT_TRUE((*chain)[1].origin_tid.has_value());  // entered in M
  EXPECT_EQ((*chain)[1].database, "M");
}

TEST(OwnTest, UnregisteredStartingDatabase) {
  query::OwnRegistry registry;
  auto chain = registry.OwnChain(Path::MustParse("X/a"));
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_EQ((*chain)[0].database, "X");
  EXPECT_TRUE(registry.last_chain_truncated());
}

TEST(OwnTest, PartialReconstructionOfLostSource) {
  // Section 5's "data availability" scenario: two databases copied from a
  // source S that later disappears; their provenance stores identify
  // which S locations the surviving copies came from, partially
  // reconstructing S.
  auto s_content = tree::ParseTree("{p1: {v: 10}, p2: {v: 20}}");
  auto t1 = MakeDb("T1");
  Mount(t1.get(), "S", s_content->Clone());
  auto t2 = MakeDb("T2");
  Mount(t2.get(), "S", s_content->Clone());
  ASSERT_TRUE(t1->editor
                  ->CopyPaste(Path::MustParse("S/p1"),
                              Path::MustParse("T1/a"))
                  .ok());
  ASSERT_TRUE(t2->editor
                  ->CopyPaste(Path::MustParse("S/p2"),
                              Path::MustParse("T2/b"))
                  .ok());

  // "S disappears": reconstruct what we can from T1+T2 provenance.
  tree::Tree reconstructed;
  for (Db* db : {t1.get(), t2.get()}) {
    auto records = db->editor->store()->backend()->GetAll();
    ASSERT_TRUE(records.ok());
    for (const auto& r : *records) {
      if (r.op != provenance::ProvOp::kCopy) continue;
      if (r.src.IsRoot() || r.src.At(0) != "S") continue;
      const tree::Tree* data = db->editor->universe().Find(r.loc);
      if (data == nullptr) continue;
      // Plant the copied data back at its source location.
      tree::Tree* cur = &reconstructed;
      for (size_t d = 1; d + 1 < r.src.Depth(); ++d) {
        if (cur->GetChild(r.src.At(d)) == nullptr) {
          ASSERT_TRUE(cur->AddChild(r.src.At(d), tree::Tree()).ok());
        }
        cur = cur->GetChild(r.src.At(d));
      }
      cur->PutChild(r.src.Leaf(), data->Clone());
    }
  }
  // Both entries recovered with their values.
  EXPECT_EQ(reconstructed.Find(Path::MustParse("p1/v"))->value().AsInt(),
            10);
  EXPECT_EQ(reconstructed.Find(Path::MustParse("p2/v"))->value().AsInt(),
            20);
}

}  // namespace
}  // namespace cpdb
