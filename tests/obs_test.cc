// The observability layer (src/obs/): histogram bucketing and snapshot
// algebra, registry rendering on both export surfaces (Prometheus text
// exposition and the flat STATS JSON), the windowed Reporter, and the
// commit-trace ring with its slow-commit capture.
//
// The contract under test: the SAME registry objects back every export
// path, Prometheus output parses (HELP/TYPE blocks, cumulative buckets,
// _count == sum of bucket increments), JSON counters render as integers
// (net_test matches them textually), and snapshot Delta/merge arithmetic
// is exact so windowed percentiles cannot drift from the raw counts.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace cpdb::obs {
namespace {

// ----- Histogram -------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesArePowersOfTwoMicros) {
  EXPECT_EQ(Histogram::BucketOf(0.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(0.9), 0u);    // [0, 1us)
  EXPECT_EQ(Histogram::BucketOf(1.0), 1u);    // [1, 2us)
  EXPECT_EQ(Histogram::BucketOf(1.9), 1u);
  EXPECT_EQ(Histogram::BucketOf(2.0), 2u);    // [2, 4us)
  EXPECT_EQ(Histogram::BucketOf(3.5), 2u);
  EXPECT_EQ(Histogram::BucketOf(4.0), 3u);
  EXPECT_EQ(Histogram::BucketOf(1000.0), 10u);  // [512, 1024us)
  // Everything past the covered range lands in the +Inf bucket.
  EXPECT_EQ(Histogram::BucketOf(1e12), Histogram::kBuckets - 1);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperUs(Histogram::kBuckets - 1)));
  EXPECT_EQ(Histogram::BucketUpperUs(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperUs(10), 1024.0);
}

TEST(HistogramTest, SnapshotCountsAndMean) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.MeanMicros(), 20.0, 0.01);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucketResolution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  Histogram::Snapshot s = h.Snap();
  // Log2 buckets give ~2x resolution: the estimate must land within the
  // bucket that holds the true percentile.
  double p50 = s.Percentile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  double p99 = s.Percentile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_EQ(Histogram::Snapshot{}.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SnapshotMergeAndDeltaAreExact) {
  Histogram h;
  h.Record(5);
  h.Record(50);
  Histogram::Snapshot first = h.Snap();
  h.Record(500);
  Histogram::Snapshot second = h.Snap();

  Histogram::Snapshot window = second.Delta(first);
  EXPECT_EQ(window.count, 1u);
  EXPECT_EQ(window.buckets[Histogram::BucketOf(500)], 1u);

  Histogram::Snapshot merged = first;
  merged += window;
  EXPECT_EQ(merged.count, second.count);
  EXPECT_EQ(merged.sum_ns, second.sum_ns);
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.buckets[i], second.buckets[i]) << "bucket " << i;
  }
}

// ----- Registry rendering ----------------------------------------------------

TEST(RegistryTest, SameNameAndLabelsReturnsSameObject) {
  Registry reg;
  Counter* a = reg.GetCounter("cpdb_x_total", "help", "", "x");
  Counter* b = reg.GetCounter("cpdb_x_total", "other help");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct series.
  Histogram* h1 = reg.GetHistogram("cpdb_stage_us", "h", "stage=\"a\"");
  Histogram* h2 = reg.GetHistogram("cpdb_stage_us", "h", "stage=\"b\"");
  EXPECT_NE(h1, h2);
}

TEST(RegistryTest, PrometheusExpositionParses) {
  Registry reg;
  reg.GetCounter("cpdb_commits_total", "Transactions committed", "", "")
      ->Inc(7);
  reg.GetGauge("cpdb_depth", "Queue depth")->Set(-3);
  Histogram* h = reg.GetHistogram("cpdb_lat_us", "Latency", "op=\"get\"");
  h->Record(3.0);   // bucket [2,4us)
  h->Record(100.0);
  reg.SetCallback("cpdb_cb_total", "Callback counter", true,
                  [] { return 42.0; });

  std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# HELP cpdb_commits_total Transactions committed\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE cpdb_commits_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("cpdb_commits_total 7\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cpdb_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("cpdb_depth -3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cpdb_lat_us histogram\n"), std::string::npos);
  // Cumulative buckets: the le="4" bucket already contains the 3us
  // sample, the +Inf bucket contains everything.
  EXPECT_NE(out.find("cpdb_lat_us_bucket{op=\"get\",le=\"4\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("cpdb_lat_us_bucket{op=\"get\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("cpdb_lat_us_count{op=\"get\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("cpdb_cb_total 42\n"), std::string::npos);

  // Minimal line discipline: every non-comment line is `name[{labels}]
  // value`, every series name appears after a HELP and a TYPE.
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated last line";
    std::string line = out.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) FAIL() << "blank line in exposition";
    if (line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(sp, 0u) << line;
  }
}

TEST(RegistryTest, JsonRendersIntegersWithoutDecimalPoint) {
  Registry reg;
  reg.GetCounter("cpdb_commits_total", "h", "", "commits")->Inc(3);
  reg.GetGauge("cpdb_tid", "h", "", "last_tid")->Set(17);
  reg.SetCallback("cpdb_frac", "h", false, [] { return 0.5; }, "", "frac");
  reg.GetCounter("cpdb_hidden_total", "no json key")->Inc();
  Histogram* h = reg.GetHistogram("cpdb_lat_us", "h", "", "lat_us");
  h->Record(10);

  std::string out = reg.RenderJson();
  EXPECT_NE(out.find("\"commits\":3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"last_tid\":17"), std::string::npos);
  EXPECT_NE(out.find("\"frac\":0.5"), std::string::npos);
  EXPECT_EQ(out.find("cpdb_hidden"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  // Histograms flatten to derived scalar fields.
  EXPECT_NE(out.find("\"lat_us_count\":1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"lat_us_p99_us\":"), std::string::npos);
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
}

TEST(RegistryTest, DeltaJsonDifferencesCountersButNotGauges) {
  Registry reg;
  Counter* c = reg.GetCounter("cpdb_reqs_total", "h", "", "requests");
  Gauge* g = reg.GetGauge("cpdb_depth", "h", "", "depth");
  Histogram* h = reg.GetHistogram("cpdb_lat_us", "h", "", "lat_us");
  c->Inc(10);
  g->Set(5);
  h->Record(100);
  Sample prev = reg.TakeSample();
  c->Inc(4);
  g->Set(2);
  h->Record(200);
  h->Record(300);
  Sample cur = reg.TakeSample();

  std::string out = Registry::DeltaJson(prev, cur);
  EXPECT_NE(out.find("\"requests\":4"), std::string::npos) << out;  // 14-10
  EXPECT_NE(out.find("\"depth\":2"), std::string::npos);            // as-is
  EXPECT_NE(out.find("\"lat_us_count\":2"), std::string::npos);     // window
}

// ----- Reporter --------------------------------------------------------------

TEST(ReporterTest, FoldsWindowsAndFinalPartialWindow) {
  Registry reg;
  Counter* c = reg.GetCounter("cpdb_ticks_total", "h", "", "ticks");
  Reporter rep(&reg, 10);
  rep.Start();
  c->Inc(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  c->Inc(2);
  rep.Stop();

  std::vector<std::string> rows = rep.Rows();
  ASSERT_FALSE(rows.empty());
  uint64_t total = 0;
  for (const std::string& row : rows) {
    EXPECT_NE(row.find("\"interval_seq\":"), std::string::npos) << row;
    EXPECT_NE(row.find("\"interval_ms\":"), std::string::npos);
    size_t at = row.find("\"ticks\":");
    ASSERT_NE(at, std::string::npos) << row;
    total += std::strtoull(row.c_str() + at + std::strlen("\"ticks\":"),
                           nullptr, 10);
  }
  // Windowed deltas partition the counter: no tick lost, none double
  // counted, including across the final partial window.
  EXPECT_EQ(total, 5u);
  // Stop() is idempotent and Start/Stop cycles do not crash.
  rep.Stop();
}

// ----- Trace ring ------------------------------------------------------------

CommitSpan MakeSpan(int64_t tid, double total_us) {
  CommitSpan s;
  s.tid = tid;
  s.cohort = 1;
  s.cohort_size = 2;
  s.queue_us = 1;
  s.apply_us = 2;
  s.seal_us = 3;
  s.wake_us = 4;
  s.total_us = total_us;
  s.claims = {"T/data/k" + std::to_string(tid)};
  return s;
}

TEST(TraceBufferTest, RingKeepsMostRecentSpans) {
  TraceBuffer buf(4, 4);
  for (int64_t i = 1; i <= 10; ++i) buf.Record(MakeSpan(i, 100));
  EXPECT_EQ(buf.recorded(), 10u);
  std::vector<CommitSpan> recent = buf.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].tid, 10);  // most recent first
  EXPECT_EQ(recent[3].tid, 7);
  EXPECT_EQ(buf.slow_recorded(), 0u);  // threshold disabled by default
}

TEST(TraceBufferTest, SlowThresholdCapturesAndRenders) {
  TraceBuffer buf(8, 8);
  buf.SetSlowThresholdUs(1000);
  buf.Record(MakeSpan(1, 10));     // fast: not captured
  buf.Record(MakeSpan(2, 5000));   // slow: captured (also logs to stderr)
  EXPECT_EQ(buf.slow_recorded(), 1u);
  std::vector<CommitSpan> slow = buf.Slow();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].tid, 2);

  std::string json = buf.SlowLogJson();
  EXPECT_NE(json.find("\"slow_threshold_us\":1000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"slow_recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("T/data/k2"), std::string::npos);
  // Disabling stops capture without clearing history.
  buf.SetSlowThresholdUs(0);
  buf.Record(MakeSpan(3, 9000));
  EXPECT_EQ(buf.slow_recorded(), 1u);
}

}  // namespace
}  // namespace cpdb::obs
